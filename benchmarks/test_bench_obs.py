"""OBS — disabled observability must be (nearly) free on the hot path.

Times :func:`repro.engine.execute_hardened` on a clean 1000-task serial
batch with ``tracer=None`` (the disabled state every untraced run pays
for) against the same batch on the pre-observability driver shape — a
bare loop over the same worker bodies.  Every trace emission point in the
driver is an ``if tracer is not None`` guard, so the delta measures
exactly those guards plus the two extra ``HardenedTask`` slots.  The
ISSUE targets < 2%; the assertion bound is looser (15%) so shared-CI
scheduling noise cannot flake the suite, and the measured figure is
recorded under ``benchmarks/results/`` for eyeballing the real margin.

A second measurement runs the same batch with a live tracer writing to a
null sink — not asserted against a budget (tracing is opt-in forensics),
just recorded so regressions in the enabled cost stay visible.
"""

import math
import time

from repro.engine import HardenedTask, RetryPolicy, execute_hardened
from repro.obs import Tracer

N_TASKS = 1000
ROUNDS = 5
KERNEL_ITERS = 4000  # ~0.3 ms/task, the low end of a real experiment

#: Assertion guard, intentionally far above the 2% design target (see
#: the module docstring / benchmarks/test_bench_faults.py).
GUARD = 0.15


def _work(index, attempt):
    """One synthetic experiment: a deterministic ~0.3 ms float kernel."""
    t0 = time.perf_counter()
    acc = 0.0
    x = float(index % 97) + 1.0
    for i in range(1, KERNEL_ITERS):
        acc += math.sqrt(x * i) / i
    return {"ok": True, "payload": acc, "wall": time.perf_counter() - t0}


def _bare_batch():
    """The untraced reference: same worker, plain loop, same sink."""
    sink = []
    for i in range(N_TASKS):
        outcome = _work(i, 1)
        sink.append(outcome["payload"])
    return sink


class _BenchTask(HardenedTask):
    __slots__ = ("index",)

    def __init__(self, index):
        super().__init__(f"bench:{index}")
        self.index = index


class _NullSink:
    def write(self, text):
        pass


def _hardened_batch(tracer=None):
    sink = []
    stats = execute_hardened(
        (_BenchTask(i) for i in range(N_TASKS)),
        worker=_work,
        payload=lambda task: (task.index,),
        on_success=lambda task, outcome, degraded: sink.append(
            outcome["payload"]
        ),
        on_failure=lambda task, kind, error: sink.append(None),
        jobs=1,
        retry=RetryPolicy(max_attempts=3),
        tracer=tracer,
    )
    assert stats.retries == 0 and not stats.degraded
    return sink


def _best_of(fn, rounds=ROUNDS):
    best = math.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_disabled_tracing_overhead_on_clean_batch(results_dir):
    _bare_batch(), _hardened_batch()  # warm caches / allocator
    bare_wall, bare = _best_of(_bare_batch)
    off_wall, off = _best_of(_hardened_batch)
    on_wall, on = _best_of(lambda: _hardened_batch(Tracer(_NullSink())))

    assert off == bare == on  # identical results, identical order
    overhead = (off_wall - bare_wall) / bare_wall
    enabled = (on_wall - bare_wall) / bare_wall
    (results_dir / "obs_overhead.txt").write_text(
        "observability overhead, clean serial batch "
        f"({N_TASKS} tasks, best of {ROUNDS})\n"
        f"bare loop:                 {bare_wall * 1e3:9.3f} ms\n"
        f"driver, tracer=None:       {off_wall * 1e3:9.3f} ms\n"
        f"driver, tracer=null-sink:  {on_wall * 1e3:9.3f} ms\n"
        f"disabled overhead:         {overhead * 100:9.2f} %  "
        "(design target < 2%)\n"
        f"enabled overhead:          {enabled * 100:9.2f} %  "
        "(recorded, not budgeted)\n"
    )
    assert overhead < GUARD, (
        f"disabled-tracing overhead {overhead * 100:.2f}% exceeds the "
        f"{GUARD * 100:.0f}% regression guard "
        f"(bare {bare_wall:.4f}s vs driver {off_wall:.4f}s)"
    )
