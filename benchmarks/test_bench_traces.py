"""TRACES — shard throughput of the streaming replayer, cold vs warm.

Generates a 10k-job synthetic SWF log (Poisson arrivals over ~140 hourly
shards), replays it cold (every shard evaluated) and warm (every shard
served from the content-addressed cache), and records both shard rates.
The warm pass must dominate — a hit is one JSON read — and both passes
must produce byte-identical reports, the replay determinism guarantee.

Writes ``benchmarks/results/replay_trace_shard_rates.json``; CI uploads
the ``benchmarks/results`` JSONs as the ``replay-benchmarks`` artifact.
"""

import json

import pytest

from repro.traces import replay_trace
from repro.workloads import write_synthetic_swf

N_JOBS = 10_000
SHARD_WINDOW = 3600.0
SEED = 1


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    return write_synthetic_swf(root / "bench_10k.swf", N_JOBS, seed=SEED)


def _replay(trace_path, cache_dir):
    return replay_trace(
        trace_path,
        shard_window=SHARD_WINDOW,
        jobs=1,
        cache_dir=cache_dir,
    )


def test_bench_replay_cold_vs_warm(trace_path, tmp_path, results_dir):
    cache_dir = tmp_path / "cache"
    cold_report, cold = _replay(trace_path, cache_dir)
    warm_report, warm = _replay(trace_path, cache_dir)

    assert cold.misses == cold.shards > 100
    assert warm.hits == warm.shards and warm.misses == 0
    assert cold_report.n_jobs == N_JOBS
    # determinism: the cached pass reproduces the cold pass byte for byte
    assert json.dumps(warm_report.to_dict(), sort_keys=True) == json.dumps(
        cold_report.to_dict(), sort_keys=True
    )

    cold_rate = cold.shards / cold.wall_time
    warm_rate = warm.shards / warm.wall_time
    assert warm.wall_time < 0.5 * cold.wall_time, (
        f"warm {warm.wall_time:.2f}s not well under cold {cold.wall_time:.2f}s"
    )

    payload = {
        "trace_jobs": N_JOBS,
        "shards": cold.shards,
        "shard_window": SHARD_WINDOW,
        "cold_wall_s": round(cold.wall_time, 4),
        "warm_wall_s": round(warm.wall_time, 4),
        "cold_shards_per_s": round(cold_rate, 2),
        "warm_shards_per_s": round(warm_rate, 2),
        "warm_speedup": round(cold.wall_time / warm.wall_time, 2),
        "peak_resident_jobs": cold.peak_resident_jobs,
    }
    out = results_dir / "replay_trace_shard_rates.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_bench_replay_warm_rate(benchmark, trace_path, tmp_path):
    cache_dir = tmp_path / "cache"
    _replay(trace_path, cache_dir)  # prime

    def warm():
        return _replay(trace_path, cache_dir)

    report, metrics = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert metrics.hits == metrics.shards
    assert len(report.shards) == metrics.shards


def test_bench_replay_cold_rate(benchmark, trace_path, tmp_path):
    counter = iter(range(10**6))

    def cold():
        return _replay(trace_path, tmp_path / str(next(counter)))

    report, metrics = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert metrics.misses == metrics.shards
    assert metrics.peak_resident_jobs < N_JOBS  # streaming stayed bounded
