"""Experiment F1 — Figure 1's instance-transformation chain.

Figure 1 illustrates the three instances (I*, I', I'_1/2) behind the CRP2D
analysis.  The bench materialises all three for a power-of-two instance,
computes their optimal energies plus CRP2D's actual energy, and asserts the
per-step inequalities of Lemmas 4.9, 4.10 and Corollary 4.12 as well as the
end-to-end Theorem 4.13 bound.
"""

import pytest

from repro.analysis.experiments import experiment_figure1
from repro.core.constants import PHI


@pytest.mark.parametrize("alpha", [2.0, 3.0])
@pytest.mark.parametrize("seed", [7, 21])
def test_figure1_chain(benchmark, alpha, seed, save_report):
    report = benchmark.pedantic(
        experiment_figure1,
        kwargs={"alpha": alpha, "n": 12, "seed": seed},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    assert "True" in report.notes[0]

    # the chain multiplies out to the Theorem 4.13 guarantee
    rows = {r[0]: r for r in report.rows}
    overall_factor = rows["overall"][4]
    assert overall_factor <= (4 * PHI) ** alpha * (1 + 1e-9)
    # and each step respects its own lemma
    assert rows["E' (opt of I')"][4] <= PHI**alpha * (1 + 1e-9)
    assert rows["E'_1/2 (opt of I'_1/2)"][4] <= 2.0**alpha * (1 + 1e-9)
    assert rows["E (CRP2D)"][4] <= 2.0**alpha * (1 + 1e-9)
