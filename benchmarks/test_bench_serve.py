"""SERVE — sustained submission throughput, warm daemon vs cold CLI.

The point of ``qbss-serve`` is amortization: one warm
:class:`~repro.engine.session.ExecutionSession` (interpreter, imports,
pool, open cache) answers a stream of submissions, where the CLI pays
full process startup per invocation.  This bench submits the same
workload repeatedly to a live daemon and via cold ``qbss-replay``
subprocesses, records both in jobs/second, and asserts

* the warm path dominates the cold path, and
* every warm submission is byte-identical to the first (the serve
  determinism guarantee, cache off so each one really evaluates).

Writes ``benchmarks/results/serve_throughput.json``; CI uploads the
``benchmarks/results`` JSONs as an artifact.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import Client, QbssServer, ServeConfig
from repro.serve.protocol import encode_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent
N_JOBS = 200
N_SUBMISSIONS = 3
SHARD_WINDOW = 100.0
SEED = 3


def workload_jobs():
    jobs = []
    for i in range(N_JOBS):
        release = i * 2.0
        jobs.append(
            {
                "id": f"j{i}",
                "release": release,
                "deadline": release + 40.0,
                "runtime": 1.0 + (i % 7) * 0.5,
            }
        )
    return jobs


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_bench") / "jobs.jsonl"
    with open(path, "w") as fh:
        for job in workload_jobs():
            fh.write(json.dumps(job) + "\n")
    return path


def run_cold_cli(trace_path):
    """One cold ``qbss-replay`` of the workload in a fresh interpreter."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import replay_main; sys.exit(replay_main(sys.argv[1:]))",
            str(trace_path),
            "--shard-window",
            str(SHARD_WINDOW),
            "--seed",
            str(SEED),
            "--jobs",
            "1",
            "--no-cache",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    return proc


def test_bench_serve_warm_vs_cold_cli(trace_path, results_dir):
    server = QbssServer(
        ServeConfig(
            shard_window=SHARD_WINDOW, seed=SEED, jobs=1, cache=False
        )
    )
    server.start()
    try:
        client = Client("127.0.0.1", server.port, client_id="bench")
        jobs = workload_jobs()
        client.submit(jobs)  # warm the session before timing

        t0 = time.perf_counter()
        results = [client.submit(jobs) for _ in range(N_SUBMISSIONS)]
        warm_wall = time.perf_counter() - t0
    finally:
        server.begin_drain()
        server.drain(timeout=120.0)
        server.stop()

    t0 = time.perf_counter()
    for _ in range(N_SUBMISSIONS):
        run_cold_cli(trace_path)
    cold_wall = time.perf_counter() - t0

    total_jobs = N_JOBS * N_SUBMISSIONS
    warm_rate = total_jobs / warm_wall
    cold_rate = total_jobs / cold_wall

    # determinism: cache is off, every submission truly evaluated, and
    # every response stream is byte-identical to the first
    first = encode_jsonl(results[0].shards)
    for result in results[1:]:
        assert encode_jsonl(result.shards) == first

    payload = {
        "n_jobs_per_submission": N_JOBS,
        "n_submissions": N_SUBMISSIONS,
        "warm_jobs_per_s": round(warm_rate, 2),
        "cold_cli_jobs_per_s": round(cold_rate, 2),
        "speedup": round(warm_rate / cold_rate, 2),
    }
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"[BENCH serve] {json.dumps(payload)}", file=sys.stderr)

    assert warm_rate > cold_rate, (
        f"warm daemon ({warm_rate:.1f} jobs/s) must beat cold CLI "
        f"({cold_rate:.1f} jobs/s)"
    )
