"""Experiment RHO — regenerate the Section 4.2 rho table.

The paper tabulates the three CRCD energy guarantees over
alpha in {1.25, ..., 3}.  The bench recomputes all three (rho3 via the
numeric max-min of Theorem 4.8), checks every cell against the printed
value, and verifies the regime claims (rho1 best below 1.44, rho2 up to 2,
rho3 from 2 on).
"""

from repro.analysis.experiments import experiment_rho
from repro.bounds import rho


def test_rho_table(benchmark, save_report):
    report = benchmark.pedantic(experiment_rho, rounds=1, iterations=1)
    save_report(report)
    print()
    print(report.render())
    assert all(row[-1] for row in report.rows), "a cell disagrees with the paper"


def test_rho_regimes(benchmark):
    def regimes():
        return (
            rho.best_regime(1.30),
            rho.best_regime(1.70),
            rho.best_regime(2.25),
        )

    low, mid, high = benchmark.pedantic(regimes, rounds=1, iterations=1)
    assert low == "rho1"
    assert mid == "rho2"
    assert high == "rho3"


def test_crcd_measured_below_best_rho(benchmark):
    """CRCD's measured worst ratio never exceeds min(rho1, rho2, rho3)."""
    from repro.bounds.adversary import adversarial_ratio
    from repro.qbss.crcd import crcd

    def measure():
        out = {}
        for alpha in (2.0, 2.5, 3.0):
            worst = max(
                adversarial_ratio(crcd, c, w, alpha, "energy").ratio
                for c, w in ((1.0, 2.0), (1.0, 1.6), (0.5, 2.0))
            )
            out[alpha] = worst
        return out

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    for alpha, worst in measured.items():
        assert worst <= rho.best_ratio(alpha) * (1 + 1e-9), (alpha, worst)
