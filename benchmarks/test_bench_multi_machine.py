"""Experiment MM — AVRQ(m) on parallel machines (Section 6).

Measures AVRQ(m) for m in {2, 4, 8} against the Corollary 6.4 bound
``2^alpha (2^{alpha-1} alpha^alpha + 1)``; the fast denominator is the
pooled lower bound (conservative), and a small-instance cross-check uses
the exact convex-programming optimum.
"""

import pytest

from repro.analysis.experiments import experiment_multi
from repro.bounds.formulas import avrq_m_ub_energy
from repro.core.power import PowerFunction
from repro.qbss import avrq_m
from repro.qbss.clairvoyant import clairvoyant
from repro.workloads.generators import multi_machine_instance


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_multi_machine_ratios(benchmark, alpha, save_report):
    report = benchmark.pedantic(
        experiment_multi,
        kwargs={
            "alpha": alpha,
            "n": 16,
            "machine_counts": (2, 4, 8),
            "seeds": (0, 1, 2, 3),
        },
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    assert all(row[-1] for row in report.rows)


def test_oaq_multi_extension(benchmark, save_report):
    from repro.analysis.experiments import experiment_oaq_multi

    report = benchmark.pedantic(
        experiment_oaq_multi,
        kwargs={"alpha": 3.0, "n": 10, "machine_counts": (2, 3), "seeds": (0, 1, 2)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    # recorded empirical claim: replanning beats density-tracking on average
    for row in report.rows:
        assert row[3] <= 1.1


def test_multi_machine_exact_optimum_crosscheck(benchmark):
    """On small instances the exact optimum confirms Corollary 6.4."""

    def run():
        out = []
        for m in (2, 3):
            qi = multi_machine_instance(5, m, seed=7)
            energy = avrq_m(qi).energy(PowerFunction(3.0))
            opt = clairvoyant(qi, alpha=3.0, exact_multi=True).energy_value
            out.append((m, energy / opt))
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for m, ratio in ratios:
        assert 1.0 - 1e-6 <= ratio <= avrq_m_ub_energy(3.0) * (1 + 1e-6), (m, ratio)
