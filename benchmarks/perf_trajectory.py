"""The machine-readable perf trajectory (profile kernel, PR 6; serve, PR 7;
admission-journal overhead, PR 8).

Measures every tracked benchmark twice on the *same* machine and records
the pair in a ``BENCH_*.json`` at the repo root::

    {"<bench>": {"before": <float>, "after": <float>,
                 "unit": "ms" | "shards/s" | "jobs/s", "commit": "<short sha>"}}

For the profile-kernel benches, ``before`` runs with the numpy kernel
disabled (``repro.core.profile_kernel.pure_python()``, i.e. the exact
pre-kernel code path) and ``after`` with it enabled.  The serve bench
compares a different axis: ``before`` is a cold ``qbss-replay`` CLI
subprocess (full interpreter + import + session startup per workload),
``after`` the same workload submitted to a warm ``qbss-serve`` daemon.

``before``/``after`` are best-of-``--repeats`` measurements.  For time
units lower is better and the speedup is ``before / after``; for rate
units (``.../s``) higher is better and the speedup is ``after / before``.

Usage::

    python benchmarks/perf_trajectory.py --record --output BENCH_8.json
    python benchmarks/perf_trajectory.py --check BENCH_8.json  # CI gate

``--check`` re-measures on the current machine and fails (exit 1) when any
bench's speedup drops more than 10% below the committed trajectory
(capped at the 5x acceptance floor, so a faster recording machine does
not turn into an unmeetable bar for CI runners).  Comparing *ratios*
rather than absolute times keeps the gate portable across hardware.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import profile_kernel as pk  # noqa: E402
from repro.core.power import PowerFunction  # noqa: E402
from repro.core.profile import SpeedProfile, sum_profiles  # noqa: E402
from repro.core.qjob import QJob  # noqa: E402
from repro.speed_scaling.yds import yds, yds_profile  # noqa: E402
from repro.workloads.generators import online_instance  # noqa: E402

SPEEDUP_FLOOR = 5.0  # the PR-6 acceptance bar on profile/YDS microbenches
TOLERANCE = 0.90  # --check allows a 10% slide before failing
# Benches whose committed speedup is near 1x (kernel-neutral paths kept to
# prove no regression) sit inside timing noise; they get a wider band.
NOISE_BAND_BELOW = 2.5
NOISE_TOLERANCE = 0.75


def classical(n, seed=0):
    return [j.clairvoyant_job() for j in online_instance(n, seed=seed)]


def dense_profile(n_segments, seed=0):
    rng = random.Random(seed)
    times, speeds, t = [0.0], [], 0.0
    for _ in range(n_segments):
        t += 0.1 + rng.random()
        times.append(t)
        speeds.append(rng.random() * 5.0)
    return SpeedProfile.from_breakpoints(times=times, speeds=speeds)


def qjob_stream(n=120, seed=7):
    rng = random.Random(seed)
    t = 0.0
    for i in range(n):
        t += rng.random() * 60.0
        wu = 10.0 + rng.random() * 200.0
        yield QJob(
            t, t + 500.0 + rng.random() * 2000.0,
            query_cost=min(5.0, wu), work_upper=wu,
            work_true=rng.random() * wu, id=f"q{i}",
        )


# -- the tracked benchmarks ----------------------------------------------------------
#
# Each entry: name -> (unit, before_callable, after_callable[, opts]).
# By default ``before`` runs inside pure_python() (the pre-kernel path)
# and ``after`` runs with the kernel on.  Where the kernel also changed
# the *algorithm* (yds_profile skips EDF, replay shares one clairvoyant
# baseline per shard), ``before`` is the pre-kernel way of computing the
# same artifact.  ``opts`` tunes measurement:
#   "pure_python": False  — the before path is not a kernel toggle (the
#                           serve bench's before is a cold CLI subprocess),
#                           so don't wrap it in pure_python();
#   "count": callable     — item count for rate units (items/second).


def _bench_profile_energy():
    power = PowerFunction(3.0)
    profile = dense_profile(2000)
    # 20 calls per sample: one energy() is ~0.2ms, inside timer noise;
    # the ratio (all --check compares) is unaffected by the batching.
    return lambda: [profile.energy(power) for _ in range(20)]


def _bench_sum_profiles():
    profiles = [dense_profile(8, seed=i).shift(i * 0.37) for i in range(200)]
    return lambda: sum_profiles(profiles)


def _bench_work_in_scan_before():
    profile = dense_profile(500)
    end = profile.end
    qs = [(i * end / 1000, i * end / 1000 + end / 10) for i in range(1000)]
    return lambda: [profile.work_in(lo, hi) for lo, hi in qs]


def _bench_work_in_scan_after():
    profile = dense_profile(500)
    end = profile.end
    starts = [i * end / 1000 for i in range(1000)]
    ends = [s + end / 10 for s in starts]
    return lambda: profile.work_in_many(starts, ends)


def _bench_replay(unit_holder):
    from repro.traces.replay import replay_jobs

    def run():
        report, metrics = replay_jobs(
            qjob_stream(), algorithms=("avrq", "bkpq"), alpha=3.0,
            shard_window=600.0, cache=False,
        )
        unit_holder["shards"] = metrics.shards
        return report

    return run


SERVE_N_JOBS = 200
SERVE_SHARD_WINDOW = 100.0
SERVE_SEED = 3


def _serve_workload():
    jobs = []
    for i in range(SERVE_N_JOBS):
        release = i * 2.0
        jobs.append(
            {
                "id": f"j{i}",
                "release": release,
                "deadline": release + 40.0,
                "runtime": 1.0 + (i % 7) * 0.5,
            }
        )
    return jobs


def _bench_serve(cleanups):
    """(cold CLI callable, warm daemon callable) over the same workload."""
    import os
    import tempfile

    from repro.serve import Client, QbssServer, ServeConfig

    tmp = tempfile.TemporaryDirectory(prefix="qbss-serve-bench-")
    cleanups.append(tmp.cleanup)
    jobs = _serve_workload()
    trace = Path(tmp.name) / "jobs.jsonl"
    trace.write_text("".join(json.dumps(j) + "\n" for j in jobs))

    def cold():
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import replay_main;"
                " sys.exit(replay_main(sys.argv[1:]))",
                str(trace),
                "--shard-window", str(SERVE_SHARD_WINDOW),
                "--seed", str(SERVE_SEED),
                "--jobs", "1",
                "--no-cache",
            ],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"cold qbss-replay failed: {proc.stderr}")

    server = QbssServer(
        ServeConfig(
            shard_window=SERVE_SHARD_WINDOW, seed=SERVE_SEED,
            jobs=1, cache=False,
        )
    )
    server.start()

    def shutdown():
        server.begin_drain()
        server.drain(timeout=120.0)
        server.stop()

    cleanups.append(shutdown)
    client = Client("127.0.0.1", server.port, client_id="perf-trajectory")
    client.submit(jobs)  # warm the session before any timing

    return cold, (lambda: client.submit(jobs))


def _bench_serve_journal(cleanups):
    """(journal-off callable, journal-on callable) — two warm daemons,
    same workload; the ratio is the durability tax of the fsync'd
    admission journal on warm-serve throughput (acceptance: under 5%)."""
    import tempfile

    from repro.serve import Client, QbssServer, ServeConfig

    tmp = tempfile.TemporaryDirectory(prefix="qbss-serve-journal-bench-")
    cleanups.append(tmp.cleanup)
    jobs = _serve_workload()

    def warm_client(journal_dir=None):
        server = QbssServer(
            ServeConfig(
                shard_window=SERVE_SHARD_WINDOW, seed=SERVE_SEED,
                jobs=1, cache=False, journal_dir=journal_dir,
            )
        )
        server.start()

        def shutdown():
            server.begin_drain()
            server.drain(timeout=120.0)
            server.stop()

        cleanups.append(shutdown)
        client = Client("127.0.0.1", server.port, client_id="perf-trajectory")
        client.submit(jobs)  # warm before any timing
        return client

    plain = warm_client()
    journalled = warm_client(Path(tmp.name) / "journal")
    return (lambda: plain.submit(jobs)), (lambda: journalled.submit(jobs))


def build_benches():
    yds_jobs = classical(100)
    clair_jobs = classical(200)
    replay_meta: dict = {}
    cleanups: list = []
    serve_cold, serve_warm = _bench_serve(cleanups)
    journal_off, journal_on = _bench_serve_journal(cleanups)
    return {
        "profile_energy_2000seg": (
            "ms", _bench_profile_energy(), _bench_profile_energy()),
        "sum_profiles_200": (
            "ms", _bench_sum_profiles(), _bench_sum_profiles()),
        "work_in_scan_500x1000": (
            "ms", _bench_work_in_scan_before(), _bench_work_in_scan_after()),
        # Full YDS is EDF-bound (the schedule realisation was out of the
        # kernel's scope) — tracked to prove the kernel did not regress it.
        "yds_100": (
            "ms", lambda: yds(yds_jobs), lambda: yds(yds_jobs)),
        "clairvoyant_profile_200": (
            "ms",
            lambda: yds(clair_jobs).profile,  # pre-kernel: full YDS, then read
            lambda: yds_profile(clair_jobs),  # discovery-only fast path
        ),
        "replay_shards": (
            "shards/s", _bench_replay(replay_meta), _bench_replay(replay_meta),
            {"count": lambda: replay_meta.get("shards", 0) or 1},
        ),
        # Warm daemon vs cold CLI: the before is a subprocess, not a
        # kernel toggle — never wrap it in pure_python().
        "serve_jobs_200": (
            "jobs/s", serve_cold, serve_warm,
            {"pure_python": False, "count": lambda: SERVE_N_JOBS},
        ),
        # The durability tax: before is a journal-off warm daemon, after
        # journal-on — a near-1x "speedup" tracked to keep the fsync'd
        # admission journal under 5% of warm-serve throughput.
        "serve_journal_overhead": (
            "jobs/s", journal_off, journal_on,
            {"pure_python": False, "count": lambda: SERVE_N_JOBS},
        ),
    }, cleanups


def time_once(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def best_of_pair(before_fn, after_fn, repeats, *, toggle_kernel=True):
    """Best-of-``repeats`` for both paths, measured interleaved.

    Interleaving samples the two paths across the *same* wall-clock
    window, so a load spike on a shared machine inflates both minima or
    neither — consecutive-block timing skewed the ratio whenever the
    spike covered exactly one block.
    """
    before_best = after_best = float("inf")
    for _ in range(repeats):
        if toggle_kernel:
            with pk.pure_python():
                before_best = min(before_best, time_once(before_fn))
        else:
            before_best = min(before_best, time_once(before_fn))
        after_best = min(after_best, time_once(after_fn))
    return before_best, after_best


def is_rate(unit: str) -> bool:
    return unit.endswith("/s")


def speedup(entry: dict) -> float:
    if is_rate(entry["unit"]):
        return entry["after"] / entry["before"] if entry["before"] else float("inf")
    return entry["before"] / entry["after"] if entry["after"] else float("inf")


def measure(repeats: int) -> dict:
    benches, cleanups = build_benches()
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=False,
    ).stdout.strip() or "unknown"
    out = {}
    try:
        for name, entry in benches.items():
            unit, before_fn, after_fn = entry[:3]
            opts = entry[3] if len(entry) > 3 else {}
            before_s, after_s = best_of_pair(
                before_fn,
                after_fn,
                repeats,
                toggle_kernel=opts.get("pure_python", True),
            )
            if is_rate(unit):
                count = opts["count"]()
                before, after = count / before_s, count / after_s
            else:
                before, after = before_s * 1e3, after_s * 1e3
            out[name] = {
                "before": round(before, 4),
                "after": round(after, 4),
                "unit": unit,
                "commit": commit,
            }
            print(
                f"{name:28s} before={before:10.3f} after={after:10.3f} {unit:8s}"
                f" speedup={speedup(out[name]):6.2f}x",
                file=sys.stderr,
            )
    finally:
        for cleanup in reversed(cleanups):
            cleanup()
    return out


def cmd_record(path: Path, repeats: int) -> int:
    data = measure(repeats)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)
    return 0


def cmd_check(path: Path, repeats: int) -> int:
    committed = json.loads(path.read_text())
    current = measure(repeats)
    failures = []
    for name, entry in committed.items():
        if name not in current:
            failures.append(f"{name}: missing from current benchmark set")
            continue
        committed_speedup = speedup(entry)
        tolerance = (
            NOISE_TOLERANCE if committed_speedup < NOISE_BAND_BELOW else TOLERANCE
        )
        want = tolerance * min(committed_speedup, SPEEDUP_FLOOR)
        got = speedup(current[name])
        status = "ok" if got >= want else "REGRESSION"
        print(
            f"{name:28s} committed={speedup(entry):6.2f}x"
            f" current={got:6.2f}x (floor {want:5.2f}x) {status}",
            file=sys.stderr,
        )
        if got < want:
            failures.append(
                f"{name}: speedup {got:.2f}x fell below {want:.2f}x"
                f" (committed {speedup(entry):.2f}x)"
            )
    if failures:
        print("perf trajectory check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf trajectory check passed", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--record", action="store_true",
        help="measure and (over)write the trajectory file",
    )
    group.add_argument(
        "--check", metavar="FILE", type=Path,
        help="re-measure and fail on >10%% regression vs FILE",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_8.json",
        help="trajectory file written by --record (default: BENCH_8.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="best-of-N timing repeats (default: 5)",
    )
    args = parser.parse_args(argv)
    if args.record:
        return cmd_record(args.output, args.repeats)
    return cmd_check(args.check, args.repeats)


if __name__ == "__main__":
    sys.exit(main())
