"""PERF — harness performance: throughput of the core algorithms.

Proper pytest-benchmark timing (multiple rounds) of YDS, AVR, BKP, CRCD and
AVRQ at growing instance sizes.  These are the knobs that bound how large
the reproduction experiments can go; regressions here would silently shrink
the feasible experiment sizes.
"""

import pytest

from repro.qbss.avrq import avrq
from repro.qbss.crcd import crcd
from repro.speed_scaling.avr import avr_profile
from repro.speed_scaling.bkp import bkp_profile
from repro.speed_scaling.yds import yds
from repro.workloads.generators import common_deadline_instance, online_instance


def classical(n, seed=0):
    qi = online_instance(n, seed=seed)
    return [j.clairvoyant_job() for j in qi]


@pytest.mark.parametrize("n", [20, 50, 100])
def test_perf_yds(benchmark, n):
    jobs = classical(n)
    result = benchmark(yds, jobs)
    assert result.profile.total_work() > 0


@pytest.mark.parametrize("n", [50, 200])
def test_perf_avr_profile(benchmark, n):
    jobs = classical(n)
    profile = benchmark(avr_profile, jobs)
    assert not profile.is_empty


@pytest.mark.parametrize("n", [20, 50])
def test_perf_bkp_profile(benchmark, n):
    jobs = classical(n)
    profile = benchmark(bkp_profile, jobs)
    assert not profile.is_empty


@pytest.mark.parametrize("n", [50, 200])
def test_perf_crcd(benchmark, n):
    qi = common_deadline_instance(n, seed=1)
    result = benchmark(crcd, qi)
    assert result.max_speed() > 0


@pytest.mark.parametrize("n", [20, 50])
def test_perf_avrq_end_to_end(benchmark, n):
    qi = online_instance(n, seed=2)
    result = benchmark(avrq, qi)
    assert result.max_speed() > 0
