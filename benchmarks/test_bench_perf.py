"""PERF — harness performance: throughput of the core algorithms.

Proper pytest-benchmark timing (multiple rounds) of YDS, AVR, BKP, CRCD and
AVRQ at growing instance sizes.  These are the knobs that bound how large
the reproduction experiments can go; regressions here would silently shrink
the feasible experiment sizes.
"""

import pytest

from repro.core.power import PowerFunction
from repro.core.profile import SpeedProfile, sum_profiles
from repro.qbss.avrq import avrq
from repro.qbss.crcd import crcd
from repro.speed_scaling.avr import avr_profile
from repro.speed_scaling.bkp import bkp_profile
from repro.speed_scaling.yds import yds, yds_profile
from repro.workloads.generators import common_deadline_instance, online_instance


def classical(n, seed=0):
    qi = online_instance(n, seed=seed)
    return [j.clairvoyant_job() for j in qi]


@pytest.mark.parametrize("n", [20, 50, 100])
def test_perf_yds(benchmark, n):
    jobs = classical(n)
    result = benchmark(yds, jobs)
    assert result.profile.total_work() > 0


@pytest.mark.parametrize("n", [50, 200])
def test_perf_avr_profile(benchmark, n):
    jobs = classical(n)
    profile = benchmark(avr_profile, jobs)
    assert not profile.is_empty


@pytest.mark.parametrize("n", [20, 50])
def test_perf_bkp_profile(benchmark, n):
    jobs = classical(n)
    profile = benchmark(bkp_profile, jobs)
    assert not profile.is_empty


@pytest.mark.parametrize("n", [50, 200])
def test_perf_crcd(benchmark, n):
    qi = common_deadline_instance(n, seed=1)
    result = benchmark(crcd, qi)
    assert result.max_speed() > 0


@pytest.mark.parametrize("n", [20, 50])
def test_perf_avrq_end_to_end(benchmark, n):
    qi = online_instance(n, seed=2)
    result = benchmark(avrq, qi)
    assert result.max_speed() > 0


# -- profile-kernel microbenchmarks (PR 6) ------------------------------------------
#
# The numpy breakpoint-array kernel (repro.core.profile_kernel) vectorises
# the SpeedProfile hot path; these pin its throughput on the shapes that
# dominate the replay and experiment workloads.  The before/after
# trajectory vs the pure-Python reference lives in BENCH_6.json
# (benchmarks/perf_trajectory.py).


def _dense_profile(n_segments, seed=0):
    import random

    rng = random.Random(seed)
    times, speeds, t = [0.0], [], 0.0
    for _ in range(n_segments):
        t += 0.1 + rng.random()
        times.append(t)
        speeds.append(rng.random() * 5.0)
    return SpeedProfile.from_breakpoints(times=times, speeds=speeds)


@pytest.mark.parametrize("n", [100, 200])
def test_perf_yds_profile(benchmark, n):
    """Discovery-only clairvoyant profile (skips EDF/Schedule entirely)."""
    jobs = classical(n)
    profile = benchmark(yds_profile, jobs)
    assert not profile.is_empty


@pytest.mark.parametrize("n", [200])
def test_perf_sum_profiles(benchmark, n):
    """The AVR hotspot: pointwise sum of many overlapping profiles."""
    profiles = [_dense_profile(8, seed=i).shift(i * 0.37) for i in range(n)]
    total = benchmark(sum_profiles, profiles)
    assert not total.is_empty


@pytest.mark.parametrize("n", [2000])
def test_perf_profile_energy(benchmark, n):
    power = PowerFunction(3.0)
    profile = _dense_profile(n)
    value = benchmark(profile.energy, power)
    assert value > 0


@pytest.mark.parametrize("segments,queries", [(500, 1000)])
def test_perf_work_in_many(benchmark, segments, queries):
    """Batched interval queries — the per-shard ratio workload shape."""
    profile = _dense_profile(segments)
    end = profile.end
    starts = [i * end / queries for i in range(queries)]
    ends = [s + end / 10 for s in starts]
    out = benchmark(profile.work_in_many, starts, ends)
    assert len(out) == queries
