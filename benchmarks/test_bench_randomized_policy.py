"""RAND — randomized query policies beyond the Lemma 4.4 game.

Monte Carlo over coin seeds: for each fixed query probability rho, the
expected BKPQ energy ratio on random streams; the deterministic golden rule
as reference.  On this uncertainty model (c uniform up to w) blind querying
frequently backfires — c + w* often exceeds w — so the expected ratio
*degrades* as rho grows; the reproduction shape is that the adaptive golden
rule beats every fixed coin in expectation, from both directions.
"""

from repro.analysis.experiments import experiment_randomized_policy


def test_randomized_policy(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_randomized_policy,
        kwargs={
            "alpha": 3.0,
            "n": 16,
            "seeds": (0, 1, 2),
            "rhos": (0.0, 0.25, 0.5, 0.75, 1.0),
            "coin_seeds": (0, 1, 2, 3, 4),
        },
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())

    by_rho = {row[0]: row[1] for row in report.rows}
    golden = by_rho.pop("golden rule")
    # blind querying degrades with rho on this uncertainty model
    assert by_rho[1.0] >= by_rho[0.0]
    # the adaptive golden rule beats every fixed coin in expectation
    assert golden <= min(by_rho.values()) * (1 + 1e-6)
