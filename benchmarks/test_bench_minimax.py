"""MINIMAX — the best possible two-phase policy vs CRCD.

Solves the exact common-window minimax game on representative instances
and reports CRCD's gap.  Reproduction shape: on the paper's lower-bound
instances CRCD is (near-)minimax-optimal — its guarantees are not an
artifact of weak analysis — while on heterogeneous instances an
instance-tuned policy can do better, confirming the equal window is a
worst-case choice, not a pointwise one.
"""

from repro.analysis.experiments import experiment_minimax


def test_crcd_design_space(benchmark, save_report):
    """AB-CRCD — the (x, lam) plane around the paper's Algorithm 1."""
    from repro.analysis.experiments import experiment_crcd_design_space

    report = benchmark.pedantic(
        experiment_crcd_design_space,
        kwargs={"alpha": 3.0, "n": 12, "seeds": (0, 1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    by_point = {(row[0], row[1]): row[2] for row in report.rows}
    centre = by_point[(0.5, 0.5)]
    # the paper's point is within 25% of the best grid point on the
    # measured worst case — the equal split is a robust default
    best = min(by_point.values())
    assert centre <= best * 1.25


def test_minimax_vs_crcd(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_minimax, kwargs={"alpha": 3.0}, rounds=1, iterations=1
    )
    save_report(report)
    print()
    print(report.render())

    by_label = {row[0]: row for row in report.rows}
    # CRCD can never beat the minimax optimum (it IS a point of the space)
    for row in report.rows:
        assert row[5] >= 1.0 - 1e-6
    # on the Lemma 4.3 instance CRCD is minimax-optimal up to grid slack
    assert by_label["lemma 4.3 (c=1, w=2)"][5] <= 1.1
    # the single-job minimax values meet the paper's lower bounds
    assert by_label["lemma 4.3 (c=1, w=2)"][1] >= 2.0 ** (3.0 - 1.0) - 1e-6
    assert by_label["golden boundary (c=1, w=phi)"][1] >= 1.618**3.0 - 1e-2
