"""Experiment T1 — regenerate Table 1 (the paper's summary of results).

For each algorithm the bench reports the paper's lower/upper bound next to
the ratio measured on random instances of the algorithm's setting and on
the paper's adversarial construction, and asserts every measured ratio sits
below the claimed upper bound (the reproduction criterion: the *ordering*
and bounds of Table 1 hold for the shipped implementations).
"""

import pytest

from repro.analysis.experiments import experiment_table1


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_table1(benchmark, alpha, save_report):
    report = benchmark.pedantic(
        experiment_table1,
        kwargs={"alpha": alpha, "n": 16, "seeds": (0, 1, 2, 3, 4)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    # every algorithm row stays within its paper upper bound
    assert all(row[-1] for row in report.rows)
    # the adversarial column reaches at least the deterministic LB for CRCD
    crcd_row = next(r for r in report.rows if r[1] == "CRCD")
    assert crcd_row[5] >= 2.0 ** (alpha - 1.0) - 1e-6
