"""SLEEP (static power / race-to-idle) and SLACK (window slack) ablations."""

from repro.analysis.experiments import experiment_sleep, experiment_slack_sweep


def test_sleep_ablation(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_sleep,
        kwargs={
            "alpha": 3.0,
            "n": 14,
            "seeds": (0, 1, 2),
            "leakages": (0.0, 0.1, 0.5, 2.0, 8.0, 32.0),
        },
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    savings = [row[2] for row in report.rows]
    crit = [row[1] for row in report.rows]
    # no leakage -> no savings; savings and critical speed grow with leakage
    assert abs(savings[0] - 1.0) < 1e-9
    assert all(a <= b + 1e-9 for a, b in zip(savings, savings[1:]))
    assert all(a <= b + 1e-12 for a, b in zip(crit, crit[1:]))
    # with heavy leakage race-to-idle saves substantially
    assert savings[-1] > 1.2


def test_slack_sweep(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_slack_sweep,
        kwargs={
            "alpha": 3.0,
            "n": 14,
            "seeds": (0, 1, 2, 3),
            "slack_factors": (1.0, 2.0, 4.0, 8.0),
        },
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    oaq_col = [row[3] for row in report.rows]
    # replanning exploits slack: OAQ's mean ratio does not degrade with it
    assert oaq_col[-1] <= oaq_col[0] * 1.25
    # every mean ratio is a genuine ratio
    for row in report.rows:
        assert all(v >= 1.0 - 1e-9 for v in row[1:])
