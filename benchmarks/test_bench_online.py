"""Experiment ONL — online algorithms vs the Section 5 bounds.

Measures AVRQ/BKPQ (and OAQ) on random online streams across alpha and
asserts the shape the paper proves: both stay below their competitive upper
bounds, and the qualitative ordering — OAQ <= AVRQ on typical inputs, BKPQ
carrying its e^alpha constant — is stable.
"""

import pytest

from repro.analysis.experiments import experiment_online
from repro.analysis.sweep import alpha_sweep
from repro.bounds.formulas import avrq_ub_energy, bkpq_ub_energy
from repro.qbss import avrq, bkpq
from repro.workloads.generators import online_instance


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_online_ratios(benchmark, alpha, save_report):
    report = benchmark.pedantic(
        experiment_online,
        kwargs={"alpha": alpha, "n": 16, "seeds": tuple(range(8))},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    assert all(row[-1] for row in report.rows)
    by_name = {row[0]: row for row in report.rows}
    # OAQ empirically dominates AVRQ on random streams (recorded claim)
    assert by_name["OAQ (ext.)"][1] <= by_name["AVRQ"][1] * (1 + 1e-9)


def test_online_alpha_sweep(benchmark):
    """Measured ratios grow with alpha but stay under the alpha-indexed UBs."""
    instances = [online_instance(12, seed=s) for s in range(4)]
    alphas = [1.5, 2.0, 2.5, 3.0]

    def run():
        return {
            "AVRQ": alpha_sweep(avrq, instances, alphas),
            "BKPQ": alpha_sweep(bkpq, instances, alphas),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, ub in (("AVRQ", avrq_ub_energy), ("BKPQ", bkpq_ub_energy)):
        for point in sweeps[name]:
            assert point.summary.max_energy_ratio <= ub(point.parameter) * (
                1 + 1e-9
            )
