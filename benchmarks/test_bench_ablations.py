"""Ablation benches: the design choices DESIGN.md calls out.

* AB-SPLIT — the equal-window split (x = 1/2) versus other fixed splits,
  the choice motivated by Lemma 4.3's two-sided argument;
* AB-QP — the golden-ratio query threshold versus never/other thresholds,
  the choice motivated by Lemma 3.1;
* AB-OAQ — the OAQ extension (Section 7's open question) vs AVRQ/BKPQ.
"""

from repro.analysis.experiments import (
    experiment_oaq_extension,
    experiment_query_policy_ablation,
    experiment_split_ablation,
)


def test_split_ablation(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_split_ablation,
        kwargs={
            "alpha": 3.0,
            "n": 12,
            "seeds": (0, 1, 2, 3),
            "x_values": (0.1, 0.25, 0.5, 0.75, 0.9),
        },
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    by_x = {row[0]: row[1] for row in report.rows}
    # x = 1/2 beats both extreme splits (the equal-window motivation)
    assert by_x["0.5"] <= by_x["0.1"]
    assert by_x["0.5"] <= by_x["0.9"]
    # recorded finding: the c-aware proportional split wins on distributions
    assert by_x["proportional"] <= by_x["0.5"] * (1 + 1e-9)


def test_query_policy_ablation(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_query_policy_ablation,
        kwargs={"alpha": 3.0, "n": 20, "seeds": (0, 1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    # on scenarios where queries usually pay off, never-querying loses to
    # the golden rule on every scenario
    for scenario in {row[0] for row in report.rows}:
        rows = {row[1]: row[3] for row in report.rows if row[0] == scenario}
        assert rows["golden (phi)"] <= rows["never"] * (1 + 1e-9)


def test_oaq_extension(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_oaq_extension,
        kwargs={"alpha": 3.0, "n": 16, "seeds": (0, 1, 2, 3, 4, 5)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    # recorded empirical claim: OAQ's mean ratio beats AVRQ's on every workload
    for workload in {row[0] for row in report.rows}:
        rows = {row[1]: row[3] for row in report.rows if row[0] == workload}
        assert rows["OAQ"] <= rows["AVRQ"] * (1 + 1e-9)
