"""Benchmark-suite helpers.

Every bench regenerates one paper artifact through the experiment registry,
asserts its reproduction criteria (measured <= paper UB, adversarial >=
paper LB trajectory, table values match) and saves the rendered table under
``benchmarks/results/`` so EXPERIMENTS.md can quote real output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Persist a rendered ExperimentReport; returns the path."""

    def _save(report) -> pathlib.Path:
        path = results_dir / f"{report.id.lower()}.txt"
        existing = path.read_text() if path.exists() else ""
        block = report.render() + "\n\n"
        if report.render() not in existing:
            path.write_text(existing + block)
        return path

    return _save
