"""AB-MIG (cost of forbidding migration) and CLB (classical LB families).

AB-MIG quantifies the paper's Sec. 7 remark about the non-migratory
variant; CLB shows the classical AVR/OA adversarial families Lemma 5.1
extends, growing towards alpha^alpha.
"""

from repro.analysis.experiments import (
    experiment_classical_lb_families,
    experiment_migration_ablation,
)


def test_migration_ablation(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_migration_ablation,
        kwargs={"alpha": 3.0, "n": 14, "machine_counts": (2, 4), "seeds": (0, 1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    for row in report.rows:
        mean_rel = row[3]
        # pinning never helps (same derived jobs, fewer degrees of freedom)
        assert mean_rel >= 1.0 - 1e-6
        # and on these workloads the price is bounded (regression guard)
        assert mean_rel <= 50.0


def test_classical_lb_families(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_classical_lb_families,
        kwargs={"alpha": 3.0, "levels": (4, 8, 16, 32)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    one_sided = [row[1] for row in report.rows]
    oa_ratios = [row[4] for row in report.rows]
    # trajectories grow towards the alpha^alpha targets, never beyond the UBs
    assert all(a < b for a, b in zip(one_sided, one_sided[1:]))
    assert all(a < b for a, b in zip(oa_ratios, oa_ratios[1:]))
    assert all(row[4] <= row[5] * (1 + 1e-9) for row in report.rows)
