"""ENGINE — the result cache earns its keep.

Times the experiment engine cold (everything recomputed) against warm
(everything served from the content-addressed cache).  The warm pass must
come in well under the ISSUE acceptance bound of 20% of cold wall time —
in practice it is orders of magnitude faster, since a hit is one small
JSON read.  Also times ``map_measure`` fan-out so pool overhead stays
visible in the bench results.
"""

import time

from repro.engine import map_measure, run_experiments
from repro.workloads.generators import online_instance

NAMES = ["lemma42", "lemma43", "lemma44", "rho", "figure1"]


def test_bench_warm_cache_under_20_percent_of_cold(tmp_path):
    t0 = time.perf_counter()
    cold = run_experiments(NAMES, jobs=1, cache_dir=tmp_path)
    cold_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_experiments(NAMES, jobs=1, cache_dir=tmp_path)
    warm_wall = time.perf_counter() - t0

    assert cold.misses == len(NAMES) and warm.hits == len(NAMES)
    assert warm_wall < 0.2 * cold_wall, (
        f"warm {warm_wall:.3f}s not under 20% of cold {cold_wall:.3f}s"
    )
    for a, b in zip(cold.reports, warm.reports):
        assert a.render() == b.render()


def test_bench_cold_run(benchmark, tmp_path):
    counter = iter(range(10**6))

    def cold():
        return run_experiments(
            ["lemma42", "rho"], jobs=1, cache_dir=tmp_path / str(next(counter))
        )

    result = benchmark(cold)
    assert result.misses == 2


def test_bench_warm_run(benchmark, tmp_path):
    run_experiments(["lemma42", "rho"], jobs=1, cache_dir=tmp_path)  # prime

    def warm():
        return run_experiments(["lemma42", "rho"], jobs=1, cache_dir=tmp_path)

    result = benchmark(warm)
    assert result.hits == 2


def test_bench_map_measure_pool(benchmark):
    instances = [online_instance(12, seed=s) for s in range(8)]

    def fan_out():
        return map_measure("avrq", instances, alpha=3.0, jobs=4)

    measurements = benchmark.pedantic(fan_out, rounds=3, iterations=1)
    assert len(measurements) == len(instances)
    assert all(m.energy_ratio >= 1.0 for m in measurements)
