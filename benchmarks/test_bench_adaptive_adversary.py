"""ADV-SEARCH — adaptive adversary vs the online algorithms.

The greedy adaptive construction (the empirical face of the paper's
adversarial lower-bound arguments): the found worst-case ratios must exceed
the random-workload maxima by a wide margin yet respect every proven upper
bound.
"""

from repro.analysis.experiments import experiment_adaptive_adversary


def test_adaptive_adversary(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_adaptive_adversary,
        kwargs={"alpha": 3.0, "steps": 5},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    assert all(row[-1] for row in report.rows)
    by_name = {row[0]: row[1] for row in report.rows}
    # adaptivity dominates random sampling (ONL maxima are ~5.7 / ~51 / ~2.3)
    assert by_name["AVRQ"] > 10.0
    assert by_name["BKPQ"] > 100.0
    assert by_name["OAQ (ext.)"] > 5.0
