"""DVFS — discrete speed levels ablation.

The paper's power model is continuous; real CPUs have finite DVFS states.
The bench measures the energy penalty of emulating the continuous AVRQ and
clairvoyant profiles with geometric speed ladders of growing size, next to
the closed-form one-rung worst case.  Reproduction shape: penalties
decrease monotonically in the level count and approach 1.
"""

from repro.analysis.experiments import experiment_discretization


def test_dvfs_ablation(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_discretization,
        kwargs={
            "alpha": 3.0,
            "n": 14,
            "seeds": (0, 1, 2),
            "level_counts": (2, 3, 5, 8, 16),
        },
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    avrq_pen = [row[1] for row in report.rows]
    opt_pen = [row[2] for row in report.rows]
    # more levels never hurt, and every penalty is a true overhead (>= 1)
    assert all(a >= b - 1e-9 for a, b in zip(avrq_pen, avrq_pen[1:]))
    assert all(p >= 1.0 - 1e-12 for p in avrq_pen + opt_pen)
    # a 16-level ladder over a 16x range is near-free
    assert avrq_pen[-1] <= 1.1
