"""FAULTS — the hardened driver must be (nearly) free when nothing fails.

Times :func:`repro.engine.execute_hardened` (retry policy armed, no
faults injected) against a bare loop over the *same* worker bodies, on a
clean 1000-task batch.  The delta is the bookkeeping cost of the
fault-tolerance machinery — per-attempt wall tracking, retry/backoff
decisions, outcome settling — which the ISSUE targets at under 2% of
batch wall time.  The assertion bound is deliberately looser (15%) so CI
scheduling noise cannot flake the suite; the measured figure is recorded
under ``benchmarks/results/`` for eyeballing the real margin.
"""

import math
import time

from repro.engine import HardenedTask, RetryPolicy, execute_hardened

N_TASKS = 1000
ROUNDS = 3
KERNEL_ITERS = 4000  # ~0.3 ms/task, the low end of a real experiment

#: Assertion guard, intentionally far above the 2% design target: the
#: bench runs on shared CI workers where a single descheduling blip on a
#: ~100 microsecond task is itself worth several percent.
GUARD = 0.15


def _work(index, attempt):
    """One synthetic experiment: a deterministic ~0.3 ms float kernel."""
    t0 = time.perf_counter()
    acc = 0.0
    x = float(index % 97) + 1.0
    for i in range(1, KERNEL_ITERS):
        acc += math.sqrt(x * i) / i
    return {"ok": True, "payload": acc, "wall": time.perf_counter() - t0}


def _bare_batch():
    """The unhardened reference: same worker, plain loop, same sink."""
    sink = []
    for i in range(N_TASKS):
        outcome = _work(i, 1)
        sink.append(outcome["payload"])
    return sink


class _BenchTask(HardenedTask):
    __slots__ = ("index",)

    def __init__(self, index):
        super().__init__(f"bench:{index}")
        self.index = index


def _hardened_batch():
    sink = []
    stats = execute_hardened(
        (_BenchTask(i) for i in range(N_TASKS)),
        worker=_work,
        payload=lambda task: (task.index,),
        on_success=lambda task, outcome, degraded: sink.append(
            outcome["payload"]
        ),
        on_failure=lambda task, kind, error: sink.append(None),
        jobs=1,
        retry=RetryPolicy(max_attempts=3),
    )
    assert stats.retries == 0 and not stats.degraded
    return sink


def _best_of(fn, rounds=ROUNDS):
    best = math.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_hardened_overhead_on_clean_batch(results_dir):
    _bare_batch(), _hardened_batch()  # warm caches / allocator
    bare_wall, bare = _best_of(_bare_batch)
    hard_wall, hard = _best_of(_hardened_batch)

    assert hard == bare  # identical results, identical order
    overhead = (hard_wall - bare_wall) / bare_wall
    (results_dir / "faults_overhead.txt").write_text(
        "hardened-driver overhead, clean serial batch "
        f"({N_TASKS} tasks, best of {ROUNDS})\n"
        f"bare loop:        {bare_wall * 1e3:9.3f} ms\n"
        f"execute_hardened: {hard_wall * 1e3:9.3f} ms\n"
        f"overhead:         {overhead * 100:9.2f} %  (design target < 2%)\n"
    )
    assert overhead < GUARD, (
        f"hardened driver overhead {overhead * 100:.2f}% exceeds the "
        f"{GUARD * 100:.0f}% regression guard "
        f"(bare {bare_wall:.4f}s vs hardened {hard_wall:.4f}s)"
    )
