"""Experiments L41-L51 — the paper's lower-bound lemmas, executed.

Each bench builds the lemma's adversarial instance (or game), runs the
relevant real implementation against it, and asserts the claimed bound is
achieved (up to the eps the lemma itself carries).
"""

import pytest

from repro.analysis.experiments import (
    experiment_lemma41,
    experiment_lemma42,
    experiment_lemma43,
    experiment_lemma44,
    experiment_lemma45,
    experiment_lemma51,
)
from repro.core.constants import PHI


def test_lemma41_never_query_diverges(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_lemma41,
        kwargs={"alpha": 3.0, "eps_values": (0.2, 0.1, 0.05, 0.01)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    # measured == predicted 1/(2 eps), and it diverges monotonically
    speed_ratios = [row[2] for row in report.rows]
    assert speed_ratios == sorted(speed_ratios)
    assert speed_ratios[-1] >= 50.0 - 1e-6
    for row in report.rows:
        assert row[1] == pytest.approx(row[2], rel=1e-6)  # speed
        assert row[3] == pytest.approx(row[4], rel=1e-6)  # energy


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_lemma42_oracle_bound(benchmark, alpha, save_report):
    report = benchmark.pedantic(
        experiment_lemma42, kwargs={"alpha": alpha}, rounds=1, iterations=1
    )
    save_report(report)
    print()
    print(report.render())
    assert all(row[-1] for row in report.rows)
    by_obj = {row[0]: row for row in report.rows}
    assert by_obj["max_speed"][2] == pytest.approx(PHI, rel=1e-6)
    assert by_obj["energy"][2] == pytest.approx(PHI**alpha, rel=1e-6)


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_lemma43_deterministic_bound(benchmark, alpha, save_report):
    report = benchmark.pedantic(
        experiment_lemma43, kwargs={"alpha": alpha}, rounds=1, iterations=1
    )
    save_report(report)
    print()
    print(report.render())
    by_obj = {row[0]: row for row in report.rows}
    # the best possible decision still pays the claimed bound ...
    assert by_obj["max_speed"][2] >= 2.0 - 1e-6
    assert by_obj["energy"][2] >= 2.0 ** (alpha - 1.0) - 1e-6
    # ... and the real CRCD is pinned between LB and its UB
    assert by_obj["max_speed"][5] >= 2.0 - 1e-9
    assert by_obj["energy"][5] >= 2.0 ** (alpha - 1.0) - 1e-9


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_lemma44_randomized_bound(benchmark, alpha, save_report):
    report = benchmark.pedantic(
        experiment_lemma44, kwargs={"alpha": alpha}, rounds=1, iterations=1
    )
    save_report(report)
    print()
    print(report.render())
    assert all(row[-1] for row in report.rows)


def test_lemma45_equal_window_bound(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_lemma45,
        kwargs={"alpha": 3.0, "eps_values": (1e-2, 1e-4, 1e-6)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    last = report.rows[-1]
    assert last[2] >= 3.0 - 1e-3  # class LB approaches 3
    assert last[3] >= 3.0 - 1e-3  # AVRQ realises it
    assert last[5] >= 9.0 - 1e-2  # energy 3^{alpha-1}


def test_lemma51_avrq_tower(benchmark, save_report):
    report = benchmark.pedantic(
        experiment_lemma51,
        kwargs={"alpha": 3.0, "levels": (2, 4, 8, 16, 24)},
        rounds=1,
        iterations=1,
    )
    save_report(report)
    print()
    print(report.render())
    ratios = [row[1] for row in report.rows]
    # the trajectory grows towards the asymptotic (2 alpha)^alpha claim
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] >= 5 * ratios[0]
    # and never crosses the paper's upper bound
    assert all(row[1] <= row[3] * (1 + 1e-9) for row in report.rows)
