#!/usr/bin/env python
"""End-to-end smoke of the ``qbss-serve`` daemon lifecycle.

Launches the real console entry point as a subprocess, submits 100 jobs
through the typed client, scrapes ``/metrics``, sends SIGTERM under a
freshly-submitted load, and asserts

* the daemon exits 0 (graceful drain),
* every admitted job was completed (``admitted == completed`` on the
  final scrape is checked indirectly: the last submission's response
  arrives *before* the exit, because drain flushes in-flight batches),
* post-drain submissions are rejected with a structured ``draining`` /
  connection-level error, never a hang.

Exit code 0 = all assertions held.  Used by the CI serve job; also
runnable locally: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import Client, ServeClientError  # noqa: E402

N_JOBS = 100
SHARD_WINDOW = 50.0


def wait_for_port_file(path: Path, proc: subprocess.Popen, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died during startup (exit {proc.returncode})"
            )
        if path.exists() and path.read_text().strip():
            host, _, port = path.read_text().strip().rpartition(":")
            return host, int(port)
        time.sleep(0.05)
    raise RuntimeError("daemon did not write its port file in time")


def jobs(n: int = N_JOBS):
    out = []
    for i in range(n):
        release = i * 1.0
        out.append(
            {
                "id": f"smoke{i}",
                "release": release,
                "deadline": release + 25.0,
                "runtime": 1.0 + (i % 5) * 0.5,
            }
        )
    return out


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="qbss-serve-smoke-"))
    port_file = tmp / "port"
    log_path = tmp / "serve.log"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.cli",
                "--bind", "127.0.0.1:0",
                "--port-file", str(port_file),
                "--shard-window", str(SHARD_WINDOW),
                "--seed", "3",
                "--jobs", "1",
                "--cache-dir", str(tmp / "cache"),
            ],
            env=env,
            cwd=REPO_ROOT,
            stderr=log,
        )
    try:
        host, port = wait_for_port_file(port_file, proc)
        client = Client(host, port, client_id="smoke")

        health = client.healthz()
        assert health["status"] == "ok", health

        result = client.submit(jobs())
        assert result.ok, result.failed_shards
        assert result.summary["n_jobs"] == N_JOBS, result.summary
        print(
            f"smoke: {N_JOBS} jobs -> {result.n_shards} shards, "
            f"avrq ratios {['%.3f' % r for r in result.ratios_for('avrq')][:3]}..."
        )

        samples = client.metrics()
        admitted = samples[("qbss_serve_jobs_admitted_total", ())]
        completed = samples[("qbss_serve_jobs_completed_total", ())]
        assert admitted == completed == float(N_JOBS), (admitted, completed)
        assert samples[("qbss_serve_queue_depth", ())] == 0.0

        # drain under load: submit again, SIGTERM while the daemon is
        # warm, and require the flushed response *and* a clean exit
        second = client.submit(jobs())
        proc.send_signal(signal.SIGTERM)
        try:
            # Signal-handler latency is bounded (~0.5s poll in the CLI)
            # but nonzero: retry until the daemon rejects, then require a
            # structured 503 or a closed listener — never a hang.
            rejected = False
            client_late = Client(host, port, client_id="late", timeout=10.0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    client_late.submit(jobs(2))
                except (ServeClientError, OSError):
                    rejected = True  # structured 503 or listener down
                    break
                time.sleep(0.1)
            assert rejected, "post-SIGTERM submissions kept being admitted"
        finally:
            exit_code = proc.wait(timeout=60.0)
        assert exit_code == 0, f"daemon exited {exit_code}"
        assert second.summary["n_jobs"] == N_JOBS
        assert json.dumps(second.shards, sort_keys=True) == json.dumps(
            result.shards, sort_keys=True
        ), "drain-time submission diverged from the first"
        print("smoke: graceful drain ok (exit 0, responses flushed)")
        log_text = log_path.read_text()
        assert "drained cleanly" in log_text, log_text
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        sys.stderr.write(log_path.read_text())


if __name__ == "__main__":
    sys.exit(main())
