#!/usr/bin/env python
"""End-to-end smoke of the remote execution backend.

Starts two real ``qbss-worker`` processes (port-file handshake on
127.0.0.1:0), then runs the ``qbss-replay`` console entry point three
times over the same generated trace and asserts

* ``--backend serial`` and ``--backend remote:@w0,@w1`` serialize
  byte-identical replay reports (``--output`` JSON compared as bytes),
* the remote run under a ``QBSS_FAULT_PLAN`` that SIGKILLs the worker
  evaluating shard 1 on its first attempt *still* produces the same
  bytes — the link failure becomes a transient crash outcome and the
  retry lands on the surviving worker,
* exactly one worker actually died under the kill plan (the fault was
  injected remotely, not simulated driver-side).

Worker stderr logs land in ``backends-smoke-artifacts/`` so the CI
``backends`` job can upload them on failure.  Exit code 0 = all
assertions held.  Also runnable locally:
``python scripts/backends_smoke.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec  # noqa: E402

ARTIFACTS = REPO_ROOT / "backends-smoke-artifacts"
SHARD_WINDOW = 2.0


def write_trace(path: Path) -> None:
    """A release-sorted CSV spanning five 2.0-wide shard windows."""
    lines = ["release,deadline,runtime"]
    for i in range(18):
        release = i * 0.5
        lines.append(f"{release},{release + 4.0},1.25")
    path.write_text("\n".join(lines) + "\n")


def start_worker(name: str, env: dict) -> tuple[subprocess.Popen, Path]:
    port_file = ARTIFACTS / f"{name}.port"
    log = open(ARTIFACTS / f"{name}.log", "w")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine.backends.worker",
            "--bind", "127.0.0.1:0",
            "--port-file", str(port_file),
            "--no-cache",
        ],
        env=env,
        cwd=REPO_ROOT,
        stderr=log,
    )
    return proc, port_file


def wait_for_port_file(path: Path, proc: subprocess.Popen, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"worker died during startup (exit {proc.returncode})")
        if path.exists() and path.read_text().strip():
            return
        time.sleep(0.05)
    raise RuntimeError("worker did not write its port file in time")


def run_replay(trace: Path, out: Path, backend: str, env: dict) -> None:
    subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.cli import _replay_main; import sys; "
            "sys.exit(_replay_main(sys.argv[1:]))",
            str(trace),
            "--shard-window", str(SHARD_WINDOW),
            "--jobs", "2",
            "--no-cache",
            "--backend", backend,
            "--output", str(out),
        ],
        env=env,
        cwd=REPO_ROOT,
        check=True,
        stdout=subprocess.DEVNULL,
    )


def main() -> int:
    ARTIFACTS.mkdir(exist_ok=True)
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop(FAULT_PLAN_ENV, None)
    trace = ARTIFACTS / "trace.csv"
    write_trace(trace)

    run_replay(trace, ARTIFACTS / "serial.json", "serial", env)
    serial = (ARTIFACTS / "serial.json").read_bytes()

    workers = [start_worker(f"w{i}", env) for i in range(2)]
    try:
        for proc, port_file in workers:
            wait_for_port_file(port_file, proc)
        spec = "remote:" + ",".join(f"@{pf}" for _, pf in workers)

        run_replay(trace, ARTIFACTS / "remote.json", spec, env)
        assert (ARTIFACTS / "remote.json").read_bytes() == serial, (
            "remote replay diverged from serial"
        )
        print("smoke: serial and remote reports byte-identical")

        # Same run, but the worker that picks up shard 1 is SIGKILLed on
        # its first attempt; the retry must land on the survivor and the
        # report must not change by a byte.
        plan = FaultPlan((FaultSpec(task="shard:1", kind="kill", attempt=1),))
        kill_env = dict(env, **{FAULT_PLAN_ENV: plan.to_json()})
        run_replay(trace, ARTIFACTS / "remote-kill.json", spec, kill_env)
        assert (ARTIFACTS / "remote-kill.json").read_bytes() == serial, (
            "kill-mid-shard remote replay diverged from serial"
        )
        time.sleep(0.2)  # let the SIGKILL'd worker get reaped
        dead = [proc for proc, _ in workers if proc.poll() is not None]
        assert len(dead) == 1, (
            f"expected exactly one killed worker, found {len(dead)} dead"
        )
        print("smoke: kill-mid-shard report byte-identical, one worker down")
        return 0
    finally:
        for proc, _ in workers:
            if proc.poll() is None:
                proc.kill()
        for proc, _ in workers:
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
