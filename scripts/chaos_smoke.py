#!/usr/bin/env python
"""Crash-recovery chaos harness for the ``qbss-serve`` daemon.

The drill, end to end against the real console entry point:

1. launch a journalled daemon with a ``kill`` fault pinned to
   ``shard:2`` (``QBSS_FAULT_PLAN``) — with ``--jobs 1`` shard
   evaluation runs in-process, so the injection SIGKILLs the *daemon*
   mid-batch, after earlier shards were evaluated and cached but before
   any response line was written;
2. assert the daemon really died by signal (exit ``-SIGKILL``) and the
   client saw a connection-level failure, not a partial response;
3. restart the daemon on the **same journal and cache**, without the
   fault plan, and wait for it to replay the incomplete admission to
   completion (``qbss_serve_recovered_jobs_total`` /
   ``qbss_serve_jobs_completed_total``);
4. resubmit the identical stream and require byte-identical shard
   payloads against a **cold** uninterrupted run (``--stdin
   --no-cache`` in a fresh process — no journal, no cache, nothing
   shared with the crashed run).

Byte-identity is the whole durability contract: an admitted-then-killed
batch, recovered from the journal and served warm, must be
indistinguishable from a run that never crashed.

Exit code 0 = all assertions held.  Used by the CI chaos job; also
runnable locally: ``python scripts/chaos_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec  # noqa: E402
from repro.serve import Client, ServeClientError  # noqa: E402

N_JOBS = 100
SHARD_WINDOW = 20.0  # releases 0..99 -> shards 0..4
SEED = 3
KILL_AT = "shard:2"  # shards 0 and 1 evaluate + cache first, then SIGKILL


def wait_for_port_file(path: Path, proc: subprocess.Popen, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died during startup (exit {proc.returncode})"
            )
        if path.exists() and path.read_text().strip():
            host, _, port = path.read_text().strip().rpartition(":")
            return host, int(port)
        time.sleep(0.05)
    raise RuntimeError("daemon did not write its port file in time")


def jobs(n: int = N_JOBS):
    out = []
    for i in range(n):
        release = i * 1.0
        out.append(
            {
                "id": f"chaos{i}",
                "release": release,
                "deadline": release + 25.0,
                "runtime": 1.0 + (i % 5) * 0.5,
            }
        )
    return out


def launch(tmp: Path, log_name: str, *, fault_env: str | None = None):
    port_file = tmp / f"{log_name}.port"
    port_file.unlink(missing_ok=True)
    log_path = tmp / f"{log_name}.log"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop(FAULT_PLAN_ENV, None)
    if fault_env is not None:
        env[FAULT_PLAN_ENV] = fault_env
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.cli",
                "--bind", "127.0.0.1:0",
                "--port-file", str(port_file),
                "--shard-window", str(SHARD_WINDOW),
                "--seed", str(SEED),
                "--jobs", "1",
                "--cache-dir", str(tmp / "cache"),
                "--journal", str(tmp / "journal"),
            ],
            env=env,
            cwd=REPO_ROOT,
            stderr=log,
        )
    return proc, port_file, log_path


def scrape(client: Client, name: str) -> float:
    return client.metrics().get((name, ()), 0.0)


def wait_for_metric(client: Client, name: str, at_least: float, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    value = 0.0
    while time.monotonic() < deadline:
        try:
            value = scrape(client, name)
        except (ServeClientError, OSError):
            value = 0.0
        if value >= at_least:
            return value
        time.sleep(0.2)
    raise RuntimeError(f"{name} never reached {at_least} (last seen {value})")


def cold_run(tmp: Path) -> list[dict]:
    """An uninterrupted reference run: fresh process, no cache, no journal."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop(FAULT_PLAN_ENV, None)
    payload = "".join(json.dumps(j, sort_keys=True) + "\n" for j in jobs())
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--stdin",
            "--shard-window", str(SHARD_WINDOW),
            "--seed", str(SEED),
            "--jobs", "1",
            "--no-cache",
        ],
        env=env,
        cwd=REPO_ROOT,
        input=payload,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    shards = []
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        envelope = json.loads(line)
        if envelope["kind"] == "shard_result":
            shards.append(envelope["shard"])
    assert shards, proc.stdout
    return shards


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="qbss-chaos-smoke-"))
    plan = FaultPlan([FaultSpec(task=KILL_AT, kind="kill", attempt=0)])

    # -- phase 1: kill -9 a live daemon mid-batch ------------------------------
    proc, port_file, log_path = launch(tmp, "victim", fault_env=plan.to_json())
    try:
        host, port = wait_for_port_file(port_file, proc)
        client = Client(host, port, client_id="chaos")
        died_mid_submit = False
        try:
            client.submit(jobs())
        except (ServeClientError, OSError):
            died_mid_submit = True  # connection died with the daemon
        assert died_mid_submit, "submission succeeded despite the kill fault"
        exit_code = proc.wait(timeout=60.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert exit_code == -signal.SIGKILL, f"daemon exited {exit_code}, wanted SIGKILL"
    journal_file = tmp / "journal" / "journal.jsonl"
    assert journal_file.exists(), "no journal written before the kill"
    print(f"chaos: daemon SIGKILLed mid-batch at {KILL_AT} (exit {exit_code})")

    # -- phase 2: restart on the same journal, recover, resubmit --------------
    proc, port_file, log_path = launch(tmp, "survivor")
    try:
        host, port = wait_for_port_file(port_file, proc)
        client = Client(host, port, client_id="chaos")
        recovered = wait_for_metric(
            client, "qbss_serve_recovered_jobs_total", float(N_JOBS)
        )
        wait_for_metric(client, "qbss_serve_jobs_completed_total", float(N_JOBS))
        print(f"chaos: restart recovered {recovered:.0f} journalled jobs")

        result = client.submit(jobs())
        assert result.ok, result.failed_shards
        assert result.summary["n_jobs"] == N_JOBS, result.summary
        warm = json.dumps(result.shards, sort_keys=True)
        log_text = log_path.read_text()
        assert "journal recovery:" in log_text, log_text
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    # -- phase 3: byte-identity against an uninterrupted cold run --------------
    cold = json.dumps(cold_run(tmp), sort_keys=True)
    assert warm == cold, "recovered output diverged from the clean cold run"
    print(
        f"chaos: recovered run is byte-identical to the cold run "
        f"({result.n_shards} shards, {N_JOBS} jobs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
