#!/usr/bin/env python
"""Scenario: a nightly batch window on a small cluster (Section 6).

Runs AVRQ(m) — the paper's multi-machine algorithm — on a heavy-tailed
batch workload over 2, 4 and 8 machines, showing the per-machine speed
profiles, the big/small job split in action, and the measured energy
against the pooled lower bound and the Corollary 6.4 guarantee.

Run:  python examples/cluster_night_batch.py
"""

from repro import PowerFunction
from repro.analysis.tables import render_table
from repro.bounds.formulas import avrq_m_ub_energy
from repro.qbss import avrq_m, clairvoyant
from repro.workloads.scenarios import datacenter_batch_scenario

ALPHA = 3.0
N_JOBS = 24
SEED = 99


def main() -> None:
    power = PowerFunction(ALPHA)
    rows = []
    for m in (2, 4, 8):
        instance = datacenter_batch_scenario(N_JOBS, machines=m, seed=SEED)
        result = avrq_m(instance)
        result.validate().raise_if_infeasible()
        base = clairvoyant(instance, alpha=ALPHA)  # pooled lower bound for m > 1
        energy = result.energy(power)
        rows.append(
            [
                m,
                energy,
                base.energy_value,
                energy / base.energy_value,
                avrq_m_ub_energy(ALPHA),
                result.max_speed(),
            ]
        )
    print(
        render_table(
            [
                "machines",
                "AVRQ(m) energy",
                "pooled LB",
                "ratio (conservative)",
                "paper UB",
                "peak speed",
            ],
            rows,
            title=f"Nightly batch, {N_JOBS} jobs, alpha={ALPHA}",
        )
    )

    # -- look inside one run: per-machine load and migrations ----------------
    m = 4
    instance = datacenter_batch_scenario(N_JOBS, machines=m, seed=SEED)
    result = avrq_m(instance)
    print(f"\nper-machine picture (m = {m}):")
    for i, profile in enumerate(result.profiles):
        work = profile.total_work()
        peak = profile.max_speed()
        print(
            f"  machine {i}: executed work {work:8.2f}   peak speed {peak:6.2f}"
        )

    migrated = 0
    for job_id in result.schedule.job_ids():
        machines_used = {
            mach
            for mach in range(m)
            for s in result.schedule.slices(mach)
            if s.job_id == job_id
        }
        if len(machines_used) > 1:
            migrated += 1
    print(
        f"\n{migrated} derived jobs migrated between machines "
        f"(McNaughton wrap-around of the shared 'small' pool)."
    )


if __name__ == "__main__":
    main()
