#!/usr/bin/env python
"""Play the paper's lower-bound games interactively.

Reproduces the adversarial arguments of Section 4.1 against the *shipped*
implementations: the single-job game of Lemmas 4.2/4.3, the randomized
game of Lemma 4.4, and the equal-window trap of Lemma 4.5 — printing, for
each, the claimed bound and what the adversary actually extracted.

Run:  python examples/adversary_playground.py
"""

from repro import PHI, PowerFunction
from repro.analysis.tables import render_table
from repro.bounds.adversary import adversarial_ratio, best_deterministic_decision
from repro.bounds.lemmas import (
    lemma45_equal_window_lower_bounds,
    lemma45_instance,
)
from repro.qbss import avrq, clairvoyant, crcd
from repro.qbss.randomized import solve_game

ALPHA = 3.0


def main() -> None:
    print("=== Lemma 4.3: the (c=1, w=2) game against CRCD ===\n")
    rows = []
    for objective, claimed in (
        ("max_speed", 2.0),
        ("energy", 2.0 ** (ALPHA - 1)),
    ):
        best_val, best_q, best_x = best_deterministic_decision(
            1.0, 2.0, ALPHA, objective
        )
        outcome = adversarial_ratio(crcd, 1.0, 2.0, ALPHA, objective)
        rows.append(
            [
                objective,
                claimed,
                best_val,
                f"{'query' if best_q else 'skip'}"
                + (f" x={best_x:.3f}" if best_x else ""),
                outcome.ratio,
                outcome.wstar,
            ]
        )
    print(
        render_table(
            [
                "objective",
                "claimed LB",
                "best any algorithm can do",
                "best decision",
                "CRCD suffered",
                "adversary w*",
            ],
            rows,
        )
    )
    print(
        "\nNo decision escapes the bound: skipping lets the adversary set "
        "w*=0, querying with any split lets it choose the bad half.\n"
    )

    print("=== Lemma 4.4: randomization doesn't save you ===\n")
    rows = []
    for objective in ("max_speed", "energy"):
        sol = solve_game(ALPHA, objective)
        rows.append(
            [objective, sol.claimed, sol.value, sol.theta, sol.rho]
        )
    print(
        render_table(
            ["objective", "claimed LB", "game value", "worst w/c", "best rho"],
            rows,
        )
    )

    print("\n=== Lemma 4.5: the equal-window trap ===\n")
    instance = lemma45_instance(1e-6)
    for j in instance:
        print(
            f"  job {j.id}: window ({j.release}, {j.deadline}], "
            f"c={j.query_cost:.2g}, w={j.work_upper:.4g}, hidden w*={j.work_true:.2g}"
        )
    s_lb, e_lb = lemma45_equal_window_lower_bounds(1e-6, ALPHA)
    result = avrq(instance)
    base = clairvoyant(instance, alpha=ALPHA)
    print(
        f"\n  best possible equal-window schedule: "
        f"{s_lb:.4f}x optimal speed, {e_lb:.4f}x optimal energy"
    )
    print(
        f"  AVRQ (an equal-window algorithm) pays: "
        f"{result.max_speed() / base.max_speed_value:.4f}x speed, "
        f"{result.energy(PowerFunction(ALPHA)) / base.energy_value:.4f}x energy"
    )
    print(
        f"  claimed bounds: 3 and 3^(alpha-1) = {3 ** (ALPHA - 1):.0f} — "
        "job j's revealed load and job k's query are both trapped in (1, 2], "
        "while the optimum spreads them over (0, 3]."
    )

    print("\n=== Bonus: let the machine build its own adversary ===\n")
    from repro.bounds.online_adversary import adaptive_online_search

    found = adaptive_online_search(avrq, alpha=ALPHA, steps=4)
    print(
        f"  greedy adaptive search vs AVRQ: ratio {found.ratio:.2f} "
        f"with {len(found.instance)} jobs"
    )
    for line in found.trace:
        print(f"    {line}")
    print(
        "  (compare: random 16-job streams max out around 5.7 — "
        "adaptivity is what the paper's lower bounds are made of)"
    )


if __name__ == "__main__":
    main()
