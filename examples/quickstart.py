#!/usr/bin/env python
"""Quickstart: the QBSS model in five minutes.

Builds a tiny instance with explorable uncertainty, runs the paper's
offline and online algorithms on it, and compares everything against the
clairvoyant optimum.

Run:  python examples/quickstart.py
"""

from repro import PHI, PowerFunction, QBSSInstance, QJob
from repro.analysis.tables import render_table
from repro.qbss import avrq, bkpq, clairvoyant, crcd, oaq

ALPHA = 3.0


def main() -> None:
    # ------------------------------------------------------------------
    # 1. An instance: four jobs, all live in the window (0, 8].
    #    Each job is (release, deadline, query_cost, work_upper, work_true);
    #    the last field is HIDDEN from algorithms until they pay the query.
    # ------------------------------------------------------------------
    jobs = [
        QJob(0.0, 8.0, 1.0, 4.0, 2.0, "video-encode"),
        QJob(0.0, 8.0, 3.0, 4.0, 4.0, "already-tight"),  # query won't help
        QJob(0.0, 8.0, 0.5, 5.0, 0.2, "huge-win"),  # query almost free
        QJob(0.0, 8.0, 2.0, 2.5, 1.0, "marginal"),
    ]
    instance = QBSSInstance(jobs)
    power = PowerFunction(ALPHA)

    print(f"QBSS instance: {len(instance)} jobs in (0, 8], alpha = {ALPHA}")
    print(f"golden-ratio rule: query job j exactly when c_j <= w_j / phi "
          f"(phi = {PHI:.4f})\n")

    # ------------------------------------------------------------------
    # 2. The clairvoyant optimum (knows every w*): YDS on p* = min(w, c+w*).
    # ------------------------------------------------------------------
    base = clairvoyant(instance, alpha=ALPHA)
    print(f"clairvoyant optimum:   energy = {base.energy_value:8.3f}   "
          f"max speed = {base.max_speed_value:.3f}\n")

    # ------------------------------------------------------------------
    # 3. Run the paper's algorithms.  CRCD is the offline algorithm for
    #    this common-window shape; AVRQ/BKPQ/OAQ treat it as an online
    #    stream (everything arrives at t = 0).
    # ------------------------------------------------------------------
    rows = []
    for name, algo in (
        ("CRCD (offline)", crcd),
        ("AVRQ (online)", avrq),
        ("BKPQ (online)", bkpq),
        ("OAQ (extension)", oaq),
    ):
        result = algo(instance)
        result.validate().raise_if_infeasible()
        queried = ", ".join(result.decisions.queried_ids()) or "(none)"
        rows.append(
            [
                name,
                result.energy(power),
                result.energy(power) / base.energy_value,
                result.max_speed(),
                queried,
            ]
        )

    print(
        render_table(
            ["algorithm", "energy", "vs optimal", "max speed", "queried jobs"],
            rows,
        )
    )

    # ------------------------------------------------------------------
    # 4. What did the golden rule decide?  'already-tight' has c = 3 >
    #    w / phi = 2.47, so CRCD/BKPQ skip its query; everything else is
    #    queried in the first half of the window and its revealed load runs
    #    in the second half.
    # ------------------------------------------------------------------
    result = crcd(instance)
    print("\nper-job decisions (CRCD):")
    for job in instance:
        decision = result.decisions[job.id]
        action = (
            f"query (split x={decision.split})" if decision.query else "run full w"
        )
        print(
            f"  {job.id:>14}: c={job.query_cost:<4} w={job.work_upper:<4} "
            f"-> {action:24} executed load = {result.executed_load(job.id):.2f} "
            f"(optimal p* = {job.optimal_load:.2f})"
        )


if __name__ == "__main__":
    main()
