#!/usr/bin/env python
"""Scenario: an ingest pipeline with optional file compression.

The paper's second motivating application: each transfer job may first run
a compressor (the query).  Text compresses ~4x, binaries ~1.5x, media not
at all — but the scheduler only sees the raw size upper bound.  This
example sweeps the power exponent alpha and shows where querying pays off
and how the measured competitive ratios compare to the paper's bounds.

Run:  python examples/compression_pipeline.py
"""

from repro import PowerFunction
from repro.analysis.tables import render_table
from repro.bounds.formulas import avrq_ub_energy, bkpq_ub_energy
from repro.qbss import avrq, bkpq, clairvoyant
from repro.workloads.scenarios import file_compression_scenario

ALPHAS = [1.5, 2.0, 2.5, 3.0]
N_JOBS = 30
SEED = 7


def main() -> None:
    instance = file_compression_scenario(N_JOBS, seed=SEED)

    compressible = sum(
        1 for j in instance if j.work_true < 0.5 * j.work_upper
    )
    print(
        f"{N_JOBS} transfer jobs; {compressible} compress to under half "
        f"their raw size (hidden until the compressor runs)\n"
    )

    rows = []
    for alpha in ALPHAS:
        power = PowerFunction(alpha)
        base = clairvoyant(instance, alpha=alpha)
        r_avrq = avrq(instance).energy(power) / base.energy_value
        r_bkpq = bkpq(instance).energy(power) / base.energy_value
        rows.append(
            [
                alpha,
                r_avrq,
                avrq_ub_energy(alpha),
                r_bkpq,
                bkpq_ub_energy(alpha),
            ]
        )

    print(
        render_table(
            [
                "alpha",
                "AVRQ measured",
                "AVRQ paper UB",
                "BKPQ measured",
                "BKPQ paper UB",
            ],
            rows,
            title="Measured competitive ratios vs the paper's bounds",
        )
    )
    print(
        "\nNote the gap: the paper's bounds are worst-case; on realistic "
        "compressibility mixes the algorithms sit far below them, and the "
        "ratios grow with alpha exactly as the s^alpha power model predicts."
    )

    # Spot-check one alpha in detail: who was queried and why.
    result = bkpq(instance)
    queried = result.decisions.queried_ids()
    skipped = result.decisions.unqueried_ids()
    print(
        f"\nwith the golden rule at alpha={ALPHAS[-1]}: "
        f"{len(queried)} jobs compressed first, {len(skipped)} sent raw."
    )


if __name__ == "__main__":
    main()
