#!/usr/bin/env python
"""A small empirical study on a synthetic daily trace, with error bars.

Compares the online QBSS algorithms on diurnal (sinusoidal-rate) arrival
traces — closer to production arrivals than uniform streams — reporting
mean energy ratios with bootstrap confidence intervals and a paired
head-to-head of OAQ against AVRQ.  Finishes by emitting the study as a
markdown table, the same machinery behind ``qbss-report --markdown``.

Run:  python examples/trace_study.py
"""

from repro.analysis.ratios import measure
from repro.analysis.stats import RatioStats, bootstrap_ci, paired_improvement
from repro.analysis.tables import render_table
from repro.qbss import avrq, bkpq, oaq
from repro.workloads.generators import diurnal_trace_instance

ALPHA = 3.0
N_JOBS = 25
N_TRACES = 10


def main() -> None:
    traces = [
        diurnal_trace_instance(N_JOBS, seed=seed) for seed in range(N_TRACES)
    ]
    print(
        f"{N_TRACES} synthetic daily traces x {N_JOBS} jobs "
        f"(sinusoidal arrival rate, peak at 14:00), alpha = {ALPHA}\n"
    )

    ratios = {}
    for name, algo in (("AVRQ", avrq), ("BKPQ", bkpq), ("OAQ", oaq)):
        ratios[name] = [measure(algo, qi, alpha=ALPHA).energy_ratio for qi in traces]

    rows = []
    for name, sample in ratios.items():
        stats = RatioStats.from_sample(sample)
        lo, hi = bootstrap_ci(sample, seed=0)
        rows.append(
            [name, stats.mean, lo, hi, stats.median, stats.p95, stats.maximum]
        )
    print(
        render_table(
            ["algorithm", "mean ratio", "CI low", "CI high", "median", "p95", "max"],
            rows,
            title="Energy ratio vs clairvoyant optimum (95% bootstrap CI)",
        )
    )

    mean_rel, (lo, hi), win = paired_improvement(ratios["AVRQ"], ratios["OAQ"])
    print(
        f"\npaired OAQ vs AVRQ on the same traces: mean ratio "
        f"{mean_rel:.3f} (CI [{lo:.3f}, {hi:.3f}]), win rate {win:.0%}"
    )
    if hi < 1.0:
        print(
            "=> OAQ reliably beats AVRQ on this workload class — empirical "
            "support for the paper's Section 7 conjecture that OA extends "
            "to the QBSS model."
        )

    # the same study as a markdown fragment (for reports / PRs)
    print("\n--- markdown fragment ---\n")
    print("| algorithm | mean ratio | 95% CI |")
    print("|---|---|---|")
    for name, sample in ratios.items():
        stats = RatioStats.from_sample(sample)
        lo, hi = bootstrap_ci(sample, seed=0)
        print(f"| {name} | {stats.mean:.3f} | [{lo:.3f}, {hi:.3f}] |")


if __name__ == "__main__":
    main()
