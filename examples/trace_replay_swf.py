#!/usr/bin/env python
"""Replay a cluster log through the QBSS online algorithms.

Generates a synthetic Standard Workload Format trace (no external data
needed — swap in any real SWF archive from the Parallel Workloads
Archive), then replays it twice through the streaming shard evaluator:
once under the benign ``multiplicative`` noise model and once under the
``adversarial`` one, where every job sits exactly on the golden-ratio
query/skip boundary.  Ends by demonstrating the warm-cache path: the
second pass over identical shards is served entirely from the
content-addressed cache, byte-identical to the cold run.

This is the library face of the ``qbss-replay`` CLI:

    qbss-replay trace.swf --noise-model adversarial --shard-window 1800

Run:  python examples/trace_replay_swf.py
"""

import json
import tempfile
from pathlib import Path

from repro.traces import replay_trace
from repro.workloads import write_synthetic_swf

N_JOBS = 150
SHARD_WINDOW = 1800.0  # half an hour of trace time per shard
ALPHA = 3.0


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace = write_synthetic_swf(
            Path(tmp) / "synthetic.swf", N_JOBS, seed=7, arrival_rate=0.02
        )
        cache_dir = Path(tmp) / "cache"
        print(
            f"synthetic SWF log: {N_JOBS} jobs, Poisson arrivals, "
            f"lognormal runtimes -> {trace.name}\n"
        )

        for noise in ("multiplicative", "adversarial"):
            report, metrics = replay_trace(
                trace,
                noise_model=noise,
                seed=0,
                shard_window=SHARD_WINDOW,
                alpha=ALPHA,
                cache_dir=cache_dir,
            )
            print(report.render(max_shard_rows=5))
            print(metrics.footer())
            print()

        # warm pass: same parameters, every shard served from the cache
        report_cold, _ = replay_trace(
            trace,
            noise_model="multiplicative",
            seed=0,
            shard_window=SHARD_WINDOW,
            alpha=ALPHA,
            cache_dir=cache_dir,
        )
        report_warm, metrics_warm = replay_trace(
            trace,
            noise_model="multiplicative",
            seed=0,
            shard_window=SHARD_WINDOW,
            alpha=ALPHA,
            cache_dir=cache_dir,
        )
        identical = json.dumps(report_cold.to_dict(), sort_keys=True) == (
            json.dumps(report_warm.to_dict(), sort_keys=True)
        )
        print(
            f"warm replay: {metrics_warm.hits} cache hits, "
            f"{metrics_warm.misses} misses; byte-identical to cold run: "
            f"{identical}"
        )


if __name__ == "__main__":
    main()
