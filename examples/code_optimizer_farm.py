#!/usr/bin/env python
"""Scenario: a CI build farm with an optional optimiser pass.

The paper's first motivating application (Sec. 1): before running a build
job you may spend extra cycles on a code optimiser (the *query*), which
usually shrinks the remaining workload — but you only learn by how much
after the pass finishes.  Skipping the optimiser means executing the full
unoptimised workload.

This example streams a day of build jobs through the online algorithms and
shows how much energy the golden-ratio query rule saves against both
extremes (never optimise / always optimise), and how far everything sits
from the clairvoyant optimum.

Run:  python examples/code_optimizer_farm.py
"""

import numpy as np

from repro import PowerFunction
from repro.analysis.ratios import measure, never_query_offline
from repro.analysis.tables import render_table
from repro.qbss import avrq, bkpq, clairvoyant, oaq
from repro.qbss.policies import AlwaysQuery, NeverQuery, ThresholdQuery
from repro.workloads.scenarios import code_optimizer_scenario

ALPHA = 3.0
N_JOBS = 40
SEED = 2024


def main() -> None:
    instance = code_optimizer_scenario(N_JOBS, seed=SEED)
    power = PowerFunction(ALPHA)
    base = clairvoyant(instance, alpha=ALPHA)

    worthwhile = sum(1 for j in instance if j.query_worthwhile)
    print(
        f"{N_JOBS} build jobs; the optimiser would pay off for "
        f"{worthwhile}/{N_JOBS} of them (hidden from the scheduler)\n"
    )
    print(f"clairvoyant optimum energy: {base.energy_value:.2f}\n")

    # -- compare query policies under the BKPQ machinery -------------------
    rows = []
    for label, policy in (
        ("never optimise", NeverQuery()),
        ("golden rule (paper)", None),  # bkpq's default
        ("always optimise", AlwaysQuery()),
        ("picky (c <= w/10)", ThresholdQuery(10.0)),
    ):
        result = bkpq(instance, query_policy=policy)
        result.validate().raise_if_infeasible()
        n_queried = len(result.decisions.queried_ids())
        rows.append(
            [
                label,
                n_queried,
                result.energy(power),
                result.energy(power) / base.energy_value,
            ]
        )
    print(
        render_table(
            ["policy (under BKPQ)", "# optimised", "energy", "vs optimal"],
            rows,
            title="Query-policy comparison",
        )
    )

    # -- compare online algorithms under the golden rule -------------------
    rows2 = []
    for name, algo in (("AVRQ", avrq), ("BKPQ", bkpq), ("OAQ", oaq)):
        m = measure(algo, instance, alpha=ALPHA)
        rows2.append([name, m.energy, m.energy_ratio, m.max_speed_ratio])
    print()
    print(
        render_table(
            ["algorithm", "energy", "energy ratio", "max-speed ratio"],
            rows2,
            title="Online algorithms (golden rule)",
        )
    )

    # -- the never-query *lower bound* (best possible without optimiser) ---
    m = measure(never_query_offline, instance, alpha=ALPHA)
    print(
        f"\nbest possible schedule that never optimises: "
        f"{m.energy_ratio:.2f}x the clairvoyant optimum"
        f" — the value of information in this workload."
    )


if __name__ == "__main__":
    main()
