#!/usr/bin/env python
"""Watch an online algorithm learn: event replay + terminal visualisation.

Combines three of the library's utilities:

* the event-driven simulator (`repro.qbss.simulation`) shows exactly what
  the algorithm knew in each time window;
* the terminal renderer (`repro.viz`) draws the speed profiles and the
  executed Gantt chart;
* the serializer (`repro.io`) archives the instance so the run can be
  replayed bit-for-bit later.

Run:  python examples/visual_replay.py
"""

import tempfile
from pathlib import Path

from repro import PowerFunction, QBSSInstance, QJob
from repro import io as rio
from repro.qbss import avrq, clairvoyant, verify_causality
from repro.qbss.simulation import incremental_profile
from repro.speed_scaling.yds import yds
from repro.viz import gantt, profile_chart

ALPHA = 3.0


def main() -> None:
    instance = QBSSInstance(
        [
            QJob(0.0, 6.0, 0.6, 3.0, 1.0, "early"),
            QJob(1.0, 5.0, 0.4, 2.0, 0.2, "mid"),
            QJob(2.5, 8.0, 1.0, 4.0, 3.5, "late"),
        ]
    )

    # -- the event loop: what was known when -------------------------------
    replay = incremental_profile(instance, "avrq")
    print("event-by-event knowledge (AVRQ always queries, splits at 1/2):\n")
    for step in replay.steps:
        known = ", ".join(step.known_jobs) or "(nothing)"
        print(
            f"  t in [{step.start:4.2f}, {step.end:4.2f}):  "
            f"speed {step.speed_at_start:5.2f}   knows: {known}"
        )
    print(
        f"\nreplay == batch construction: "
        f"{verify_causality(instance, 'avrq')} (information discipline holds)\n"
    )

    # -- profiles side by side ----------------------------------------------
    run = avrq(instance)
    base = clairvoyant(instance, alpha=ALPHA)
    opt_profile = yds(
        [j.clairvoyant_job() for j in instance]
    ).profile
    print(
        profile_chart(
            [run.profile, opt_profile],
            ["AVRQ", "clairvoyant"],
            width=64,
        )
    )
    power = PowerFunction(ALPHA)
    print(
        f"\nenergy: AVRQ {run.energy(power):.2f} vs optimal "
        f"{base.energy_value:.2f}  (ratio {run.energy(power) / base.energy_value:.2f})\n"
    )

    # -- the executed schedule ----------------------------------------------
    print("executed schedule (query jobs first halves, revealed loads after):")
    print(gantt(run.schedule, width=64))

    # -- archive & replay ----------------------------------------------------
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "instance.json"
        rio.save(instance, path)
        reloaded = rio.load(path)
        rerun = avrq(reloaded)
        print(
            f"\narchived to JSON and replayed: energies match = "
            f"{abs(rerun.energy(power) - run.energy(power)) < 1e-9}"
        )


if __name__ == "__main__":
    main()
