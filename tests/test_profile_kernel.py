"""The kernel determinism contract: numpy path == pure-Python path, bitwise.

The whole point of ``repro.core.profile_kernel`` is that it may not change
a single bit of any published number — cached engine entries, replay
reports and golden experiment outputs must survive the swap.  These tests
pin that:

* hypothesis equality suite — every kernel-dispatched operation on random
  breakpoint profiles equals the pure-Python reference **bit for bit**
  (``struct.pack`` comparison, not ``isclose``);
* YDS — the vectorised compressed-timeline arithmetic and the
  discovery-only :func:`~repro.speed_scaling.yds.yds_profile` fast path
  reproduce the original schedules and profiles exactly;
* replay byte-identity — a kernel-backed replay serialises to the same
  JSON bytes as the pre-kernel pure-Python path (the acceptance test for
  ``qbss-replay``).
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import profile_kernel as pk
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.core.profile import (
    Segment,
    SpeedProfile,
    max_profiles,
    profiles_energy,
    profiles_max_speed,
    sum_profiles,
)
from repro.core.qjob import QJob
from repro.speed_scaling.yds import TimelineCompressor, yds, yds_profile


def bits(x: float) -> bytes:
    """The exact IEEE-754 byte pattern (equality stricter than ==)."""
    return struct.pack("<d", float(x))


def same_number(a, b) -> bool:
    """Bitwise equality, including the int-0 vs float-0.0 distinction."""
    if isinstance(a, int) != isinstance(b, int):
        return False
    if isinstance(a, int):
        return a == b
    return bits(a) == bits(b)


def profile_bits(p: SpeedProfile) -> list[tuple[bytes, bytes, bytes]]:
    return [(bits(s.start), bits(s.end), bits(s.speed)) for s in p.segments]


# -- strategies ---------------------------------------------------------------------


@st.composite
def breakpoint_profiles(draw, max_segments=8):
    """Random non-overlapping segment lists, gaps and touches included."""
    n = draw(st.integers(min_value=0, max_value=max_segments))
    t = draw(st.floats(min_value=-5.0, max_value=5.0))
    segs = []
    for _ in range(n):
        gap = draw(st.sampled_from([0.0, 0.3, 1.7]))
        dur = draw(st.floats(min_value=1e-3, max_value=4.0))
        speed = draw(
            st.one_of(
                st.floats(min_value=0.0, max_value=8.0),
                st.sampled_from([0.0, 1.0, 2.0]),
            )
        )
        start = t + gap
        segs.append(Segment(start, start + dur, speed) if speed > 0 else None)
        t = start + dur
    return [s for s in segs if s is not None]


alphas = st.sampled_from([1.5, 2.0, 2.5, 3.0, 3.7])
queries = st.floats(min_value=-6.0, max_value=40.0, allow_nan=False)


def both_modes(segs, fn):
    """Run ``fn`` on a profile built in kernel mode and in pure mode."""
    kernel = fn(SpeedProfile(segs))
    with pk.pure_python():
        reference = fn(SpeedProfile(segs))
    return kernel, reference


# -- hypothesis equality suite -------------------------------------------------------


class TestKernelEqualsReference:
    @given(segs=breakpoint_profiles(), alpha=alphas)
    @settings(max_examples=150, deadline=None)
    def test_energy(self, segs, alpha):
        k, r = both_modes(segs, lambda p: p.energy(PowerFunction(alpha)))
        assert same_number(k, r)

    @given(segs=breakpoint_profiles())
    @settings(max_examples=100, deadline=None)
    def test_total_work_and_max_speed(self, segs):
        k, r = both_modes(segs, lambda p: (p.total_work(), p.max_speed()))
        assert same_number(k[0], r[0])
        assert same_number(k[1], r[1])

    @given(segs=breakpoint_profiles(), lo=queries, hi=queries)
    @settings(max_examples=150, deadline=None)
    def test_work_in(self, segs, lo, hi):
        k, r = both_modes(segs, lambda p: p.work_in(lo, hi))
        assert same_number(k, r)

    @given(segs=breakpoint_profiles(), t=queries)
    @settings(max_examples=100, deadline=None)
    def test_speed_at_matches_batched(self, segs, t):
        p = SpeedProfile(segs)
        scalar = p.speed_at(t)
        batched = float(p.speeds_at([t])[0])
        assert bits(scalar) == bits(batched)

    @given(segs=breakpoint_profiles(), factor=st.sampled_from([0.0, 0.5, 1.7, 3.0]))
    @settings(max_examples=100, deadline=None)
    def test_scale(self, segs, factor):
        k, r = both_modes(segs, lambda p: profile_bits(p.scale(factor)))
        assert k == r

    @given(segs=breakpoint_profiles(), lo=queries, hi=queries)
    @settings(max_examples=100, deadline=None)
    def test_restrict(self, segs, lo, hi):
        k, r = both_modes(segs, lambda p: profile_bits(p.restrict(lo, hi)))
        assert k == r

    @given(segs=breakpoint_profiles(), delta=st.floats(-7.0, 7.0))
    @settings(max_examples=80, deadline=None)
    def test_shift(self, segs, delta):
        k, r = both_modes(segs, lambda p: profile_bits(p.shift(delta)))
        assert k == r

    @given(many=st.lists(breakpoint_profiles(max_segments=5), max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_sum_and_max_profiles(self, many):
        ks = [SpeedProfile(s) for s in many]
        k_sum = profile_bits(sum_profiles(ks))
        k_max = profile_bits(max_profiles(ks))
        with pk.pure_python():
            rs = [SpeedProfile(s) for s in many]
            r_sum = profile_bits(sum_profiles(rs))
            r_max = profile_bits(max_profiles(rs))
        assert k_sum == r_sum
        assert k_max == r_max

    @given(segs=breakpoint_profiles(), other=breakpoint_profiles())
    @settings(max_examples=80, deadline=None)
    def test_add_and_dominates(self, segs, other):
        k_add = profile_bits(SpeedProfile(segs) + SpeedProfile(other))
        k_dom = SpeedProfile(segs).dominates(SpeedProfile(other))
        with pk.pure_python():
            r_add = profile_bits(SpeedProfile(segs) + SpeedProfile(other))
            r_dom = SpeedProfile(segs).dominates(SpeedProfile(other))
        assert k_add == r_add
        assert k_dom == r_dom

    @given(many=st.lists(breakpoint_profiles(max_segments=4), max_size=4), alpha=alphas)
    @settings(max_examples=60, deadline=None)
    def test_profiles_energy_helpers(self, many, alpha):
        power = PowerFunction(alpha)
        ks = [SpeedProfile(s) for s in many]
        k_e, k_s = profiles_energy(ks, power), profiles_max_speed(ks)
        with pk.pure_python():
            rs = [SpeedProfile(s) for s in many]
            r_e, r_s = profiles_energy(rs, power), profiles_max_speed(rs)
        assert same_number(k_e, r_e)
        assert same_number(k_s, r_s)


# -- batched queries -----------------------------------------------------------------


class TestBatchedQueries:
    @given(segs=breakpoint_profiles(), qs=st.lists(st.tuples(queries, queries), max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_work_in_many_rows_equal_scalars(self, segs, qs):
        p = SpeedProfile(segs)
        los = [a for a, _ in qs]
        his = [b for _, b in qs]
        batch = p.work_in_many(los, his)
        assert len(batch) == len(qs)
        for got, (lo, hi) in zip(batch.tolist(), qs):
            assert bits(got) == bits(p.work_in(lo, hi))

    def test_empty_profile_batches(self):
        p = SpeedProfile()
        assert p.work_in_many([0.0], [1.0]).tolist() == [0.0]
        assert p.speeds_at([0.5]).tolist() == [0.0]


# -- constructor parity --------------------------------------------------------------


class TestConstructorParity:
    @given(
        n=st.integers(min_value=2, max_value=7),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_from_breakpoints_modes_agree(self, n, data):
        t = 0.0
        times = []
        for _ in range(n):
            times.append(t)
            t += data.draw(st.floats(min_value=1e-3, max_value=3.0))
        speeds = [
            data.draw(st.floats(min_value=0.0, max_value=5.0))
            for _ in range(n - 1)
        ]
        k = SpeedProfile.from_breakpoints(times=times, speeds=speeds)
        with pk.pure_python():
            r = SpeedProfile.from_breakpoints(times=times, speeds=speeds)
        assert profile_bits(k) == profile_bits(r)

    def test_from_segments_modes_agree(self):
        kwargs = dict(
            starts=[4.0, 0.0, 1.0], ends=[5.0, 1.0, 2.0], speeds=[2.0, 1.0, 1.0]
        )
        k = SpeedProfile.from_segments(**kwargs)
        with pk.pure_python():
            r = SpeedProfile.from_segments(**kwargs)
        assert profile_bits(k) == profile_bits(r)

    def test_from_segments_rejects_overlap_in_both_modes(self):
        kwargs = dict(starts=[0.0, 1.0], ends=[2.0, 3.0], speeds=[1.0, 1.0])
        with pytest.raises(ValueError):
            SpeedProfile.from_segments(**kwargs)
        with pk.pure_python(), pytest.raises(ValueError):
            SpeedProfile.from_segments(**kwargs)


# -- YDS and clairvoyant fast paths --------------------------------------------------


@st.composite
def classical_jobs(draw, max_jobs=8):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        r = draw(st.floats(min_value=0.0, max_value=20.0))
        span = draw(st.floats(min_value=0.1, max_value=8.0))
        w = draw(st.floats(min_value=0.0, max_value=10.0))
        jobs.append(Job(r, r + span, w, f"j{i}"))
    return jobs


class TestYDSKernelPaths:
    @given(jobs=classical_jobs())
    @settings(max_examples=80, deadline=None)
    def test_compress_many_equals_scalar(self, jobs):
        compressor = TimelineCompressor(min(j.release for j in jobs))
        compressor.cut([(1.0, 2.0), (4.0, 4.5), (9.0, 12.0)])
        times = [j.release for j in jobs] + [j.deadline for j in jobs]
        batched = compressor.compress_many(times)
        for t, got in zip(times, batched.tolist()):
            assert bits(got) == bits(compressor.compress(t))

    @given(jobs=classical_jobs())
    @settings(max_examples=50, deadline=None)
    def test_yds_profile_equals_full_yds(self, jobs):
        fast = yds_profile(jobs)
        full = yds(jobs)
        assert profile_bits(fast) == profile_bits(full.profile)

    @given(jobs=classical_jobs(max_jobs=6))
    @settings(max_examples=40, deadline=None)
    def test_yds_matches_pure_python(self, jobs):
        power = PowerFunction(3.0)
        k = yds(jobs)
        k_rows = [
            (bits(s.start), bits(s.end), bits(s.speed), s.job_id)
            for s in k.schedule.slices()
        ]
        with pk.pure_python():
            r = yds(jobs)
            r_rows = [
                (bits(s.start), bits(s.end), bits(s.speed), s.job_id)
                for s in r.schedule.slices()
            ]
            r_energy = r.profile.energy(power)
            r_sched_energy = r.schedule.energy(power)
        assert profile_bits(k.profile) == profile_bits(r.profile)
        assert k_rows == r_rows
        assert same_number(k.profile.energy(power), r_energy)
        assert same_number(k.schedule.energy(power), r_sched_energy)

    def test_clairvoyant_values_equals_clairvoyant(self):
        from repro.core.instance import QBSSInstance
        from repro.qbss.clairvoyant import clairvoyant, clairvoyant_values

        qi = QBSSInstance(
            [
                QJob(0.0, 10.0, 1.0, 4.0, 2.5, "a"),
                QJob(1.0, 6.0, 0.5, 3.0, 1.0, "b"),
                QJob(2.0, 9.0, 1.5, 5.0, 4.0, "c"),
            ]
        )
        full = clairvoyant(qi, alpha=3.0)
        fast = clairvoyant_values(qi, alpha=3.0)
        assert same_number(fast.energy_value, full.energy_value)
        assert same_number(fast.max_speed_value, full.max_speed_value)
        assert fast.exact == full.exact


# -- replay byte-identity ------------------------------------------------------------


def _stream(n=40, seed=3):
    import random

    rng = random.Random(seed)
    t = 0.0
    for i in range(n):
        t += rng.random() * 100.0
        horizon = 500.0 + rng.random() * 2000.0
        wu = 10.0 + rng.random() * 200.0
        yield QJob(
            t, t + horizon,
            query_cost=min(5.0, wu), work_upper=wu,
            work_true=rng.random() * wu, id=f"q{i}",
        )


class TestReplayByteIdentity:
    def test_kernel_report_identical_to_pure_python(self):
        """The acceptance test: kernel-backed qbss-replay output is
        byte-identical to the pre-kernel pure-Python path."""
        from repro.traces.replay import replay_jobs

        with pk.pure_python():
            golden, _ = replay_jobs(
                _stream(), algorithms=("avrq", "bkpq"), alpha=3.0,
                shard_window=600.0, cache=False,
            )
        fresh, _ = replay_jobs(
            _stream(), algorithms=("avrq", "bkpq"), alpha=3.0,
            shard_window=600.0, cache=False,
        )
        golden_bytes = json.dumps(golden.to_dict(), sort_keys=True)
        fresh_bytes = json.dumps(fresh.to_dict(), sort_keys=True)
        assert golden_bytes == fresh_bytes
        assert golden.render() == fresh.render()
