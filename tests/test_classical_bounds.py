"""Classical lower-bound families (the substrate of Lemma 5.1)."""

import pytest

from repro.bounds.classical import (
    avr_tower_instance,
    avr_two_sided_instance,
    family_ratio,
    maximize_family_ratio,
    oa_staircase_instance,
)
from repro.bounds.formulas import avr_ub_energy, oa_ub_energy
from repro.speed_scaling.avr import avr_profile
from repro.speed_scaling.oa import oa_profile


class TestAVRFamilies:
    def test_tower_ratio_grows_with_depth(self):
        ratios = [
            family_ratio(avr_tower_instance(k, 3.0), avr_profile, 3.0)
            for k in (4, 8, 16)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_tower_below_avr_upper_bound(self):
        for k in (8, 16):
            r = family_ratio(avr_tower_instance(k, 3.0), avr_profile, 3.0)
            assert r <= avr_ub_energy(3.0)

    def test_two_sided_eventually_beats_one_sided(self):
        k = 32
        one = family_ratio(avr_tower_instance(k, 3.0), avr_profile, 3.0)
        two = family_ratio(avr_two_sided_instance(k, 3.0), avr_profile, 3.0)
        assert two >= one - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            avr_tower_instance(0, 3.0)
        with pytest.raises(ValueError):
            avr_tower_instance(4, 3.0, shrink=1.5)
        with pytest.raises(ValueError):
            avr_two_sided_instance(0, 3.0)


class TestOAFamily:
    def test_staircase_ratio_grows(self):
        ratios = [
            family_ratio(oa_staircase_instance(k, 3.0), oa_profile, 3.0)
            for k in (4, 8, 16)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_staircase_bounded_by_alpha_alpha(self):
        r = family_ratio(oa_staircase_instance(16, 3.0), oa_profile, 3.0)
        assert r <= oa_ub_energy(3.0) * (1 + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            oa_staircase_instance(0, 3.0)


def test_maximize_family_ratio_picks_the_best_shrink():
    best_p, best_r = maximize_family_ratio(
        lambda q: avr_tower_instance(12, 3.0, shrink=q),
        [0.3, 0.5, 0.7],
        avr_profile,
        3.0,
    )
    assert best_p in (0.3, 0.5, 0.7)
    for q in (0.3, 0.5, 0.7):
        assert best_r >= family_ratio(
            avr_tower_instance(12, 3.0, shrink=q), avr_profile, 3.0
        ) - 1e-12
