"""The EDF executor."""

import math

import pytest

from repro.core.edf import profile_feasible_for, run_edf
from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.profile import Segment, SpeedProfile


def test_single_job_exact_fit():
    jobs = [Job(0, 2, 4, "a")]
    result = run_edf(jobs, SpeedProfile.constant(0, 2, 2.0))
    assert result.feasible
    assert math.isclose(result.schedule.work_of("a"), 4.0)


def test_edf_priority_order():
    """The earlier deadline runs first."""
    jobs = [Job(0, 4, 2, "late"), Job(0, 2, 2, "early")]
    result = run_edf(jobs, SpeedProfile.constant(0, 4, 1.0))
    assert result.feasible
    first = result.schedule.slices()[0]
    assert first.job_id == "early"


def test_preemption_on_arrival():
    """A tighter job arriving mid-run preempts the running one."""
    jobs = [Job(0, 10, 5, "long"), Job(2, 3, 1, "urgent")]
    profile = SpeedProfile.constant(0, 10, 1.0)
    result = run_edf(jobs, profile)
    assert result.feasible
    urgent_slices = [s for s in result.schedule.slices() if s.job_id == "urgent"]
    assert urgent_slices and urgent_slices[0].start >= 2.0
    assert result.schedule.completion_time("urgent") <= 3.0 + 1e-9
    # the long job resumes and still completes
    assert math.isclose(result.schedule.work_of("long"), 5.0)


def test_unfinished_reported():
    jobs = [Job(0, 1, 5, "a")]
    result = run_edf(jobs, SpeedProfile.constant(0, 1, 1.0))
    assert not result.feasible
    assert math.isclose(result.unfinished["a"], 4.0)


def test_work_never_scheduled_outside_window():
    jobs = [Job(1, 2, 1, "a")]
    profile = SpeedProfile.constant(0, 3, 1.0)
    result = run_edf(jobs, profile)
    assert result.feasible
    for s in result.schedule.slices():
        assert s.start >= 1.0 - 1e-9 and s.end <= 2.0 + 1e-9


def test_idle_gap_handled():
    jobs = [Job(0, 1, 1, "a"), Job(3, 4, 1, "b")]
    profile = SpeedProfile([Segment(0, 1, 1.0), Segment(3, 4, 1.0)])
    result = run_edf(jobs, profile)
    assert result.feasible


def test_zero_work_jobs_ignored():
    result = run_edf([Job(0, 1, 0, "a")], SpeedProfile())
    assert result.feasible
    assert result.schedule.slices() == []


def test_schedule_validates_against_instance(simple_jobs):
    """EDF at a generous speed produces a checker-clean schedule."""
    profile = SpeedProfile.constant(0, 3, 10.0)
    result = run_edf(simple_jobs, profile)
    assert result.feasible
    report = check_feasible(result.schedule, Instance(simple_jobs))
    assert report.ok, report.violations


def test_profile_feasible_for():
    jobs = [Job(0, 1, 1, "a")]
    assert profile_feasible_for(jobs, SpeedProfile.constant(0, 1, 1.0))
    assert not profile_feasible_for(jobs, SpeedProfile.constant(0, 1, 0.5))


def test_multi_machine_placement_argument():
    jobs = [Job(0, 1, 1, "a")]
    result = run_edf(jobs, SpeedProfile.constant(0, 1, 1.0), machine=1, machines=3)
    assert result.schedule.machines == 3
    assert result.schedule.slices(1)
    assert not result.schedule.slices(0)
