"""Multi-machine substrate: allocation rule, McNaughton, AVR(m), bounds."""

import math

import numpy as np
import pytest

from repro.bounds.formulas import avr_m_ub_energy
from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.speed_scaling.multi.allocation import allocate_slot
from repro.speed_scaling.multi.avr_m import avr_m
from repro.speed_scaling.multi.bounds import max_speed_lower_bound, pooled_lower_bound
from repro.speed_scaling.multi.mcnaughton import mcnaughton_slot
from repro.speed_scaling.multi.optimal import convex_optimal_energy, slot_energy
from repro.speed_scaling.yds import optimal_energy

from _testutil import random_classical_jobs


class TestAllocation:
    def test_one_big_job(self):
        # densities [10, 1, 1] on 2 machines: 10 > 12/2 -> big
        alloc = allocate_slot([10.0, 1.0, 1.0], 2)
        assert alloc.big == ((0, 0, 10.0),)
        assert set(alloc.small_indices) == {1, 2}
        assert alloc.small_machines == (1,)
        assert math.isclose(alloc.small_speed, 2.0)

    def test_all_small(self):
        alloc = allocate_slot([1.0, 1.0, 1.0, 1.0], 2)
        assert alloc.big == ()
        assert math.isclose(alloc.small_speed, 2.0)
        assert alloc.machine_speeds == (2.0, 2.0)

    def test_each_job_own_machine(self):
        alloc = allocate_slot([3.0, 2.0], 4)
        # 3 > 5/4 big; then 2 > 2/3 big
        assert len(alloc.big) == 2
        assert alloc.small_indices == ()

    def test_machine_speeds_non_increasing(self):
        alloc = allocate_slot([5.0, 3.0, 1.0, 0.5, 0.25], 3)
        speeds = alloc.machine_speeds
        assert all(a >= b - 1e-12 for a, b in zip(speeds, speeds[1:]))

    def test_zero_densities_ignored(self):
        alloc = allocate_slot([0.0, 2.0, 0.0], 2)
        assert alloc.big == () or alloc.big[0][0] == 1

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            allocate_slot([1.0], 0)


class TestMcNaughton:
    def test_simple_pack(self):
        pieces = mcnaughton_slot([("a", 1.0), ("b", 1.0)], 0.0, 1.0, 2.0, [0])
        assert len(pieces) == 2
        assert all(m == 0 for m, _ in pieces)

    def test_wrap_around_no_self_overlap(self):
        # slot capacity per machine = 1.0; job "b" wraps across machines
        pieces = mcnaughton_slot(
            [("a", 0.6), ("b", 0.8), ("c", 0.6)], 0.0, 1.0, 1.0, [0, 1]
        )
        by_job = {}
        for mach, sl in pieces:
            by_job.setdefault(sl.job_id, []).append((mach, sl))
        b_pieces = by_job["b"]
        assert len(b_pieces) == 2
        (m1, s1), (m2, s2) = sorted(b_pieces, key=lambda x: x[1].start)
        assert m1 != m2
        # wrapped pieces of one job must not overlap in time
        assert s2.end <= s1.start + 1e-9 or s1.end <= s2.start + 1e-9

    def test_overload_rejected(self):
        with pytest.raises(ValueError):
            mcnaughton_slot([("a", 3.0)], 0.0, 1.0, 1.0, [0, 1])

    def test_total_work_preserved(self):
        works = [("a", 0.5), ("b", 0.9), ("c", 0.6)]
        pieces = mcnaughton_slot(works, 0.0, 1.0, 1.0, [0, 1])
        done = sum(sl.work for _, sl in pieces)
        assert math.isclose(done, 2.0, rel_tol=1e-9)

    def test_zero_speed_slot(self):
        assert mcnaughton_slot([], 0.0, 1.0, 0.0, [0]) == []
        with pytest.raises(ValueError):
            mcnaughton_slot([("a", 1.0)], 0.0, 1.0, 0.0, [0])


class TestAVRm:
    @pytest.mark.parametrize("m", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_schedule_feasible(self, m, seed):
        rng = np.random.default_rng(seed)
        jobs = random_classical_jobs(rng, 10)
        result = avr_m(jobs, m)
        report = check_feasible(result.schedule, Instance(jobs, m))
        assert report.ok, report.violations

    def test_m1_equals_avr_energy(self, rng, power3):
        from repro.speed_scaling.avr import avr_profile

        jobs = random_classical_jobs(rng, 8)
        assert math.isclose(
            avr_m(jobs, 1).energy(power3),
            avr_profile(jobs).energy(power3),
            rel_tol=1e-9,
        )

    @pytest.mark.parametrize("m", [2, 4])
    def test_energy_within_bound_of_pooled_lb(self, m, rng, power3):
        jobs = random_classical_jobs(rng, 10)
        energy = avr_m(jobs, m).energy(power3)
        lb = pooled_lower_bound(jobs, m, 3.0)
        assert energy >= lb * (1 - 1e-9)

    def test_more_machines_never_hurt(self, rng, power3):
        jobs = random_classical_jobs(rng, 10)
        e2 = avr_m(jobs, 2).energy(power3)
        e4 = avr_m(jobs, 4).energy(power3)
        assert e4 <= e2 * (1 + 1e-9)


class TestBoundsAndOptimal:
    def test_pooled_lb_m1_is_yds(self, rng):
        jobs = random_classical_jobs(rng, 8)
        assert math.isclose(
            pooled_lower_bound(jobs, 1, 3.0), optimal_energy(jobs, 3.0), rel_tol=1e-9
        )

    def test_pooled_lb_decreases_with_machines(self, rng):
        jobs = random_classical_jobs(rng, 8)
        assert pooled_lower_bound(jobs, 4, 3.0) < pooled_lower_bound(jobs, 2, 3.0)

    def test_max_speed_lb_respects_single_job_density(self):
        jobs = [Job(0, 1, 5, "dense"), Job(0, 10, 1, "light")]
        assert max_speed_lower_bound(jobs, 8) >= 5.0

    def test_slot_energy_all_small(self):
        # 2 machines, works [1, 1], length 1 -> shared speed 1 each
        assert math.isclose(slot_energy(np.array([1.0, 1.0]), 1.0, 2, 3.0), 2.0)

    def test_slot_energy_big_job(self):
        # works [3, 1] on 2 machines: 3 > 4/2 -> big at speed 3, small at 1
        e = slot_energy(np.array([3.0, 1.0]), 1.0, 2, 3.0)
        assert math.isclose(e, 27.0 + 1.0)

    def test_slot_energy_equals_pooled_when_no_big_jobs(self):
        """With no dominant job, sharing everything equally is optimal."""
        works = np.array([2.0, 1.0, 1.0])
        e = slot_energy(works, 1.0, 2, 3.0)
        pooled = 2 * (works.sum() / 2) ** 3
        assert math.isclose(e, pooled)

    def test_slot_energy_exceeds_pooled_with_big_job(self):
        """A job above per-machine average forces energy above the pooled
        relaxation (which illegally parallelises the job with itself)."""
        works = np.array([4.0, 1.0, 1.0])
        e = slot_energy(works, 1.0, 2, 3.0)
        pooled = 2 * (works.sum() / 2) ** 3
        assert e > pooled
        # and matches the hand-computed optimum: big at 4, shared at 2
        assert math.isclose(e, 4.0**3 + 2.0**3)

    @pytest.mark.parametrize("m", [2, 3])
    def test_convex_optimum_between_lb_and_avr_m(self, m):
        rng = np.random.default_rng(3)
        jobs = random_classical_jobs(rng, 5, horizon=4.0)
        opt = convex_optimal_energy(jobs, m, 3.0)
        lb = pooled_lower_bound(jobs, m, 3.0)
        ub = avr_m(jobs, m).energy(PowerFunction(3.0))
        assert lb * (1 - 1e-6) <= opt <= ub * (1 + 1e-6)

    def test_avr_m_within_paper_bound_of_exact_optimum(self):
        rng = np.random.default_rng(5)
        jobs = random_classical_jobs(rng, 5, horizon=4.0)
        opt = convex_optimal_energy(jobs, 2, 3.0)
        energy = avr_m(jobs, 2).energy(PowerFunction(3.0))
        assert energy <= avr_m_ub_energy(3.0) * opt * (1 + 1e-6)

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_optimal_schedule_realises_the_optimum(self, m):
        """The constructed schedule is feasible and matches the convex value."""
        from repro.core.feasibility import check_feasible
        from repro.core.instance import Instance
        from repro.speed_scaling.multi.optimal import optimal_schedule

        rng = np.random.default_rng(11)
        jobs = random_classical_jobs(rng, 5, horizon=4.0)
        schedule = optimal_schedule(jobs, m, 3.0)
        report = check_feasible(schedule, Instance(jobs, m), tol=1e-5)
        assert report.ok, report.violations
        value = convex_optimal_energy(jobs, m, 3.0)
        assert schedule.energy(PowerFunction(3.0)) <= value * (1 + 1e-3)

    def test_optimal_schedule_empty(self):
        from repro.speed_scaling.multi.optimal import optimal_schedule

        assert optimal_schedule([], 2, 3.0).slices() == []

    def test_optimal_allocation_conserves_work(self):
        from repro.speed_scaling.multi.optimal import optimal_allocation

        rng = np.random.default_rng(13)
        jobs = random_classical_jobs(rng, 5, horizon=4.0)
        alloc = optimal_allocation(jobs, 2, 3.0)
        for j in jobs:
            assert sum(alloc.get(j.id, {}).values()) == pytest.approx(
                j.work, rel=1e-6
            )
