"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

from repro.core import Job


def random_classical_jobs(rng, n, horizon=8.0):
    """Seeded random classical jobs used across many test modules."""
    jobs = []
    for i in range(n):
        r = float(rng.uniform(0, horizon))
        span = float(rng.uniform(0.3, 3.0))
        w = float(rng.uniform(0.1, 4.0))
        jobs.append(Job(r, r + span, w, f"r{i}"))
    return jobs
