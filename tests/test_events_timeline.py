"""OnlineStream and timeline helpers."""

from repro.core.events import Arrival, OnlineStream
from repro.core.job import Job
from repro.core.timeline import dedupe_times, elementary_intervals, interval_index


class TestOnlineStream:
    def test_sorted_by_time(self):
        s = OnlineStream([Arrival(2.0, "b"), Arrival(1.0, "a")])
        assert [a.job for a in s] == ["a", "b"]

    def test_from_jobs_uses_release(self):
        jobs = [Job(3, 4, 1, "x"), Job(1, 2, 1, "y")]
        s = OnlineStream.from_jobs(jobs)
        assert [a.job.id for a in s] == ["y", "x"]
        assert [a.time for a in s] == [1, 3]

    def test_add_keeps_order(self):
        s = OnlineStream([Arrival(2.0, "b")])
        s.add(1.0, "a")
        assert [a.job for a in s] == ["a", "b"]

    def test_jobs_arrived_by(self):
        s = OnlineStream([Arrival(1.0, "a"), Arrival(2.0, "b")])
        assert s.jobs_arrived_by(1.5) == ["a"]
        assert s.jobs_arrived_by(2.0) == ["a", "b"]
        assert s.jobs_arrived_by(0.5) == []

    def test_play_delivers_in_order(self):
        s = OnlineStream([Arrival(2.0, "b"), Arrival(1.0, "a")])
        seen = []
        s.play(lambda t, j: seen.append((t, j)))
        assert seen == [(1.0, "a"), (2.0, "b")]

    def test_arrival_times_deduplicated(self):
        s = OnlineStream([Arrival(1.0, "a"), Arrival(1.0, "b"), Arrival(2.0, "c")])
        assert s.arrival_times() == [1.0, 2.0]


class TestTimeline:
    def test_dedupe_times(self):
        assert dedupe_times([3.0, 1.0, 1.0 + 1e-12, 2.0]) == [1.0, 2.0, 3.0]

    def test_elementary_intervals(self):
        assert elementary_intervals([0, 2, 1]) == [(0, 1), (1, 2)]

    def test_interval_index(self):
        ivs = [(0.0, 1.0), (1.0, 2.0)]
        assert interval_index(ivs, 0.5) == 0
        assert interval_index(ivs, 1.0) == 1
        assert interval_index(ivs, 2.5) == -1
