"""SpeedProfile: the piecewise-constant speed function and its algebra."""

import math

import pytest

from repro.core.power import PowerFunction
from repro.core.profile import Segment, SpeedProfile, max_profiles, sum_profiles


class TestSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            Segment(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Segment(0.0, 1.0, -1.0)

    def test_work(self):
        assert Segment(0.0, 2.0, 3.0).work == 6.0


class TestConstruction:
    def test_empty(self):
        p = SpeedProfile()
        assert p.is_empty
        assert p.total_work() == 0.0
        assert p.max_speed() == 0.0

    def test_drops_zero_speed_segments(self):
        p = SpeedProfile([Segment(0, 1, 0.0) if False else Segment(0, 1, 1.0)])
        q = SpeedProfile.constant(0, 1, 0.0)
        assert q.is_empty
        assert not p.is_empty

    def test_merges_adjacent_equal_speed(self):
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 2, 2.0)])
        assert len(p) == 1
        assert p.segments[0].end == 2.0

    def test_keeps_adjacent_different_speed(self):
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 2, 3.0)])
        assert len(p) == 2

    def test_sorts_segments(self):
        p = SpeedProfile([Segment(2, 3, 1.0), Segment(0, 1, 1.0)])
        assert p.segments[0].start == 0

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            SpeedProfile([Segment(0, 2, 1.0), Segment(1, 3, 1.0)])

    def test_from_breakpoints(self):
        p = SpeedProfile.from_breakpoints(times=[0, 1, 3], speeds=[2.0, 1.0])
        assert p.speed_at(0.5) == 2.0
        assert p.speed_at(2.0) == 1.0
        with pytest.raises(ValueError):
            SpeedProfile.from_breakpoints(times=[0, 1], speeds=[1.0, 2.0])

    def test_from_breakpoints_positional_deprecated(self):
        with pytest.warns(DeprecationWarning, match="from_breakpoints"):
            p = SpeedProfile.from_breakpoints([0, 1, 3], [2.0, 1.0])
        assert p == SpeedProfile.from_breakpoints(times=[0, 1, 3], speeds=[2.0, 1.0])

    def test_from_segments(self):
        p = SpeedProfile.from_segments(
            starts=[0.0, 2.0], ends=[1.0, 3.0], speeds=[2.0, 4.0]
        )
        assert p == SpeedProfile([Segment(0, 1, 2.0), Segment(2, 3, 4.0)])
        with pytest.raises(ValueError):
            SpeedProfile.from_segments(starts=[0.0], ends=[0.0], speeds=[1.0])
        with pytest.raises(ValueError):
            SpeedProfile.from_segments(starts=[0.0, 1.0], ends=[2.0, 3.0], speeds=[1.0, 1.0])
        with pytest.raises(ValueError):
            SpeedProfile.from_segments(starts=[0.0], ends=[1.0], speeds=[1.0, 2.0])


class TestQueries:
    def test_speed_at_half_open(self):
        p = SpeedProfile.constant(1.0, 2.0, 5.0)
        assert p.speed_at(0.99) == 0.0
        assert p.speed_at(1.0) == 5.0  # closed left
        assert p.speed_at(1.99) == 5.0
        assert p.speed_at(2.0) == 0.0  # open right

    def test_work_in(self):
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(2, 3, 4.0)])
        assert p.work_in(0.0, 3.0) == 6.0
        assert p.work_in(0.5, 2.5) == 1.0 + 2.0
        assert p.work_in(1.0, 2.0) == 0.0
        assert p.work_in(3.0, 2.0) == 0.0  # inverted -> 0

    def test_total_work_and_max_speed(self):
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 3, 1.0)])
        assert p.total_work() == 4.0
        assert p.max_speed() == 2.0

    def test_energy(self):
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 3, 1.0)])
        assert math.isclose(p.energy(PowerFunction(3.0)), 8.0 + 2.0)

    def test_breakpoints(self):
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 3, 1.0), Segment(5, 6, 1.0)])
        assert p.breakpoints() == [0, 1, 3, 5, 6]

    def test_start_end(self):
        p = SpeedProfile([Segment(1, 2, 1.0), Segment(4, 5, 1.0)])
        assert p.start == 1.0
        assert p.end == 5.0


class TestAlgebra:
    def test_scale(self):
        p = SpeedProfile.constant(0, 2, 3.0).scale(2.0)
        assert p.speed_at(1.0) == 6.0
        with pytest.raises(ValueError):
            p.scale(-1.0)

    def test_scale_energy_power_law(self):
        """Scaling speeds by k multiplies energy by k^alpha."""
        p = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 2, 1.0)])
        pw = PowerFunction(2.5)
        assert math.isclose(p.scale(3.0).energy(pw), 3.0**2.5 * p.energy(pw))

    def test_shift(self):
        p = SpeedProfile.constant(0, 1, 1.0).shift(2.5)
        assert p.speed_at(2.75) == 1.0
        assert p.speed_at(0.5) == 0.0

    def test_restrict(self):
        p = SpeedProfile.constant(0, 4, 2.0).restrict(1.0, 2.0)
        assert p.total_work() == 2.0
        assert p.speed_at(0.5) == 0.0

    def test_add(self):
        a = SpeedProfile.constant(0, 2, 1.0)
        b = SpeedProfile.constant(1, 3, 2.0)
        s = a + b
        assert s.speed_at(0.5) == 1.0
        assert s.speed_at(1.5) == 3.0
        assert s.speed_at(2.5) == 2.0

    def test_sum_profiles_work_is_additive(self):
        a = SpeedProfile.constant(0, 2, 1.5)
        b = SpeedProfile.constant(1, 4, 0.5)
        assert math.isclose(sum_profiles([a, b]).total_work(), a.total_work() + b.total_work())

    def test_max_profiles(self):
        a = SpeedProfile.constant(0, 2, 1.0)
        b = SpeedProfile.constant(1, 3, 2.0)
        m = max_profiles([a, b])
        assert m.speed_at(0.5) == 1.0
        assert m.speed_at(1.5) == 2.0

    def test_dominates(self):
        a = SpeedProfile.constant(0, 2, 2.0)
        b = SpeedProfile.constant(0.5, 1.5, 1.0)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_equality(self):
        a = SpeedProfile([Segment(0, 1, 1.0), Segment(1, 2, 1.0)])
        b = SpeedProfile.constant(0, 2, 1.0)
        assert a == b
        assert a != SpeedProfile.constant(0, 2, 1.5)
