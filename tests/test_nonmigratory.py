"""The non-migratory variant (paper Sec. 7 remark)."""

import math

import numpy as np
import pytest

from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.qbss.nonmigratory import avrq_nm
from repro.speed_scaling.multi.avr_m import avr_m
from repro.speed_scaling.multi.bounds import pooled_lower_bound
from repro.speed_scaling.multi.nonmigratory import (
    assign_arrival_least_density,
    assign_greedy_energy,
    assign_least_density,
    assign_round_robin,
    non_migratory,
)
from repro.speed_scaling.yds import optimal_energy
from repro.workloads.generators import multi_machine_instance, online_instance

from _testutil import random_classical_jobs


class TestAssigners:
    def test_round_robin_spreads(self):
        jobs = [Job(0, 1, 1, f"j{i}") for i in range(6)]
        assignment = assign_round_robin(jobs, 3)
        counts = [list(assignment.values()).count(m) for m in range(3)]
        assert counts == [2, 2, 2]

    def test_least_density_separates_overlapping_jobs(self):
        # two identical overlapping heavy jobs should land on two machines
        jobs = [Job(0, 1, 5, "a"), Job(0, 1, 5, "b"), Job(2, 3, 0.1, "c")]
        assignment = assign_least_density(jobs, 2)
        assert assignment["a"] != assignment["b"]

    def test_least_density_colocates_disjoint_jobs(self):
        # disjoint windows have no overlap cost: both can share machine 0
        jobs = [Job(0, 1, 5, "a"), Job(2, 3, 5, "b")]
        assignment = assign_least_density(jobs, 2)
        assert assignment["a"] == assignment["b"] == 0

    @pytest.mark.parametrize(
        "assigner",
        [assign_round_robin, assign_least_density, assign_arrival_least_density],
    )
    def test_all_jobs_assigned_valid_machines(self, assigner, rng):
        jobs = random_classical_jobs(rng, 12)
        assignment = assigner(jobs, 3)
        assert set(assignment) == {j.id for j in jobs}
        assert all(0 <= m < 3 for m in assignment.values())

    def test_greedy_energy_not_worse_than_round_robin(self):
        rng = np.random.default_rng(4)
        jobs = random_classical_jobs(rng, 8)
        p = PowerFunction(3.0)
        e_greedy = non_migratory(jobs, 2, assign_greedy_energy).energy(p)
        e_rr = non_migratory(jobs, 2, assign_round_robin).energy(p)
        assert e_greedy <= e_rr * (1 + 1e-9)


class TestNonMigratory:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_schedule_feasible_and_stays_on_one_machine(self, m, rng):
        jobs = random_classical_jobs(rng, 10)
        result = non_migratory(jobs, m)
        report = check_feasible(result.schedule, Instance(jobs, m))
        assert report.ok, report.violations
        # non-migratory: every job's slices on exactly one machine
        for job in jobs:
            machines_used = {
                mi
                for mi in range(m)
                for s in result.schedule.slices(mi)
                if s.job_id == job.id
            }
            assert len(machines_used) <= 1

    def test_m1_equals_yds(self, rng):
        jobs = random_classical_jobs(rng, 8)
        result = non_migratory(jobs, 1)
        assert math.isclose(
            result.energy(PowerFunction(3.0)),
            optimal_energy(jobs, 3.0),
            rel_tol=1e-9,
        )

    def test_bounded_by_pooled_lb_and_beats_single_machine(self, rng):
        """No migration costs energy versus the migratory relaxation but a
        second machine still beats one machine."""
        jobs = random_classical_jobs(rng, 10)
        p = PowerFunction(3.0)
        e_nm = non_migratory(jobs, 2).energy(p)
        assert e_nm >= pooled_lower_bound(jobs, 2, 3.0) * (1 - 1e-9)
        assert e_nm <= optimal_energy(jobs, 3.0) * (1 + 1e-9)

    def test_migration_gap_vs_avr_m(self, rng):
        """Offline non-migratory YDS beats online migratory AVR(m) here —
        an empirical regression guard for the assignment quality."""
        jobs = random_classical_jobs(rng, 10)
        p = PowerFunction(3.0)
        e_nm = non_migratory(jobs, 3).energy(p)
        e_avr = avr_m(jobs, 3).energy(p)
        assert e_nm <= e_avr * (1 + 1e-9)


class TestExactNonMigratory:
    def test_rejects_large_instances(self, rng):
        from repro.speed_scaling.multi.nonmigratory import optimal_non_migratory

        jobs = random_classical_jobs(rng, 12)
        with pytest.raises(ValueError):
            optimal_non_migratory(jobs, 2, 3.0)

    def test_beats_every_heuristic(self):
        from repro.speed_scaling.multi.nonmigratory import optimal_non_migratory

        rng = np.random.default_rng(9)
        jobs = random_classical_jobs(rng, 6)
        p = PowerFunction(3.0)
        exact = optimal_non_migratory(jobs, 2, 3.0).energy(p)
        for assigner in (
            assign_round_robin,
            assign_least_density,
            assign_greedy_energy,
        ):
            heur = non_migratory(jobs, 2, assigner).energy(p)
            assert exact <= heur * (1 + 1e-9)

    def test_at_least_migratory_optimum(self):
        from repro.speed_scaling.multi.nonmigratory import optimal_non_migratory
        from repro.speed_scaling.multi.optimal import convex_optimal_energy

        rng = np.random.default_rng(10)
        jobs = random_classical_jobs(rng, 6)
        exact_nm = optimal_non_migratory(jobs, 2, 3.0).energy(PowerFunction(3.0))
        migratory = convex_optimal_energy(jobs, 2, 3.0)
        assert exact_nm >= migratory * (1 - 1e-4)

    def test_schedule_feasible_and_pinned(self):
        from repro.speed_scaling.multi.nonmigratory import optimal_non_migratory

        rng = np.random.default_rng(11)
        jobs = random_classical_jobs(rng, 6)
        result = optimal_non_migratory(jobs, 3, 3.0)
        report = check_feasible(result.schedule, Instance(jobs, 3))
        assert report.ok, report.violations
        for job in jobs:
            machines_used = {
                mi
                for mi in range(3)
                for s in result.schedule.slices(mi)
                if s.job_id == job.id
            }
            assert len(machines_used) <= 1

    def test_empty(self):
        from repro.speed_scaling.multi.nonmigratory import optimal_non_migratory

        result = optimal_non_migratory([], 2, 3.0)
        assert result.energy(PowerFunction(3.0)) == 0.0


class TestAVRQNM:
    @pytest.mark.parametrize("m", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_feasible(self, m, seed):
        qi = multi_machine_instance(10, m, seed=seed)
        result = avrq_nm(qi)
        report = result.validate()
        assert report.ok, report.violations

    def test_query_and_work_pinned_together(self):
        qi = multi_machine_instance(8, 3, seed=2)
        result = avrq_nm(qi)
        for qjob in qi:
            machines_used = set()
            for mi in range(3):
                for s in result.schedule.slices(mi):
                    if s.job_id.rsplit(":", 1)[0] == qjob.id:
                        machines_used.add(mi)
            assert len(machines_used) <= 1

    def test_m1_equals_avrq(self):
        from repro.qbss.avrq import avrq

        qi = online_instance(8, seed=3)
        p = PowerFunction(3.0)
        assert math.isclose(
            avrq_nm(qi).energy(p), avrq(qi).energy(p), rel_tol=1e-9
        )

    def test_queries_all_jobs(self):
        qi = multi_machine_instance(6, 2, seed=0)
        result = avrq_nm(qi)
        assert all(d.query for d in result.decisions.decisions.values())
