"""YDS: correctness, optimality and structural properties."""

import math

import numpy as np
import pytest

from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.speed_scaling.multi.optimal import convex_optimal_energy
from repro.speed_scaling.yds import (
    TimelineCompressor,
    optimal_energy,
    optimal_max_speed,
    yds,
    yds_profile,
)

from _testutil import random_classical_jobs


class TestTimelineCompressor:
    def test_compress_before_any_cut(self):
        c = TimelineCompressor(0.0)
        assert c.compress(3.0) == 3.0

    def test_compress_after_cut(self):
        c = TimelineCompressor(0.0)
        c.cut([(1.0, 2.0)])
        assert c.compress(0.5) == 0.5
        assert c.compress(1.5) == 1.0  # inside the cut -> left edge
        assert c.compress(3.0) == 2.0

    def test_cut_merging(self):
        c = TimelineCompressor(0.0)
        c.cut([(0.0, 1.0)])
        c.cut([(1.0, 2.0)])
        assert c.cuts == [(0.0, 2.0)]

    def test_expand_interval_roundtrip(self):
        c = TimelineCompressor(0.0)
        c.cut([(1.0, 2.0)])
        # compressed [0.5, 1.5) maps around the cut: [0.5,1.0) + [2.0,2.5)
        pieces = c.expand_interval(0.5, 1.5)
        assert pieces == [(0.5, 1.0), (2.0, 2.5)]

    def test_expand_total_length_preserved(self):
        c = TimelineCompressor(0.0)
        c.cut([(1.0, 1.5), (3.0, 4.0)])
        pieces = c.expand_interval(0.25, 2.75)
        assert math.isclose(sum(b - a for a, b in pieces), 2.5)


class TestYDSBasics:
    def test_single_job_constant_speed(self):
        result = yds([Job(0, 2, 4, "a")])
        assert result.profile == yds_profile([Job(0, 2, 4, "a")])
        assert math.isclose(result.profile.max_speed(), 2.0)
        assert math.isclose(result.profile.total_work(), 4.0)

    def test_empty_and_zero_work(self):
        assert yds([]).profile.is_empty
        assert yds([Job(0, 1, 0, "z")]).profile.is_empty

    def test_common_window_speed_is_sum_of_densities(self):
        jobs = [Job(0, 2, 1, "a"), Job(0, 2, 3, "b")]
        prof = yds_profile(jobs)
        assert math.isclose(prof.max_speed(), 2.0)
        assert len(prof) == 1

    def test_known_two_phase_instance(self, simple_jobs):
        """Worked example: critical interval (1.5, 3] at 8/3, then the rest at 2."""
        prof = yds_profile(simple_jobs)
        assert math.isclose(prof.speed_at(2.0), 8.0 / 3.0)
        assert math.isclose(prof.speed_at(0.5), 2.0)
        assert math.isclose(prof.speed_at(1.2), 2.0)

    def test_schedule_feasible(self, simple_jobs):
        result = yds(simple_jobs)
        report = check_feasible(result.schedule, Instance(simple_jobs))
        assert report.ok, report.violations

    def test_work_conservation(self, rng):
        jobs = random_classical_jobs(rng, 12)
        result = yds(jobs)
        total = sum(j.work for j in jobs)
        assert math.isclose(result.profile.total_work(), total, rel_tol=1e-6)

    def test_critical_speeds_non_increasing(self, rng):
        jobs = random_classical_jobs(rng, 10)
        result = yds(jobs)
        speeds = [ci.speed for ci in result.critical_intervals]
        assert all(a >= b - 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_interleaved_critical_intervals(self):
        """A later critical interval wraps around an earlier one."""
        jobs = [
            Job(1.0, 2.0, 10.0, "hot"),  # forces a spike in the middle
            Job(0.0, 3.0, 3.0, "cool"),  # spreads around it
        ]
        prof = yds_profile(jobs)
        assert math.isclose(prof.speed_at(1.5), 10.0)
        # the cool job runs at 3/2 over the remaining 2 units of time
        assert math.isclose(prof.speed_at(0.5), 1.5)
        assert math.isclose(prof.speed_at(2.5), 1.5)
        report = check_feasible(yds(jobs).schedule, Instance(jobs))
        assert report.ok, report.violations


class TestYDSOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0])
    def test_matches_convex_reference(self, seed, alpha):
        rng = np.random.default_rng(seed)
        jobs = random_classical_jobs(rng, 5, horizon=4.0)
        e_yds = optimal_energy(jobs, alpha)
        e_cvx = convex_optimal_energy(jobs, 1, alpha)
        assert e_yds <= e_cvx * (1 + 1e-4)
        assert e_cvx <= e_yds * (1 + 1e-4)

    def test_beats_naive_feasible_schedule(self, simple_jobs, power3):
        """Any hand-made feasible profile costs at least YDS."""
        from repro.core.profile import SpeedProfile
        from repro.core.edf import profile_feasible_for

        naive = SpeedProfile.constant(0.0, 3.0, 3.0)
        assert profile_feasible_for(simple_jobs, naive)
        assert naive.energy(power3) >= optimal_energy(simple_jobs, 3.0) - 1e-9

    def test_max_speed_equals_peak_intensity(self):
        jobs = [Job(0, 1, 2, "a"), Job(0, 4, 2, "b")]
        # interval (0,1] has intensity 2; (0,4] has 1
        assert math.isclose(optimal_max_speed(jobs), 2.0)

    def test_energy_monotone_in_work(self):
        base = [Job(0, 2, 1, "a"), Job(1, 3, 1, "b")]
        more = [Job(0, 2, 2, "a"), Job(1, 3, 1, "b")]
        assert optimal_energy(more, 3.0) > optimal_energy(base, 3.0)

    def test_energy_decreases_with_longer_windows(self):
        tight = [Job(0, 1, 2, "a")]
        loose = [Job(0, 2, 2, "a")]
        assert optimal_energy(loose, 3.0) < optimal_energy(tight, 3.0)
