"""The common-window minimax game."""

import math

import pytest

from repro.bounds.minimax import (
    CommonWindowJob,
    crcd_policy_value,
    minimax_common_window,
)
from repro.core.constants import PHI


def test_job_validation():
    with pytest.raises(ValueError):
        CommonWindowJob(0.0, 1.0)
    with pytest.raises(ValueError):
        CommonWindowJob(2.0, 1.0)


def test_input_validation():
    with pytest.raises(ValueError):
        minimax_common_window([], 3.0)
    with pytest.raises(ValueError):
        minimax_common_window([CommonWindowJob(0.5, 1.0)] * 7, 3.0)


def test_lemma43_instance_minimax_at_least_claimed_bound():
    """No two-phase policy beats Lemma 4.3's 2^{alpha-1} on (c=1, w=2)."""
    mm = minimax_common_window([CommonWindowJob(1.0, 2.0)], 3.0)
    assert mm.value >= 2.0 ** (3.0 - 1.0) - 1e-6


def test_lemma43_crcd_is_near_minimax():
    """CRCD's value on the Lemma 4.3 instance is within grid slack of the
    minimax optimum (both choose to query and split near the middle)."""
    jobs = [CommonWindowJob(1.0, 2.0)]
    mm = minimax_common_window(jobs, 3.0)
    crcd_val, crcd_q = crcd_policy_value(jobs, 3.0)
    assert crcd_q == (0,)
    assert crcd_val <= mm.value * 1.1
    assert mm.query_set == (0,)


def test_golden_instance_value_phi_alpha():
    """On (c=1, w=phi) the minimax value is at least phi^alpha (Lemma 4.2)."""
    mm = minimax_common_window([CommonWindowJob(1.0, PHI)], 3.0)
    assert mm.value >= PHI**3.0 - 1e-6


def test_minimax_never_exceeds_crcd():
    """CRCD is one point of the design space: minimax <= CRCD everywhere."""
    cases = [
        [CommonWindowJob(0.3, 2.0), CommonWindowJob(1.5, 2.0)],
        [CommonWindowJob(0.1, 1.0), CommonWindowJob(0.2, 3.0)],
        [CommonWindowJob(0.9, 1.0), CommonWindowJob(1.8, 2.0)],
    ]
    for jobs in cases:
        mm = minimax_common_window(jobs, 3.0)
        crcd_val, _ = crcd_policy_value(jobs, 3.0)
        # grid slack: minimax's x grid may miss CRCD's exact 0.5 point
        assert mm.value <= crcd_val * (1 + 1e-6)


def test_adversary_prefers_extremes_single_job():
    """On (c=1, w=2) the worst w* for the query policy is w itself."""
    mm = minimax_common_window(
        [CommonWindowJob(1.0, 2.0)], 3.0, x_grid=[0.5]
    )
    assert mm.worst_wstar == (2.0,)


def test_cheap_queries_get_queried():
    jobs = [CommonWindowJob(0.05, 1.0), CommonWindowJob(0.05, 2.0)]
    mm = minimax_common_window(jobs, 3.0)
    assert mm.query_set == (0, 1)


def test_expensive_queries_not_queried():
    jobs = [CommonWindowJob(0.99, 1.0), CommonWindowJob(1.98, 2.0)]
    mm = minimax_common_window(jobs, 3.0)
    assert mm.query_set == ()


def test_no_query_policy_value_closed_form():
    """With Q empty the value is (sum w / sum min(w, c))^alpha, balanced."""
    jobs = [CommonWindowJob(0.5, 1.0)]
    mm = minimax_common_window(
        jobs, 2.0, x_grid=[0.5], lam_grid=[0.5]
    )
    # forced no-query comparison: ratio = (w / c)^alpha = 4 when not querying;
    # the solver may still prefer querying, so just check the bound holds
    assert mm.value <= 4.0 + 1e-9
