"""The Sec. 4.2 rho ratios."""

import math

import pytest

from repro.bounds import rho


def test_rho1_rho2_closed_forms():
    phi = (1 + 5**0.5) / 2
    assert math.isclose(rho.rho2(3.0), 8.0)
    assert math.isclose(rho.rho1(2.0), 2.0 * phi**2)


def test_f1_decreasing_f2_limits():
    a = 2.5
    assert rho.f1(1.0, a) > rho.f1(2.0, a) > rho.f1(10.0, a)
    # f1 tends to 2^{a-1}
    assert math.isclose(rho.f1(1e9, a), 2 ** (a - 1), rel_tol=1e-6)
    # f2 tends to rho1
    assert math.isclose(rho.f2(1e9, a), rho.rho1(a), rel_tol=1e-3)


def test_rho3_requires_alpha_ge_2():
    with pytest.raises(ValueError):
        rho.rho3(1.5)


@pytest.mark.parametrize(
    "alpha,paper",
    list(zip(rho.PAPER_ALPHA_GRID[3:], rho.PAPER_RHO3[3:])),
)
def test_rho3_matches_paper(alpha, paper):
    assert abs(rho.rho3(alpha) - paper) <= 0.015 * paper


@pytest.mark.parametrize(
    "alpha,paper", list(zip(rho.PAPER_ALPHA_GRID, rho.PAPER_RHO1))
)
def test_rho1_matches_paper(alpha, paper):
    assert abs(rho.rho1(alpha) - paper) <= 0.015 * paper


@pytest.mark.parametrize(
    "alpha,paper", list(zip(rho.PAPER_ALPHA_GRID, rho.PAPER_RHO2))
)
def test_rho2_matches_paper(alpha, paper):
    assert abs(rho.rho2(alpha) - paper) <= 0.015 * paper


def test_rho3_never_exceeds_rho1_or_rho2():
    for a in (2.0, 2.25, 2.5, 3.0, 4.0):
        r3 = rho.rho3(a)
        assert r3 <= rho.rho1(a) + 1e-9
        assert r3 <= rho.rho2(a) + 1e-9


def test_regimes_match_paper_claims():
    assert rho.best_regime(1.3) == "rho1"
    assert rho.best_regime(1.7) == "rho2"
    assert rho.best_regime(2.25) == "rho3"
    # the paper's 1.44 crossover between rho1 and rho2
    assert rho.rho1(1.43) < rho.rho2(1.43)
    assert rho.rho1(1.45) > rho.rho2(1.45)


def test_best_ratio_is_min():
    for a in (1.25, 1.75, 2.5):
        candidates = [rho.rho1(a), rho.rho2(a)]
        if a >= 2:
            candidates.append(rho.rho3(a))
        assert math.isclose(rho.best_ratio(a), min(candidates))


def test_rho_table_shape():
    rows = rho.rho_table()
    assert len(rows) == len(rho.PAPER_ALPHA_GRID)
    assert rows[0].rho3 is None
    assert rows[-1].rho3 is not None
