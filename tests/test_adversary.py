"""The single-job adversarial game and its use against real algorithms."""

import math

import pytest

from repro.bounds.adversary import (
    adversarial_ratio,
    algorithm_value,
    best_deterministic_decision,
    game_value,
    optimal_value,
)
from repro.core.constants import PHI
from repro.qbss.crcd import crcd


class TestClosedForm:
    def test_optimal_value(self):
        assert optimal_value(1.0, 2.0, 0.0, 3.0, "max_speed") == 1.0
        assert optimal_value(1.0, 2.0, 2.0, 3.0, "max_speed") == 2.0
        assert optimal_value(1.0, 2.0, 0.5, 3.0, "energy") == 1.5**3

    def test_algorithm_value_no_query(self):
        assert algorithm_value(False, None, 1.0, 2.0, 0.0, 3.0, "max_speed") == 2.0
        assert algorithm_value(False, None, 1.0, 2.0, 0.0, 3.0, "energy") == 8.0

    def test_algorithm_value_query_speeds(self):
        # x = 0.5: query speed 2c, work speed 2w*
        v = algorithm_value(True, 0.5, 1.0, 2.0, 1.5, 3.0, "max_speed")
        assert math.isclose(v, 3.0)  # max(2, 3)

    def test_algorithm_value_query_energy(self):
        v = algorithm_value(True, 0.5, 1.0, 2.0, 1.0, 3.0, "energy")
        assert math.isclose(v, 0.5 * 8 + 0.5 * 8)

    def test_query_requires_valid_split(self):
        with pytest.raises(ValueError):
            algorithm_value(True, None, 1.0, 2.0, 0.0, 3.0, "energy")

    def test_game_value_lemma43_no_query(self):
        # skipping on (c=1, w=2): adversary sets w*=0 -> speed ratio 2
        ratio, wstar = game_value(False, None, 1.0, 2.0, 3.0, "max_speed")
        assert math.isclose(ratio, 2.0)
        assert wstar == 0.0

    def test_game_value_lemma43_query_left_half(self):
        # x <= 1/2: adversary sets w*=0; energy ratio = x^{1-a}
        for x in (0.25, 0.5):
            ratio, wstar = game_value(True, x, 1.0, 2.0, 3.0, "energy")
            assert ratio >= x ** (1 - 3.0) - 1e-9

    def test_best_decision_meets_lemma43(self):
        val_s, _, _ = best_deterministic_decision(1.0, 2.0, 3.0, "max_speed")
        val_e, _, _ = best_deterministic_decision(1.0, 2.0, 3.0, "energy")
        assert val_s >= 2.0 - 1e-6
        assert val_e >= 2.0 ** (3.0 - 1.0) - 1e-6

    def test_best_decision_meets_lemma42_on_phi_instance(self):
        # without an oracle the value is at least phi (speed) / phi^a (energy)
        val_s, _, _ = best_deterministic_decision(1.0, PHI, 2.0, "max_speed")
        val_e, _, _ = best_deterministic_decision(1.0, PHI, 2.0, "energy")
        assert val_s >= PHI - 1e-6
        assert val_e >= PHI**2.0 - 1e-6


class TestAgainstRealAlgorithms:
    def test_crcd_meets_speed_lower_bound(self):
        out = adversarial_ratio(crcd, 1.0, 2.0, 3.0, "max_speed")
        assert out.ratio >= 2.0 - 1e-9
        assert out.queried  # golden rule fires: 1 <= 2/phi

    def test_crcd_energy_against_adversary(self):
        out = adversarial_ratio(crcd, 1.0, 2.0, 3.0, "energy")
        # at least the deterministic LB, at most the CRCD UB
        assert 2.0 ** (3.0 - 1.0) - 1e-9 <= out.ratio <= 8.0 + 1e-9

    def test_never_query_baseline_unbounded(self):
        from repro.analysis.ratios import never_query_offline

        out = adversarial_ratio(
            never_query_offline, 0.01, 1.0, 3.0, "max_speed"
        )
        # adversary sets w* = 0: ratio w / c = 100
        assert out.ratio >= 100.0 - 1e-6
        assert not out.queried

    def test_decision_recorded(self):
        out = adversarial_ratio(crcd, 1.9, 2.0, 3.0, "energy")
        # c = 1.9 > 2/phi = 1.236: golden rule skips the query
        assert not out.queried
        assert out.split is None
