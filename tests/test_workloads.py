"""Workload generators and the motivating scenarios."""

import math

import numpy as np
import pytest

from repro.core.constants import PHI
from repro.workloads import (
    bursty_online_instance,
    code_optimizer_scenario,
    common_deadline_instance,
    common_release_instance,
    datacenter_batch_scenario,
    diurnal_trace_instance,
    file_compression_scenario,
    multi_machine_instance,
    online_instance,
    power_of_two_instance,
    UncertaintyModel,
)


ALL_GENERATORS = [
    lambda s: common_deadline_instance(20, seed=s),
    lambda s: power_of_two_instance(20, seed=s),
    lambda s: common_release_instance(20, seed=s),
    lambda s: online_instance(20, seed=s),
    lambda s: multi_machine_instance(20, 3, seed=s),
    lambda s: bursty_online_instance(3, 6, seed=s),
    lambda s: code_optimizer_scenario(20, seed=s),
    lambda s: file_compression_scenario(20, seed=s),
    lambda s: datacenter_batch_scenario(20, seed=s),
    lambda s: diurnal_trace_instance(20, seed=s),
]


@pytest.mark.parametrize("make", ALL_GENERATORS)
def test_deterministic_given_seed(make):
    a, b = make(42), make(42)
    for ja, jb in zip(a, b):
        assert (ja.release, ja.deadline, ja.query_cost, ja.work_upper, ja.work_true) == (
            jb.release,
            jb.deadline,
            jb.query_cost,
            jb.work_upper,
            jb.work_true,
        )


@pytest.mark.parametrize("make", ALL_GENERATORS)
def test_model_constraints_hold(make):
    """Every generated job satisfies 0 < c <= w and 0 <= w* <= w."""
    qi = make(7)
    assert len(qi) == 20 or len(qi) == 18  # bursty: 3 x 6
    for j in qi:
        assert j.deadline > j.release
        assert 0 < j.query_cost <= j.work_upper
        assert 0 <= j.work_true <= j.work_upper


def test_common_deadline_shape():
    qi = common_deadline_instance(10, deadline=4.0, seed=0)
    assert qi.common_release and qi.common_deadline
    assert all(j.deadline == 4.0 for j in qi)


def test_power_of_two_shape():
    qi = power_of_two_instance(30, max_exponent=3, seed=1)
    assert qi.common_release
    assert qi.power_of_two_deadlines
    assert all(j.deadline <= 8.0 for j in qi)


def test_common_release_shape():
    qi = common_release_instance(10, seed=2)
    assert qi.common_release
    assert not qi.common_deadline


def test_online_windows_bounded():
    qi = online_instance(25, horizon=5.0, min_window=1.0, max_window=2.0, seed=3)
    for j in qi:
        assert 1.0 <= j.span <= 2.0
        assert 0.0 <= j.release <= 5.0


def test_multi_machine_sets_machines():
    qi = multi_machine_instance(10, 4, seed=0)
    assert qi.machines == 4


def test_uncertainty_model_controls_query_cost():
    cheap = UncertaintyModel(query_frac_low=0.01, query_frac_high=0.05)
    qi = common_deadline_instance(50, seed=0, uncertainty=cheap)
    # with c <= 0.05 w << w/phi every job is golden-queried
    assert all(j.query_cost <= j.work_upper / PHI for j in qi)


def test_code_optimizer_queries_usually_worthwhile():
    qi = code_optimizer_scenario(200, seed=0)
    worthwhile = sum(1 for j in qi if j.query_worthwhile)
    assert worthwhile / len(qi) > 0.5


def test_file_compression_media_files_incompressible():
    qi = file_compression_scenario(300, seed=0)
    # a meaningful fraction barely compresses (media class, ratio >= 0.92)
    stubborn = sum(1 for j in qi if j.work_true >= 0.9 * j.work_upper)
    assert stubborn > 15


def test_diurnal_trace_concentrates_around_peak():
    """Arrivals cluster around the peak hour of the sinusoidal rate."""
    qi = diurnal_trace_instance(400, days=1.0, peak_hour=14.0, seed=0)
    releases = np.array([j.release for j in qi])
    near_peak = ((releases > 8.0) & (releases < 20.0)).mean()
    assert near_peak > 0.6  # well above the uniform 0.5


def test_diurnal_trace_respects_horizon():
    qi = diurnal_trace_instance(50, days=2.0, day_length=24.0, seed=1)
    assert all(0.0 <= j.release <= 48.0 for j in qi)


def test_datacenter_common_release():
    qi = datacenter_batch_scenario(15, machines=4, seed=0)
    assert qi.common_release
    assert qi.machines == 4
