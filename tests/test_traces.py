"""The trace subsystem: parsers, synthesis, sharding and streaming replay.

Covers the contracts ``docs/traces.md`` promises: strict per-line error
reporting, lazy iteration (bounded memory), deterministic synthesis, and
the replay determinism guarantee — serial, parallel and cached runs
serialize byte-identically.
"""

import itertools
import json
import math
import pathlib

import pytest

from repro import io as rio
from repro.core.constants import PHI
from repro.core.qjob import QJob
from repro.traces import (
    NOISE_MODELS,
    ParseStats,
    ReplayReport,
    TraceOrderError,
    TraceParseError,
    TraceRecord,
    detect_format,
    get_noise_model,
    iter_shards,
    parse_csv,
    parse_jsonl,
    parse_swf,
    replay_jobs,
    replay_trace,
    synthesize_job,
    synthesize_jobs,
    validate_replay_algorithms,
)

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_SWF = DATA / "sample.swf"
SAMPLE_CSV = DATA / "sample_trace.csv"
SAMPLE_JSONL = DATA / "sample_trace.jsonl"


# -- SWF parser ---------------------------------------------------------------------


def test_swf_sample_parses_with_skip_tallies():
    stats = ParseStats()
    records = list(parse_swf(SAMPLE_SWF, stats))
    assert len(records) == 10
    assert stats.emitted == 10
    assert stats.skipped == 2
    assert stats.skip_reasons == {
        "non-positive runtime": 1,
        "negative submit time": 1,
    }
    first = records[0]
    assert first.id == "swf-1"
    assert first.release == 0.0
    assert first.runtime == 30.5
    assert first.requested == 60.0
    assert first.deadline is None  # SWF has no deadlines
    # indices are contiguous over *emitted* records despite the skips
    assert [r.index for r in records] == list(range(10))


def test_swf_requested_minus_one_becomes_none():
    records = list(parse_swf(SAMPLE_SWF))
    by_id = {r.id: r for r in records}
    assert by_id["swf-6"].requested is None


def test_swf_is_lazy():
    stats = ParseStats()
    taken = list(itertools.islice(parse_swf(SAMPLE_SWF, stats), 3))
    assert len(taken) == 3
    # only what was pulled got parsed — the generator did not run ahead
    # (the tally for the last pulled record lands on the *next* pull)
    assert stats.emitted <= 3


def test_swf_short_line_is_located(tmp_path):
    bad = tmp_path / "short.swf"
    bad.write_text("; header\n1 0 -1 5 1 -1\n")
    with pytest.raises(TraceParseError) as err:
        list(parse_swf(bad))
    assert err.value.source == str(bad)
    assert err.value.line == 2
    assert "6 fields" in str(err.value)
    assert str(bad) + ":2:" in str(err.value)


def test_swf_non_numeric_field_is_located(tmp_path):
    bad = tmp_path / "nan.swf"
    line = "1 zero -1 5 1 -1 -1 1 10 -1 1 -1 -1 -1 1 -1 -1 -1\n"
    bad.write_text(line)
    with pytest.raises(TraceParseError, match="non-numeric"):
        list(parse_swf(bad))


# -- tabular parsers ----------------------------------------------------------------


@pytest.mark.parametrize(
    "parser,path",
    [(parse_csv, SAMPLE_CSV), (parse_jsonl, SAMPLE_JSONL)],
    ids=["csv", "jsonl"],
)
def test_tabular_sample_parses(parser, path):
    records = list(parser(path))
    assert len(records) == 10
    first = records[0]
    assert first.release == 0.0
    assert first.deadline == 90.0
    assert first.runtime == 30.5
    assert first.query_cost == 5.0
    assert first.id == "t0"  # generated when no id column


def test_csv_and_jsonl_samples_agree():
    csv_records = list(parse_csv(SAMPLE_CSV))
    jsonl_records = list(parse_jsonl(SAMPLE_JSONL))
    assert csv_records == jsonl_records


def test_csv_missing_column_rejected(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("release,runtime\n0,1\n")
    with pytest.raises(TraceParseError, match="missing required columns"):
        list(parse_csv(bad))


def test_csv_unknown_column_rejected(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("release,deadline,runtime,color\n0,2,1,red\n")
    with pytest.raises(TraceParseError, match="unknown columns"):
        list(parse_csv(bad))


def test_csv_empty_file_rejected(tmp_path):
    bad = tmp_path / "empty.csv"
    bad.write_text("")
    with pytest.raises(TraceParseError, match="empty CSV trace"):
        list(parse_csv(bad))


@pytest.mark.parametrize(
    "row,reason",
    [
        ("-1,2,1,1", "release must be >= 0"),
        ("0,2,0,1", "runtime must be > 0"),
        ("5,5,1,1", "deadline"),
        ("0,2,nope,1", "not a number"),
        ("0,inf,1,1", "finite"),
        ("0,2,1,0", "query_cost must be > 0"),
        ("0,2,1", "expected 4 cells, got 3"),
    ],
)
def test_csv_invalid_values_located_at_line_2(tmp_path, row, reason):
    bad = tmp_path / "bad.csv"
    bad.write_text(f"release,deadline,runtime,query_cost\n{row}\n")
    with pytest.raises(TraceParseError, match=reason) as err:
        list(parse_csv(bad))
    assert err.value.line == 2


def test_jsonl_invalid_json_located(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        '{"release": 0, "deadline": 2, "runtime": 1}\n{not json}\n'
    )
    with pytest.raises(TraceParseError, match="invalid JSON") as err:
        list(parse_jsonl(bad))
    assert err.value.line == 2


def test_jsonl_non_object_rejected(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("[1, 2, 3]\n")
    with pytest.raises(TraceParseError, match="expected a JSON object"):
        list(parse_jsonl(bad))


def test_jsonl_unknown_key_rejected(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"release": 0, "deadline": 2, "runtime": 1, "x": 9}\n')
    with pytest.raises(TraceParseError, match="unknown keys"):
        list(parse_jsonl(bad))


# -- uncertainty synthesis ----------------------------------------------------------


def test_noise_model_registry():
    assert set(NOISE_MODELS) == {"multiplicative", "lognormal", "adversarial"}
    assert get_noise_model("lognormal").name == "lognormal"
    with pytest.raises(KeyError, match="registered"):
        get_noise_model("gaussian")


def _record(index=0, runtime=10.0, **kw):
    defaults = dict(id=f"t{index}", release=float(index), runtime=runtime)
    defaults.update(kw)
    return TraceRecord(index=index, **defaults)


@pytest.mark.parametrize("name", sorted(NOISE_MODELS))
def test_synthesized_job_invariants(name):
    model = get_noise_model(name)
    for i in range(50):
        job = synthesize_job(_record(index=i, runtime=1.0 + i * 0.7), model)
        assert isinstance(job, QJob)
        assert 0.0 < job.query_cost <= job.work_upper
        assert job.work_true <= job.work_upper
        assert job.release < job.deadline
        assert job.work_true == 1.0 + i * 0.7  # w* is the observed runtime


def test_synthesis_is_seed_deterministic():
    model = get_noise_model("multiplicative")
    rec = _record(index=7)
    a = synthesize_job(rec, model, seed=42)
    b = synthesize_job(rec, model, seed=42)
    c = synthesize_job(rec, model, seed=43)
    assert a == b
    assert a != c


def test_synthesis_depends_on_index_not_stream_position():
    """The per-record (seed, index) RNG makes chunking irrelevant."""
    model = get_noise_model("multiplicative")
    recs = [_record(index=i) for i in range(6)]
    whole = list(synthesize_jobs(iter(recs), seed=1))
    # synthesize the back half alone — same draws as in the full stream
    back = list(synthesize_jobs(iter(recs[3:]), seed=1))
    assert whole[3:] == back


def test_adversarial_model_sits_on_golden_boundary():
    model = get_noise_model("adversarial")
    assert model.deterministic
    job = synthesize_job(_record(runtime=5.0), model)
    assert job.query_cost == pytest.approx(5.0 / PHI)
    assert job.work_upper == pytest.approx(PHI * (job.query_cost + 5.0))


def test_explicit_query_cost_is_honoured_and_clipped():
    model = get_noise_model("multiplicative")
    honoured = synthesize_job(_record(query_cost=0.5), model)
    assert honoured.query_cost == 0.5
    # a query cost larger than the drawn upper bound is clipped to w
    clipped = synthesize_job(_record(query_cost=1e9), model)
    assert clipped.query_cost == clipped.work_upper


def test_swf_deadline_from_slack_over_requested():
    model = get_noise_model("multiplicative")
    job = synthesize_job(
        _record(release=100.0, runtime=10.0, requested=40.0),
        model,
        deadline_slack=2.0,
    )
    assert job.deadline == pytest.approx(100.0 + 2.0 * 40.0)
    # without a requested time the observed runtime seeds the window
    job = synthesize_job(
        _record(release=100.0, runtime=10.0), model, deadline_slack=3.0
    )
    assert job.deadline == pytest.approx(100.0 + 3.0 * 10.0)


def test_synthesize_rejects_bad_inputs():
    model = get_noise_model("multiplicative")
    with pytest.raises(ValueError, match="deadline_slack"):
        synthesize_job(_record(), model, deadline_slack=0.0)
    with pytest.raises(KeyError):
        list(synthesize_jobs([_record()], model="nope"))


# -- sharding -----------------------------------------------------------------------


def _qjob(release, span=10.0, i=0):
    return QJob(release, release + span, 0.5, 2.0, 1.0, f"j{i}")


def test_iter_shards_grid_alignment_and_gaps():
    jobs = [_qjob(1.0, i=0), _qjob(2.0, i=1), _qjob(25.0, i=2)]
    shards = list(iter_shards(iter(jobs), window=10.0))
    assert [(s.index, s.start, s.end) for s in shards] == [
        (0, 0.0, 10.0),
        (2, 20.0, 30.0),  # the empty [10, 20) window is skipped
    ]
    assert [len(s.jobs) for s in shards] == [2, 1]


def test_iter_shards_rejects_unsorted_stream():
    jobs = [_qjob(50.0, i=0), _qjob(1.0, i=1)]
    with pytest.raises(TraceOrderError, match="release order"):
        list(iter_shards(iter(jobs), window=10.0))


def test_iter_shards_rejects_bad_window():
    with pytest.raises(ValueError, match="window"):
        list(iter_shards(iter([]), window=0.0))


def test_validate_replay_algorithms():
    assert validate_replay_algorithms(["avrq", "bkpq"]) == ("avrq", "bkpq")
    with pytest.raises(ValueError, match="at least one"):
        validate_replay_algorithms([])
    with pytest.raises(KeyError):
        validate_replay_algorithms(["nope"])
    with pytest.raises(ValueError, match="online"):
        validate_replay_algorithms(["crcd"])  # offline common-deadline


def test_detect_format():
    assert detect_format("a/b/log.swf") == "swf"
    assert detect_format("x.CSV") == "csv"
    assert detect_format("x.jsonl") == "jsonl"
    with pytest.raises(ValueError, match="--format"):
        detect_format("trace.log")


# -- streaming replay ---------------------------------------------------------------


def _replay_sample(path, tmp_path, **kw):
    kw.setdefault("shard_window", 100.0)
    kw.setdefault("cache_dir", tmp_path / "cache")
    return replay_trace(path, **kw)


def _canon(report):
    return json.dumps(report.to_dict(), sort_keys=True)


def test_replay_swf_end_to_end(tmp_path):
    report, metrics = _replay_sample(SAMPLE_SWF, tmp_path)
    assert report.trace_format == "swf"
    assert report.n_jobs == 10
    assert report.skipped == 2
    assert metrics.shards == len(report.shards) > 1
    assert metrics.misses == len(report.shards)
    for shard in report.shards:
        assert {row["algorithm"] for row in shard["rows"]} == {"avrq", "bkpq"}
        for row in shard["rows"]:
            assert row["energy_ratio"] >= 1.0 - 1e-9
            assert row["max_speed_ratio"] >= 1.0 - 1e-9


@pytest.mark.parametrize("path", [SAMPLE_SWF, SAMPLE_CSV], ids=["swf", "csv"])
def test_replay_respects_paper_bounds_on_every_shard(path, tmp_path):
    """Acceptance criterion: per-shard ratios within the proven bounds."""
    report, _ = _replay_sample(path, tmp_path, alpha=3.0)
    assert report.shards
    for shard in report.shards:
        for row in shard["rows"]:
            assert row["paper_bound"] is not None
            assert row["within_bound"] is True, (shard["index"], row)


def test_replay_parallel_and_cached_are_byte_identical(tmp_path):
    """Acceptance criterion: jobs=4 and warm-cache output == serial output."""
    serial, _ = _replay_sample(SAMPLE_CSV, tmp_path / "a", cache=False, jobs=1)
    parallel, _ = _replay_sample(SAMPLE_CSV, tmp_path / "b", cache=False, jobs=4)
    cold, m_cold = _replay_sample(SAMPLE_CSV, tmp_path, jobs=2)
    warm, m_warm = _replay_sample(SAMPLE_CSV, tmp_path, jobs=2)
    assert _canon(serial) == _canon(parallel) == _canon(cold) == _canon(warm)
    assert serial.render() == parallel.render() == warm.render()
    assert m_cold.misses == len(cold.shards) and m_cold.hits == 0
    assert m_warm.hits == len(warm.shards) and m_warm.misses == 0


def test_replay_streaming_is_bounded(tmp_path):
    """The replayer never materializes the trace: peak resident jobs is
    the largest shard, not the job count."""
    report, metrics = _replay_sample(SAMPLE_SWF, tmp_path, cache=False)
    largest = max(s["n_jobs"] for s in report.shards)
    assert metrics.peak_resident_jobs == largest < report.n_jobs


def test_replay_consumes_stream_lazily():
    """Shard evaluation interleaves with parsing — by the time the first
    shard's jobs are resident, the stream has not been drained."""
    pulled = []

    def stream():
        for i in range(100):
            pulled.append(i)
            yield _qjob(float(i), i=i)

    report, metrics = replay_jobs(
        stream(), shard_window=10.0, cache=False, algorithms=["avrq"]
    )
    assert len(pulled) == 100  # fully consumed by the end...
    assert metrics.peak_resident_jobs <= 11  # ...but never all at once


def test_replay_limit(tmp_path):
    report, _ = _replay_sample(SAMPLE_CSV, tmp_path, cache=False, limit=4)
    assert report.n_jobs == 4


def test_replay_seed_changes_results(tmp_path):
    a, _ = _replay_sample(SAMPLE_SWF, tmp_path, cache=False, seed=0)
    b, _ = _replay_sample(SAMPLE_SWF, tmp_path, cache=False, seed=9)
    assert _canon(a) != _canon(b)


def test_replay_cache_key_covers_alpha(tmp_path):
    _, m1 = _replay_sample(SAMPLE_CSV, tmp_path, alpha=3.0)
    _, m2 = _replay_sample(SAMPLE_CSV, tmp_path, alpha=2.5)
    assert m2.hits == 0  # alpha change must miss


def test_replay_report_summary_and_render():
    shards = [
        {
            "index": 0,
            "start": 0.0,
            "end": 10.0,
            "n_jobs": 2,
            "rows": [
                {
                    "algorithm": "avrq",
                    "energy": 4.0,
                    "optimal_energy": 2.0,
                    "energy_ratio": 2.0,
                    "max_speed": 1.0,
                    "optimal_max_speed": 1.0,
                    "max_speed_ratio": 1.0,
                    "paper_bound": 100.0,
                    "within_bound": True,
                }
            ],
        },
        {
            "index": 1,
            "start": 10.0,
            "end": 20.0,
            "n_jobs": 1,
            "rows": [
                {
                    "algorithm": "avrq",
                    "energy": 8.0,
                    "optimal_energy": 2.0,
                    "energy_ratio": 4.0,
                    "max_speed": 1.0,
                    "optimal_max_speed": 1.0,
                    "max_speed_ratio": 1.0,
                    "paper_bound": 100.0,
                    "within_bound": True,
                }
            ],
        },
    ]
    report = ReplayReport(
        source="synthetic",
        trace_format="csv",
        noise_model="multiplicative",
        seed=0,
        deadline_slack=2.0,
        alpha=3.0,
        shard_window=10.0,
        algorithms=["avrq"],
        shards=shards,
    )
    (row,) = report.summary_rows()
    name, n, mean, p50, p90, p99, mx, bound, within = row
    assert (name, n, bound, within) == ("avrq", 2, 100.0, True)
    assert mean == pytest.approx(3.0)
    assert p50 == pytest.approx(3.0)  # linear interpolation between 2 and 4
    assert p90 == pytest.approx(3.8)
    assert mx == 4.0
    text = report.render(max_shard_rows=1)
    assert "[REPLAY] synthetic" in text
    assert "1 more shards not shown" in text


def test_replay_report_io_round_trip(tmp_path):
    report, _ = _replay_sample(SAMPLE_CSV, tmp_path, cache=False)
    out = tmp_path / "replay.json"
    rio.save(report, out)
    loaded = rio.load(out)
    assert isinstance(loaded, ReplayReport)
    assert _canon(loaded) == _canon(report)
    assert loaded.render() == report.render()


def test_replay_unsorted_tabular_trace_raises(tmp_path):
    bad = tmp_path / "unsorted.csv"
    bad.write_text(
        "release,deadline,runtime\n100,200,5\n0,50,5\n"
    )
    with pytest.raises(TraceOrderError, match="sort the trace"):
        replay_trace(bad, cache=False)


def test_percentile_math():
    from repro.traces.replay import _percentile

    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(values, 0.0) == 1.0
    assert _percentile(values, 100.0) == 4.0
    assert _percentile(values, 50.0) == pytest.approx(2.5)
    assert _percentile([7.0], 90.0) == 7.0
    with pytest.raises(ValueError):
        _percentile([], 50.0)
    assert not math.isnan(_percentile(values, 33.0))
