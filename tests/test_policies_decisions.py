"""Query/split policies and decision records."""

import math

import pytest

from repro.core.constants import PHI
from repro.core.qjob import QJob
from repro.qbss.decisions import NO_QUERY, DecisionLog, QueryDecision, equal_window
from repro.qbss.policies import (
    AlwaysQuery,
    EqualWindowSplit,
    FixedSplit,
    NeverQuery,
    OracleQuery,
    OracleSplit,
    RandomizedQuery,
    ThresholdQuery,
    golden_ratio_policy,
)


def view(c, w, wstar=0.0, r=0.0, d=1.0):
    return QJob(r, d, c, w, wstar).view()


class TestQueryPolicies:
    def test_always_and_never(self):
        v = view(0.5, 1.0)
        assert AlwaysQuery().should_query(v)
        assert not NeverQuery().should_query(v)

    def test_golden_threshold_boundary(self):
        # query iff c <= w / phi
        w = 1.0
        just_below = view(w / PHI - 1e-9, w)
        just_above = view(w / PHI + 1e-9, w)
        pol = golden_ratio_policy()
        assert pol.should_query(just_below)
        assert not pol.should_query(just_above)

    def test_golden_exact_boundary_queries(self):
        pol = golden_ratio_policy()
        assert pol.should_query(view(1.0 / PHI, 1.0))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdQuery(0.0)

    def test_randomized_seeded_reproducible(self):
        a = RandomizedQuery(0.5, rng=42)
        b = RandomizedQuery(0.5, rng=42)
        v = view(0.5, 1.0)
        assert [a.should_query(v) for _ in range(20)] == [
            b.should_query(v) for _ in range(20)
        ]

    def test_randomized_extremes(self):
        v = view(0.5, 1.0)
        assert all(RandomizedQuery(1.0, rng=0).should_query(v) for _ in range(10))
        assert not any(RandomizedQuery(0.0, rng=0).should_query(v) for _ in range(10))

    def test_randomized_rho_validated(self):
        with pytest.raises(ValueError):
            RandomizedQuery(1.5)

    def test_oracle_query_uses_truth(self):
        pol = OracleQuery()
        assert pol.should_query_true(QJob(0, 1, 0.2, 1.0, 0.1))  # 0.3 < 1
        assert not pol.should_query_true(QJob(0, 1, 0.5, 1.0, 0.9))  # 1.4 >= 1

    def test_oracle_rejects_views(self):
        with pytest.raises(TypeError):
            OracleQuery().should_query(view(0.5, 1.0))


class TestSplitPolicies:
    def test_equal_window(self):
        assert EqualWindowSplit().split_fraction(view(0.5, 1.0)) == 0.5

    def test_fixed_split_validated(self):
        with pytest.raises(ValueError):
            FixedSplit(0.0)
        with pytest.raises(ValueError):
            FixedSplit(1.0)
        assert FixedSplit(0.3).split_fraction(view(0.5, 1.0)) == 0.3

    def test_proportional_split_tracks_query_share(self):
        from repro.qbss.policies import ProportionalSplit

        pol = ProportionalSplit()  # beta = 0.5
        # c = 1, w = 4: x = 1 / (1 + 2) = 1/3
        assert math.isclose(pol.split_fraction(view(1.0, 4.0)), 1.0 / 3.0)
        # tiny query -> tiny phase-1 window
        assert pol.split_fraction(view(0.01, 4.0)) < 0.01

    def test_proportional_split_stays_in_unit_interval(self):
        from repro.qbss.policies import ProportionalSplit

        pol = ProportionalSplit(beta=1e-9)
        x = pol.split_fraction(view(1.0, 1.0))
        assert 0.0 < x < 1.0

    def test_proportional_split_beta_validated(self):
        from repro.qbss.policies import ProportionalSplit
        import pytest as _pytest

        with _pytest.raises(ValueError):
            ProportionalSplit(beta=0.0)

    def test_oracle_split_balances_speed(self):
        j = QJob(0, 1, 1.0, 4.0, 3.0)
        x = OracleSplit().split_fraction_true(j)
        # constant speed: c/x == w*/(1-x)  =>  x = c/(c+w*) = 0.25
        assert math.isclose(x, 0.25)

    def test_oracle_split_zero_true_work(self):
        j = QJob(0, 1, 1.0, 4.0, 0.0)
        x = OracleSplit().split_fraction_true(j)
        assert 0.0 < x < 1.0  # capped, still a valid split

    def test_oracle_split_rejects_views(self):
        with pytest.raises(TypeError):
            OracleSplit().split_fraction(view(0.5, 1.0))


class TestDecisions:
    def test_query_needs_split(self):
        with pytest.raises(ValueError):
            QueryDecision(True, None)
        with pytest.raises(ValueError):
            QueryDecision(True, 1.0)

    def test_no_query_forbids_split(self):
        with pytest.raises(ValueError):
            QueryDecision(False, 0.5)

    def test_equal_window_helper(self):
        assert equal_window() == QueryDecision(True, 0.5)
        assert equal_window(False) == NO_QUERY

    def test_log_rejects_duplicates(self):
        log = DecisionLog()
        log.record("a", NO_QUERY)
        with pytest.raises(ValueError):
            log.record("a", NO_QUERY)

    def test_log_partitions(self):
        log = DecisionLog()
        log.record("a", QueryDecision(True, 0.5))
        log.record("b", NO_QUERY)
        assert log.queried_ids() == ["a"]
        assert log.unqueried_ids() == ["b"]
        assert "a" in log and log["a"].query
