"""Checkpointed replay: ``--checkpoint``/``--resume`` and crash-resume.

The unit layer pins the :class:`ReplayCheckpoint` file format (tolerant
torn-tail loading, fsync-per-record appends); the integration layer pins
that ``replay_jobs`` skips exactly the checkpointed shards and that a
replay SIGKILLed mid-run resumes to a byte-identical report.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import io as rio
from repro.cli import replay_main
from repro.engine.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec
from repro.traces.checkpoint import CHECKPOINT_KIND, ReplayCheckpoint
from repro.traces.records import TraceRecord
from repro.traces.replay import replay_jobs
from repro.traces.synthesize import synthesize_jobs

DATA = Path(__file__).parent / "data"
SAMPLE_CSV = str(DATA / "sample_trace.csv")
REPO_ROOT = Path(__file__).resolve().parent.parent


def job_stream(n=12):
    records = (
        TraceRecord(
            index=i,
            id=f"t{i}",
            release=i * 2.0,
            runtime=1.0 + i % 3,
            deadline=i * 2.0 + 8.0,
        )
        for i in range(n)
    )
    return synthesize_jobs(records, seed=0)


def run_replay(checkpoint=None, **kw):
    # releases 0..22, window 8 -> shards 0..2
    kw.setdefault("algorithms", ("avrq",))
    kw.setdefault("shard_window", 8.0)
    kw.setdefault("jobs", 1)
    kw.setdefault("cache", False)
    return replay_jobs(job_stream(), checkpoint=checkpoint, **kw)


class TestReplayCheckpoint:
    def test_record_and_resume_round_trip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ReplayCheckpoint(path) as ck:
            ck.record("k1", {"rows": [1]})
            ck.record("k2", {"rows": [2]})
            assert ck.completed == 2
        with ReplayCheckpoint(path, resume=True) as ck:
            assert ck.completed == 2
            assert ck.get("k1") == {"rows": [1]}
            assert ck.get("missing") is None
        doc = json.loads(path.read_text().splitlines()[0])
        assert doc["kind"] == CHECKPOINT_KIND and doc["version"] == 1

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ReplayCheckpoint(path) as ck:
            ck.record("k1", {"rows": []})
        with ReplayCheckpoint(path) as ck:  # resume=False starts over
            assert ck.completed == 0
        assert path.read_text() == ""

    def test_torn_tail_dropped_and_counted(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ReplayCheckpoint(path) as ck:
            ck.record("k1", {"rows": [1]})
            ck.record("k2", {"rows": [2]}, torn=True)  # crash mid-append
        with ReplayCheckpoint(path, resume=True) as ck:
            assert ck.torn == 1
            assert ck.completed == 1
            assert ck.get("k2") is None  # that shard simply re-runs

    def test_foreign_records_are_tolerated(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"kind": "something_else", "version": 9}\n')
        with ReplayCheckpoint(path, resume=True) as ck:
            assert ck.completed == 0 and ck.torn == 1

    def test_appends_are_fsynced(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        with ReplayCheckpoint(tmp_path / "ck.jsonl") as ck:
            ck.record("k1", {"rows": []})
        assert len(synced) == 1

    def test_record_after_close_raises(self, tmp_path):
        ck = ReplayCheckpoint(tmp_path / "ck.jsonl")
        ck.close()
        with pytest.raises(ValueError):
            ck.record("k1", {})

    def test_get_returns_copies(self, tmp_path):
        with ReplayCheckpoint(tmp_path / "ck.jsonl") as ck:
            ck.record("k1", {"rows": [1]})
            ck.get("k1")["rows"].append(99)
            assert ck.get("k1") == {"rows": [1]}


class TestReplayJobsCheckpoint:
    def test_first_run_checkpoints_every_shard(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ReplayCheckpoint(path) as ck:
            report, metrics = run_replay(checkpoint=ck)
            assert metrics.resumed == 0
            assert ck.completed == metrics.shards == 3
        assert report.n_jobs == 12

    def test_resume_skips_every_completed_shard(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ReplayCheckpoint(path) as ck:
            cold, _ = run_replay(checkpoint=ck)
        with ReplayCheckpoint(path, resume=True) as ck:
            warm, metrics = run_replay(checkpoint=ck)
        assert metrics.resumed == 3
        # the resumed report is byte-identical: payloads came from the
        # checkpoint, not from re-evaluation (cache=False throughout)
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )

    def test_partial_checkpoint_resumes_exactly_the_missing_shards(
        self, tmp_path
    ):
        path = tmp_path / "ck.jsonl"
        with ReplayCheckpoint(path) as ck:
            cold, _ = run_replay(checkpoint=ck)
        # keep only the first completed shard, as a crash would have
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0])
        with ReplayCheckpoint(path, resume=True) as ck:
            assert ck.completed == 1
            warm, metrics = run_replay(checkpoint=ck)
            assert metrics.resumed == 1
            assert metrics.shards == 3
            # the two re-run shards were checkpointed again
            assert ck.completed == 3
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )

    def test_cache_hits_backfill_the_checkpoint(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_replay(cache=True, cache_dir=cache_dir)  # warm the cache only
        with ReplayCheckpoint(tmp_path / "ck.jsonl") as ck:
            _, metrics = run_replay(cache=True, cache_dir=cache_dir, checkpoint=ck)
            assert metrics.hits == 3
            assert ck.completed == 3  # hits recorded, resumable without cache
        with ReplayCheckpoint(tmp_path / "ck.jsonl", resume=True) as ck:
            _, metrics = run_replay(checkpoint=ck)  # cache off
            assert metrics.resumed == 3


class TestReplayCliCheckpoint:
    def _argv(self, tmp_path, *extra):
        return [
            SAMPLE_CSV,
            "--shard-window", "100",
            "--no-cache",
            "--jobs", "1",
            *extra,
        ]

    def test_resume_requires_checkpoint(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            replay_main(self._argv(tmp_path, "--resume"))
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_then_resume_is_byte_identical(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        assert replay_main(self._argv(tmp_path, "--checkpoint", ck)) == 0
        cold = capsys.readouterr()
        assert "resuming from" not in cold.err
        assert replay_main(
            self._argv(tmp_path, "--checkpoint", ck, "--resume")
        ) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert f"resuming from {ck}" in warm.err
        assert "resumed: 5 shards from checkpoint" in warm.err

    def test_manifest_records_recovery(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        manifest_path = tmp_path / "manifest.json"
        assert replay_main(
            self._argv(
                tmp_path, "--checkpoint", ck,
                "--manifest-out", str(manifest_path),
            )
        ) == 0
        manifest = rio.load(manifest_path)
        assert manifest.recovery == {"checkpoint": ck, "resumed_shards": 0}
        assert replay_main(
            self._argv(
                tmp_path, "--checkpoint", ck, "--resume",
                "--manifest-out", str(manifest_path),
            )
        ) == 0
        capsys.readouterr()
        manifest = rio.load(manifest_path)
        assert manifest.recovery == {"checkpoint": ck, "resumed_shards": 5}

    def test_manifest_without_checkpoint_has_no_recovery(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        assert replay_main(
            self._argv(tmp_path, "--manifest-out", str(manifest_path))
        ) == 0
        capsys.readouterr()
        assert rio.load(manifest_path).recovery is None


class TestCrashResume:
    """kill -9 a checkpointing replay mid-run; resume must complete it."""

    def _run(self, tmp_path, *extra, fault_plan=None):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        env.pop(FAULT_PLAN_ENV, None)
        if fault_plan is not None:
            env[FAULT_PLAN_ENV] = fault_plan.to_json()
        return subprocess.run(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import replay_main; "
                "sys.exit(replay_main(sys.argv[1:]))",
                SAMPLE_CSV,
                "--shard-window", "100",
                "--no-cache",
                "--jobs", "1",
                *extra,
            ],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_sigkilled_replay_resumes_byte_identical(self, tmp_path):
        clean = self._run(tmp_path)
        assert clean.returncode == 0, clean.stderr

        ck = str(tmp_path / "ck.jsonl")
        plan = FaultPlan((FaultSpec(task="shard:1", kind="kill", attempt=0),))
        killed = self._run(
            tmp_path, "--checkpoint", ck, fault_plan=plan
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        # shard 0 completed and was durably checkpointed before the kill
        with ReplayCheckpoint(ck, resume=True) as loaded:
            assert loaded.completed == 1

        resumed = self._run(tmp_path, "--checkpoint", ck, "--resume")
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from" in resumed.stderr
        assert "resumed: 1 shards from checkpoint" in resumed.stderr
        assert resumed.stdout == clean.stdout
