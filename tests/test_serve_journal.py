"""Crash-safe durability of ``qbss-serve``: the write-ahead admission
journal, tolerant scans, restart recovery, and the kill -9 chaos pin.

The subprocess tests drive the real ``qbss-serve`` console entry point,
SIGKILL it mid-batch (via the ``kill`` fault kind — with ``--jobs 1``
shard evaluation is in-process, so the injection takes the daemon down),
and assert the restarted daemon completes the journalled work
byte-identically to an uninterrupted cold run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import io as rio
from repro.engine import FaultPlan, FaultSpec
from repro.engine.faults import FAULT_PLAN_ENV
from repro.obs.metrics import parse_prometheus_text
from repro.serve import (
    AdmissionJournal,
    Client,
    JournalRecord,
    QbssServer,
    RecoveryReport,
    ServeClientError,
    ServeError,
)
from repro.serve.journal import (
    JOURNAL_FILENAME,
    SERVE_JOURNAL_VERSION,
    shard_payload_digest,
)

from test_serve import job_lines, small_config

REPO_ROOT = Path(__file__).resolve().parent.parent


def journal_config(tmp_path, **overrides):
    overrides.setdefault("journal_dir", tmp_path / "journal")
    return small_config(tmp_path, **overrides)


def journal_path(tmp_path) -> Path:
    return tmp_path / "journal" / JOURNAL_FILENAME


# -- the record format --------------------------------------------------------------


class TestJournalRecord:
    def test_round_trips_through_repro_io(self, tmp_path):
        record = JournalRecord(
            type="admission",
            batch=3,
            client="ci",
            jobs=({"id": "a", "release": 0.0, "runtime": 1.0},),
        )
        path = tmp_path / "record.json"
        rio.save(record, path)
        loaded = rio.load(path)
        assert loaded == record
        doc = json.loads(path.read_text())
        assert doc["kind"] == "serve_journal_record"
        assert doc["version"] == SERVE_JOURNAL_VERSION

    def test_type_specific_fields_on_the_wire(self):
        shard = JournalRecord(
            type="shard_complete", batch=1, shard_index=2, shard_digest="ab" * 32
        )
        doc = shard.to_dict()
        assert doc["shard_index"] == 2 and "jobs" not in doc
        done = JournalRecord(type="batch_complete", batch=1, status="ok")
        assert done.to_dict()["status"] == "ok"
        assert JournalRecord.from_dict(done.to_dict()) == done

    def test_unknown_type_and_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            JournalRecord(type="mystery", batch=1)
        with pytest.raises(ValueError):
            JournalRecord(type="admission", batch=0)

    def test_unsupported_version_rejected(self, tmp_path):
        doc = JournalRecord(type="batch_complete", batch=1, status="ok").to_dict()
        doc["version"] = 99
        with pytest.raises(ValueError):
            JournalRecord.from_dict(doc)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(rio.FormatError):
            rio.load(path)

    def test_digest_is_canonical(self):
        a = shard_payload_digest({"x": 1, "y": [2, 3]})
        b = shard_payload_digest({"y": [2, 3], "x": 1})
        assert a == b and len(a) == 64


# -- the journal file ---------------------------------------------------------------


class TestAdmissionJournal:
    def test_admission_lifecycle_and_scan(self, tmp_path):
        with AdmissionJournal(tmp_path) as journal:
            batch = journal.log_admission(
                "ci", [{"id": "a", "release": 0.0, "runtime": 1.0}]
            )
            assert batch == 1
            journal.log_shard_complete(batch, 0, "ab" * 32)
            journal.log_batch_complete(batch, "ok")
        scan = AdmissionJournal(tmp_path).scan()
        assert [r.type for r in scan.records] == [
            "admission",
            "shard_complete",
            "batch_complete",
        ]
        assert scan.torn == 0
        assert scan.incomplete() == []

    def test_incomplete_admissions_preserve_jobs(self, tmp_path):
        jobs = [{"id": "a", "release": 0.0, "runtime": 1.0}]
        with AdmissionJournal(tmp_path) as journal:
            journal.log_admission("ci", jobs)
            done = journal.log_admission("ci", jobs)
            journal.log_batch_complete(done, "ok")
        scan = AdmissionJournal(tmp_path).scan()
        (open_record,) = scan.incomplete()
        assert open_record.batch == 1
        assert list(open_record.jobs) == jobs

    def test_admissions_fsync_completion_marks_only_flush(
        self, tmp_path, monkeypatch
    ):
        # Admissions must be durable before the ack; completion marks
        # only narrow recovery, so they skip the fsync (the <5% journal
        # overhead budget rides on this).
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        with AdmissionJournal(tmp_path) as journal:
            journal.log_admission("ci", [])
            journal.log_shard_complete(1, 0, "ab" * 32)
            journal.log_batch_complete(1, "ok")
        assert len(synced) == 1

    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        with AdmissionJournal(tmp_path) as journal:
            journal.log_admission("ci", [])
        with open(tmp_path / JOURNAL_FILENAME, "a") as fh:
            fh.write('{"kind": "serve_journal_record", "vers')  # crash debris
        fresh = AdmissionJournal(tmp_path)
        scan = fresh.scan()
        assert [r.type for r in scan.records] == ["admission"]
        assert scan.torn == 1
        # sequence numbering continues after the intact prefix
        assert fresh.log_admission("ci", []) == 2

    def test_torn_write_fault_tears_the_append(self, tmp_path):
        plan = FaultPlan(
            (FaultSpec(task="journal:admission:2", kind="torn-write", attempt=0),)
        )
        with AdmissionJournal(tmp_path, fault_plan=plan) as journal:
            journal.log_admission("ci", [])
            journal.log_batch_complete(1, "ok")
            journal.log_admission("ci", [{"id": "a", "release": 0, "runtime": 1}])
        raw = (tmp_path / JOURNAL_FILENAME).read_text()
        assert not raw.endswith("\n")  # the torn append never completed
        scan = AdmissionJournal(tmp_path).scan()
        assert scan.torn == 1
        assert [r.type for r in scan.records] == ["admission", "batch_complete"]
        # the torn admission was never fsync'd, hence never acknowledged:
        # recovery correctly has nothing to replay
        assert scan.incomplete() == []

    def test_compact_keeps_only_given_records(self, tmp_path):
        with AdmissionJournal(tmp_path) as journal:
            journal.log_admission("ci", [])
            journal.log_batch_complete(1, "ok")
            journal.log_admission("ci", [{"id": "x", "release": 0, "runtime": 1}])
            scan = journal.scan()
            journal.compact(scan.incomplete())
            # post-compact appends land behind the kept records
            journal.log_batch_complete(2, "ok")
        scan = AdmissionJournal(tmp_path).scan()
        assert [(r.type, r.batch) for r in scan.records] == [
            ("admission", 2),
            ("batch_complete", 2),
        ]


# -- the server integration (inline, no HTTP) ---------------------------------------


class TestServerJournal:
    def test_serve_once_journals_admission_and_completion(self, tmp_path):
        server = QbssServer(journal_config(tmp_path))
        code, _ = server.serve_once(job_lines(10))
        server.drain()
        assert code == 0
        scan = AdmissionJournal(tmp_path / "journal").scan()
        types = [r.type for r in scan.records]
        assert types[0] == "admission"
        assert types[-1] == "batch_complete"
        assert "shard_complete" in types
        assert scan.incomplete() == []
        (complete,) = [r for r in scan.records if r.type == "batch_complete"]
        assert complete.status == "ok"

    def test_queue_rejection_retires_the_journal_entry(self, tmp_path):
        # No scheduler running, so admitted batches stay queued.
        server = QbssServer(journal_config(tmp_path, queue_limit=5))
        server.submit_payload(job_lines(4), "a")
        with pytest.raises(ServeError):
            server.submit_payload(job_lines(3), "a")
        scan = server.journal.scan()
        # the rejected batch is closed out: recovery must not replay it
        assert [r.batch for r in scan.incomplete()] == [1]
        statuses = {
            r.batch: r.status for r in scan.records if r.type == "batch_complete"
        }
        assert statuses == {2: "rejected"}

    def test_recover_replays_incomplete_batch(self, tmp_path):
        crashed = QbssServer(journal_config(tmp_path))
        crashed.submit_payload(job_lines(8), "ci")  # admitted, never evaluated

        server = QbssServer(journal_config(tmp_path))
        report = server.recover()
        assert isinstance(report, RecoveryReport)
        assert report.batches == 1 and report.jobs == 8
        assert "1 incomplete batch(es) / 8 job(s)" in report.summary_line()
        code, _ = server.serve_once(job_lines(2))  # drains recovered work first
        server.drain()
        assert code == 0
        samples = parse_prometheus_text(server.metrics_text())
        assert samples[("qbss_serve_recovered_batches_total", ())] == 1.0
        assert samples[("qbss_serve_recovered_jobs_total", ())] == 8.0
        # 8 recovered + 2 fresh jobs all completed
        assert samples[("qbss_serve_jobs_completed_total", ())] == 10.0
        scan = AdmissionJournal(tmp_path / "journal").scan()
        assert scan.incomplete() == []

    def test_recover_without_journal_is_none(self, tmp_path):
        server = QbssServer(small_config(tmp_path))
        assert server.recover() is None

    def test_recover_after_start_is_an_error(self, tmp_path):
        server = QbssServer(journal_config(tmp_path, port=0))
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.recover()
        finally:
            server.begin_drain()
            server.drain()
            server.stop()

    def test_recovery_output_is_byte_identical_to_cold_run(self, tmp_path):
        """The in-process chaos pin: admit, 'crash' before evaluation,
        recover on a fresh server, and require the recovered stream to be
        byte-identical to a server that never crashed."""
        cold = QbssServer(small_config(tmp_path / "cold"))
        code, cold_text = cold.serve_once(job_lines(30))
        cold.drain()
        assert code == 0

        crashed = QbssServer(journal_config(tmp_path))
        crashed.submit_payload(job_lines(30), "ci")  # journaled, never run

        survivor = QbssServer(journal_config(tmp_path))
        report = survivor.recover()
        assert report.jobs == 30
        code, warm_text = survivor.serve_once(job_lines(30))
        survivor.drain()
        assert code == 0
        assert warm_text == cold_text

    def test_healthz_surfaces_journal_path(self, tmp_path):
        server = QbssServer(journal_config(tmp_path))
        assert server.health()["journal"] == str(journal_path(tmp_path))
        bare = QbssServer(small_config(tmp_path / "bare"))
        assert bare.health()["journal"] is None


# -- the chaos pin: kill -9 a live daemon, restart, diff ----------------------------


def _wait_for_port_file(path, proc, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"daemon died during startup ({proc.returncode})")
        if path.exists() and path.read_text().strip():
            host, _, port = path.read_text().strip().rpartition(":")
            return host, int(port)
        time.sleep(0.05)
    raise RuntimeError("daemon did not write its port file in time")


class TestChaosPin:
    N_JOBS = 30
    WINDOW = 20.0  # releases 0..58 -> shards 0..2

    def _daemon(self, tmp_path, name, env_extra=None):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        env.pop(FAULT_PLAN_ENV, None)
        env.update(env_extra or {})
        port_file = tmp_path / f"{name}.port"
        log = open(tmp_path / f"{name}.log", "w")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli",
                "--bind", "127.0.0.1:0",
                "--port-file", str(port_file),
                "--shard-window", str(self.WINDOW),
                "--seed", "3",
                "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--journal", str(tmp_path / "journal"),
            ],
            env=env,
            cwd=REPO_ROOT,
            stderr=log,
        )
        return proc, port_file

    def _jobs(self):
        return [
            {
                "id": f"c{i}",
                "release": i * 2.0,
                "deadline": i * 2.0 + 30.0,
                "runtime": 1.0 + (i % 5) * 0.5,
            }
            for i in range(self.N_JOBS)
        ]

    def test_sigkill_mid_batch_recovers_byte_identical(self, tmp_path):
        plan = FaultPlan((FaultSpec(task="shard:1", kind="kill", attempt=0),))
        proc, port_file = self._daemon(
            tmp_path, "victim", {FAULT_PLAN_ENV: plan.to_json()}
        )
        try:
            host, port = _wait_for_port_file(port_file, proc)
            with pytest.raises((ServeClientError, OSError)):
                Client(host, port, client_id="chaos").submit(self._jobs())
            assert proc.wait(timeout=60.0) == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert (tmp_path / "journal" / JOURNAL_FILENAME).exists()

        proc, port_file = self._daemon(tmp_path, "survivor")
        try:
            host, port = _wait_for_port_file(port_file, proc)
            client = Client(host, port, client_id="chaos")
            deadline = time.monotonic() + 60.0
            completed = 0.0
            while time.monotonic() < deadline:
                try:
                    samples = client.metrics()
                except (ServeClientError, OSError):
                    samples = {}
                completed = samples.get(
                    ("qbss_serve_jobs_completed_total", ()), 0.0
                )
                if completed >= self.N_JOBS:
                    break
                time.sleep(0.2)
            assert completed >= self.N_JOBS, "recovered batch never completed"
            assert (
                samples[("qbss_serve_recovered_jobs_total", ())] == self.N_JOBS
            )
            warm = client.submit(self._jobs())
            assert warm.ok
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                proc.wait(timeout=60.0)

        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        env.pop(FAULT_PLAN_ENV, None)
        payload = "".join(
            json.dumps(j, sort_keys=True) + "\n" for j in self._jobs()
        )
        cold = subprocess.run(
            [
                sys.executable, "-m", "repro.serve.cli",
                "--stdin",
                "--shard-window", str(self.WINDOW),
                "--seed", "3",
                "--jobs", "1",
                "--no-cache",
            ],
            env=env,
            cwd=REPO_ROOT,
            input=payload,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert cold.returncode == 0, cold.stderr
        cold_shards = [
            json.loads(line)["shard"]
            for line in cold.stdout.splitlines()
            if line.strip() and json.loads(line)["kind"] == "shard_result"
        ]
        assert json.dumps(warm.shards, sort_keys=True) == json.dumps(
            cold_shards, sort_keys=True
        ), "recovered output diverged from the uninterrupted cold run"
