"""BKP: the intensity maximisation and the e-competitive max speed."""

import math

import numpy as np
import pytest

from repro.core.constants import E_CONST
from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.speed_scaling.bkp import bkp, bkp_intensity_at, bkp_profile
from repro.speed_scaling.yds import optimal_energy, optimal_max_speed

from _testutil import random_classical_jobs


def brute_force_intensity(jobs, t):
    """Reference implementation: try every (t1, t2) candidate pair."""
    arrived = [j for j in jobs if j.release <= t and j.work > 0]
    best = 0.0
    t1s = sorted({j.release for j in arrived if j.release < t})
    t2s = sorted({j.deadline for j in arrived if j.deadline >= t})
    for t1 in t1s:
        for t2 in t2s:
            if t2 <= t1:
                continue
            w = sum(
                j.work for j in arrived if j.release >= t1 and j.deadline <= t2
            )
            best = max(best, w / (t2 - t1))
    return best


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_intensity_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 10)
    for t in np.linspace(0.1, 10.0, 13):
        assert math.isclose(
            bkp_intensity_at(jobs, float(t)),
            brute_force_intensity(jobs, float(t)),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )


def test_single_job_speed_is_e_times_density():
    jobs = [Job(0, 2, 4, "a")]
    prof = bkp_profile(jobs)
    assert math.isclose(prof.speed_at(1.0), E_CONST * 2.0)


def test_only_arrived_jobs_counted():
    """Before a job arrives it must not influence the speed."""
    jobs = [Job(0, 4, 1, "a"), Job(2, 3, 8, "late")]
    prof = bkp_profile(jobs)
    assert math.isclose(prof.speed_at(1.0), E_CONST * 0.25)
    assert prof.speed_at(2.5) >= E_CONST * 8.0 - 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_always_feasible(seed):
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 12)
    result = bkp(jobs)
    assert result.feasible, result.edf.unfinished
    report = check_feasible(result.schedule, Instance(jobs))
    assert report.ok, report.violations


@pytest.mark.parametrize("seed", range(4))
def test_max_speed_e_competitive(seed):
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 10)
    assert bkp_profile(jobs).max_speed() <= E_CONST * optimal_max_speed(jobs) * (
        1 + 1e-9
    )


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_energy_within_paper_bound(alpha, rng):
    from repro.bounds.formulas import bkp_ub_energy

    jobs = random_classical_jobs(rng, 10)
    ratio = bkp_profile(jobs).energy(PowerFunction(alpha)) / optimal_energy(
        jobs, alpha
    )
    assert 1.0 <= ratio <= bkp_ub_energy(alpha) * (1 + 1e-9)


def test_empty():
    assert bkp_profile([]).is_empty
