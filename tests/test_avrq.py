"""AVRQ: derivation, Theorem 5.2's pointwise bound, competitiveness."""

import math

import numpy as np
import pytest

from repro.bounds.formulas import avrq_ub_energy
from repro.core.power import PowerFunction
from repro.qbss.avrq import avrq
from repro.qbss.clairvoyant import clairvoyant
from repro.qbss.policies import FixedSplit
from repro.speed_scaling.avr import avr_profile
from repro.workloads.generators import online_instance


def test_queries_every_job():
    qi = online_instance(8, seed=0)
    result = avrq(qi)
    assert all(d.query for d in result.decisions.decisions.values())
    assert all(d.split == 0.5 for d in result.decisions.decisions.values())


def test_rejects_multi_machine():
    qi = online_instance(4, seed=0, machines=2)
    with pytest.raises(ValueError):
        avrq(qi)


@pytest.mark.parametrize("seed", range(4))
def test_schedule_feasible(seed):
    qi = online_instance(12, seed=seed)
    result = avrq(qi)
    report = result.validate()
    assert report.ok, report.violations


@pytest.mark.parametrize("seed", range(4))
def test_theorem_52_pointwise(seed):
    """s_AVRQ(t) <= 2 s_AVR*(t) at every time."""
    qi = online_instance(10, seed=seed)
    result = avrq(qi)
    star_profile = avr_profile([j.clairvoyant_job() for j in qi])
    pts = sorted(set(result.profile.breakpoints()) | set(star_profile.breakpoints()))
    for a, b in zip(pts, pts[1:]):
        mid = 0.5 * (a + b)
        assert result.profile.speed_at(mid) <= 2.0 * star_profile.speed_at(mid) + 1e-9


@pytest.mark.parametrize("alpha", [2.0, 3.0])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_corollary_53_energy(alpha, seed):
    qi = online_instance(10, seed=seed)
    result = avrq(qi)
    opt = clairvoyant(qi, alpha=alpha).energy_value
    assert result.energy(PowerFunction(alpha)) <= avrq_ub_energy(alpha) * opt * (
        1 + 1e-9
    )


def test_queries_complete_by_midpoint():
    qi = online_instance(10, seed=5)
    result = avrq(qi)
    for qjob in qi:
        done = result.schedule.completion_time(qjob.id + ":query")
        assert done <= qjob.midpoint + 1e-9


def test_split_policy_injection():
    qi = online_instance(6, seed=1)
    result = avrq(qi, split_policy=FixedSplit(0.25))
    assert all(d.split == 0.25 for d in result.decisions.decisions.values())
    assert result.validate().ok


def test_derived_work_conservation():
    qi = online_instance(8, seed=2)
    result = avrq(qi)
    expected = sum(j.query_cost + j.work_true for j in qi)
    assert math.isclose(result.profile.total_work(), expected, rel_tol=1e-6)
