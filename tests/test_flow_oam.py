"""Flow-based feasibility / min-max-speed and OA(m) / OAQ(m)."""

import math

import numpy as np
import pytest

from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.qbss.oaq_m import oaq_m
from repro.speed_scaling.multi.bounds import max_speed_lower_bound, pooled_lower_bound
from repro.speed_scaling.multi.flow import (
    feasible_with_cap,
    max_flow_allocation,
    min_max_speed,
    min_max_speed_schedule,
)
from repro.speed_scaling.multi.oa_m import oa_m
from repro.speed_scaling.multi.optimal import convex_optimal_energy
from repro.speed_scaling.yds import optimal_max_speed
from repro.workloads.generators import multi_machine_instance

from _testutil import random_classical_jobs


class TestFeasibility:
    def test_single_machine_matches_yds_peak(self, rng):
        """On one machine the minimal cap is exactly the YDS max speed."""
        jobs = random_classical_jobs(rng, 8)
        assert math.isclose(
            min_max_speed(jobs, 1), optimal_max_speed(jobs), rel_tol=1e-6
        )

    def test_cap_monotonicity(self, rng):
        jobs = random_classical_jobs(rng, 8)
        s = min_max_speed(jobs, 2)
        assert not feasible_with_cap(jobs, 2, s * 0.95)
        assert feasible_with_cap(jobs, 2, s * 1.05)

    def test_single_dense_job_dictates_cap(self):
        jobs = [Job(0, 1, 5, "dense"), Job(0, 10, 1, "light")]
        # even 8 machines can't beat the job's own density
        assert math.isclose(min_max_speed(jobs, 8), 5.0, rel_tol=1e-6)

    def test_more_machines_never_raise_cap(self, rng):
        jobs = random_classical_jobs(rng, 10)
        s2 = min_max_speed(jobs, 2)
        s4 = min_max_speed(jobs, 4)
        assert s4 <= s2 * (1 + 1e-6)

    def test_cap_at_least_lower_bound(self, rng):
        jobs = random_classical_jobs(rng, 10)
        for m in (2, 3):
            assert min_max_speed(jobs, m) >= max_speed_lower_bound(jobs, m) - 1e-6

    def test_allocation_respects_windows(self, rng):
        jobs = random_classical_jobs(rng, 6)
        s = min_max_speed(jobs, 2)
        _, alloc = max_flow_allocation(jobs, 2, s * 1.01)
        from repro.speed_scaling.multi.flow import _grid

        grid = _grid([j for j in jobs if j.work > 0])
        by_id = {j.id: j for j in jobs}
        for jid, per in alloc.items():
            for gi in per:
                a, b = grid[gi]
                assert by_id[jid].release <= a + 1e-9
                assert b <= by_id[jid].deadline + 1e-9

    def test_empty(self):
        assert min_max_speed([], 3) == 0.0
        assert feasible_with_cap([], 2, 0.0)


class TestWitnessSchedule:
    @pytest.mark.parametrize("m", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_witness_feasible_at_optimal_peak(self, m, seed):
        rng = np.random.default_rng(seed)
        jobs = random_classical_jobs(rng, 8)
        result = min_max_speed_schedule(jobs, m)
        report = check_feasible(result.schedule, Instance(jobs, m))
        assert report.ok, report.violations
        # the witness runs (numerically) at the optimal peak
        assert result.schedule.max_speed() <= result.speed * (1 + 1e-5)


class TestOAm:
    def test_m1_matches_oa(self, rng):
        from repro.speed_scaling.oa import oa

        jobs = random_classical_jobs(rng, 6)
        p = PowerFunction(3.0)
        e_m = oa_m(jobs, 1, 3.0).energy(p)
        e_1 = oa(jobs).profile.energy(p)
        assert e_m <= e_1 * 1.05 and e_1 <= e_m * 1.05

    @pytest.mark.parametrize("m", [2, 3])
    def test_feasible_schedule(self, m):
        rng = np.random.default_rng(m)
        jobs = random_classical_jobs(rng, 8)
        result = oa_m(jobs, m, 3.0)
        assert result.feasible, result.unfinished
        report = check_feasible(result.schedule, Instance(jobs, m))
        assert report.ok, report.violations

    def test_common_release_near_optimal(self):
        """Single arrival batch: OA(m) follows one optimal plan throughout."""
        jobs = [Job(0, 2, 2, "a"), Job(0, 2, 1, "b"), Job(0, 4, 3, "c")]
        e = oa_m(jobs, 2, 3.0).energy(PowerFunction(3.0))
        opt = convex_optimal_energy(jobs, 2, 3.0)
        assert e <= opt * 1.05

    def test_energy_at_least_pooled_lb(self, rng):
        jobs = random_classical_jobs(rng, 8)
        e = oa_m(jobs, 2, 3.0).energy(PowerFunction(3.0))
        assert e >= pooled_lower_bound(jobs, 2, 3.0) * (1 - 1e-6)


class TestOAQm:
    @pytest.mark.parametrize("m", [2, 3])
    def test_feasible(self, m):
        qi = multi_machine_instance(8, m, seed=m)
        result = oaq_m(qi)
        report = result.validate()
        assert report.ok, report.violations

    def test_golden_rule_applied(self):
        qi = multi_machine_instance(10, 2, seed=5)
        result = oaq_m(qi)
        from repro.core.constants import PHI

        for qjob in qi:
            expected = qjob.query_cost <= qjob.work_upper / PHI
            assert result.decisions[qjob.id].query == expected

    def test_usually_beats_avrq_m(self):
        """Recorded empirical claim: the replanner wins on random batches."""
        from repro.qbss import avrq_m

        p = PowerFunction(3.0)
        wins = 0
        for seed in range(4):
            qi = multi_machine_instance(8, 2, seed=seed)
            if oaq_m(qi).energy(p) <= avrq_m(qi).energy(p) * (1 + 1e-9):
                wins += 1
        assert wins >= 3
