"""repro.serve: protocol, admission, rate accounting, the live daemon,
graceful drain, /metrics, and the byte-identity contract with qbss-replay.

The live-daemon tests bind to 127.0.0.1 port 0 (OS-assigned), talk
through the typed :class:`repro.serve.client.Client`, and always drain
before tearing down — the same lifecycle the CLI drives on SIGTERM.
"""

import json
import threading

import pytest

from repro.engine import FaultPlan, FaultSpec, RetryPolicy
from repro.obs.metrics import parse_prometheus_text
from repro.serve import (
    AdmissionQueue,
    Client,
    JobRequest,
    ProtocolError,
    QbssServer,
    QueueClosedError,
    QueueFullError,
    RateLimiter,
    ServeClientError,
    ServeConfig,
    ServeError,
    parse_jobs_payload,
    parse_response_lines,
)
from repro.serve.protocol import (
    ERROR_STATUS,
    SERVE_PROTOCOL_VERSION,
    encode_jsonl,
)
from repro.traces.replay import replay_trace

QUICK = RetryPolicy(max_attempts=2, backoff_base=0.001, backoff_cap=0.01)


def job_lines(n, *, window=40.0, spacing=2.0):
    """A release-sorted JSONL submission of ``n`` jobs."""
    lines = []
    for i in range(n):
        release = i * spacing
        lines.append(
            json.dumps(
                {
                    "id": f"j{i}",
                    "release": release,
                    "deadline": release + window,
                    "runtime": 1.0 + (i % 7) * 0.5,
                }
            )
        )
    return "\n".join(lines) + "\n"


def small_config(tmp_path, **overrides):
    defaults = dict(
        shard_window=250.0,
        seed=3,
        cache_dir=tmp_path / "cache",
        jobs=1,
        retry=QUICK,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


# -- protocol -----------------------------------------------------------------------


class TestProtocol:
    def test_job_request_round_trip(self):
        req = JobRequest.from_dict(
            {"id": "a", "release": 1.0, "runtime": 2.0, "deadline": 5.0}
        )
        assert req.to_dict() == {
            "id": "a",
            "release": 1.0,
            "runtime": 2.0,
            "deadline": 5.0,
        }
        record = req.to_record(7)
        assert record.index == 7 and record.id == "a"
        # Nones are dropped on the wire
        assert "query_cost" not in req.to_dict()

    def test_parse_accepts_jsonl_and_array(self):
        jsonl = parse_jobs_payload(job_lines(3))
        array = parse_jobs_payload(
            json.dumps([json.loads(line) for line in job_lines(3).splitlines()])
        )
        assert jsonl == array
        assert [r.id for r in jsonl] == ["j0", "j1", "j2"]

    def test_default_id_from_line_number(self):
        reqs = parse_jobs_payload(
            '{"release": 0, "runtime": 1}\n{"release": 1, "runtime": 1}\n'
        )
        assert [r.id for r in reqs] == ["t1", "t2"]

    @pytest.mark.parametrize(
        ("body", "fragment"),
        [
            ("", "empty submission"),
            ("{not json}", "invalid JSON"),
            ('{"runtime": 1}', "missing required field 'release'"),
            ('{"release": 0}', "missing required field 'runtime'"),
            ('{"release": -1, "runtime": 1}', "release must be >= 0"),
            ('{"release": 0, "runtime": 0}', "runtime must be > 0"),
            ('{"release": 5, "runtime": 1, "deadline": 5}', "must exceed release"),
            ('{"release": 0, "runtime": 1, "query_cost": 0}', "query_cost"),
            ('{"release": 0, "runtime": true}', "must be a number"),
            ('{"release": 0, "runtime": 1, "bogus": 1}', "unknown field"),
            ("[1, 2]", "must be an object"),
        ],
    )
    def test_malformed_requests_are_located(self, body, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_jobs_payload(body, source="client:test")
        assert fragment in str(excinfo.value)
        assert "client:test" in str(excinfo.value)

    def test_unsorted_releases_rejected(self):
        body = (
            '{"release": 5, "runtime": 1}\n{"release": 0, "runtime": 1}\n'
        )
        with pytest.raises(ProtocolError, match="sorted by release"):
            parse_jobs_payload(body)

    def test_error_envelope_carries_status(self):
        for code, status in ERROR_STATUS.items():
            envelope = ServeError(code, "detail").to_dict()
            assert envelope["kind"] == "error"
            assert envelope["version"] == SERVE_PROTOCOL_VERSION
            assert envelope["status"] == status

    def test_jsonl_round_trip(self):
        envelopes = [
            {"kind": "shard_result", "version": 1, "shard": {"index": 0}},
            {"kind": "summary", "version": 1, "n_jobs": 1},
        ]
        text = encode_jsonl(envelopes)
        assert list(parse_response_lines(text)) == envelopes

    def test_response_without_kind_rejected(self):
        with pytest.raises(ProtocolError, match="kind"):
            list(parse_response_lines('{"version": 1}\n'))


# -- admission queue ----------------------------------------------------------------


class TestAdmissionQueue:
    def test_fifo_and_depth_accounting(self):
        q = AdmissionQueue(10)
        q.submit("a", 3)
        q.submit("b", 4)
        assert q.depth == 7 and q.batches == 2
        assert q.pop() == "a"
        assert q.depth == 4
        assert q.pop() == "b"
        assert q.depth == 0

    def test_overflow_rejects_with_structured_fields(self):
        q = AdmissionQueue(5)
        q.submit("a", 4)
        with pytest.raises(QueueFullError) as excinfo:
            q.submit("b", 2)
        assert excinfo.value.requested == 2
        assert excinfo.value.depth == 4
        assert excinfo.value.limit == 5
        # rejected batch costs nothing
        assert q.depth == 4

    def test_oversize_batch_rejected_even_blocking(self):
        q = AdmissionQueue(5)
        with pytest.raises(QueueFullError):
            q.submit("huge", 6, block=True)

    def test_blocking_submit_waits_for_capacity(self):
        q = AdmissionQueue(5)
        q.submit("a", 5)
        done = threading.Event()

        def worker():
            q.submit("b", 5, block=True)
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        assert not done.wait(0.05)
        assert q.pop() == "a"
        assert done.wait(5.0)
        t.join()
        assert q.pop() == "b"

    def test_close_drains_then_signals_none(self):
        q = AdmissionQueue(10)
        q.submit("a", 1)
        q.close()
        with pytest.raises(QueueClosedError):
            q.submit("b", 1)
        assert q.pop() == "a"
        assert q.pop() is None
        assert q.closed

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        q = AdmissionQueue(1)
        with pytest.raises(ValueError):
            q.submit("a", 0)

    def test_nonblocking_submit_yields_to_waiters(self):
        # A blocked waiter owns any capacity freed while it queues: a
        # non-blocking submit that would otherwise fit is rejected
        # rather than allowed to jump the line.
        q = AdmissionQueue(5)
        q.submit("a", 5)
        waiting = threading.Event()
        admitted = threading.Event()

        def big():
            waiting.set()
            q.submit("big", 4, block=True)
            admitted.set()

        t = threading.Thread(target=big)
        t.start()
        assert waiting.wait(5.0)
        # Give the waiter time to enqueue its ticket.
        deadline = 50
        while not q._waiters and deadline:  # noqa: SLF001 - white-box sync
            threading.Event().wait(0.01)
            deadline -= 1
        assert q.pop() == "a"  # frees all 5 slots
        # 1 job would fit (depth 0 or 4) but the big waiter is ahead.
        with pytest.raises(QueueFullError):
            q.submit("tiny", 1)
        assert admitted.wait(5.0)
        t.join()
        assert q.pop() == "big"
        # With no waiters left, small submissions flow again.
        q.submit("tiny", 1)
        assert q.pop() == "tiny"

    def test_large_blocked_batch_is_not_starved(self):
        # The starvation scenario: a full queue, one large blocked
        # batch, and a continuous stream of small blocking submitters.
        # Without FIFO tickets the small ones snatch every freed slot
        # and depth never dips low enough for the large batch.
        q = AdmissionQueue(4)
        q.submit("seed-0", 2)
        q.submit("seed-1", 2)
        big_admitted = threading.Event()
        stop = threading.Event()

        def big():
            q.submit("big", 4, block=True)
            big_admitted.set()

        def small_stream(tag):
            i = 0
            while not stop.is_set():
                try:
                    q.submit(f"{tag}-{i}", 1, block=True)
                except QueueClosedError:
                    return
                i += 1

        big_thread = threading.Thread(target=big)
        big_thread.start()
        # Let the big batch reach the head of the waiter queue first;
        # FIFO must hold even though the stream arrives right behind it.
        deadline = 100
        while not q._waiters and deadline:  # noqa: SLF001
            threading.Event().wait(0.01)
            deadline -= 1
        streams = [
            threading.Thread(target=small_stream, args=(f"s{k}",), daemon=True)
            for k in range(3)
        ]
        for t in streams:
            t.start()
        popped = []
        try:
            while not big_admitted.is_set():
                popped.append(q.pop())
                assert len(popped) < 500, (
                    f"large batch starved; popped {len(popped)} small batches"
                )
        finally:
            stop.set()
            q.close()
            while q.pop() is not None:
                pass
            big_thread.join(5.0)
            for t in streams:
                t.join(5.0)
        assert big_admitted.is_set()

    def test_close_releases_blocked_waiters(self):
        q = AdmissionQueue(2)
        q.submit("a", 2)
        errors = []
        started = threading.Event()

        def blocked():
            started.set()
            try:
                q.submit("b", 2, block=True)
            except QueueClosedError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        assert started.wait(5.0)
        deadline = 100
        while not q._waiters and deadline:  # noqa: SLF001
            threading.Event().wait(0.01)
            deadline -= 1
        q.close()
        t.join(5.0)
        assert not t.is_alive()
        assert len(errors) == 1
        # The abandoned ticket does not linger and wedge the queue.
        assert not q._waiters  # noqa: SLF001


# -- rate limiting ------------------------------------------------------------------


class TestRateLimiter:
    def test_none_rate_is_unlimited(self):
        limiter = RateLimiter(None)
        assert limiter.allow("c", 10**9)
        assert limiter.tokens_left("c") is None

    def test_burst_then_refill_with_injected_clock(self):
        now = [0.0]
        limiter = RateLimiter(rate=2.0, burst=4.0, clock=lambda: now[0])
        assert limiter.allow("c", 4)  # full burst is free
        assert not limiter.allow("c", 1)  # empty now
        now[0] = 1.0  # 2 tokens refilled
        assert limiter.allow("c", 2)
        assert not limiter.allow("c", 1)

    def test_batch_admission_is_atomic(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=3.0, clock=lambda: now[0])
        assert not limiter.allow("c", 5)  # whole batch over budget
        # the failed attempt consumed nothing
        assert limiter.tokens_left("c") == 3.0
        assert limiter.allow("c", 3)

    def test_clients_are_isolated(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert limiter.allow("a", 1)
        assert limiter.allow("b", 1)
        assert not limiter.allow("a", 1)

    def test_default_burst_is_one_second(self):
        assert RateLimiter(5.0).burst == 5.0
        assert RateLimiter(0.25).burst == 1.0

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)
        with pytest.raises(ValueError):
            RateLimiter(1.0, idle_grace=0.0)

    def test_bucket_map_stays_bounded_under_one_shot_clients(self):
        # The leak this guards against: every distinct client id used to
        # pin a TokenBucket forever, so 10k one-shot clients grew the
        # map by 10k entries for the life of the daemon.
        now = [0.0]
        limiter = RateLimiter(
            rate=10.0, burst=10.0, clock=lambda: now[0], idle_grace=60.0
        )
        for i in range(10_000):
            assert limiter.allow(f"one-shot-{i}", 1)
            now[0] += 0.1  # 1000 s total: far beyond any grace window
        # Buckets refill (0.1 s * 10/s = 1 token) long before the grace
        # period elapses, so only clients from the last grace window or
        # so can still be resident.  Well under the 10k that would leak.
        assert limiter.tracked_clients < 1500
        # And eviction was lossless: an evicted client's fresh bucket
        # grants the same full burst a kept bucket would have refilled.
        assert limiter.allow("one-shot-0", 10)

    def test_indebted_bucket_survives_the_sweep(self):
        now = [0.0]
        limiter = RateLimiter(
            rate=0.001, burst=10.0, clock=lambda: now[0], idle_grace=5.0
        )
        assert limiter.allow("slow", 10)  # drained; refill is glacial
        assert limiter.allow("bystander", 1)
        now[0] += 6.0  # past the grace period, but "slow" is in debt
        limiter.allow("trigger", 1)  # drives a sweep
        assert limiter.tokens_left("slow") is not None  # still tracked
        # The debt is still enforced: 6 s * 0.001/s rounds to nothing.
        assert not limiter.allow("slow", 10)

    def test_sweep_runs_at_most_once_per_grace_period(self):
        now = [0.0]
        limiter = RateLimiter(
            rate=100.0, burst=100.0, clock=lambda: now[0], idle_grace=10.0
        )
        assert limiter.allow("early", 1)
        now[0] = 10.5  # "early" is idle and refilled -> evictable
        assert limiter.allow("a", 1)  # sweep fires here
        assert limiter.tracked_clients == 1  # "early" evicted, "a" added
        now[0] = 11.0
        assert limiter.allow("b", 1)  # within the same period: no sweep
        assert limiter.tracked_clients == 2


# -- inline evaluation (serve_once / submit_payload, no HTTP) -----------------------


class TestInlineServer:
    def test_serve_once_emits_shards_and_summary(self, tmp_path):
        server = QbssServer(small_config(tmp_path))
        code, text = server.serve_once(job_lines(20))
        server.drain()
        assert code == 0
        envelopes = list(parse_response_lines(text))
        kinds = [e["kind"] for e in envelopes]
        assert kinds[-1] == "summary"
        assert set(kinds[:-1]) == {"shard_result"}
        summary = envelopes[-1]
        assert summary["n_jobs"] == 20
        assert summary["n_shards"] == len(envelopes) - 1
        assert summary["algorithms"] == ["avrq", "bkpq"]

    def test_serve_once_invalid_payload(self, tmp_path):
        server = QbssServer(small_config(tmp_path))
        code, text = server.serve_once("not json\n")
        server.drain()
        assert code == 1
        (envelope,) = parse_response_lines(text)
        assert envelope["kind"] == "error"
        assert envelope["code"] == "invalid_request"

    def test_queue_full_rejection_counts(self, tmp_path):
        # No scheduler running, so admitted batches stay queued.
        server = QbssServer(small_config(tmp_path, queue_limit=5))
        server.submit_payload(job_lines(4), "a")
        with pytest.raises(ServeError) as excinfo:
            server.submit_payload(job_lines(3), "a")
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.status == 429
        samples = parse_prometheus_text(server.metrics_text())
        assert samples[("qbss_serve_jobs_admitted_total", ())] == 4.0
        assert (
            samples[
                ("qbss_serve_jobs_rejected_total", (("reason", "queue_full"),))
            ]
            == 3.0
        )
        assert samples[("qbss_serve_queue_depth", ())] == 4.0

    def test_rate_limited_rejection(self, tmp_path):
        server = QbssServer(small_config(tmp_path, rate=1.0, burst=4.0))
        server.submit_payload(job_lines(4), "greedy")
        with pytest.raises(ServeError) as excinfo:
            server.submit_payload(job_lines(2), "greedy")
        assert excinfo.value.code == "rate_limited"
        # other clients unaffected
        server.submit_payload(job_lines(2), "patient")

    def test_draining_rejection(self, tmp_path):
        server = QbssServer(small_config(tmp_path))
        server.begin_drain()
        with pytest.raises(ServeError) as excinfo:
            server.submit_payload(job_lines(2), "late")
        assert excinfo.value.code == "draining"
        assert excinfo.value.status == 503
        samples = parse_prometheus_text(server.metrics_text())
        assert samples[("qbss_serve_draining", ())] == 1.0

    def test_graceful_drain_completes_queued_batches(self, tmp_path):
        """SIGTERM semantics: a full queue still evaluates to completion,
        responses flush, counters agree, and the session closes."""
        server = QbssServer(small_config(tmp_path, queue_limit=100))
        batches = [server.submit_payload(job_lines(10), f"c{i}") for i in range(5)]
        server.begin_drain()
        with pytest.raises(ServeError):
            server.submit_payload(job_lines(1), "late")
        server.start(http=False)  # scheduler now drains the backlog
        assert server.drain(timeout=60.0)
        for batch in batches:
            assert batch.done.is_set()
            assert batch.error is None
            assert batch.report is not None and batch.report.n_jobs == 10
        samples = parse_prometheus_text(server.metrics_text())
        assert samples[("qbss_serve_jobs_admitted_total", ())] == 50.0
        assert samples[("qbss_serve_jobs_completed_total", ())] == 50.0
        assert samples[("qbss_serve_queue_depth", ())] == 0.0
        assert samples[("qbss_serve_batches_total", (("status", "ok"),))] == 5.0
        assert server.session.closed

    def test_fault_plan_degrades_to_structured_shards(self, tmp_path):
        """A failing shard is a structured response envelope, not a dead
        daemon: the batch still answers, with status/failure per shard."""
        plan = FaultPlan((FaultSpec(task="shard:1", kind="raise", attempt=0),))
        server = QbssServer(
            small_config(tmp_path, fault_plan=plan, cache=False, shard_window=20.0)
        )
        code, text = server.serve_once(job_lines(20))
        server.drain()
        assert code == 0  # machinery survived; failure is in the payload
        envelopes = list(parse_response_lines(text))
        shards = [e["shard"] for e in envelopes if e["kind"] == "shard_result"]
        statuses = {s["index"]: s.get("status", "ok") for s in shards}
        assert statuses[1] == "error"
        failed = [s for s in shards if s.get("status") == "error"]
        assert failed[0]["rows"] == []
        assert failed[0]["failure"]["kind"] == "error"
        summary = envelopes[-1]
        assert summary["failed_shards"] == 1
        samples = parse_prometheus_text(server.metrics_text())
        assert samples[("qbss_serve_batches_total", (("status", "ok"),))] == 1.0


# -- the live daemon ----------------------------------------------------------------


@pytest.fixture
def live_server(tmp_path):
    """A started daemon on an OS-assigned port, drained at teardown."""
    server = QbssServer(small_config(tmp_path))
    server.start()
    try:
        yield server
    finally:
        if not server.draining:
            server.begin_drain()
        server.drain(timeout=60.0)
        server.stop()


class TestLiveDaemon:
    def test_healthz(self, live_server):
        client = Client("127.0.0.1", live_server.port)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == SERVE_PROTOCOL_VERSION
        assert health["queue_limit"] == live_server.queue.max_jobs

    def test_submit_and_scrape(self, live_server):
        client = Client("127.0.0.1", live_server.port, client_id="t1")
        result = client.submit(
            [json.loads(line) for line in job_lines(10).splitlines()]
        )
        assert result.ok
        assert result.summary["n_jobs"] == 10
        assert result.n_shards == result.summary["n_shards"] >= 1
        for algorithm in ("avrq", "bkpq"):
            ratios = result.ratios_for(algorithm)
            assert len(ratios) == result.n_shards
            assert all(r >= 1.0 for r in ratios)
        samples = client.metrics()
        assert samples[("qbss_serve_jobs_admitted_total", ())] == 10.0
        assert samples[("qbss_serve_jobs_completed_total", ())] == 10.0
        assert samples[("qbss_serve_queue_depth", ())] == 0.0
        # the warm session's replay series live in the same registry
        assert any(name.startswith("qbss_replay_") for name, _ in samples)
        # histogram accounted one observation per shard
        assert (
            samples[("qbss_serve_shard_latency_seconds_count", ())]
            == result.n_shards
        )

    def test_submit_jobrequest_objects(self, live_server):
        client = Client("127.0.0.1", live_server.port)
        result = client.submit(
            [JobRequest(id="a", release=0.0, runtime=2.0, deadline=30.0)]
        )
        assert result.summary["n_jobs"] == 1

    def test_invalid_submission_maps_to_400(self, live_server):
        client = Client("127.0.0.1", live_server.port)
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([{"release": 0.0}])  # missing runtime
        assert excinfo.value.code == "invalid_request"
        assert excinfo.value.status == 400

    def test_unknown_path_is_structured_404(self, live_server):
        client = Client("127.0.0.1", live_server.port)
        status, text = client._request("GET", "/nope")
        assert status == 404
        (envelope,) = parse_response_lines(text)
        assert envelope["kind"] == "error"

    def test_rate_limited_client_gets_429(self, tmp_path):
        server = QbssServer(small_config(tmp_path, rate=1.0, burst=2.0))
        server.start()
        try:
            client = Client("127.0.0.1", server.port, client_id="greedy")
            client.submit(
                [json.loads(line) for line in job_lines(2).splitlines()]
            )
            with pytest.raises(ServeClientError) as excinfo:
                client.submit(
                    [json.loads(line) for line in job_lines(2).splitlines()]
                )
            assert excinfo.value.code == "rate_limited"
            assert excinfo.value.status == 429
        finally:
            server.begin_drain()
            server.drain(timeout=60.0)
            server.stop()

    def test_draining_daemon_rejects_with_503(self, live_server):
        live_server.begin_drain()
        client = Client("127.0.0.1", live_server.port)
        assert client.healthz()["status"] == "draining"
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([{"release": 0.0, "runtime": 1.0}])
        assert excinfo.value.code == "draining"
        assert excinfo.value.status == 503


# -- byte-identity with qbss-replay (acceptance criterion) --------------------------


class TestReplayIdentity:
    def test_warm_server_matches_cold_replay_byte_for_byte(self, tmp_path):
        """The 1k-job contract: a warm daemon answering the same workload
        as a cold ``qbss-replay`` produces byte-identical per-shard
        payloads (decisions, ratios, energies — the whole shard)."""
        n = 1000
        trace = tmp_path / "jobs.jsonl"
        trace.write_text(job_lines(n))

        report, _ = replay_trace(
            str(trace),
            shard_window=250.0,
            seed=3,
            jobs=1,
            cache=False,
        )
        cold = encode_jsonl(report.shards)

        server = QbssServer(small_config(tmp_path, cache=False))
        server.start()
        try:
            client = Client("127.0.0.1", server.port)
            jobs = [json.loads(line) for line in job_lines(n).splitlines()]
            first = client.submit(jobs)
            second = client.submit(jobs)  # warm: cache-free rerun, same bytes
        finally:
            server.begin_drain()
            server.drain(timeout=120.0)
            server.stop()
        assert encode_jsonl(first.shards) == cold
        assert encode_jsonl(second.shards) == cold
        assert first.summary["n_jobs"] == report.n_jobs == n

    def test_warm_cache_hits_stay_identical(self, tmp_path):
        """With the shard cache on, the second submission is served from
        cache and still matches the first byte-for-byte."""
        server = QbssServer(small_config(tmp_path))
        first = server.serve_once(job_lines(40))[1]
        second = server.serve_once(job_lines(40))[1]
        server.drain()
        assert first == second
        samples = parse_prometheus_text(server.metrics_text())
        hits = sum(
            v
            for (name, labels), v in samples.items()
            if name == "qbss_cache_lookups_total" and ("result", "hit") in labels
        )
        assert hits > 0


# -- stdin one-shot mode ------------------------------------------------------------


class TestStdinMode:
    def test_stdin_round_trip(self, tmp_path, monkeypatch, capsys):
        import io

        from repro.serve.cli import main as serve_main

        monkeypatch.setattr("sys.stdin", io.StringIO(job_lines(6)))
        code = serve_main(
            [
                "--stdin",
                "--shard-window",
                "250",
                "--seed",
                "3",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        envelopes = list(parse_response_lines(out))
        assert envelopes[-1]["kind"] == "summary"
        assert envelopes[-1]["n_jobs"] == 6

    def test_stdin_invalid_exits_one(self, tmp_path, monkeypatch, capsys):
        import io

        from repro.serve.cli import main as serve_main

        monkeypatch.setattr("sys.stdin", io.StringIO("nope\n"))
        code = serve_main(
            ["--stdin", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 1
        (envelope,) = parse_response_lines(capsys.readouterr().out)
        assert envelope["code"] == "invalid_request"


# -- the serve CLI parser -----------------------------------------------------------


class TestServeCli:
    def test_parse_bind(self):
        from repro.serve.cli import parse_bind

        assert parse_bind("127.0.0.1:0") == ("127.0.0.1", 0)
        assert parse_bind("0.0.0.0:8457") == ("0.0.0.0", 8457)
        for bad in ("nope", ":80", "host:notaport", "host:70000"):
            with pytest.raises(ValueError):
                parse_bind(bad)

    @pytest.mark.parametrize(
        "argv",
        [
            ["--bind", "nonsense"],
            ["--algorithms", "unknown_algo"],
            ["--noise-model", "unknown_model"],
            ["--shard-window", "0"],
            ["--queue-limit", "0"],
            ["--rate", "-1"],
            ["--max-attempts", "0"],
            ["--jobs", "bogus"],
        ],
    )
    def test_bad_arguments_are_usage_errors(self, argv):
        from repro.serve.cli import main as serve_main

        with pytest.raises(SystemExit) as excinfo:
            serve_main(argv)
        assert excinfo.value.code == 2


# -- client retries -----------------------------------------------------------------


class _ScriptedTransport:
    """Stands in for ``Client._request``: replays a scripted exchange
    sequence — ``("raise", exc)`` items raise, ``(status, text)`` items
    return — and counts the calls."""

    def __init__(self, *script):
        self.script = list(script)
        self.calls = 0

    def __call__(self, method, path, body=None):
        self.calls += 1
        action = self.script.pop(0)
        if action[0] == "raise":
            raise action[1]
        return action


def _scripted_client(*script):
    client = Client("127.0.0.1", 1, retry=QUICK)
    transport = _ScriptedTransport(*script)
    client._request = transport
    return client, transport


_SUMMARY_OK = encode_jsonl(
    [{"kind": "summary", "version": SERVE_PROTOCOL_VERSION, "n_jobs": 0}]
)


class TestClientRetry:
    def test_queue_full_is_retried_then_succeeds(self):
        full = encode_jsonl([ServeError("queue_full", "brimming").to_dict()])
        client, transport = _scripted_client((429, full), (200, _SUMMARY_OK))
        result = client.submit([])
        assert result.summary["n_jobs"] == 0
        assert transport.calls == 2

    def test_queue_full_exhausts_the_budget(self):
        full = encode_jsonl([ServeError("queue_full", "brimming").to_dict()])
        client, transport = _scripted_client((429, full), (429, full))
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([])
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.attempts == QUICK.max_attempts
        assert transport.calls == QUICK.max_attempts

    def test_rate_limited_is_never_retried(self):
        limited = encode_jsonl([ServeError("rate_limited", "slow down").to_dict()])
        client, transport = _scripted_client((429, limited), (200, _SUMMARY_OK))
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([])
        assert excinfo.value.code == "rate_limited"
        assert excinfo.value.attempts == 1
        assert transport.calls == 1  # the scripted success was never reached

    def test_connection_error_is_retried_then_succeeds(self):
        client, transport = _scripted_client(
            ("raise", ConnectionRefusedError("refused")), (200, _SUMMARY_OK)
        )
        assert client.submit([]).summary["n_jobs"] == 0
        assert transport.calls == 2

    def test_connection_exhaustion_synthesizes_unavailable(self):
        client, transport = _scripted_client(
            ("raise", ConnectionRefusedError("refused")),
            ("raise", ConnectionRefusedError("refused")),
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([])
        err = excinfo.value
        assert err.code == "unavailable"
        assert err.status == ERROR_STATUS["unavailable"] == 503
        assert err.attempts == QUICK.max_attempts

    def test_connection_and_queue_full_share_one_budget(self):
        # attempt 1: connection error; attempt 2: queue_full -> budget
        # (2 attempts) is spent, no third try
        full = encode_jsonl([ServeError("queue_full", "brimming").to_dict()])
        client, transport = _scripted_client(
            ("raise", ConnectionResetError("reset")), (429, full)
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([])
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.attempts == 2
        assert transport.calls == 2

    def test_healthz_against_a_dead_port_is_unavailable(self):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        client = Client("127.0.0.1", port, retry=QUICK)
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert excinfo.value.code == "unavailable"
        assert excinfo.value.attempts == QUICK.max_attempts

    def test_default_retry_policy(self):
        from repro.serve.client import DEFAULT_CLIENT_RETRY

        client = Client("127.0.0.1", 1)
        assert client.retry is DEFAULT_CLIENT_RETRY
        assert DEFAULT_CLIENT_RETRY.max_attempts == 3

    def test_backoff_uses_the_injected_sleeper(self):
        # The client must never call time.sleep directly — every backoff
        # goes through the injectable sleeper, and the delays are exactly
        # the policy's seeded sequence for the retried task.
        policy = RetryPolicy(max_attempts=4, backoff_base=0.05, backoff_cap=1.0)
        slept = []
        client = Client(
            "127.0.0.1", 1, client_id="c1", retry=policy, sleep=slept.append
        )
        transport = _ScriptedTransport(
            ("raise", ConnectionRefusedError("refused")),
            ("raise", ConnectionResetError("reset")),
            ("raise", ConnectionRefusedError("refused")),
            (200, _SUMMARY_OK),
        )
        client._request = transport
        assert client.submit([]).summary["n_jobs"] == 0
        task = "POST /v1/jobs:c1"
        assert slept == [policy.delay(task, 1), policy.delay(task, 2),
                         policy.delay(task, 3)]
        # Seeded determinism: a rebuilt client replays the same delays.
        replay = []
        again = Client(
            "127.0.0.1", 1, client_id="c1", retry=policy, sleep=replay.append
        )
        again._request = _ScriptedTransport(
            ("raise", ConnectionRefusedError("refused")),
            ("raise", ConnectionResetError("reset")),
            ("raise", ConnectionRefusedError("refused")),
            (200, _SUMMARY_OK),
        )
        assert again.submit([]).summary["n_jobs"] == 0
        assert replay == slept

    def test_queue_full_backoff_is_seeded_per_submit_task(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.05, backoff_cap=1.0)
        slept = []
        client = Client(
            "127.0.0.1", 1, client_id="c2", retry=policy, sleep=slept.append
        )
        full = encode_jsonl([ServeError("queue_full", "brimming").to_dict()])
        client._request = _ScriptedTransport(
            (429, full), (429, full), (200, _SUMMARY_OK)
        )
        assert client.submit([]).summary["n_jobs"] == 0
        task = "submit:c2"
        assert slept == [policy.delay(task, 1), policy.delay(task, 2)]

    def test_default_sleeper_is_time_sleep(self):
        import time as _time

        assert Client("127.0.0.1", 1).sleep is _time.sleep


# -- the port file ------------------------------------------------------------------


class TestPortFile:
    def test_write_is_atomic_and_fsynced(self, tmp_path, monkeypatch):
        import os

        from repro.serve.cli import write_port_file

        replaced = []
        real_replace = os.replace
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (replaced.append((str(a), str(b))), real_replace(a, b))[1],
        )
        path = tmp_path / "daemon.port"
        write_port_file(str(path), "127.0.0.1:8457")
        assert path.read_text() == "127.0.0.1:8457\n"
        # written via a sibling tmp name, then renamed into place
        assert replaced and replaced[0][1] == str(path)
        assert replaced[0][0] != str(path)
        assert not list(tmp_path.glob("*.tmp*"))
