"""Second property-based suite: QBSS-level invariants.

Where ``test_property_based.py`` covers the substrate, this suite covers
the QBSS layer: CRCD's structure, the online derivation, the adversary
game's internal consistency, serialization round-trips, McNaughton safety
and the non-migratory pinning invariant.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io as rio
from repro.bounds.adversary import algorithm_value, game_value, optimal_value
from repro.core.constants import PHI
from repro.core.instance import QBSSInstance
from repro.core.power import PowerFunction
from repro.core.qjob import QJob
from repro.qbss.crcd import crcd
from repro.qbss.policies import AlwaysQuery, EqualWindowSplit
from repro.qbss.transform import derive_online


@st.composite
def qjob_batches(draw, max_jobs=5, common_window=False):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        if common_window:
            r, d = 0.0, 8.0
        else:
            r = draw(st.floats(min_value=0.0, max_value=6.0))
            d = r + draw(st.floats(min_value=0.5, max_value=6.0))
        w = draw(st.floats(min_value=0.1, max_value=10.0))
        c = draw(st.floats(min_value=0.01, max_value=1.0)) * w
        wstar = draw(st.floats(min_value=0.0, max_value=1.0)) * w
        jobs.append(QJob(r, d, c, w, min(wstar, w), f"pq{i}"))
    return QBSSInstance(jobs)


# -- CRCD invariants ----------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(qjob_batches(common_window=True))
def test_crcd_profile_has_at_most_two_speeds(qi):
    result = crcd(qi)
    speeds = {round(seg.speed, 9) for seg in result.profile}
    assert len(speeds) <= 2


@settings(max_examples=40, deadline=None)
@given(qjob_batches(common_window=True))
def test_crcd_schedule_always_feasible(qi):
    result = crcd(qi)
    report = result.validate()
    assert report.ok, report.violations


@settings(max_examples=40, deadline=None)
@given(qjob_batches(common_window=True))
def test_crcd_total_work_is_golden_selection(qi):
    """Executed load per job is w (A-set) or c + w* (B-set), never mixed."""
    result = crcd(qi)
    for qjob in qi:
        executed = result.executed_load(qjob.id)
        if qjob.query_cost <= qjob.work_upper / PHI:
            expected = qjob.query_cost + qjob.work_true
        else:
            expected = qjob.work_upper
        assert math.isclose(executed, expected, rel_tol=1e-6, abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(qjob_batches(common_window=True), st.floats(min_value=1.5, max_value=3.5))
def test_crcd_within_paper_bound(qi, alpha):
    from repro.bounds.formulas import crcd_ub_energy
    from repro.qbss.clairvoyant import clairvoyant

    result = crcd(qi)
    opt = clairvoyant(qi, alpha=alpha).energy_value
    if opt > 1e-12:
        ratio = result.energy(PowerFunction(alpha)) / opt
        assert ratio <= crcd_ub_energy(alpha) * (1 + 1e-6)


# -- online derivation invariants ------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(qjob_batches())
def test_derivation_work_identity(qi):
    """Derived total work == sum over jobs of (c + w*) when all queried."""
    derived = derive_online(qi, AlwaysQuery(), EqualWindowSplit())
    total = sum(j.work for j in derived.jobs)
    expected = sum(j.query_cost + j.work_true for j in qi)
    assert math.isclose(total, expected, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(qjob_batches())
def test_derivation_windows_partition_original(qi):
    derived = derive_online(qi, AlwaysQuery(), EqualWindowSplit())
    by_src = {}
    for job in derived.jobs:
        by_src.setdefault(job.id.rsplit(":", 1)[0], []).append(job)
    for qjob in qi:
        parts = sorted(by_src[qjob.id], key=lambda j: j.release)
        assert len(parts) == 2
        q, w = parts
        assert math.isclose(q.release, qjob.release)
        assert math.isclose(q.deadline, qjob.midpoint)
        assert math.isclose(w.release, qjob.midpoint)
        assert math.isclose(w.deadline, qjob.deadline)


@settings(max_examples=40, deadline=None)
@given(qjob_batches())
def test_reveal_audit_trail_complete(qi):
    derived = derive_online(qi, AlwaysQuery(), EqualWindowSplit())
    for view in derived.views:
        assert view.queried
        assert math.isclose(view.revealed_at, view.midpoint)


# -- adversary game consistency ---------------------------------------------------------


@given(
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=1.0, max_value=4.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.5, max_value=3.5),
)
def test_adversary_values_dominate_optimum(c_frac, w, wstar_frac, alpha):
    """Any decision's value is at least the clairvoyant's on every w*."""
    c = c_frac * w
    wstar = wstar_frac * w
    opt = optimal_value(c, w, wstar, alpha, "energy")
    no_query = algorithm_value(False, None, c, w, wstar, alpha, "energy")
    query_half = algorithm_value(True, 0.5, c, w, wstar, alpha, "energy")
    assert no_query >= opt - 1e-9 * max(1.0, opt)
    assert query_half >= opt - 1e-9 * max(1.0, opt)


@given(
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=1.0, max_value=4.0),
    st.floats(min_value=1.5, max_value=3.5),
)
def test_game_value_at_least_one(c_frac, w, alpha):
    c = c_frac * w
    for query, x in ((False, None), (True, 0.3), (True, 0.5)):
        value, _ = game_value(query, x, c, w, alpha, "energy")
        assert value >= 1.0 - 1e-9


# -- serialization round-trip ------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(qjob_batches())
def test_io_roundtrip_property(qi):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "inst.json"
        rio.save(qi, path)
        loaded = rio.load(path)
    assert len(loaded) == len(qi)
    for a, b in zip(loaded.jobs, qi.jobs):
        assert a.release == b.release
        assert a.deadline == b.deadline
        assert a.query_cost == b.query_cost
        assert a.work_upper == b.work_upper
        assert a.work_true == b.work_true
