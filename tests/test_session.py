"""ExecutionSession: the shared execution-context object and its migration shims."""

import warnings

import pytest

from repro.engine import (
    ExecutionSession,
    RetryPolicy,
    run_experiments,
    session_from_kwargs,
)

FAST = ["lemma42", "rho"]
QUICK = RetryPolicy(max_attempts=2, backoff_base=0.0, backoff_cap=0.0)


class TestConstruction:
    def test_defaults(self):
        s = ExecutionSession()
        assert s.pool_jobs == 1
        assert s.cache is True
        assert isinstance(s.retry_policy, RetryPolicy)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ExecutionSession(task_timeout=0.0)
        with pytest.raises(ValueError, match="task_timeout"):
            ExecutionSession(task_timeout=-1.5)

    def test_rejects_bad_jobs_eagerly(self):
        with pytest.raises(ValueError):
            ExecutionSession(jobs="several")

    def test_auto_jobs_resolve(self):
        assert ExecutionSession(jobs="auto").pool_jobs >= 1
        assert ExecutionSession(jobs=3).pool_jobs == 3

    def test_store_is_lazy_and_reused(self, tmp_path):
        s = ExecutionSession(cache_dir=tmp_path)
        first = s.store
        assert first is not None
        assert s.store is first  # one handle for the session's lifetime

    def test_store_none_when_cache_disabled(self):
        assert ExecutionSession(cache=False).store is None

    def test_retry_policy_defaulted(self):
        assert ExecutionSession(retry=None).retry_policy.max_attempts >= 1
        assert ExecutionSession(retry=QUICK).retry_policy is QUICK


class TestLifecycle:
    def test_close_is_idempotent(self):
        s = ExecutionSession()
        assert not s.closed
        s.close()
        s.close()
        assert s.closed

    def test_execute_after_close_raises(self):
        s = ExecutionSession()
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.execute(
                [],
                worker=lambda: {},
                payload=lambda t: (),
                on_success=lambda *a: None,
                on_failure=lambda *a: None,
            )

    def test_store_after_close_raises(self, tmp_path):
        s = ExecutionSession(cache_dir=tmp_path)
        assert s.store is not None
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.store

    def test_context_manager_closes(self, tmp_path):
        with ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK) as s:
            result = run_experiments(["lemma42"], session=s)
            assert result.runs[0].metrics.status == "ok"
        assert s.closed

    def test_context_manager_closes_on_error(self):
        s = ExecutionSession()
        with pytest.raises(ValueError, match="boom"):
            with s:
                raise ValueError("boom")
        assert s.closed

    def test_reentering_closed_session_raises(self):
        s = ExecutionSession()
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.__enter__()

    def test_replay_via_closed_session_raises(self, tmp_path):
        from repro.core.qjob import QJob
        from repro.traces.replay import replay_jobs

        s = ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK)
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            replay_jobs(
                iter([QJob(0.0, 3600.0, 1.0, 30.0, 12.0, "a")]), session=s
            )

    def test_close_drops_store_handle(self, tmp_path):
        s = ExecutionSession(cache_dir=tmp_path)
        first = s.store
        assert first is not None
        s.close()
        assert s._store is None


class TestSessionFromKwargs:
    def test_no_session_builds_one_without_warning(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            s = session_from_kwargs(
                None, warn_name="f", jobs=2, cache_dir=tmp_path
            )
        assert s.pool_jobs == 2
        assert s.cache_dir == tmp_path

    def test_session_passthrough_untouched(self):
        base = ExecutionSession(jobs=2)
        assert session_from_kwargs(base, warn_name="f") is base

    def test_legacy_kwargs_alongside_session_warn_and_override(self):
        base = ExecutionSession(jobs=2, task_timeout=30.0)
        with pytest.warns(DeprecationWarning, match="jobs.*replay_jobs"):
            merged = session_from_kwargs(base, warn_name="replay_jobs", jobs=4)
        assert merged.pool_jobs == 4
        assert merged.task_timeout == 30.0  # untouched fields carried over
        assert base.pool_jobs == 2  # original session unchanged

    def test_unset_kwargs_do_not_warn(self):
        from repro.engine import UNSET

        base = ExecutionSession()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert session_from_kwargs(base, warn_name="f", jobs=UNSET) is base


class TestEntryPoints:
    def test_run_experiments_accepts_session(self, tmp_path):
        session = ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK)
        via_session = run_experiments(FAST, session=session)
        via_kwargs = run_experiments(
            FAST, jobs=1, cache_dir=tmp_path, retry=QUICK
        )
        assert [r.name for r in via_session.runs] == [r.name for r in via_kwargs.runs]
        assert [r.metrics.status for r in via_session.runs] == ["ok", "ok"]
        for a, b in zip(via_session.reports, via_kwargs.reports):
            assert a.render() == b.render()

    def test_session_reuse_shares_cache(self, tmp_path):
        session = ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK)
        cold = run_experiments(FAST, session=session)
        warm = run_experiments(FAST, session=session)
        assert [r.metrics.cache_hit for r in cold.runs] == [False, False]
        assert [r.metrics.cache_hit for r in warm.runs] == [True, True]

    def test_legacy_kwarg_with_session_warns(self, tmp_path):
        session = ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK)
        with pytest.warns(DeprecationWarning, match="run_experiments"):
            result = run_experiments(
                ["lemma42"], session=session, package_version="x.y.z"
            )
        assert result.runs[0].metrics.status == "ok"

    def test_replay_jobs_accepts_session(self, tmp_path):
        from repro.core.qjob import QJob
        from repro.traces.replay import replay_jobs

        def stream():
            yield QJob(0.0, 3600.0, 1.0, 30.0, 12.0, "a")
            yield QJob(100.0, 4000.0, 1.0, 25.0, 5.0, "b")

        session = ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK)
        report, metrics = replay_jobs(stream(), session=session)
        assert report.shards
        assert metrics.shards == len(report.shards)

    def test_replay_quarantine_reported_as_delta(self, tmp_path):
        """A reused session's store accumulates; per-run metrics must not."""
        from repro.core.qjob import QJob
        from repro.traces.replay import replay_jobs

        def stream():
            yield QJob(0.0, 3600.0, 1.0, 30.0, 12.0, "a")

        session = ExecutionSession(jobs=1, cache_dir=tmp_path, retry=QUICK)
        _, m1 = replay_jobs(stream(), session=session)
        _, m2 = replay_jobs(stream(), session=session)
        assert m1.quarantined == 0
        assert m2.quarantined == 0
