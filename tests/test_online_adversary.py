"""The adaptive online adversary search."""

import pytest

from repro.bounds.online_adversary import (
    JobTemplate,
    adaptive_online_search,
    default_menu,
)
from repro.qbss import avrq


def test_template_instantiation():
    t = JobTemplate(2.0, 0.5, 1.0, (0.0, 1.0))
    j = t.instantiate(3.0, 1.0, 7)
    assert (j.release, j.deadline, j.query_cost, j.work_upper, j.work_true) == (
        3.0,
        5.0,
        0.5,
        1.0,
        1.0,
    )
    assert j.id == "adv-7"


def test_default_menu_scales():
    base = default_menu(1.0)
    scaled = default_menu(2.0)
    assert len(base) == len(scaled)
    assert scaled[0].work_upper == 2 * base[0].work_upper


def test_search_is_deterministic():
    a = adaptive_online_search(avrq, steps=3)
    b = adaptive_online_search(avrq, steps=3)
    assert a.ratio == b.ratio
    assert [j.release for j in a.instance] == [j.release for j in b.instance]


def test_search_beats_single_job_game():
    """Three adaptive steps already exceed the single-job worst case."""
    res = adaptive_online_search(avrq, steps=3)
    assert res.ratio > 4.5  # the single-job (c=1, w=2) value for CRCD/AVRQ
    assert len(res.trace) == len(res.instance)


def test_search_monotone_in_steps():
    r3 = adaptive_online_search(avrq, steps=3).ratio
    r5 = adaptive_online_search(avrq, steps=5).ratio
    assert r5 >= r3 - 1e-9


def test_found_instances_stay_below_paper_bound():
    from repro.bounds.formulas import avrq_ub_energy

    res = adaptive_online_search(avrq, steps=5)
    assert res.ratio <= avrq_ub_energy(3.0) * (1 + 1e-9)


def test_releases_non_decreasing():
    res = adaptive_online_search(avrq, steps=5)
    releases = [j.release for j in res.instance]
    assert releases == sorted(releases)
