"""PowerFunction: the P(s) = s^alpha model."""

import math

import pytest

from repro.core.power import PowerFunction


def test_alpha_must_exceed_one():
    with pytest.raises(ValueError):
        PowerFunction(1.0)
    with pytest.raises(ValueError):
        PowerFunction(0.5)


def test_power_cubic():
    p = PowerFunction(3.0)
    assert p.power(2.0) == 8.0


def test_power_rejects_negative_speed():
    with pytest.raises(ValueError):
        PowerFunction(2.0).power(-1.0)


def test_energy_constant_speed():
    p = PowerFunction(2.0)
    assert p.energy(3.0, 2.0) == 18.0


def test_energy_rejects_negative_duration():
    with pytest.raises(ValueError):
        PowerFunction(2.0).energy(1.0, -1.0)


def test_energy_for_work_constant_speed_value():
    p = PowerFunction(3.0)
    # 6 units in 2 time -> speed 3 -> energy 2 * 27 = 54
    assert math.isclose(p.energy_for_work(6.0, 2.0), 54.0)


def test_energy_for_work_zero_work():
    assert PowerFunction(3.0).energy_for_work(0.0, 0.0) == 0.0


def test_energy_for_work_requires_duration():
    with pytest.raises(ValueError):
        PowerFunction(3.0).energy_for_work(1.0, 0.0)


def test_energy_for_work_convexity():
    """Splitting work unevenly across two halves costs more than evenly."""
    p = PowerFunction(2.5)
    even = 2 * p.energy_for_work(1.0, 1.0)
    uneven = p.energy_for_work(1.5, 1.0) + p.energy_for_work(0.5, 1.0)
    assert even < uneven


def test_speed_for_energy_roundtrip():
    p = PowerFunction(3.0)
    s = p.speed_for_energy(54.0, 2.0)
    assert math.isclose(p.energy(s, 2.0), 54.0)


def test_higher_alpha_penalises_speed_more():
    e2 = PowerFunction(2.0).energy(3.0, 1.0)
    e3 = PowerFunction(3.0).energy(3.0, 1.0)
    assert e3 > e2
