"""Text visualisation and ratio statistics."""

import numpy as np
import pytest

from repro.analysis.stats import RatioStats, bootstrap_ci, paired_improvement
from repro.core.profile import Segment, SpeedProfile
from repro.core.schedule import Schedule
from repro.viz import gantt, profile_chart, profile_skyline


class TestViz:
    def test_skyline_levels(self):
        prof = SpeedProfile([Segment(0, 1, 1.0), Segment(1, 2, 2.0)])
        sky = profile_skyline(prof, width=4)
        assert len(sky) == 4
        # second half at peak speed uses the full block
        assert sky[3] == "█"
        # first half at half speed uses a mid block
        assert sky[0] not in (" ", "█")

    def test_skyline_empty(self):
        assert profile_skyline(SpeedProfile(), width=10) == " " * 10

    def test_skyline_shared_scale(self):
        prof = SpeedProfile.constant(0, 1, 1.0)
        sky = profile_skyline(prof, width=4, max_speed=2.0)
        assert "█" not in sky  # only half the shared peak

    def test_profile_chart_stacks(self):
        a = SpeedProfile.constant(0, 2, 1.0)
        b = SpeedProfile.constant(1, 3, 2.0)
        out = profile_chart([a, b], ["first", "second"], width=12)
        lines = out.split("\n")
        assert lines[0].startswith(" first |")
        assert lines[1].startswith("second |")
        assert "t = [0, 3]" in out

    def test_gantt_rows_and_legend(self):
        s = Schedule(2)
        s.add(0, 1, 1.0, "alpha", 0)
        s.add(1, 2, 1.0, "beta", 0)
        s.add(0, 2, 1.0, "gamma", 1)
        out = gantt(s, width=8)
        lines = out.split("\n")
        assert lines[0].startswith("m0 |")
        assert lines[1].startswith("m1 |")
        assert "a=alpha" in out and "b=beta" in out

    def test_gantt_idle_dots(self):
        s = Schedule(1)
        s.add(0, 1, 1.0, "x")
        s.add(3, 4, 1.0, "x")
        out = gantt(s, width=8).split("\n")[0]
        assert "." in out

    def test_gantt_empty(self):
        assert gantt(Schedule(1)) == "(empty schedule)"

    def test_profile_chart_label_mismatch_rejected(self):
        """Regression: a short label list used to silently drop the
        unlabelled profiles from the chart."""
        a = SpeedProfile.constant(0, 2, 1.0)
        b = SpeedProfile.constant(1, 3, 2.0)
        with pytest.raises(ValueError, match="2 profiles but 1 labels"):
            profile_chart([a, b], ["only-one"])
        with pytest.raises(ValueError, match="lengths must match"):
            profile_chart([a], ["one", "two"])
        # omitting labels still auto-names every profile
        assert "profile 1" in profile_chart([a, b])

    def test_gantt_legend_reports_symbol_collisions(self):
        """Regression: past the 62-symbol alphabet every job rendered as
        '?' and the legend listed each as if '?' were unique to it."""
        s = Schedule(1)
        n = 65  # three past the alphabet
        for i in range(n):
            s.add(i, i + 1, 1.0, f"job{i:02d}")
        out = gantt(s, width=n)
        legend = out.split("\n")[-1]
        assert "jobs share '?'" in legend
        assert "3 jobs" in legend
        assert "job62" in legend and "job64" in legend
        # and exactly one ?=... legend entry, not one per collided job
        assert legend.count("?=") == 1

    def test_gantt_legend_unchanged_without_collisions(self):
        s = Schedule(1)
        s.add(0, 1, 1.0, "alpha")
        out = gantt(s, width=4)
        assert "?" not in out.split("\n")[-1]


class TestStats:
    def test_ratio_stats_values(self):
        stats = RatioStats.from_sample([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5

    def test_ratio_stats_single_value(self):
        stats = RatioStats.from_sample([2.0])
        assert stats.std == 0.0

    def test_ratio_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            RatioStats.from_sample([])

    def test_bootstrap_ci_contains_mean_for_tight_sample(self):
        lo, hi = bootstrap_ci([2.0, 2.1, 1.9, 2.0, 2.05, 1.95] * 5, seed=1)
        assert lo <= 2.0 <= hi
        assert hi - lo < 0.2

    def test_bootstrap_ci_deterministic_given_seed(self):
        sample = list(np.random.default_rng(0).uniform(1, 3, 30))
        assert bootstrap_ci(sample, seed=7) == bootstrap_ci(sample, seed=7)

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_paired_improvement_detects_dominance(self):
        baseline = [3.0, 4.0, 5.0, 3.5, 4.5] * 4
        candidate = [x * 0.8 for x in baseline]
        mean_rel, (lo, hi), win = paired_improvement(baseline, candidate)
        assert mean_rel == pytest.approx(0.8)
        assert hi < 1.0  # CI excludes "no improvement"
        assert win == 1.0

    def test_paired_improvement_shape_checked(self):
        with pytest.raises(ValueError):
            paired_improvement([1.0], [1.0, 2.0])

    def test_paired_improvement_ties_split(self):
        """Regression: identical algorithms scored win_rate 1.0 under the
        old ``candidate <= baseline`` rule; ties must count half."""
        same = [2.0, 3.0, 4.0, 5.0]
        mean_rel, _, win = paired_improvement(same, same)
        assert mean_rel == 1.0
        assert win == 0.5

    def test_paired_improvement_mixed_ties(self):
        baseline = [1.0, 2.0, 3.0, 4.0]
        candidate = [0.5, 2.0, 5.0, 4.0]  # one win, one loss, two ties
        _, _, win = paired_improvement(baseline, candidate)
        assert win == pytest.approx((1 + 0.5 * 2) / 4)
