"""Schedule and Slice containers."""

import math

import pytest

from repro.core.power import PowerFunction
from repro.core.schedule import Schedule, Slice, merge_schedules


def test_slice_validation():
    with pytest.raises(ValueError):
        Slice(1.0, 1.0, 1.0, "x")
    with pytest.raises(ValueError):
        Slice(0.0, 1.0, -1.0, "x")


def test_add_and_sorted_slices():
    s = Schedule(1)
    s.add(2.0, 3.0, 1.0, "b")
    s.add(0.0, 1.0, 2.0, "a")
    assert [sl.job_id for sl in s.slices()] == ["a", "b"]


def test_zero_speed_slices_dropped():
    s = Schedule(1)
    s.add(0.0, 1.0, 0.0, "a")
    assert s.slices() == []


def test_machine_bounds_checked():
    s = Schedule(2)
    with pytest.raises(ValueError):
        s.add(0, 1, 1, "a", machine=2)


def test_work_of_accumulates_across_machines():
    s = Schedule(2)
    s.add(0, 1, 2.0, "a", 0)
    s.add(2, 3, 1.0, "a", 1)
    assert s.work_of("a") == 3.0
    assert s.work_of("missing") == 0.0


def test_work_by_job():
    s = Schedule(1)
    s.add(0, 1, 1.0, "a")
    s.add(1, 2, 2.0, "b")
    assert s.work_by_job() == {"a": 1.0, "b": 2.0}


def test_completion_time():
    s = Schedule(1)
    s.add(0, 1, 1.0, "a")
    s.add(3, 4, 1.0, "a")
    assert s.completion_time("a") == 4.0
    assert s.completion_time("zzz") == float("-inf")


def test_energy_and_max_speed(power3):
    s = Schedule(2)
    s.add(0, 1, 2.0, "a", 0)
    s.add(0, 2, 1.0, "b", 1)
    assert math.isclose(s.energy(power3), 8.0 + 2.0)
    assert s.max_speed() == 2.0


def test_machine_profile():
    s = Schedule(2)
    s.add(0, 1, 2.0, "a", 0)
    s.add(1, 2, 2.0, "b", 0)
    prof = s.machine_profile(0)
    assert prof.total_work() == 4.0
    assert len(prof) == 1  # merged equal-speed adjacency


def test_span():
    s = Schedule(1)
    assert s.span() == (0.0, 0.0)
    s.add(1, 2, 1.0, "a")
    s.add(4, 5, 1.0, "b")
    assert s.span() == (1.0, 5.0)


def test_merge_schedules():
    a = Schedule(1)
    a.add(0, 1, 1.0, "x")
    b = Schedule(2)
    b.add(1, 2, 2.0, "y", 1)
    merged = merge_schedules([a, b])
    assert merged.machines == 2
    assert merged.work_of("x") == 1.0
    assert merged.work_of("y") == 2.0


def test_merge_empty():
    assert merge_schedules([]).machines == 1


def test_busy_time_and_utilization():
    s = Schedule(2)
    s.add(0, 1, 1.0, "a", 0)
    s.add(2, 3, 1.0, "b", 0)
    s.add(0, 4, 1.0, "c", 1)
    assert s.busy_time(0) == 2.0
    assert s.busy_time(1) == 4.0
    # span is [0, 4]
    assert s.utilization(0) == 0.5
    assert s.utilization(1) == 1.0
    assert s.utilization(0, horizon=(0.0, 8.0)) == 0.25


def test_busy_time_bounds_checked():
    s = Schedule(1)
    with pytest.raises(ValueError):
        s.busy_time(1)


def test_utilization_empty_schedule():
    assert Schedule(1).utilization(0) == 0.0
