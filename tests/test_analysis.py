"""The measurement harness: ratios, sweeps, tables."""

import math

import pytest

from repro.analysis.ratios import (
    always_query_equal_window_offline,
    measure,
    measure_many,
    never_query_offline,
)
from repro.analysis.sweep import (
    alpha_sweep,
    best_point,
    parameter_sweep,
    size_sweep,
    worst_point,
)
from repro.analysis.tables import format_cell, render_table
from repro.core.instance import QBSSInstance
from repro.core.qjob import QJob
from repro.qbss.avrq import avrq
from repro.qbss.crcd import crcd
from repro.workloads.generators import common_deadline_instance, online_instance


class TestMeasure:
    def test_ratio_at_least_one_for_exact_baseline(self):
        qi = common_deadline_instance(8, seed=0)
        m = measure(crcd, qi, alpha=3.0)
        assert m.energy_ratio >= 1.0 - 1e-9
        assert m.max_speed_ratio >= 1.0 - 1e-9
        assert m.exact_baseline

    def test_never_query_ratio_formula(self):
        # single job: never-query executes w; opt executes c + w*
        qi = QBSSInstance([QJob(0, 1, 0.1, 1.0, 0.1, "x")])
        m = measure(never_query_offline, qi, alpha=3.0)
        assert math.isclose(m.max_speed_ratio, 1.0 / 0.2)
        assert math.isclose(m.energy_ratio, 5.0**3)

    def test_equal_window_baseline_feasible(self):
        qi = common_deadline_instance(6, seed=1)
        m = measure(always_query_equal_window_offline, qi, alpha=3.0)
        assert m.energy_ratio >= 1.0 - 1e-9

    def test_measure_many_aggregates(self):
        instances = [common_deadline_instance(6, seed=s) for s in range(4)]
        summary = measure_many(crcd, instances, alpha=3.0)
        assert summary.count == 4
        assert summary.max_energy_ratio >= summary.mean_energy_ratio

    def test_measure_many_requires_instances(self):
        with pytest.raises(ValueError):
            measure_many(crcd, [], alpha=3.0)


class TestSweeps:
    def test_alpha_sweep_ordering(self):
        instances = [online_instance(6, seed=s) for s in (0, 1)]
        points = alpha_sweep(avrq, instances, [2.0, 3.0])
        assert [p.parameter for p in points] == [2.0, 3.0]

    def test_size_sweep(self):
        points = size_sweep(
            crcd,
            lambda n, s: common_deadline_instance(n, seed=s),
            [4, 8],
            3.0,
            seeds=(0,),
        )
        assert [p.parameter for p in points] == [4.0, 8.0]

    def test_parameter_sweep_and_extremes(self):
        from repro.qbss.policies import FixedSplit

        instances = [online_instance(6, seed=s) for s in (0, 1)]
        points = parameter_sweep(
            lambda x: (lambda qi: avrq(qi, split_policy=FixedSplit(x))),
            instances,
            [0.2, 0.5, 0.8],
            3.0,
        )
        w, b = worst_point(points), best_point(points)
        assert w.summary.max_energy_ratio >= b.summary.max_energy_ratio


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "--"
        assert format_cell(True) == "yes"
        assert format_cell(1.23456) == "1.235"
        assert format_cell("x") == "x"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("nan")) == "nan"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1.0, "long-cell"], [2.0, "x"]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        # all rows padded to the same header structure
        assert "long-cell" in out and "1.000" in out

    def test_render_latex_tabular(self):
        from repro.analysis.tables import render_latex

        out = render_latex(["alg", "ratio"], [["CRCD", 1.5], ["AVR_Q", None]])
        assert out.startswith(r"\begin{tabular}{ll}")
        assert r"CRCD & 1.500 \\" in out
        assert r"AVR\_Q & -- \\" in out  # escaping + None cell
        assert r"\end{tabular}" in out
        assert r"\begin{table}" not in out  # no caption -> bare tabular

    def test_render_latex_with_caption(self):
        from repro.analysis.tables import render_latex

        out = render_latex(
            ["x"], [[1]], caption="50% better", label="tab:x"
        )
        assert r"\caption{50\% better}" in out
        assert r"\label{tab:x}" in out
        assert out.rstrip().endswith(r"\end{table}")
