"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import Instance, Job, PowerFunction, QBSSInstance, QJob


@pytest.fixture(autouse=True, scope="session")
def _lockwatch_sanitizer():
    """Opt-in lock-order sanitizer for the whole session.

    With ``QBSS_LOCKWATCH=1`` every lock constructed through the
    :mod:`repro.lint.lockwatch` seam (the serve daemon, the journal, the
    TCP backend) is watched; teardown fails the run on any observed
    lock-order cycle.  CI enables this on the serve / backends / chaos
    suites so they double as lock-order chaos runs.
    """
    if os.environ.get("QBSS_LOCKWATCH") != "1":
        yield
        return
    from repro.lint import lockwatch

    watcher = lockwatch.LockWatcher()
    lockwatch.install_watcher(watcher)
    try:
        yield
    finally:
        lockwatch.uninstall_watcher()
        watcher.check()


@pytest.fixture
def power3() -> PowerFunction:
    return PowerFunction(3.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def simple_jobs():
    """Three classical jobs with overlapping windows."""
    return [
        Job(0.0, 1.0, 2.0, "a"),
        Job(0.0, 2.0, 1.0, "b"),
        Job(1.5, 3.0, 4.0, "c"),
    ]


@pytest.fixture
def simple_instance(simple_jobs) -> Instance:
    return Instance(simple_jobs)


@pytest.fixture
def qjob() -> QJob:
    return QJob(0.0, 4.0, 0.5, 3.0, 1.0, "q")


@pytest.fixture
def common_window_qinstance() -> QBSSInstance:
    """Four QBSS jobs sharing the window (0, 8]."""
    triples = [(1.0, 4.0, 2.0), (3.0, 4.0, 4.0), (0.5, 5.0, 0.2), (2.0, 2.5, 1.0)]
    return QBSSInstance(
        [QJob(0.0, 8.0, c, w, ws, f"j{i}") for i, (c, w, ws) in enumerate(triples)]
    )


# shared non-fixture helpers live in tests/_testutil.py (unique module name
# so running tests/ and benchmarks/ in one pytest session cannot collide)
