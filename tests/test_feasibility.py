"""The schedule validator: every violation class must be caught."""

import pytest

from repro.core.feasibility import InfeasibleScheduleError, check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.schedule import Schedule


def make(jobs, machines=1):
    return Instance(jobs, machines)


def test_valid_schedule_passes(simple_instance):
    s = Schedule(1)
    s.add(0.0, 1.0, 2.0, "a")
    s.add(1.0, 2.0, 1.0, "b")
    s.add(2.0, 3.0, 4.0, "c")
    report = check_feasible(s, simple_instance)
    assert report.ok, report.violations


def test_window_violation_before_release():
    inst = make([Job(1.0, 2.0, 1.0, "a")])
    s = Schedule(1)
    s.add(0.5, 1.5, 1.0, "a")
    report = check_feasible(s, inst)
    assert not report.ok
    assert any("outside window" in v for v in report.violations)


def test_window_violation_after_deadline():
    inst = make([Job(0.0, 1.0, 1.0, "a")])
    s = Schedule(1)
    s.add(0.5, 1.5, 1.0, "a")
    assert not check_feasible(s, inst).ok


def test_machine_overlap_detected():
    inst = make([Job(0, 2, 1, "a"), Job(0, 2, 1, "b")])
    s = Schedule(1)
    s.add(0.0, 1.5, 1.0, "a")
    s.add(1.0, 2.0, 1.0, "b")
    report = check_feasible(s, inst)
    assert any("overlap" in v for v in report.violations)


def test_self_parallelism_detected():
    inst = make([Job(0, 2, 4, "a")], machines=2)
    s = Schedule(2)
    s.add(0.0, 1.0, 2.0, "a", 0)
    s.add(0.5, 1.5, 2.0, "a", 1)
    report = check_feasible(s, inst)
    assert any("self-parallel" in v for v in report.violations)


def test_migration_without_overlap_is_fine():
    inst = make([Job(0, 2, 2, "a")], machines=2)
    s = Schedule(2)
    s.add(0.0, 1.0, 1.0, "a", 0)
    s.add(1.0, 2.0, 1.0, "a", 1)
    assert check_feasible(s, inst).ok


def test_under_execution_detected():
    inst = make([Job(0, 1, 2, "a")])
    s = Schedule(1)
    s.add(0.0, 1.0, 1.0, "a")
    report = check_feasible(s, inst)
    assert any("under-executed" in v for v in report.violations)


def test_over_execution_detected():
    inst = make([Job(0, 1, 1, "a")])
    s = Schedule(1)
    s.add(0.0, 1.0, 2.0, "a")
    report = check_feasible(s, inst)
    assert any("over-executed" in v for v in report.violations)


def test_require_all_work_false_allows_partial():
    inst = make([Job(0, 1, 2, "a")])
    s = Schedule(1)
    s.add(0.0, 0.5, 1.0, "a")
    assert check_feasible(s, inst, require_all_work=False).ok


def test_unknown_job_detected():
    inst = make([Job(0, 1, 1, "a")])
    s = Schedule(1)
    s.add(0.0, 1.0, 1.0, "ghost")
    report = check_feasible(s, inst)
    assert any("unknown job" in v for v in report.violations)


def test_too_many_machines_detected():
    inst = make([Job(0, 1, 1, "a")], machines=1)
    s = Schedule(2)
    s.add(0.0, 1.0, 1.0, "a", 1)
    report = check_feasible(s, inst)
    assert any("machines" in v for v in report.violations)


def test_raise_if_infeasible():
    inst = make([Job(0, 1, 2, "a")])
    s = Schedule(1)
    report = check_feasible(s, inst)
    with pytest.raises(InfeasibleScheduleError):
        report.raise_if_infeasible()


def test_zero_work_job_needs_no_slices():
    inst = make([Job(0, 1, 0, "a")])
    assert check_feasible(Schedule(1), inst).ok
