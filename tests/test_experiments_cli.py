"""The experiment registry and the qbss-report CLI."""

import pytest

from repro.analysis.experiments import (
    REGISTRY,
    experiment_figure1,
    experiment_lemma43,
    experiment_lemma44,
    experiment_online,
    experiment_rho,
    experiment_table1,
)
from repro.cli import build_parser, main


class TestExperiments:
    def test_registry_covers_all_artifacts(self):
        expected = {
            "table1",
            "rho",
            "figure1",
            "lemma41",
            "lemma42",
            "lemma43",
            "lemma44",
            "lemma45",
            "lemma51",
            "online",
            "multi",
            "ablation-split",
            "ablation-query",
            "ablation-migration",
            "classical-lb",
            "oaq",
            "oaq-multi",
            "randomized-policy",
            "dvfs",
            "minimax",
            "sleep",
            "slack",
            "crcd-design-space",
            "adaptive-adversary",
        }
        assert expected == set(REGISTRY)

    def test_rho_all_match(self):
        report = experiment_rho()
        assert all(row[-1] for row in report.rows)  # 'match' column

    def test_figure1_chain_holds(self):
        report = experiment_figure1(alpha=3.0, n=8, seed=1)
        assert "True" in report.notes[0]

    def test_table1_within_bounds(self, *, _seeds=(0, 1)):
        report = experiment_table1(alpha=3.0, n=8, seeds=_seeds)
        assert all(row[-1] for row in report.rows)  # 'within UB'

    def test_lemma43_achieves_bounds(self):
        report = experiment_lemma43(alpha=3.0)
        for row in report.rows:
            claimed, best_value = row[1], row[2]
            assert best_value >= claimed - 1e-6

    def test_lemma44_achieves_bounds(self):
        report = experiment_lemma44(alpha=3.0)
        assert all(row[-1] for row in report.rows)

    def test_online_within_bounds(self):
        report = experiment_online(alpha=3.0, n=8, seeds=(0, 1))
        assert all(row[-1] for row in report.rows)

    def test_reports_render(self):
        report = experiment_rho()
        text = report.render()
        assert "[RHO]" in text
        assert "alpha" in text


class TestCLI:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["rho"])
        assert args.experiment == "rho"
        with pytest.raises(SystemExit):
            parser.parse_args(["nonsense"])

    def test_main_runs_rho(self, capsys):
        assert main(["rho"]) == 0
        out = capsys.readouterr().out
        assert "[RHO]" in out

    def test_main_passes_alpha(self, capsys):
        assert main(["lemma42", "--alpha", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "alpha=2.0" in out


class TestVersionFlag:
    """Every console script answers --version with the package version."""

    @pytest.mark.parametrize(
        ("prog", "entry"),
        [
            ("qbss-report", "repro.cli:main"),
            ("qbss-replay", "repro.cli:replay_main"),
            ("qbss-lint", "repro.lint.cli:main"),
            ("qbss-serve", "repro.serve.cli:main"),
        ],
    )
    def test_version_flag(self, prog, entry, capsys):
        import importlib

        from repro import __version__

        module_name, func_name = entry.split(":")
        entry_main = getattr(importlib.import_module(module_name), func_name)
        with pytest.raises(SystemExit) as excinfo:
            entry_main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out
