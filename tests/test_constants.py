"""The golden ratio and float-comparison helpers."""

import math

from repro.core.constants import E_CONST, EPS, PHI, feq, fge, fle


def test_phi_value():
    assert math.isclose(PHI, (1 + math.sqrt(5)) / 2)


def test_phi_golden_identity():
    # phi^2 = phi + 1 is what makes the threshold rule of Lemma 3.1 tight
    assert math.isclose(PHI * PHI, PHI + 1.0)


def test_phi_reciprocal_identity():
    # 1/phi = phi - 1
    assert math.isclose(1.0 / PHI, PHI - 1.0)


def test_e_const():
    assert math.isclose(E_CONST, math.e)


def test_feq_near_zero():
    assert feq(0.0, EPS / 2)
    assert not feq(0.0, 1e-3)


def test_feq_large_values_relative():
    assert feq(1e9, 1e9 * (1 + 1e-8))
    assert not feq(1e9, 1e9 * 1.01)


def test_fle_and_fge():
    assert fle(1.0, 1.0)
    assert fle(1.0, 1.0 + 1e-12)
    assert fle(1.0 + 1e-12, 1.0)  # within tolerance
    assert not fle(1.1, 1.0)
    assert fge(2.0, 1.0)
    assert not fge(1.0, 2.0)
