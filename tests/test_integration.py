"""End-to-end pipelines across modules."""

import math

import pytest

from repro.analysis.ratios import measure
from repro.core.power import PowerFunction
from repro.qbss import avrq, avrq_m, bkpq, clairvoyant, crad, crcd, crp2d, oaq
from repro.workloads import (
    code_optimizer_scenario,
    common_deadline_instance,
    datacenter_batch_scenario,
    file_compression_scenario,
    power_of_two_instance,
)


ONLINE_ALGOS = [avrq, bkpq, oaq]


@pytest.mark.parametrize("algo", ONLINE_ALGOS)
def test_scenarios_run_end_to_end(algo):
    """Both motivating scenarios drive every online algorithm cleanly."""
    for make in (code_optimizer_scenario, file_compression_scenario):
        qi = make(15, seed=11)
        m = measure(algo, qi, alpha=3.0)
        assert m.feasible
        assert m.energy_ratio >= 1.0 - 1e-9


def test_energy_accounting_consistent_profile_vs_schedule():
    """Profile energy == schedule energy for single-machine runs."""
    p = PowerFunction(3.0)
    qi = common_deadline_instance(10, seed=3)
    result = crcd(qi)
    assert math.isclose(
        result.energy(p), result.schedule.energy(p), rel_tol=1e-6
    )
    qi2 = power_of_two_instance(10, seed=3)
    result2 = crp2d(qi2)
    assert math.isclose(
        result2.energy(p), result2.schedule.energy(p), rel_tol=1e-6
    )


def test_offline_algorithms_agree_on_their_common_domain():
    """A common-deadline power-of-2 instance is valid input to all three
    offline algorithms; all must be feasible and within their bounds."""
    from repro.bounds.formulas import crad_ub_energy, crcd_ub_energy, crp2d_ub_energy

    qi = common_deadline_instance(10, deadline=8.0, seed=5)
    opt = clairvoyant(qi, alpha=3.0).energy_value
    p = PowerFunction(3.0)
    for algo, bound in ((crcd, crcd_ub_energy), (crp2d, crp2d_ub_energy), (crad, crad_ub_energy)):
        res = algo(qi)
        assert res.validate().ok
        assert res.energy(p) <= bound(3.0) * opt * (1 + 1e-9)


def test_datacenter_multi_machine_pipeline():
    qi = datacenter_batch_scenario(12, machines=4, seed=2)
    result = avrq_m(qi)
    report = result.validate()
    assert report.ok, report.violations
    base = clairvoyant(qi, alpha=3.0)
    assert result.energy(PowerFunction(3.0)) >= base.energy_value * (1 - 1e-9)


def test_decisions_consistent_with_derived_jobs():
    """Every queried job contributes exactly a query job and a work job."""
    qi = code_optimizer_scenario(12, seed=9)
    result = bkpq(qi)
    derived_ids = {j.id for j in result.derived.jobs}
    for qjob in qi:
        if result.decisions[qjob.id].query:
            assert qjob.id + ":query" in derived_ids
            assert qjob.id + ":work" in derived_ids
        else:
            assert qjob.id + ":full" in derived_ids


def test_executed_load_matches_decision():
    qi = common_deadline_instance(8, seed=13)
    result = crcd(qi)
    for qjob in qi:
        executed = result.executed_load(qjob.id)
        if result.decisions[qjob.id].query:
            expected = qjob.query_cost + qjob.work_true
        else:
            expected = qjob.work_upper
        assert math.isclose(executed, expected, rel_tol=1e-6, abs_tol=1e-9)


def test_alpha_consistency_across_objectives():
    """Max-speed ratios are alpha-independent; energy ratios grow with it."""
    qi = common_deadline_instance(10, seed=1)
    m2 = measure(crcd, qi, alpha=2.0)
    m3 = measure(crcd, qi, alpha=3.0)
    assert math.isclose(m2.max_speed_ratio, m3.max_speed_ratio, rel_tol=1e-9)
