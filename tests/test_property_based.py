"""Property-based tests (hypothesis) on core invariants.

These cover the load-bearing mathematical facts the paper's analyses rely
on: Lemma 3.1's per-job guarantee, YDS optimality/dominance, AVR and BKP
feasibility, profile algebra, and the information-hiding protocol.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.constants import PHI
from repro.core.edf import run_edf
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.core.profile import Segment, SpeedProfile, sum_profiles
from repro.core.qjob import QJob
from repro.speed_scaling.avr import avr, avr_profile
from repro.speed_scaling.bkp import bkp
from repro.speed_scaling.yds import yds, yds_profile

# -- strategies --------------------------------------------------------------------

finite = st.floats(
    min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def classical_jobs(draw, max_jobs=6):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        r = draw(st.floats(min_value=0.0, max_value=10.0))
        span = draw(st.floats(min_value=0.1, max_value=5.0))
        w = draw(st.floats(min_value=0.0, max_value=10.0))
        jobs.append(Job(r, r + span, w, f"h{i}"))
    return jobs


@st.composite
def qjobs(draw):
    r = draw(st.floats(min_value=0.0, max_value=5.0))
    span = draw(st.floats(min_value=0.2, max_value=5.0))
    w = draw(st.floats(min_value=0.1, max_value=10.0))
    c = draw(st.floats(min_value=1e-3, max_value=1.0)) * w
    wstar = draw(st.floats(min_value=0.0, max_value=1.0)) * w
    return QJob(r, r + span, c, w, min(wstar, w))


@st.composite
def segment_lists(draw):
    n = draw(st.integers(min_value=0, max_value=5))
    segs, t = [], 0.0
    for _ in range(n):
        gap = draw(st.floats(min_value=0.0, max_value=1.0))
        length = draw(st.floats(min_value=0.1, max_value=2.0))
        speed = draw(st.floats(min_value=0.0, max_value=5.0))
        start = t + gap
        segs.append((start, start + length, speed))
        t = start + length
    return [Segment(a, b, s) for a, b, s in segs if s > 0]


# -- Lemma 3.1 ----------------------------------------------------------------------


@given(qjobs())
def test_lemma31_golden_rule_guarantee(qjob):
    """If the golden rule is followed, the load run is <= phi * p*."""
    if qjob.query_cost <= qjob.work_upper / PHI:
        executed = qjob.query_cost + qjob.work_true
    else:
        executed = qjob.work_upper
    assert executed <= PHI * qjob.optimal_load * (1 + 1e-9)


@given(qjobs())
def test_optimal_load_definition(qjob):
    assert qjob.optimal_load <= qjob.work_upper + 1e-12
    assert qjob.optimal_load <= qjob.query_cost + qjob.work_true + 1e-12


# -- profile algebra ----------------------------------------------------------------


@given(segment_lists())
def test_profile_work_equals_segment_sum(segs):
    prof = SpeedProfile(segs)
    # abs tolerance covers the constructor's EPS-merging of adjacent
    # segments with near-equal speeds (error <= EPS * total duration)
    total_duration = sum(s.duration for s in segs)
    assert math.isclose(
        prof.total_work(),
        sum(s.work for s in segs),
        rel_tol=1e-9,
        abs_tol=1e-9 * max(1.0, total_duration),
    )


@given(segment_lists(), st.floats(min_value=0.0, max_value=4.0))
def test_profile_scale_linearity(segs, k):
    prof = SpeedProfile(segs)
    assert math.isclose(
        prof.scale(k).total_work(), k * prof.total_work(), rel_tol=1e-9, abs_tol=1e-9
    )


@given(segment_lists(), segment_lists())
def test_sum_profiles_pointwise(a_segs, b_segs):
    a, b = SpeedProfile(a_segs), SpeedProfile(b_segs)
    s = sum_profiles([a, b])
    pts = sorted(set(a.breakpoints()) | set(b.breakpoints()))
    for lo, hi in zip(pts, pts[1:]):
        if hi - lo <= 1e-9:
            # sub-tolerance slivers are deliberately collapsed by the sum
            continue
        mid = 0.5 * (lo + hi)
        # abs tolerance >= the constructor's EPS merge threshold: adjacent
        # segments whose speeds differ by <= 1e-9 are deliberately merged
        assert math.isclose(
            s.speed_at(mid),
            a.speed_at(mid) + b.speed_at(mid),
            rel_tol=1e-9,
            abs_tol=5e-9,
        )


@given(segment_lists(), st.floats(min_value=1.5, max_value=4.0))
def test_energy_scaling_power_law(segs, alpha):
    prof = SpeedProfile(segs)
    p = PowerFunction(alpha)
    assert math.isclose(
        prof.scale(2.0).energy(p), 2.0**alpha * prof.energy(p), rel_tol=1e-9,
        abs_tol=1e-12,
    )


# -- YDS ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(classical_jobs())
def test_yds_conserves_work_and_is_feasible(jobs):
    result = yds(jobs)
    total = sum(j.work for j in jobs)
    assert math.isclose(
        result.profile.total_work(), total, rel_tol=1e-6, abs_tol=1e-6
    )
    # EDF under the YDS profile completes everything
    assert run_edf(jobs, result.profile).feasible


@settings(max_examples=40, deadline=None)
@given(classical_jobs(), st.floats(min_value=1.5, max_value=4.0))
def test_yds_no_worse_than_avr(jobs, alpha):
    """AVR is feasible, so the optimum can only be cheaper."""
    p = PowerFunction(alpha)
    assert yds_profile(jobs).energy(p) <= avr_profile(jobs).energy(p) * (1 + 1e-6)


@settings(max_examples=30, deadline=None)
@given(classical_jobs())
def test_yds_speeds_dominated_by_total_density_peak(jobs):
    """The YDS max speed never exceeds the AVR peak (sum of densities)."""
    assert yds_profile(jobs).max_speed() <= avr_profile(jobs).max_speed() * (
        1 + 1e-9
    )


# -- AVR / BKP feasibility -----------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(classical_jobs())
def test_avr_always_feasible(jobs):
    assert avr(jobs).feasible


@settings(max_examples=20, deadline=None)
@given(classical_jobs(max_jobs=4))
def test_bkp_always_feasible(jobs):
    assert bkp(jobs).feasible


# -- EDF dominance -------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(classical_jobs(), st.floats(min_value=1.0, max_value=2.0))
def test_edf_feasible_for_scaled_up_yds(jobs, factor):
    """Any profile dominating the YDS profile is EDF-feasible."""
    prof = yds_profile(jobs).scale(factor)
    assert run_edf(jobs, prof).feasible


# -- executor / validator cross-validation --------------------------------------------


@settings(max_examples=30, deadline=None)
@given(classical_jobs(), st.floats(min_value=0.1, max_value=3.0))
def test_edf_output_always_passes_the_checker(jobs, speed):
    """Whatever EDF produces (even on starved profiles) is a valid partial
    schedule: windows respected, no overlap, never over-executed."""
    from repro.core.feasibility import check_feasible
    from repro.core.instance import Instance

    span_end = max(j.deadline for j in jobs)
    profile = SpeedProfile.constant(0.0, span_end, speed)
    result = run_edf(jobs, profile)
    report = check_feasible(
        result.schedule, Instance(jobs), require_all_work=False
    )
    assert report.ok, report.violations


@settings(max_examples=30, deadline=None)
@given(classical_jobs())
def test_edf_executed_plus_unfinished_accounts_for_all_work(jobs):
    from repro.speed_scaling.avr import avr_profile

    profile = avr_profile(jobs)
    result = run_edf(jobs, profile)
    executed = sum(result.schedule.work_by_job().values())
    leftover = sum(result.unfinished.values())
    total = sum(j.work for j in jobs)
    # abs tolerance covers forgiven float-dust residuals (see design notes:
    # bounded by tol * #events * max_speed)
    assert math.isclose(executed + leftover, total, rel_tol=1e-6, abs_tol=1e-4)


# -- query protocol ------------------------------------------------------------------


@given(qjobs())
def test_view_reveal_protocol(qjob):
    v = qjob.view()
    mid = qjob.midpoint
    got = v.reveal(mid)
    assert got == qjob.work_true
    assert v.revealed_at == mid
