"""Backend conformance: serial / pool / remote are interchangeable.

Every backend must produce byte-identical replay reports and identical
engine results for the same inputs; faults injected through
``QBSS_FAULT_PLAN`` must behave the same whether the worker is a local
pool process or a ``qbss-worker`` at the far end of a TCP socket.  The
remote tests spawn real worker subprocesses bound to 127.0.0.1:0 with a
port-file handshake — the same deployment shape the CI ``backends`` job
drives.
"""

import json
import os
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.core.qjob import QJob
from repro.engine import (
    Backend,
    ExecutionSession,
    FaultPlan,
    FaultSpec,
    PoolBackend,
    RemoteBackend,
    RetryPolicy,
    SerialBackend,
    create_backend,
    parse_backend_spec,
    run_experiments,
)
from repro.engine.backends.remote import resolve_worker_address
from repro.engine.faults import FAULT_PLAN_ENV
from repro.traces.replay import replay_jobs

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
QUICK = RetryPolicy(max_attempts=2, backoff_base=0.001, backoff_cap=0.01)


@pytest.fixture
def no_env_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


def jobs_stream():
    """A synthetic multi-shard stream (several 2.0-wide windows)."""
    for i in range(18):
        release = i * 0.5
        yield QJob(release, release + 4.0, 0.5, 2.0, 1.0, f"j{i}")


def canon(report):
    return json.dumps(report.to_dict(), sort_keys=True)


# -- spawning real workers ----------------------------------------------------------


class Worker:
    """One ``qbss-worker`` subprocess with a port-file handshake."""

    def __init__(self, tmp_path: Path, name: str, cache_dir: Path | None = None):
        self.port_file = tmp_path / f"{name}.port"
        self.log_path = tmp_path / f"{name}.log"
        self._log = open(self.log_path, "w")
        argv = [
            sys.executable,
            "-m",
            "repro.engine.backends.worker",
            "--bind",
            "127.0.0.1:0",
            "--port-file",
            str(self.port_file),
        ]
        argv += ["--cache-dir", str(cache_dir)] if cache_dir else ["--no-cache"]
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        # Fault plans must arrive over the wire, per task — never by
        # inheritance — so the worker environment starts clean.
        env.pop(FAULT_PLAN_ENV, None)
        self.proc = subprocess.Popen(argv, env=env, stderr=self._log)

    @property
    def address(self) -> str:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if self.port_file.exists():
                return self.port_file.read_text().strip()
            if self.proc.poll() is not None:
                break
            time.sleep(0.02)
        raise RuntimeError(
            f"worker never published its port; log:\n{self.log_path.read_text()}"
        )

    def stop(self):
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=10)
        self._log.close()


@pytest.fixture
def spawn_workers(tmp_path):
    spawned = []

    def spawn(n, cache_dir=None):
        batch = [Worker(tmp_path, f"w{len(spawned) + i}", cache_dir) for i in range(n)]
        spawned.extend(batch)
        return [w.address for w in batch]

    yield spawn
    for w in spawned:
        w.stop()


def remote_backend(addresses, **kw):
    kw.setdefault("connect_timeout", 10.0)
    return RemoteBackend(addresses, **kw)


# -- spec parsing and construction --------------------------------------------------


class TestBackendSpec:
    def test_serial_and_pool_take_no_arguments(self):
        assert parse_backend_spec("serial") == ("serial", ())
        assert parse_backend_spec("pool") == ("pool", ())
        with pytest.raises(ValueError):
            parse_backend_spec("serial:what")
        with pytest.raises(ValueError):
            parse_backend_spec("pool:4")

    def test_remote_requires_hosts(self):
        kind, entries = parse_backend_spec("remote:a:1,b:2")
        assert kind == "remote"
        assert entries == ("a:1", "b:2")
        with pytest.raises(ValueError):
            parse_backend_spec("remote")
        with pytest.raises(ValueError):
            parse_backend_spec("remote:")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            parse_backend_spec("cloud")

    def test_create_backend_mapping(self):
        assert create_backend(None) is None
        assert create_backend("pool") is None  # driver's built-in default
        assert isinstance(create_backend("serial"), SerialBackend)
        remote = create_backend("remote:127.0.0.1:1")
        assert isinstance(remote, RemoteBackend)
        passthrough = SerialBackend()
        assert create_backend(passthrough) is passthrough

    def test_resolve_worker_address_literal_and_file(self, tmp_path):
        assert resolve_worker_address("example:8123") == ("example", 8123)
        port_file = tmp_path / "w.port"
        port_file.write_text("127.0.0.1:45678\n")
        assert resolve_worker_address(f"@{port_file}") == ("127.0.0.1", 45678)

    def test_resolve_worker_address_rejects_garbage(self, tmp_path):
        with pytest.raises(ValueError):
            resolve_worker_address("no-port-here")
        with pytest.raises(ValueError):
            resolve_worker_address("host:99999999")
        with pytest.raises(ValueError):
            resolve_worker_address(f"@{tmp_path / 'absent.port'}")

    def test_pool_backend_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            PoolBackend(0)

    def test_serial_backend_is_inline_only(self):
        backend = SerialBackend()
        assert backend.inline
        backend.ensure_open()  # a no-op, never raises
        with pytest.raises(RuntimeError, match="inline"):
            backend.submit(print, ())
        backend.close()


# -- conformance: identical outputs across backends ---------------------------------


class TestConformance:
    @pytest.fixture
    def serial_report(self, no_env_plan):
        report, _ = replay_jobs(jobs_stream(), shard_window=2.0, jobs=1, cache=False)
        return canon(report)

    def test_pool_replay_is_byte_identical(self, no_env_plan, serial_report):
        report, _ = replay_jobs(
            jobs_stream(), shard_window=2.0, jobs=2, cache=False, backend="pool"
        )
        assert canon(report) == serial_report

    def test_remote_replay_is_byte_identical(
        self, no_env_plan, serial_report, spawn_workers
    ):
        addresses = spawn_workers(2)
        report, metrics = replay_jobs(
            jobs_stream(),
            shard_window=2.0,
            jobs=2,
            cache=False,
            backend=remote_backend(addresses),
        )
        assert canon(report) == serial_report
        assert metrics.misses == len(report.shards)

    def test_engine_results_identical_across_backends(
        self, no_env_plan, tmp_path, spawn_workers
    ):
        def run(backend, jobs):
            result = run_experiments(
                ["lemma42"], jobs=jobs, cache=False, backend=backend
            )
            (report,) = result.reports
            return json.dumps(report.to_dict(), sort_keys=True)

        serial = run("serial", 1)
        assert run(None, 2) == serial  # the default hardened pool
        addresses = spawn_workers(2)
        assert run(remote_backend(addresses), 2) == serial

    def test_remote_crash_fault_retries_like_pool(
        self, no_env_plan, serial_report, spawn_workers
    ):
        # A transient crash on the first attempt of shard 1 — the remote
        # worker dies for real (SIGKILL), the link fails, and the retry
        # lands on the surviving worker.  The CI kill-mid-shard scenario.
        addresses = spawn_workers(2)
        plan = FaultPlan((FaultSpec(task="shard:1", kind="kill", attempt=1),))
        report, metrics = replay_jobs(
            jobs_stream(),
            shard_window=2.0,
            jobs=2,
            cache=False,
            retry=QUICK,
            fault_plan=plan,
            backend=remote_backend(addresses),
        )
        assert canon(report) == serial_report
        assert metrics.retries >= 1

    def test_remote_raise_fault_is_deterministic_like_pool(
        self, no_env_plan, spawn_workers
    ):
        # Deterministic exceptions are not retried: same statuses as the
        # hardened pool, proving QBSS_FAULT_PLAN crossed the wire.
        plan = FaultPlan((FaultSpec(task="shard:1", kind="raise"),))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pooled, pm = replay_jobs(
                jobs_stream(),
                shard_window=2.0,
                jobs=2,
                cache=False,
                retry=QUICK,
                fault_plan=plan,
            )
        addresses = spawn_workers(2)
        remoted, rm = replay_jobs(
            jobs_stream(),
            shard_window=2.0,
            jobs=2,
            cache=False,
            retry=QUICK,
            fault_plan=plan,
            backend=remote_backend(addresses),
        )
        statuses = {s["index"]: s.get("status", "ok") for s in remoted.shards}
        assert statuses[1] == "error"
        assert [f.kind for f in rm.failures] == [f.kind for f in pm.failures] == [
            "error"
        ]
        # Identical reports modulo the failure record, whose wall times
        # and traceback frames are inherently environment-specific.
        def strip(report):
            doc = report.to_dict()
            for shard in doc["shards"]:
                shard.pop("failure", None)
            return json.dumps(doc, sort_keys=True)

        assert strip(remoted) == strip(pooled)

    def test_remote_hang_times_out_and_pins_the_link(
        self, no_env_plan, serial_report, spawn_workers
    ):
        # Cancel-on-drain semantics: the deadline expires, the in-flight
        # handle cannot be cancelled (the worker is mid-sleep), so the
        # link is pinned and the rest of the stream drains on the other
        # worker.  Timeouts are terminal — shard 1 reports "timeout",
        # every other shard is byte-identical to the serial run.
        addresses = spawn_workers(2)
        plan = FaultPlan(
            (FaultSpec(task="shard:1", kind="hang", attempt=0, seconds=30.0),)
        )
        report, metrics = replay_jobs(
            jobs_stream(),
            shard_window=2.0,
            jobs=2,
            cache=False,
            task_timeout=0.5,
            retry=QUICK,
            fault_plan=plan,
            backend=remote_backend(addresses),
        )
        assert metrics.timeouts == 1
        statuses = {s["index"]: s.get("status", "ok") for s in report.shards}
        assert statuses[1] == "timeout"
        clean = {s["index"]: s for s in json.loads(serial_report)["shards"]}
        for shard in report.shards:
            if shard["index"] == 1:
                continue
            assert dict(clean[shard["index"]], status="ok") == dict(
                shard, status="ok"
            )


# -- the cache as coordination point ------------------------------------------------


class TestCacheCoordination:
    def test_worker_publishes_and_serial_driver_reuses(
        self, no_env_plan, tmp_path, spawn_workers
    ):
        worker_cache = tmp_path / "worker-cache"
        driver_cache = tmp_path / "driver-cache"
        addresses = spawn_workers(2, cache_dir=worker_cache)
        remote, rm = replay_jobs(
            jobs_stream(),
            shard_window=2.0,
            jobs=2,
            cache=True,
            cache_dir=driver_cache,
            backend=remote_backend(addresses),
        )
        assert rm.misses == len(remote.shards)
        # The workers published every shard into their shared cache by
        # digest; a plain serial run over that cache recomputes nothing.
        warm, wm = replay_jobs(
            jobs_stream(),
            shard_window=2.0,
            jobs=1,
            cache=True,
            cache_dir=worker_cache,
        )
        assert wm.hits == len(warm.shards)
        assert wm.misses == 0
        assert canon(warm) == canon(remote)


# -- failure and lifecycle semantics ------------------------------------------------


class TestRemoteLifecycle:
    def test_unreachable_workers_degrade_to_serial(self, no_env_plan):
        # Nothing listens on these ports: the backend is broken from the
        # start, and after the rebuild budget the driver degrades to the
        # in-process serial path with a RuntimeWarning — the same
        # escalation a repeatedly-broken local pool gets.
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead = f"127.0.0.1:{sock.getsockname()[1]}"
        with pytest.warns(RuntimeWarning):
            report, metrics = replay_jobs(
                jobs_stream(),
                shard_window=2.0,
                jobs=2,
                cache=False,
                backend=remote_backend([dead], connect_timeout=0.5),
            )
        assert metrics.degraded
        base, _ = replay_jobs(jobs_stream(), shard_window=2.0, jobs=1, cache=False)
        clean = {s["index"]: s for s in base.shards}
        for shard in report.shards:
            assert shard["status"] == "degraded"  # complete, but flagged
            assert dict(clean[shard["index"]], status="x") == dict(shard, status="x")

    def test_session_keeps_remote_links_warm(self, no_env_plan, spawn_workers):
        addresses = spawn_workers(1)
        session = ExecutionSession(jobs=1, cache=False, backend=remote_backend(addresses))
        try:
            first, _ = replay_jobs(jobs_stream(), shard_window=2.0, session=session)
            again, _ = replay_jobs(jobs_stream(), shard_window=2.0, session=session)
            assert canon(first) == canon(again)
        finally:
            session.close()

    def test_session_validates_backend_spec_eagerly(self):
        with pytest.raises(ValueError):
            ExecutionSession(backend="remote")
        with pytest.raises(ValueError):
            ExecutionSession(backend="warp-drive")

    def test_serial_spec_through_session(self, no_env_plan):
        session = ExecutionSession(jobs=4, cache=False, backend="serial")
        try:
            backend = session.execution_backend
            assert isinstance(backend, SerialBackend)
            assert backend is session.execution_backend  # memoized
        finally:
            session.close()

    def test_backend_is_a_context_manager(self):
        with SerialBackend() as backend:
            assert isinstance(backend, Backend)
            assert "serial" in repr(backend)
