"""QL008 bad fixture: two locks nested in opposite orders.

``credit`` takes ``lock_a`` then ``lock_b``; ``debit`` takes them the
other way round -- the classic two-thread deadlock.
"""

import threading


class Ledger:
    def __init__(self):
        self.lock_a = threading.Lock()
        self.lock_b = threading.Lock()
        self.balance = 0

    def credit(self):
        with self.lock_a:
            with self.lock_b:
                self.balance += 1

    def debit(self):
        with self.lock_b:
            with self.lock_a:
                self.balance -= 1
