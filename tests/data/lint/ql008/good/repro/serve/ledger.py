"""QL008 good fixture: a consistent lock order, including through a
helper call (the acquisition graph is closed over calls)."""

import threading


class Ledger:
    def __init__(self):
        self.lock_a = threading.Lock()
        self.lock_b = threading.Lock()
        self.balance = 0

    def credit(self):
        with self.lock_a:
            with self.lock_b:
                self.balance += 1

    def debit(self):
        with self.lock_a:
            self._commit()

    def _commit(self):
        with self.lock_b:
            self.balance -= 1
