"""QL009 good fixture: every main-thread block is bounded.

``Event.wait`` polls with a timeout, ``Condition.wait`` re-checks its
predicate in a loop, and the listening socket has a timeout set.
"""

import socket
import threading

_STATE = {"ready": False}


def _ready_state():
    return _STATE["ready"]


def _poll(ready: threading.Condition) -> None:
    with ready:
        while not _ready_state():
            ready.wait()


def main():
    done = threading.Event()
    while not done.wait(0.5):
        pass
    ready = threading.Condition()
    _poll(ready)
    server = socket.create_server(("127.0.0.1", 0))
    server.settimeout(1.0)
    try:
        conn, _ = server.accept()
        conn.close()
    finally:
        server.close()
