"""QL009 bad fixture: unbounded blocking on the main thread.

An untimed ``Event.wait()``, a ``Condition.wait()`` with no predicate
re-check loop, and a ``socket.accept()`` with no timeout -- each one
starves signal delivery for the daemon's lifetime.
"""

import socket
import threading


def _poll(ready: threading.Condition) -> None:
    with ready:
        ready.wait()


def main():
    done = threading.Event()
    done.wait()
    ready = threading.Condition()
    _poll(ready)
    server = socket.create_server(("127.0.0.1", 0))
    try:
        conn, _ = server.accept()
        conn.close()
    finally:
        server.close()
