"""QL006 bad fixture: a registered document kind without a version."""


def schedule_to_dict(schedule):
    return {
        "kind": "schedule",
        "slices": list(schedule),
    }
