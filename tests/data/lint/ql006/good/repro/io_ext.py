"""QL006 good fixture: versioned envelope for a registered kind."""

FORMAT_VERSION = 1


def schedule_to_dict(schedule):
    return {
        "version": FORMAT_VERSION,
        "kind": "schedule",
        "slices": list(schedule),
    }
