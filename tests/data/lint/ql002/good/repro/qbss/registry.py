"""QL002 good fixture: uniform keyword-only (qi, *, ...) shape."""


def tidy(qi, *args, alpha=2.0, query_policy=None):
    return (qi, args, alpha, query_policy)


ALGORITHMS = {"tidy": tidy}
