"""QL002 bad fixture: registered runner with positional extras/defaults."""


def crummy(qi, extra, alpha=2.0):
    return (qi, extra, alpha)


ALGORITHMS = {"crummy": crummy}
