"""QL010 good fixture: every resource is with-managed, closed in
``finally``, or handed off to an owner."""

import socket
from concurrent.futures import ThreadPoolExecutor


def probe(host, port):
    with socket.create_connection((host, port)) as conn:
        conn.sendall(b"ping")
        return conn.recv(16)


def probe_legacy(host, port):
    conn = socket.create_connection((host, port))
    try:
        conn.sendall(b"ping")
        return conn.recv(16)
    finally:
        conn.close()


def lease(host, port, registry):
    # Ownership transfer: the registry closes the socket later.
    sock = socket.create_connection((host, port))
    registry.adopt(sock)


def fan_out(jobs):
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        futures = [pool.submit(job) for job in jobs]
        return [f.result() for f in futures]
    finally:
        pool.shutdown()
