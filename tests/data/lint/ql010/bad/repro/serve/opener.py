"""QL010 bad fixture: resources opened but not closed on every path.

A socket, a journal file and a pool are each bound to a local name and
leak if anything between open and the last use raises.
"""

import socket
from concurrent.futures import ThreadPoolExecutor


def probe(host, port):
    conn = socket.create_connection((host, port))
    conn.sendall(b"ping")
    data = conn.recv(16)
    return data


def journal_line(path, line):
    fh = open(path, "a")
    fh.write(line)
    fh.flush()


def fan_out(jobs):
    pool = ThreadPoolExecutor(max_workers=2)
    futures = [pool.submit(job) for job in jobs]
    return [f.result() for f in futures]
