"""QL001 bad fixture: wall clock + global RNG in a guarded package."""

import random
import time

import numpy as np


def synthesize(records):
    stamp = time.time()
    jitter = random.random()
    noise = np.random.rand(3)
    return stamp, jitter, noise
