"""QL001 good fixture: injected clock, per-record seeded generators."""

import random
import time

import numpy as np


def synthesize(records, *, seed, clock=time.monotonic):
    stamp = clock()
    rng = random.Random(seed)
    gen = np.random.default_rng((seed, 0))
    return stamp, rng.random(), gen.random(3)
