"""QL007 bad fixture: guarded state mutated outside the owning lock.

``Tally`` owns a lock, ``bump`` is reachable from both the main thread
and a worker thread, and the mutation happens bare.
"""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        self.count += 1


def _drain(tally: Tally) -> None:
    tally.bump()


def main():
    tally = Tally()
    worker = threading.Thread(target=_drain, args=(tally,))
    worker.start()
    tally.bump()
    worker.join()
