"""QL007 good fixture: every mutation is under the owning lock.

``_compact`` mutates bare but is only ever called with the lock held,
which the caller-guard analysis sanctions (the ``_sweep`` idiom).
"""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1
            self._compact()

    def _compact(self):
        self.count = min(self.count, 1000)


def _drain(tally: Tally) -> None:
    tally.bump()


def main():
    tally = Tally()
    worker = threading.Thread(target=_drain, args=(tally,))
    worker.start()
    tally.bump()
    worker.join()
