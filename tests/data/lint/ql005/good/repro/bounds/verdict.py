"""QL005 good fixture: tolerance-based verdicts, int equality untouched."""

import math


def verdict(energy, optimum, machines):
    ratio = energy / optimum
    return math.isclose(ratio, 1.0, rel_tol=1e-9) and machines == 1
