"""QL005 bad fixture: exact equality on computed float ratios."""


def verdict(energy, optimum):
    ratio = energy / optimum
    return ratio == 1.0 or energy / optimum != 2.0
