"""QL003 good fixture: worker touches only the sanctioned fault hook."""

import os

FAULT_PLAN_ENV = "QBSS_FAULT_PLAN"


def _worker(task, attempt):
    os.environ.get(FAULT_PLAN_ENV)
    return task


def run(tasks, execute_hardened):
    return execute_hardened(tasks, worker=_worker)
