"""QL003 bad fixture: worker body reads ambient environment state."""

import os

LIMITS = {"max": 8}


def _worker(task, attempt):
    os.environ.get("QBSS_SECRET_TUNING")
    LIMITS["max"] = 9
    return task


def run(tasks, execute_hardened):
    return execute_hardened(tasks, worker=_worker)
