"""QL011 good fixture: flush()+fsync() dominates every publish/ack.

``maybe_persist`` shows the sanctioned conditional-durability policy:
``return`` is not a sink, so an early return before the fsync is legal
as long as no publish/ack follows on that path.
"""

import os


def publish(path, payload):
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def append_record(path, record, sock):
    fh = open(path, "a")
    try:
        fh.write(record)
        fh.flush()
        os.fsync(fh.fileno())
    finally:
        fh.close()
    sock.sendall(b"ok")


def maybe_persist(path, record, durable):
    fh = open(path, "a")
    try:
        fh.write(record)
        if not durable:
            return
        fh.flush()
        os.fsync(fh.fileno())
    finally:
        fh.close()
