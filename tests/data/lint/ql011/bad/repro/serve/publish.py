"""QL011 bad fixture: publish/ack without a dominating fsync.

``publish`` renames a written temp file into place with no fsync at
all; ``append_record`` only fsyncs on one branch, then acks the client
on both.
"""

import os


def publish(path, payload):
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def append_record(path, record, sock):
    fh = open(path, "a")
    try:
        fh.write(record)
        if len(record) > 4096:
            fh.flush()
            os.fsync(fh.fileno())
    finally:
        fh.close()
    sock.sendall(b"ok")
