"""QL003 config fixture (good): same read, sanctioned by .qbss-lint.json."""

import os


def _worker(task, attempt):
    os.environ.get("QBSS_SERVE_BIND")
    return task


def run(tasks, execute_hardened):
    return execute_hardened(tasks, worker=_worker)
