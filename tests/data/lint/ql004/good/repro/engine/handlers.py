"""QL004 good fixture: BaseException handlers re-raise."""


def shield(fn):
    try:
        return fn()
    except BaseException as exc:
        if not isinstance(exc, Exception):
            raise
        return None


def cleanup(fn, close):
    try:
        return fn()
    except BaseException:
        close()
        raise
