"""QL004 bad fixture: swallowed BaseException and a bare except."""


def swallow(fn):
    try:
        return fn()
    except BaseException:
        return None


def mute(fn):
    try:
        return fn()
    except:
        return None
