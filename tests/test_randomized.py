"""The Lemma 4.4 randomized single-job game."""

import math

import pytest

from repro.core.constants import PHI
from repro.qbss.randomized import (
    LEMMA44_MAX_SPEED_BOUND,
    best_rho,
    branch_values,
    expected_ratio,
    lemma44_energy_bound,
    randomized_lower_bound,
    solve_game,
    worst_case_ratio,
)


def test_branch_values_energy():
    q, nq, opt = branch_values(1.0, 2.0, 0.5, 3.0, "energy")
    assert math.isclose(q, 1.5**3)
    assert math.isclose(nq, 8.0)
    assert math.isclose(opt, 1.5**3)


def test_branch_values_validation():
    with pytest.raises(ValueError):
        branch_values(0.0, 1.0, 0.5, 2.0, "energy")
    with pytest.raises(ValueError):
        branch_values(0.5, 1.0, 1.5, 2.0, "energy")


def test_expected_ratio_extremes():
    # rho = 1: pure querying; adversary w* = w makes it (c+w)/w
    r = expected_ratio(1.0, 1.0, 2.0, 2.0, 1.0 + 1e-9, "max_speed")
    assert math.isclose(r, 1.5, rel_tol=1e-6)
    # rho = 0: pure skipping; adversary w* = 0 makes it w/c
    r0 = expected_ratio(0.0, 1.0, 2.0, 0.0, 2.0, "max_speed")
    assert math.isclose(r0, 2.0)


def test_worst_case_at_extremes():
    """The adversary's optimum is at w* = 0 or w* = w."""
    for rho in (0.0, 0.3, 0.7, 1.0):
        worst = worst_case_ratio(rho, 1.0, 2.0, 3.0, "energy")
        at_zero = expected_ratio(rho, 1.0, 2.0, 0.0, 3.0, "energy")
        at_w = expected_ratio(rho, 1.0, 2.0, 2.0, 3.0, "energy")
        assert math.isclose(worst, max(at_zero, at_w), rel_tol=1e-6)


def test_best_rho_beats_pure_strategies():
    rho, value = best_rho(1.0, 2.0, 3.0, "max_speed")
    assert 0.0 < rho < 1.0
    assert value <= worst_case_ratio(0.0, 1.0, 2.0, 3.0, "max_speed") + 1e-9
    assert value <= worst_case_ratio(1.0, 1.0, 2.0, 3.0, "max_speed") + 1e-9


def test_max_speed_game_matches_lemma():
    """Game value 4/3 at theta = 2 with rho = 2/3."""
    theta, value = randomized_lower_bound(3.0, "max_speed")
    assert math.isclose(theta, 2.0, abs_tol=1e-3)
    assert math.isclose(value, 4.0 / 3.0, rel_tol=1e-6)


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_energy_game_at_least_claimed(alpha):
    _, value = randomized_lower_bound(alpha, "energy")
    assert value >= lemma44_energy_bound(alpha) - 1e-6


def test_energy_value_at_phi_equals_claim():
    """At theta = phi the equalized value is exactly (1 + phi^a)/2."""
    alpha = 3.0
    _, value = best_rho(1.0, PHI, alpha, "energy")
    assert math.isclose(value, 0.5 * (1 + PHI**alpha), rel_tol=1e-6)


def test_solve_game_reports():
    sol = solve_game(3.0, "max_speed")
    assert sol.claimed == LEMMA44_MAX_SPEED_BOUND
    assert sol.value >= sol.claimed - 1e-9
    sol_e = solve_game(2.0, "energy")
    assert sol_e.claimed == lemma44_energy_bound(2.0)
