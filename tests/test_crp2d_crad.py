"""CRP2D (Algorithm 2) and CRAD (deadline rounding)."""

import math

import pytest

from repro.bounds.formulas import crad_ub_energy, crp2d_ub_energy
from repro.core.instance import QBSSInstance
from repro.core.power import PowerFunction
from repro.core.qjob import QJob
from repro.qbss.clairvoyant import clairvoyant
from repro.qbss.crad import crad
from repro.qbss.crp2d import crp2d, max_deadline_exponent
from repro.workloads.generators import (
    common_release_instance,
    power_of_two_instance,
)


@pytest.fixture
def p2_instance():
    quads = [(1, 0.2, 1.0, 0.1), (2, 1.0, 3.0, 0.5), (4, 2.0, 2.5, 2.0), (8, 0.5, 6.0, 1.0)]
    return QBSSInstance(
        [QJob(0, d, c, w, ws, f"k{i}") for i, (d, c, w, ws) in enumerate(quads)]
    )


class TestCRP2D:
    def test_shape_requirements(self):
        with pytest.raises(ValueError):
            crp2d(QBSSInstance([QJob(0, 3, 0.5, 1, 0, "a")]))  # not a power of 2
        with pytest.raises(ValueError):
            crp2d(QBSSInstance([QJob(1, 2, 0.5, 1, 0, "a")]))  # release != 0
        with pytest.raises(ValueError):
            crp2d(QBSSInstance([QJob(0, 2, 0.5, 1, 0, "a")], machines=2))

    def test_empty(self):
        assert crp2d(QBSSInstance([])).energy(PowerFunction(3.0)) == 0.0

    def test_schedule_feasible(self, p2_instance):
        result = crp2d(p2_instance)
        report = result.validate()
        assert report.ok, report.violations

    def test_queries_complete_by_half_deadline(self, p2_instance):
        result = crp2d(p2_instance)
        for qjob in p2_instance:
            if result.decisions[qjob.id].query:
                done = result.schedule.completion_time(qjob.id + ":query")
                assert done <= qjob.deadline / 2 + 1e-9

    def test_revealed_loads_in_second_half(self, p2_instance):
        result = crp2d(p2_instance)
        for qjob in p2_instance:
            if result.decisions[qjob.id].query:
                for s in result.schedule.slices():
                    if s.job_id == qjob.id + ":work":
                        assert s.start >= qjob.deadline / 2 - 1e-9
                        assert s.end <= qjob.deadline + 1e-9

    def test_golden_partition_used(self, p2_instance):
        result = crp2d(p2_instance)
        # k2: c=2.0 > 2.5/phi=1.545 -> no query; others query
        assert not result.decisions["k2"].query
        for jid in ("k0", "k1", "k3"):
            assert result.decisions[jid].query

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_energy_within_theorem_413(self, alpha, seed):
        qi = power_of_two_instance(10, seed=seed)
        result = crp2d(qi)
        opt = clairvoyant(qi, alpha=alpha).energy_value
        assert result.energy(PowerFunction(alpha)) <= crp2d_ub_energy(alpha) * opt * (
            1 + 1e-9
        )

    def test_max_deadline_exponent(self, p2_instance):
        assert max_deadline_exponent(p2_instance) == 3

    def test_single_deadline_class_reduces_sensibly(self):
        """With one deadline class CRP2D behaves like a two-phase schedule."""
        qi = QBSSInstance(
            [QJob(0, 4, 0.5, 2.0, 1.0, "a"), QJob(0, 4, 0.3, 1.0, 0.2, "b")]
        )
        result = crp2d(qi)
        assert result.validate().ok
        # all queries in (0, 2], all revealed work in (2, 4]
        for s in result.schedule.slices():
            if s.job_id.endswith(":query"):
                assert s.end <= 2.0 + 1e-9
            if s.job_id.endswith(":work"):
                assert s.start >= 2.0 - 1e-9


class TestCRAD:
    def test_requires_common_release_zero(self):
        with pytest.raises(ValueError):
            crad(QBSSInstance([QJob(1, 3, 0.5, 1, 0, "a")]))

    def test_rounds_down_then_schedules(self):
        qi = QBSSInstance([QJob(0, 5.5, 0.5, 2.0, 1.0, "a")])
        result = crad(qi)
        assert result.validate().ok
        # everything finishes by the rounded deadline 4
        assert result.schedule.span()[1] <= 4.0 + 1e-9

    def test_feasible_for_original_windows(self):
        qi = QBSSInstance(
            [
                QJob(0, 5.5, 0.5, 2.0, 1.0, "a"),
                QJob(0, 3.7, 0.3, 1.5, 0.2, "b"),
                QJob(0, 9.1, 1.0, 4.0, 3.0, "c"),
            ]
        )
        result = crad(qi)
        # every slice lies inside the ORIGINAL window of its source job
        deadlines = {j.id: j.deadline for j in qi}
        for s in result.schedule.slices():
            source = s.job_id.rsplit(":", 1)[0]
            assert s.end <= deadlines[source] + 1e-9

    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_energy_within_corollary_415(self, alpha, seed):
        qi = common_release_instance(10, seed=seed)
        result = crad(qi)
        opt = clairvoyant(qi, alpha=alpha).energy_value
        assert result.energy(PowerFunction(alpha)) <= crad_ub_energy(alpha) * opt * (
            1 + 1e-9
        )

    def test_power_of_two_input_unchanged(self):
        """On already-rounded instances CRAD == CRP2D."""
        qi = power_of_two_instance(8, seed=3)
        e_crad = crad(qi).energy(PowerFunction(3.0))
        e_crp2d = crp2d(qi).energy(PowerFunction(3.0))
        assert math.isclose(e_crad, e_crp2d, rel_tol=1e-9)
