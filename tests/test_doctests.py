"""Run the doctest examples embedded in the core docstrings."""

import doctest

import pytest

import repro.core.power
import repro.core.profile
import repro.core.qjob

MODULES = [repro.core.power, repro.core.profile, repro.core.qjob]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
