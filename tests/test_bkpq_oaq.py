"""BKPQ (Theorem 5.4 / Corollary 5.5) and the OAQ extension."""

import math

import pytest

from repro.bounds.formulas import bkpq_ub_energy, bkpq_ub_max_speed
from repro.core.constants import PHI
from repro.core.power import PowerFunction
from repro.qbss.bkpq import bkpq
from repro.qbss.clairvoyant import clairvoyant
from repro.qbss.oaq import oaq
from repro.qbss.policies import AlwaysQuery, NeverQuery
from repro.speed_scaling.bkp import bkp_profile
from repro.workloads.generators import online_instance


class TestBKPQ:
    def test_golden_rule_decisions(self):
        qi = online_instance(12, seed=0)
        result = bkpq(qi)
        for qjob in qi:
            expected = qjob.query_cost <= qjob.work_upper / PHI
            assert result.decisions[qjob.id].query == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_schedule_feasible(self, seed):
        qi = online_instance(12, seed=seed)
        result = bkpq(qi)
        report = result.validate()
        assert report.ok, report.violations

    @pytest.mark.parametrize("seed", range(4))
    def test_theorem_54_pointwise(self, seed):
        """s_BKPQ(t) <= (2 + phi) s_BKP*(t) at every time."""
        qi = online_instance(10, seed=seed)
        result = bkpq(qi)
        star = bkp_profile([j.clairvoyant_job() for j in qi])
        pts = sorted(set(result.profile.breakpoints()) | set(star.breakpoints()))
        for a, b in zip(pts, pts[1:]):
            mid = 0.5 * (a + b)
            assert result.profile.speed_at(mid) <= (2 + PHI) * star.speed_at(
                mid
            ) * (1 + 1e-9) + 1e-12

    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_corollary_55_energy(self, alpha, seed):
        qi = online_instance(10, seed=seed)
        result = bkpq(qi)
        opt = clairvoyant(qi, alpha=alpha).energy_value
        assert result.energy(PowerFunction(alpha)) <= bkpq_ub_energy(
            alpha
        ) * opt * (1 + 1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_corollary_55_max_speed(self, seed):
        qi = online_instance(10, seed=seed)
        result = bkpq(qi)
        opt = clairvoyant(qi, alpha=3.0).max_speed_value
        assert result.max_speed() <= bkpq_ub_max_speed() * opt * (1 + 1e-9)

    def test_policy_injection(self):
        qi = online_instance(8, seed=3)
        never = bkpq(qi, query_policy=NeverQuery())
        always = bkpq(qi, query_policy=AlwaysQuery())
        assert not any(d.query for d in never.decisions.decisions.values())
        assert all(d.query for d in always.decisions.decisions.values())
        assert never.validate().ok and always.validate().ok


class TestOAQ:
    @pytest.mark.parametrize("seed", range(3))
    def test_schedule_feasible(self, seed):
        qi = online_instance(12, seed=seed)
        result = oaq(qi)
        report = result.validate()
        assert report.ok, report.violations

    def test_queries_complete_by_midpoint(self):
        qi = online_instance(10, seed=4)
        result = oaq(qi)
        for qjob in qi:
            if result.decisions[qjob.id].query:
                done = result.schedule.completion_time(qjob.id + ":query")
                assert done <= qjob.midpoint + 1e-9

    def test_oaq_no_worse_than_avrq_on_random(self):
        """The empirical claim recorded in EXPERIMENTS.md (not a theorem)."""
        from repro.qbss.avrq import avrq

        p = PowerFunction(3.0)
        wins = 0
        for seed in range(5):
            qi = online_instance(10, seed=seed)
            if oaq(qi).energy(p) <= avrq(qi).energy(p) * (1 + 1e-9):
                wins += 1
        assert wins >= 4  # dominates on essentially all random streams

    def test_rejects_multi_machine(self):
        qi = online_instance(4, seed=0, machines=2)
        with pytest.raises(ValueError):
            oaq(qi)
