"""Edge cases across the QBSS result type, CRP2D classes, CLI plumbing."""

import math

import pytest

from repro.core.instance import QBSSInstance
from repro.core.power import PowerFunction
from repro.core.qjob import QJob
from repro.qbss.crp2d import crp2d
from repro.qbss.result import QBSSResult
from repro.workloads.generators import multi_machine_instance, online_instance


class TestQBSSResult:
    def test_profile_property_raises_on_multi(self):
        from repro.qbss.multi import avrq_m

        qi = multi_machine_instance(4, 2, seed=0)
        result = avrq_m(qi)
        with pytest.raises(ValueError):
            _ = result.profile
        assert len(result.profiles) == 2

    def test_executed_load_ignores_other_jobs(self):
        from repro.qbss.avrq import avrq

        qi = online_instance(5, seed=0)
        result = avrq(qi)
        total = sum(result.executed_load(j.id) for j in qi)
        expected = sum(j.query_cost + j.work_true for j in qi)
        assert math.isclose(total, expected, rel_tol=1e-6)

    def test_energy_zero_for_empty(self):
        from repro.core.instance import Instance
        from repro.core.schedule import Schedule
        from repro.core.profile import SpeedProfile
        from repro.qbss.decisions import DecisionLog

        res = QBSSResult(
            Schedule(1), [SpeedProfile()], Instance([]), DecisionLog(),
            QBSSInstance([]), "x",
        )
        assert res.energy(PowerFunction(2.0)) == 0.0
        assert res.max_speed() == 0.0


class TestCRP2DClasses:
    def test_all_unqueried_reduces_to_yds(self):
        """Pure A-set instance: CRP2D == YDS on the upper bounds."""
        from repro.speed_scaling.yds import optimal_energy

        jobs = [
            QJob(0, 4, 3.9, 4.0, 1.0, "a"),  # c > w/phi
            QJob(0, 2, 1.9, 2.0, 0.5, "b"),
        ]
        qi = QBSSInstance(jobs)
        result = crp2d(qi)
        assert not any(d.query for d in result.decisions.decisions.values())
        e = result.energy(PowerFunction(3.0))
        e_yds = optimal_energy(
            [j.as_upper_bound_job() for j in jobs], 3.0
        )
        assert math.isclose(e, e_yds, rel_tol=1e-9)

    def test_all_queried_single_class(self):
        jobs = [QJob(0, 4, 0.2, 4.0, 1.0, "a"), QJob(0, 4, 0.3, 3.0, 0.0, "b")]
        result = crp2d(QBSSInstance(jobs))
        assert all(d.query for d in result.decisions.decisions.values())
        assert result.validate().ok

    def test_fractional_power_of_two_deadlines(self):
        jobs = [QJob(0, 0.5, 0.1, 1.0, 0.4, "a"), QJob(0, 2.0, 0.2, 2.0, 0.1, "b")]
        result = crp2d(QBSSInstance(jobs))
        assert result.validate().ok
        # the 0.5-deadline job's query finishes by 0.25
        assert result.schedule.completion_time("a:query") <= 0.25 + 1e-9

    def test_many_deadline_classes_additions_disjoint(self):
        jobs = [
            QJob(0, 2.0**k, 0.1, 1.0, 0.5, f"c{k}") for k in range(4)
        ]
        result = crp2d(QBSSInstance(jobs))
        assert result.validate().ok
        # revealed load of class 2^k is scheduled within (2^{k-1}, 2^k]
        for k in range(4):
            for s in result.schedule.slices():
                if s.job_id == f"c{k}:work":
                    assert s.start >= 2.0**k / 2 - 1e-9
                    assert s.end <= 2.0**k + 1e-9


class TestCLIPlumbing:
    def test_n_and_seeds_forwarded(self, capsys):
        from repro.cli import main

        assert main(["online", "--n", "6", "--seeds", "2", "--alpha", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "n=6" in out
        assert "alpha=2.0" in out

    def test_irrelevant_kwargs_not_forwarded(self, capsys):
        from repro.cli import main

        # rho takes no alpha/n/seeds; flags must be ignored gracefully
        assert main(["rho", "--alpha", "2.0", "--n", "5", "--seeds", "3"]) == 0
        assert "[RHO]" in capsys.readouterr().out


class TestVizEdges:
    def test_skyline_invalid_range(self):
        from repro.core.profile import SpeedProfile
        from repro.viz import profile_skyline

        prof = SpeedProfile.constant(0, 1, 1.0)
        with pytest.raises(ValueError):
            profile_skyline(prof, start=2.0, end=1.0)

    def test_gantt_symbol_override(self):
        from repro.core.schedule import Schedule
        from repro.viz import gantt

        s = Schedule(1)
        s.add(0, 1, 1.0, "job-x")
        out = gantt(s, width=4, job_symbols={"job-x": "X"})
        assert "X" in out.split("\n")[0]

    def test_profile_chart_all_empty(self):
        from repro.core.profile import SpeedProfile
        from repro.viz import profile_chart

        assert profile_chart([SpeedProfile()]) == "(all profiles empty)"


class TestAllocationEdges:
    def test_more_machines_than_jobs(self):
        from repro.speed_scaling.multi.allocation import allocate_slot

        alloc = allocate_slot([2.0, 1.0], 5)
        # both become big (own machines), remaining machines idle
        assert len(alloc.big) == 2
        assert alloc.small_indices == ()
        assert alloc.machine_speeds[2:] == (0.0, 0.0, 0.0)

    def test_empty_slot(self):
        from repro.speed_scaling.multi.allocation import allocate_slot

        alloc = allocate_slot([], 3)
        assert alloc.machine_speeds == (0.0, 0.0, 0.0)

    def test_oa_m_empty(self):
        from repro.speed_scaling.multi.oa_m import oa_m

        result = oa_m([], 2, 3.0)
        assert result.feasible
        assert result.energy(PowerFunction(3.0)) == 0.0
