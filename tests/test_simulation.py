"""Event-driven replay vs batch construction (information faithfulness)."""

import pytest

from repro.core.instance import QBSSInstance
from repro.core.qjob import QJob
from repro.qbss.simulation import incremental_profile, verify_causality
from repro.workloads.generators import online_instance
from repro.workloads.scenarios import code_optimizer_scenario


@pytest.mark.parametrize("algorithm", ["avrq", "bkpq"])
@pytest.mark.parametrize("seed", range(5))
def test_replay_matches_batch(algorithm, seed):
    qi = online_instance(10, seed=seed)
    assert verify_causality(qi, algorithm)


@pytest.mark.parametrize("algorithm", ["avrq", "bkpq"])
def test_replay_matches_batch_on_scenario(algorithm):
    qi = code_optimizer_scenario(12, seed=3)
    assert verify_causality(qi, algorithm)


def test_unknown_algorithm_rejected():
    qi = online_instance(3, seed=0)
    with pytest.raises(KeyError, match="registered"):
        incremental_profile(qi, "nope")


def test_steps_expose_knowledge_growth():
    qi = QBSSInstance(
        [
            QJob(0.0, 4.0, 0.5, 2.0, 1.0, "first"),
            QJob(1.0, 5.0, 0.5, 2.0, 0.5, "second"),
        ]
    )
    replay = incremental_profile(qi, "avrq")
    # before t=1 only the first job's query is known
    step0 = replay.steps[0]
    assert step0.known_jobs == ["first:query"]
    # knowledge only grows
    for a, b in zip(replay.steps, replay.steps[1:]):
        assert set(a.known_jobs) <= set(b.known_jobs)
    # the revealed loads appear exactly at the midpoints
    all_known = replay.steps[-1].known_jobs
    assert "first:work" in all_known and "second:work" in all_known


def test_revelations_stamped_at_split_points():
    qi = QBSSInstance([QJob(0.0, 4.0, 0.5, 2.0, 1.0, "j")])
    replay = incremental_profile(qi, "avrq")
    # the work job becomes known in the step starting at the midpoint (2.0)
    for step in replay.steps:
        if step.start < 2.0:
            assert "j:work" not in step.known_jobs
        else:
            assert "j:work" in step.known_jobs


def test_work_conservation_in_replay():
    qi = online_instance(8, seed=7)
    replay = incremental_profile(qi, "avrq")
    expected = sum(j.query_cost + j.work_true for j in qi)
    assert replay.profile.total_work() == pytest.approx(expected, rel=1e-6)
