"""repro.obs: span tracing, metrics export, run manifests, the CLI flags,
and the trace-vs-footer cross-check under fault injection."""

import io
import json
import pathlib
import warnings

import pytest

from repro import io as rio
from repro.cli import main, replay_main
from repro.engine import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    run_experiments,
)
from repro.obs import (
    EVENT_BEGIN,
    EVENT_END,
    EVENT_POINT,
    MetricsRegistry,
    RunManifest,
    Tracer,
    parse_prometheus_text,
    read_trace,
    span_tree,
    write_metrics,
)
from repro.traces.replay import replay_jobs
from repro.traces.synthesize import synthesize_jobs
from repro.traces.records import TraceRecord

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_CSV = str(DATA / "sample_trace.csv")

#: Quick retries so fault tests don't sleep through real backoff.
QUICK = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_cap=0.01)


def run_quiet(names, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_experiments(names, retry=QUICK, **kwargs)


def _stream(n=8):
    records = (
        TraceRecord(
            index=i,
            id=f"t{i}",
            release=i * 40.0,
            runtime=5.0 + i % 3,
            deadline=i * 40.0 + 80.0,
        )
        for i in range(n)
    )
    return synthesize_jobs(records, model="multiplicative", seed=0)


# -- Tracer -------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_reconstructs(self):
        buf = io.StringIO()
        t = Tracer(buf)
        batch = t.begin("batch", experiments=2)
        task = t.begin("task", batch, task="rho")
        attempt = t.begin("attempt", task, attempt=0)
        t.event("retry", task, kind="crash")
        t.end(attempt, status="ok")
        t.end(task, status="ok")
        t.end(batch)
        events = read_trace(buf.getvalue())
        assert [e["ev"] for e in events] == ["B", "B", "B", "P", "E", "E", "E"]
        tree = span_tree(events)
        assert [e["name"] for e in tree[None]] == ["batch"]
        batch_id = tree[None][0]["span"]
        assert [e["name"] for e in tree[batch_id]] == ["task"]
        task_id = tree[batch_id][0]["span"]
        assert [e["name"] for e in tree[task_id]] == ["attempt"]
        point = [e for e in events if e["ev"] == EVENT_POINT]
        assert point[0]["parent"] == task_id and point[0]["kind"] == "crash"
        ends = [e for e in events if e["ev"] == EVENT_END]
        assert all("dur" in e and e["dur"] >= 0 for e in ends)

    def test_counts_tally_event_names(self):
        t = Tracer(io.StringIO())
        sp = t.begin("batch")
        t.event("retry", sp)
        t.event("retry", sp)
        t.end(sp)
        assert t.counts == {"batch": 1, "retry": 2}

    def test_reserved_attribute_keys_rejected(self):
        t = Tracer(io.StringIO())
        with pytest.raises(ValueError, match="reserved"):
            t.begin("batch", span=3)
        sp = t.begin("batch")
        with pytest.raises(ValueError, match="reserved"):
            t.event("retry", sp, dur=1.0)

    def test_span_context_manager_closes_on_error(self):
        buf = io.StringIO()
        t = Tracer(buf)
        with pytest.raises(RuntimeError):
            with t.span("batch"):
                raise RuntimeError("boom")
        events = read_trace(buf.getvalue())
        assert [e["ev"] for e in events] == [EVENT_BEGIN, EVENT_END]

    def test_close_is_idempotent(self, tmp_path):
        t = Tracer.to_path(tmp_path / "t.jsonl")
        t.event("retry")
        t.close()
        t.close()  # second close must not raise on the closed sink
        assert len(read_trace(tmp_path / "t.jsonl")) == 1

    def test_serial_engine_trace_is_byte_deterministic(self, tmp_path):
        """jobs=1 with an injected clock -> the exact same trace bytes."""
        texts = []
        for run in range(2):
            buf = io.StringIO()
            tracer = Tracer(buf, clock=lambda: 0.0)
            run_experiments(
                ["rho", "lemma42"],
                jobs=1,
                cache_dir=tmp_path / f"cache{run}",
                tracer=tracer,
            )
            texts.append(buf.getvalue())
        assert texts[0] == texts[1]
        names = [e["name"] for e in read_trace(texts[0]) if e["ev"] == "B"]
        assert names == [
            "batch",
            "cache-lookup",
            "cache-lookup",
            "task",
            "attempt",
            "task",
            "attempt",
        ]


# -- MetricsRegistry ----------------------------------------------------------------


class TestMetrics:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("qbss_cache_lookups_total", "Lookups.", result="hit").inc(3)
        reg.counter("qbss_cache_lookups_total", result="miss").inc()
        reg.gauge("qbss_degraded", "Degraded flag.").set(1.0)
        h = reg.histogram("qbss_task_wall_seconds", "Wall.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(100.0)
        return reg

    def test_json_round_trip(self):
        reg = self._populated()
        clone = MetricsRegistry.from_dict(json.loads(reg.to_json()))
        assert clone.to_prometheus() == reg.to_prometheus()
        assert clone.value("qbss_cache_lookups_total", result="hit") == 3.0

    def test_prometheus_round_trip(self):
        samples = parse_prometheus_text(self._populated().to_prometheus())
        assert samples[("qbss_cache_lookups_total", (("result", "hit"),))] == 3.0
        assert samples[("qbss_degraded", ())] == 1.0
        # cumulative bucket semantics, +Inf capping everything
        assert samples[("qbss_task_wall_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("qbss_task_wall_seconds_bucket", (("le", "1"),))] == 2.0
        assert samples[("qbss_task_wall_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("qbss_task_wall_seconds_count", ())] == 3.0
        assert samples[("qbss_task_wall_seconds_sum", ())] == pytest.approx(100.55)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("qbss_retries_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("qbss_retries_total")

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("qbss_retries_total").inc(-1)

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", **{"bad-label": "x"})

    def test_write_metrics_format_follows_extension(self, tmp_path):
        reg = self._populated()
        assert write_metrics(reg, tmp_path / "m.prom") == "prometheus"
        assert write_metrics(reg, tmp_path / "m.json") == "json"
        assert parse_prometheus_text((tmp_path / "m.prom").read_text())
        doc = json.loads((tmp_path / "m.json").read_text())
        assert doc["kind"] == "metrics_snapshot"


# -- RunManifest --------------------------------------------------------------------


class TestManifest:
    def test_round_trips_through_repro_io(self, tmp_path):
        plan = FaultPlan((FaultSpec(task="rho", kind="crash", attempt=1),))
        manifest = RunManifest.create(
            "qbss-report",
            {"experiment": "rho", "jobs": "2"},
            seed=7,
            cache_dir=tmp_path / "cache",
            fault_plan=plan,
            now=1234.5,
        )
        path = tmp_path / "run.manifest.json"
        rio.save(manifest, path)
        loaded = rio.load(path)
        assert loaded == manifest
        assert loaded.tool == "qbss-report"
        assert loaded.seed == 7
        assert loaded.created_at == 1234.5
        assert loaded.fault_plan["faults"][0]["task"] == "rho"
        assert loaded.python_version and loaded.package_version

    def test_bad_documents_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunManifest.from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            RunManifest.from_dict(
                {"kind": "run_manifest", "version": 99, "tool": "x"}
            )
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "run_manifest", "version": 99}))
        with pytest.raises(rio.FormatError):
            rio.load(bad)


# -- engine + replay integration ----------------------------------------------------


class TestEngineObservability:
    def test_cache_lookup_spans_and_live_cache_series(self, tmp_path):
        reg = MetricsRegistry()
        buf = io.StringIO()
        run_experiments(
            ["rho"], jobs=1, cache_dir=tmp_path, tracer=Tracer(buf), metrics=reg
        )
        assert reg.value("qbss_cache_lookups_total", result="miss") == 1.0
        assert reg.value("qbss_cache_writes_total") == 1.0
        assert reg.value("qbss_experiments_total", status="ok") == 1.0
        lookups = [
            e
            for e in read_trace(buf.getvalue())
            if e["name"] == "cache-lookup" and e["ev"] == EVENT_END
        ]
        assert [e["result"] for e in lookups] == ["miss"]

        reg2 = MetricsRegistry()
        buf2 = io.StringIO()
        run_experiments(
            ["rho"], jobs=1, cache_dir=tmp_path, tracer=Tracer(buf2), metrics=reg2
        )
        assert reg2.value("qbss_cache_lookups_total", result="hit") == 1.0
        lookups = [
            e
            for e in read_trace(buf2.getvalue())
            if e["name"] == "cache-lookup" and e["ev"] == EVENT_END
        ]
        assert [e["result"] for e in lookups] == ["hit"]

    def test_trace_event_counts_match_engine_counters(self, tmp_path):
        """The acceptance cross-check: every retry/timeout/pool-rebuild/
        quarantine the footer reports appears as exactly one trace event."""
        plan = FaultPlan(
            (
                FaultSpec(task="lemma42", kind="raise", attempt=1, transient=True),
                FaultSpec(task="lemma43", kind="hang", attempt=0, seconds=30.0),
                FaultSpec(task="lemma41", kind="corrupt-cache"),
            )
        )
        tracer = Tracer(io.StringIO())
        res = run_quiet(
            ["lemma41", "lemma42", "lemma43", "rho"],
            jobs=2,
            cache_dir=tmp_path,
            task_timeout=3.0,
            fault_plan=plan,
            tracer=tracer,
        )
        assert res.timeouts == 1 and res.retries >= 1
        assert tracer.counts.get("retry", 0) == res.retries
        assert tracer.counts.get("timeout", 0) == res.timeouts
        assert tracer.counts.get("pool_rebuild", 0) == res.pool_rebuilds
        assert tracer.counts.get("cache_quarantine", 0) == res.quarantined == 0

        # lemma41's cache entry was corrupted post-write: the warm rerun
        # quarantines it, and the trace says so the same number of times.
        tracer2 = Tracer(io.StringIO())
        res2 = run_quiet(
            ["lemma41", "rho"], jobs=1, cache_dir=tmp_path, tracer=tracer2
        )
        assert res2.quarantined == 1
        assert tracer2.counts.get("cache_quarantine", 0) == 1
        assert tracer2.counts.get("retry", 0) == res2.retries

    def test_task_span_statuses(self, tmp_path):
        plan = FaultPlan((FaultSpec(task="lemma42", kind="raise", attempt=0),))
        buf = io.StringIO()
        run_quiet(
            ["lemma42", "rho"],
            jobs=1,
            cache=False,
            fault_plan=plan,
            tracer=Tracer(buf),
        )
        events = read_trace(buf.getvalue())
        task_by_span = {
            e["span"]: e["task"]
            for e in events
            if e["name"] == "task" and e["ev"] == EVENT_BEGIN
        }
        ends = {
            task_by_span[e["span"]]: e["status"]
            for e in events
            if e["name"] == "task" and e["ev"] == EVENT_END
        }
        assert ends == {"lemma42": "error", "rho": "ok"}


class TestReplayObservability:
    def test_replay_spans_and_published_series(self, tmp_path):
        reg = MetricsRegistry()
        buf = io.StringIO()
        report, metrics = replay_jobs(
            _stream(),
            algorithms=("avrq",),
            shard_window=100.0,
            jobs=1,
            cache_dir=tmp_path,
            tracer=Tracer(buf),
            metrics=reg,
        )
        events = read_trace(buf.getvalue())
        roots = span_tree(events)[None]
        assert [e["name"] for e in roots] == ["batch"]
        assert roots[0]["kind"] == "replay"
        assert reg.value("qbss_replay_shards_total", status="ok") == len(
            report.shards
        )
        assert reg.value("qbss_replay_trace_jobs_total") == metrics.jobs
        assert reg.value("qbss_cache_lookups_total", result="miss") == len(
            report.shards
        )

        reg2 = MetricsRegistry()
        replay_jobs(
            _stream(),
            algorithms=("avrq",),
            shard_window=100.0,
            jobs=1,
            cache_dir=tmp_path,
            metrics=reg2,
        )
        assert reg2.value("qbss_cache_lookups_total", result="hit") == len(
            report.shards
        )


# -- CLI flags ----------------------------------------------------------------------


class TestCLIObservability:
    def test_report_cli_writes_all_three_outputs(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.jsonl"
        mets = tmp_path / "run.metrics.json"
        manifest = tmp_path / "run.manifest.json"
        rc = main(
            [
                "rho",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(mets),
                "--manifest-out",
                str(manifest),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        for path in (trace, mets, manifest):
            assert path.exists()
            assert f"written to {path}" in err
        events = read_trace(trace)
        assert {"batch", "task", "attempt"} <= {e["name"] for e in events}
        reg = MetricsRegistry.from_dict(json.loads(mets.read_text()))
        assert reg.value("qbss_experiments_total", status="ok") == 1.0
        doc = rio.load(manifest)
        assert doc.tool == "qbss-report"
        assert doc.args["experiment"] == "rho"
        assert doc.cache_dir == str(tmp_path / "cache")
        assert doc.created_at is not None

    def test_report_stdout_byte_identical_with_tracing(self, tmp_path, capsys):
        rc = main(["rho", "--no-cache"])
        assert rc == 0
        plain = capsys.readouterr().out
        rc = main(
            ["rho", "--no-cache", "--trace-out", str(tmp_path / "t.jsonl")]
        )
        assert rc == 0
        traced = capsys.readouterr().out
        assert traced == plain

    def test_replay_cli_writes_all_three_outputs(self, tmp_path, capsys):
        trace = tmp_path / "replay.trace.jsonl"
        mets = tmp_path / "replay.metrics.prom"
        manifest = tmp_path / "replay.manifest.json"
        rc = replay_main(
            [
                SAMPLE_CSV,
                "--shard-window",
                "100",
                "--jobs",
                "1",
                "--seed",
                "3",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(mets),
                "--manifest-out",
                str(manifest),
            ]
        )
        assert rc == 0
        samples = parse_prometheus_text(mets.read_text())
        shard_total = sum(
            v
            for (name, _), v in samples.items()
            if name == "qbss_replay_shards_total"
        )
        assert shard_total >= 1
        events = read_trace(trace)
        assert span_tree(events)[None][0]["kind"] == "replay"
        doc = rio.load(manifest)
        assert doc.tool == "qbss-replay" and doc.seed == 3

    def test_replay_stdout_byte_identical_with_tracing(self, tmp_path, capsys):
        base = [SAMPLE_CSV, "--shard-window", "100", "--jobs", "1", "--no-cache"]
        assert replay_main(base) == 0
        plain = capsys.readouterr().out
        assert (
            replay_main(base + ["--trace-out", str(tmp_path / "t.jsonl")]) == 0
        )
        assert capsys.readouterr().out == plain
