"""crcd_tuned: the opened-up CRCD design space."""

import math

import pytest

from repro.core.instance import QBSSInstance
from repro.core.power import PowerFunction
from repro.core.qjob import QJob
from repro.qbss.clairvoyant import clairvoyant
from repro.qbss.crcd import crcd, crcd_tuned
from repro.workloads.generators import common_deadline_instance


def test_default_point_is_crcd():
    qi = common_deadline_instance(10, seed=0)
    p = PowerFunction(3.0)
    assert math.isclose(
        crcd_tuned(qi, 0.5, 0.5).energy(p), crcd(qi).energy(p), rel_tol=1e-12
    )


def test_parameter_validation():
    qi = common_deadline_instance(4, seed=0)
    with pytest.raises(ValueError):
        crcd_tuned(qi, x=0.0)
    with pytest.raises(ValueError):
        crcd_tuned(qi, x=1.0)
    with pytest.raises(ValueError):
        crcd_tuned(qi, lam=-0.1)
    with pytest.raises(ValueError):
        crcd_tuned(qi, lam=1.1)


@pytest.mark.parametrize("x", [0.2, 0.5, 0.8])
@pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
def test_feasible_across_the_plane(x, lam):
    qi = common_deadline_instance(8, seed=1)
    result = crcd_tuned(qi, x, lam)
    report = result.validate()
    assert report.ok, report.violations


def test_queries_complete_by_split_point():
    qi = common_deadline_instance(8, seed=2)
    result = crcd_tuned(qi, x=0.3)
    for job_id in result.decisions.queried_ids():
        done = result.schedule.completion_time(job_id + ":query")
        split = qi.jobs[0].release + 0.3 * qi.jobs[0].span
        assert done <= split + 1e-9


def test_lam_zero_defers_all_unqueried_work():
    """With lam = 0 every unqueried workload runs entirely in phase 2."""
    jobs = [QJob(0, 4, 3.9, 4.0, 1.0, "a")]  # c > w/phi: not queried
    result = crcd_tuned(QBSSInstance(jobs), x=0.5, lam=0.0)
    assert result.profile.speed_at(1.0) == 0.0
    assert result.profile.speed_at(3.0) > 0.0
    assert result.validate().ok


def test_lam_one_frontloads_all_unqueried_work():
    jobs = [QJob(0, 4, 3.9, 4.0, 1.0, "a")]
    result = crcd_tuned(QBSSInstance(jobs), x=0.5, lam=1.0)
    assert result.profile.speed_at(1.0) > 0.0
    assert result.profile.speed_at(3.0) == 0.0


def test_tuned_point_can_beat_default_on_instance():
    """The minimax finding made concrete: on a mixed pair a tuned (x, lam)
    achieves a lower worst-case-measured energy than (1/2, 1/2)."""
    jobs = [
        QJob(0, 1, 0.3, 2.0, 2.0, "cheap-query"),  # adversarial w* = w
        QJob(0, 1, 1.5, 2.0, 0.0, "dear-query"),
    ]
    qi = QBSSInstance(jobs)
    p = PowerFunction(3.0)
    opt = clairvoyant(qi, alpha=3.0).energy_value
    default = crcd(qi).energy(p) / opt
    tuned = crcd_tuned(qi, x=0.2, lam=0.1).energy(p) / opt
    assert tuned < default


def test_split_fraction_recorded():
    qi = common_deadline_instance(6, seed=3)
    result = crcd_tuned(qi, x=0.25)
    for jid in result.decisions.queried_ids():
        assert result.decisions[jid].split == 0.25
