"""The uniform ALGORITHMS registry and the 1.1 keyword-only signatures."""

import inspect

import pytest

from repro.analysis.ratios import measure
from repro.qbss import (
    ALGORITHMS,
    avrq,
    bkpq,
    clairvoyant,
    get_algorithm,
    incremental_profile,
    oaq_m,
    run_algorithm,
    verify_causality,
)
from repro.qbss.policies import FixedSplit, ThresholdQuery
from repro.workloads import generators

INSTANCE_FOR = {
    "crcd": lambda: generators.common_deadline_instance(6, seed=0),
    "crp2d": lambda: generators.power_of_two_instance(6, seed=0),
    "crad": lambda: generators.common_release_instance(6, seed=0),
    "avrq": lambda: generators.online_instance(6, seed=0),
    "bkpq": lambda: generators.online_instance(6, seed=0),
    "oaq": lambda: generators.online_instance(6, seed=0),
    "avrq_m": lambda: generators.multi_machine_instance(6, 2, seed=0),
    "avrq_nm": lambda: generators.multi_machine_instance(6, 2, seed=0),
    "oaq_m": lambda: generators.multi_machine_instance(6, 2, seed=0),
}


class TestRegistry:
    def test_covers_every_entry_point(self):
        assert set(ALGORITHMS) == set(INSTANCE_FOR)

    def test_specs_are_consistent(self):
        for name, spec in ALGORITHMS.items():
            assert spec.name == name
            assert spec.setting in {"offline", "online", "multi"}
            assert spec.accepts <= {"alpha", "query_policy", "split_policy"}
            assert spec.summary

    @pytest.mark.parametrize("name", sorted(INSTANCE_FOR))
    def test_dispatch_by_name_runs(self, name):
        result = run_algorithm(name, INSTANCE_FOR[name]())
        assert result.validate().ok

    def test_uniform_signatures_keyword_only(self):
        # Past the instance (and the legacy *args shim slot), every
        # parameter of every registered runner is keyword-only.
        for spec in ALGORITHMS.values():
            params = list(inspect.signature(spec.fn).parameters.values())
            assert params[0].kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
            for p in params[1:]:
                assert p.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.KEYWORD_ONLY,
                ), f"{spec.name}.{p.name} is not keyword-only"

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="bkpq"):
            get_algorithm("nope")

    def test_rejects_unsupported_keyword(self):
        qi = INSTANCE_FOR["avrq"]()
        with pytest.raises(TypeError, match="does not accept"):
            run_algorithm("avrq", qi, query_policy=ThresholdQuery(2.0))

    def test_keywords_reach_the_algorithm(self):
        qi = INSTANCE_FOR["avrq"]()
        default = run_algorithm("avrq", qi)
        skewed = run_algorithm("avrq", qi, split_policy=FixedSplit(0.25))
        assert default.profile != skewed.profile

    def test_measure_accepts_registry_names(self):
        qi = INSTANCE_FOR["bkpq"]()
        by_name = measure("bkpq", qi, alpha=3.0)
        by_callable = measure(bkpq, qi, alpha=3.0)
        assert by_name.energy_ratio == by_callable.energy_ratio
        m = measure("oaq_m", INSTANCE_FOR["oaq_m"](), alpha=2.5)
        assert m.energy_ratio >= 1.0

    def test_verify_causality_dispatches_through_registry(self):
        qi = generators.online_instance(5, seed=3)
        assert verify_causality(qi, "avrq")
        assert verify_causality(qi, "bkpq")
        with pytest.raises(KeyError):
            verify_causality(qi, "not-an-algorithm")

    def test_replay_refuses_non_causal_algorithms(self):
        qi = generators.online_instance(4, seed=0)
        with pytest.raises(ValueError, match="replay"):
            incremental_profile(qi, "oaq")


class TestDeprecationShims:
    def test_avrq_positional_split_policy(self):
        qi = generators.online_instance(5, seed=1)
        with pytest.warns(DeprecationWarning, match="split_policy"):
            old = avrq(qi, FixedSplit(0.3))
        new = avrq(qi, split_policy=FixedSplit(0.3))
        assert old.profile == new.profile

    def test_bkpq_positional_query_policy(self):
        qi = generators.online_instance(5, seed=1)
        with pytest.warns(DeprecationWarning, match="query_policy"):
            old = bkpq(qi, ThresholdQuery(2.0))
        new = bkpq(qi, query_policy=ThresholdQuery(2.0))
        assert old.profile == new.profile

    def test_oaq_m_positional_alpha(self):
        qi = generators.multi_machine_instance(5, 2, seed=1)
        with pytest.warns(DeprecationWarning, match="alpha"):
            old = oaq_m(qi, 2.0)
        new = oaq_m(qi, alpha=2.0)
        assert old.profiles == new.profiles

    def test_clairvoyant_positional_alpha(self):
        qi = generators.online_instance(5, seed=1)
        with pytest.warns(DeprecationWarning, match="alpha"):
            old = clairvoyant(qi, 2.0)
        assert old.energy_value == clairvoyant(qi, alpha=2.0).energy_value

    def test_measure_positional_alpha(self):
        qi = generators.online_instance(5, seed=1)
        with pytest.warns(DeprecationWarning, match="alpha"):
            old = measure(avrq, qi, 3.0)
        assert old.energy_ratio == measure(avrq, qi, alpha=3.0).energy_ratio

    def test_shared_default_alpha_is_consistent(self):
        from repro.core.constants import DEFAULT_ALPHA

        for fn in (clairvoyant, oaq_m):
            sig = inspect.signature(fn)
            assert sig.parameters["alpha"].default == DEFAULT_ALPHA
        assert (
            inspect.signature(measure).parameters["alpha"].default
            == DEFAULT_ALPHA
        )

    def test_too_many_positionals_is_a_type_error(self):
        qi = generators.online_instance(4, seed=0)
        with pytest.raises(TypeError):
            avrq(qi, FixedSplit(0.5), "extra")
