"""CRCD (Algorithm 1): structure, guarantees, adversarial behaviour."""

import math

import pytest

from repro.bounds.formulas import CRCD_UB_MAX_SPEED, crcd_ub_energy
from repro.core.constants import PHI
from repro.core.instance import QBSSInstance
from repro.core.power import PowerFunction
from repro.core.qjob import QJob
from repro.qbss.clairvoyant import clairvoyant
from repro.qbss.crcd import crcd
from repro.qbss.policies import AlwaysQuery, NeverQuery
from repro.workloads.generators import common_deadline_instance


def test_requires_common_window():
    qi = QBSSInstance([QJob(0, 1, 0.5, 1, 0, "a"), QJob(0, 2, 0.5, 1, 0, "b")])
    with pytest.raises(ValueError):
        crcd(qi)
    qi2 = QBSSInstance([QJob(0, 2, 0.5, 1, 0, "a"), QJob(1, 2, 0.5, 1, 0, "b")])
    with pytest.raises(ValueError):
        crcd(qi2)


def test_rejects_multi_machine(common_window_qinstance):
    with pytest.raises(ValueError):
        crcd(common_window_qinstance.with_machines(2))


def test_empty_instance():
    result = crcd(QBSSInstance([]))
    assert result.energy(PowerFunction(3.0)) == 0.0


def test_two_phase_speeds_match_paper(common_window_qinstance):
    """s1 = sum_A w/D + sum_B 2c/D ; s2 = sum_A w/D + sum_B 2w*/D."""
    result = crcd(common_window_qinstance)
    d = 8.0
    # golden partition: B = {j0 (c=1,w=4), j2 (c=.5,w=5)}; A = {j1, j3}
    assert result.decisions["j0"].query
    assert result.decisions["j2"].query
    assert not result.decisions["j1"].query
    assert not result.decisions["j3"].query
    s1_expected = (4.0 + 2.5) / d + 2 * (1.0 + 0.5) / d
    s2_expected = (4.0 + 2.5) / d + 2 * (2.0 + 0.2) / d
    assert math.isclose(result.profile.speed_at(1.0), s1_expected)
    assert math.isclose(result.profile.speed_at(5.0), s2_expected)


def test_schedule_feasible(common_window_qinstance):
    result = crcd(common_window_qinstance)
    report = result.validate()
    assert report.ok, report.violations


def test_queries_complete_in_first_half(common_window_qinstance):
    result = crcd(common_window_qinstance)
    for job_id in ("j0", "j2"):
        assert result.schedule.completion_time(job_id + ":query") <= 4.0 + 1e-9


def test_executed_load_bounded_by_phi_times_optimal(common_window_qinstance):
    """Lemma 3.1 consequence: the load run per job is <= phi p*."""
    result = crcd(common_window_qinstance)
    for qjob in common_window_qinstance:
        executed = result.executed_load(qjob.id)
        assert executed <= PHI * qjob.optimal_load + 1e-9


@pytest.mark.parametrize("alpha", [1.25, 1.5, 2.0, 3.0])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_energy_within_theorem_46(alpha, seed):
    qi = common_deadline_instance(12, seed=seed)
    result = crcd(qi)
    opt = clairvoyant(qi, alpha=alpha).energy_value
    assert result.energy(PowerFunction(alpha)) <= crcd_ub_energy(alpha) * opt * (
        1 + 1e-9
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_max_speed_within_2x(seed):
    qi = common_deadline_instance(12, seed=seed)
    result = crcd(qi)
    opt = clairvoyant(qi, alpha=3.0).max_speed_value
    assert result.max_speed() <= CRCD_UB_MAX_SPEED * opt * (1 + 1e-9)


def test_adversarial_instance_energy_exact():
    """On (c=1, w=2, w*=0) CRCD pays exactly 2^{a-1} x OPT (Lemma 4.3 tight)."""
    qi = QBSSInstance([QJob(0, 1, 1.0, 2.0, 0.0, "adv")])
    alpha = 3.0
    result = crcd(qi)
    opt = clairvoyant(qi, alpha=alpha).energy_value
    assert math.isclose(result.energy(PowerFunction(alpha)) / opt, 2.0 ** (alpha - 1))


def test_policy_injection_never_query(common_window_qinstance):
    result = crcd(common_window_qinstance, query_policy=NeverQuery())
    assert not any(d.query for d in result.decisions.decisions.values())
    # both halves run the same speed: sum of w/D
    total_w = sum(j.work_upper for j in common_window_qinstance)
    assert math.isclose(result.profile.speed_at(1.0), total_w / 8.0)
    assert math.isclose(result.profile.speed_at(7.0), total_w / 8.0)


def test_policy_injection_always_query(common_window_qinstance):
    result = crcd(common_window_qinstance, query_policy=AlwaysQuery())
    assert all(d.query for d in result.decisions.decisions.values())
    assert result.validate().ok


def test_zero_true_work_second_half_can_be_idle():
    qi = QBSSInstance([QJob(0, 2, 0.5, 2.0, 0.0, "z")])
    result = crcd(qi)
    assert result.validate().ok
    assert result.profile.speed_at(1.5) == 0.0
