"""The hardened execution layer: timeouts, retries, crash recovery,
cache quarantine and the deterministic fault-injection harness.

The process-pool tests honor ``QBSS_TEST_JOBS`` (``serial`` | an integer |
``auto``) so CI can sweep the same suite across execution modes; locally
the default is the mode each test was written for.
"""

import json
import os
import time
import warnings
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cli import main, replay_main
from repro.engine import (
    QUARANTINE_DIRNAME,
    FailureInfo,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResultCache,
    RetryPolicy,
    WorkerCrashError,
    run_experiments,
)
from repro.core.qjob import QJob
from repro.engine import runner as engine_runner
from repro.engine.faults import FAULT_PLAN_ENV
from repro.engine.runner import HardenedTask, _execute, execute_hardened
from repro.traces.replay import replay_jobs

FAST = ["lemma42", "rho"]
FIVE = ["lemma41", "lemma42", "lemma43", "lemma44", "lemma45"]

#: Quick retries so fault tests don't sleep through real backoff.
QUICK = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_cap=0.01)


def matrix_jobs(default):
    """Worker count for pool tests; CI sweeps it via ``QBSS_TEST_JOBS``."""
    raw = os.environ.get("QBSS_TEST_JOBS", "").strip().lower()
    if not raw:
        return default
    if raw == "serial":
        return 1
    if raw == "auto":
        return 0
    return int(raw)


def run_quiet(names, **kwargs):
    """run_experiments with degradation warnings silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_experiments(names, retry=QUICK, **kwargs)


@pytest.fixture
def no_env_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


# -- unit: RetryPolicy / FaultPlan / FailureInfo ------------------------------------


class TestRetryPolicy:
    def test_delay_is_deterministic_per_task_and_attempt(self):
        p = RetryPolicy(max_attempts=3, backoff_base=0.1, jitter_seed=7)
        assert p.delay("t", 1) == p.delay("t", 1)
        assert p.delay("t", 1) != p.delay("u", 1)
        assert p.delay("t", 1) != p.delay("t", 2)

    def test_delay_grows_and_caps(self):
        p = RetryPolicy(max_attempts=9, backoff_base=1.0, backoff_cap=4.0)
        # jitter is in [0.5, 1.5), so attempt 10's base is capped at 4.0
        assert p.delay("t", 10) < 4.0 * 1.5
        assert p.delay("t", 10) >= 4.0 * 0.5

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy(backoff_base=0.0).delay("t", 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                FaultSpec(task="a", kind="crash", attempt=0),
                FaultSpec(task="b", kind="raise", transient=True),
                FaultSpec(task="c", kind="hang", seconds=1.5),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_hook_accepts_raw_json_and_file(self, tmp_path, monkeypatch):
        plan = FaultPlan((FaultSpec(task="x", kind="raise"),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert FaultPlan.from_env() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(FAULT_PLAN_ENV, f"@{path}")
        assert FaultPlan.from_env() == plan
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert FaultPlan.from_env() is None

    def test_attempt_zero_matches_every_attempt(self):
        spec = FaultSpec(task="t", kind="raise", attempt=0)
        assert all(spec.matches("t", n) for n in (1, 2, 3))
        assert not spec.matches("u", 1)

    def test_attempt_pinning(self):
        spec = FaultSpec(task="t", kind="raise", attempt=2)
        assert not spec.matches("t", 1)
        assert spec.matches("t", 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(task="t", kind="explode")

    def test_bad_plan_version_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json(json.dumps({"version": 99, "faults": []}))

    def test_inject_raises_matching_exception(self):
        det = FaultPlan((FaultSpec(task="t", kind="raise"),))
        with pytest.raises(InjectedFault):
            det.inject("t", 1)
        det.inject("t", 2)  # pinned to attempt 1: no-op elsewhere
        crash = FaultPlan((FaultSpec(task="t", kind="crash"),))
        with pytest.raises(WorkerCrashError):  # in-process simulation
            crash.inject("t", 1)

    def test_kill_and_torn_write_are_known_kinds(self):
        FaultSpec(task="t", kind="kill")
        FaultSpec(task="t", kind="torn-write")

    def test_wants_torn_write_is_parent_applied(self):
        plan = FaultPlan((FaultSpec(task="t", kind="torn-write", attempt=0),))
        assert plan.wants_torn_write("t", 1)
        assert plan.wants_torn_write("t", 3)
        assert not plan.wants_torn_write("u", 1)
        assert not plan.wants_corrupt_cache("t", 1)
        plan.inject("t", 1)  # worker-side: a no-op, the parent truncates

    def test_torn_write_entry_cuts_raw_bytes_mid_stream(self, tmp_path):
        from repro.engine.faults import torn_write_entry

        path = tmp_path / "entry.json"
        full = json.dumps({"cache_version": 3, "report": {"rows": [1, 2, 3]}})
        path.write_text(full)
        torn_write_entry(path)
        raw = path.read_text()
        assert raw == full[: len(full) // 2]  # a prefix, cut mid-token
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw)


class TestFailureInfo:
    def test_round_trip_and_summary(self):
        info = FailureInfo(
            task="lemma42",
            kind="crash",
            attempts=3,
            wall_times=[0.1, 0.2, 0.3],
            traceback="Traceback ...\nSomeError: boom",
        )
        assert FailureInfo.from_dict(info.to_dict()) == info
        line = info.summary_line()
        assert "lemma42" in line and "crash" in line and "3 attempt(s)" in line
        assert "SomeError: boom" in line


# -- satellite: BaseException pass-through ------------------------------------------


class TestExecuteBaseException:
    @staticmethod
    def _register(monkeypatch, exc):
        from repro.analysis.experiments import REGISTRY

        def boom():
            raise exc

        monkeypatch.setitem(REGISTRY, "kaboom", boom)

    def test_keyboard_interrupt_propagates(self, no_env_plan, monkeypatch):
        self._register(monkeypatch, KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            _execute("kaboom", {})

    def test_system_exit_propagates(self, no_env_plan, monkeypatch):
        self._register(monkeypatch, SystemExit(3))
        with pytest.raises(SystemExit):
            _execute("kaboom", {})

    def test_plain_exception_is_captured(self, no_env_plan, monkeypatch):
        self._register(monkeypatch, ValueError("nope"))
        outcome = _execute("kaboom", {})
        assert outcome["ok"] is False
        assert "ValueError" in outcome["error"]
        assert not outcome["transient"]
        assert outcome["kind"] == "error"


# -- satellite: cache quarantine ----------------------------------------------------


class TestQuarantine:
    def _seed_entry(self, tmp_path):
        result = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        (path,) = [p for p, _, _ in store.entries()]
        return result, store, path

    def test_truncated_entry_is_miss_and_quarantined(self, tmp_path):
        cold, store, path = self._seed_entry(tmp_path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 3])  # truncated mid-write
        again = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        assert not again.runs[0].metrics.cache_hit
        assert again.runs[0].metrics.quarantined == 1
        assert again.quarantined == 1
        moved = list((tmp_path / QUARANTINE_DIRNAME).iterdir())
        assert len(moved) == 1  # preserved for post-mortem, not deleted
        assert moved[0].read_text() == raw[: len(raw) // 3]
        # the recomputed entry is identical and hits next time
        warm = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        assert warm.runs[0].metrics.cache_hit
        assert warm.reports[0].render() == cold.reports[0].render()

    def test_zero_byte_entry_is_miss_and_quarantined(self, tmp_path):
        _, store, path = self._seed_entry(tmp_path)
        path.write_text("")
        assert store.get(path.stem) is None
        assert store.quarantined == 1
        assert (tmp_path / QUARANTINE_DIRNAME / path.name).exists()

    def test_non_dict_json_is_quarantined(self, tmp_path):
        _, store, path = self._seed_entry(tmp_path)
        path.write_text("[1, 2, 3]")
        assert store.get(path.stem) is None
        assert store.quarantined == 1

    def test_stale_version_is_plain_miss_left_in_place(self, tmp_path):
        _, store, path = self._seed_entry(tmp_path)
        doc = json.loads(path.read_text())
        doc["cache_version"] = -1
        path.write_text(json.dumps(doc))
        assert store.get(path.stem) is None
        assert store.quarantined == 0
        assert path.exists()

    def test_quarantine_excluded_from_entries_and_len(self, tmp_path):
        _, store, path = self._seed_entry(tmp_path)
        path.write_text("garbage")
        assert store.get(path.stem) is None
        assert len(store) == 0
        assert store.entries() == []
        store.clear()
        assert (tmp_path / QUARANTINE_DIRNAME / path.name).exists()

    def test_corrupt_cache_fault_round_trip(self, tmp_path, no_env_plan):
        plan = FaultPlan((FaultSpec(task="lemma42", kind="corrupt-cache"),))
        first = run_quiet(
            ["lemma42"], jobs=1, cache_dir=tmp_path, fault_plan=plan
        )
        assert first.runs[0].metrics.status == "ok"
        # the write was corrupted after the fact -> next run quarantines it
        again = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        assert not again.runs[0].metrics.cache_hit
        assert again.quarantined == 1
        assert first.reports[0].render() == again.reports[0].render()

    def test_torn_write_fault_round_trip(self, tmp_path, no_env_plan):
        """A cache entry cut mid-stream is quarantined and recomputed —
        never served as a hit, never a crash."""
        plan = FaultPlan((FaultSpec(task="lemma42", kind="torn-write"),))
        first = run_quiet(
            ["lemma42"], jobs=1, cache_dir=tmp_path, fault_plan=plan
        )
        assert first.runs[0].metrics.status == "ok"
        again = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        assert not again.runs[0].metrics.cache_hit
        assert again.quarantined == 1
        assert first.reports[0].render() == again.reports[0].render()
        # the recomputed (intact) entry hits next time
        warm = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        assert warm.runs[0].metrics.cache_hit

    def test_put_fsyncs_before_atomic_replace(self, tmp_path, monkeypatch):
        """Durability contract of the cache write path: the entry is
        flushed + fsync'd to a temp file, then renamed into place — a
        crash can lose the entry but never publish a torn one."""
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store = ResultCache(tmp_path)
        path = store.put("deadbeef" * 8, "lemma42", {}, {"rows": []}, 0.1)
        assert synced, "put() published an entry without fsync"
        assert path.exists()
        assert not list(tmp_path.glob("**/*.tmp*")), "temp file left behind"
        assert store.get("deadbeef" * 8) is not None


# -- engine: retries, crashes, timeouts ---------------------------------------------


class TestEngineFaults:
    def test_deterministic_raise_fails_without_retry(self, tmp_path, no_env_plan):
        plan = FaultPlan((FaultSpec(task="lemma42", kind="raise", attempt=0),))
        res = run_quiet(FAST, jobs=1, cache_dir=tmp_path, fault_plan=plan)
        (bad,) = res.errors
        assert bad.name == "lemma42"
        assert bad.metrics.status == "error"
        assert bad.metrics.attempts == 1  # deterministic: never retried
        assert res.retries == 0
        (info,) = res.failures
        assert info.kind == "error" and info.attempts == 1
        assert "InjectedFault" in info.traceback
        # the other experiment is unaffected
        assert [r.id for r in res.reports] == ["RHO"]

    def test_transient_raise_is_retried_byte_identical(
        self, tmp_path, no_env_plan
    ):
        clean = run_quiet(FAST, jobs=1, cache=False)
        plan = FaultPlan(
            (FaultSpec(task="lemma42", kind="raise", attempt=1, transient=True),)
        )
        res = run_quiet(FAST, jobs=1, cache=False, fault_plan=plan)
        assert not res.errors
        assert res.retries == 1
        assert res.runs[0].metrics.attempts == 2
        assert [a.render() for a in clean.reports] == [
            b.render() for b in res.reports
        ]

    def test_transient_crash_rebuilds_pool_once(self, tmp_path, no_env_plan):
        plan = FaultPlan(
            (FaultSpec(task="lemma42", kind="crash", attempt=1, transient=True),)
        )
        res = run_quiet(
            FIVE,
            jobs=matrix_jobs(2),
            cache_dir=tmp_path,
            fault_plan=plan,
        )
        assert not res.errors
        assert len(res.reports) == 5
        if res.pool_rebuilds:  # pool mode: the crash broke it exactly once
            assert res.pool_rebuilds == 1
            assert not res.degraded
        assert res.retries >= 1

    def test_deterministic_crash_on_two_of_five(self, tmp_path, no_env_plan):
        """The acceptance scenario: 2 crashed, 3 correct, structured records."""
        plan = FaultPlan(
            (
                FaultSpec(task="lemma42", kind="crash", attempt=0),
                FaultSpec(task="lemma44", kind="crash", attempt=0),
            )
        )
        res = run_quiet(
            FIVE, jobs=matrix_jobs(2), cache_dir=tmp_path, fault_plan=plan
        )
        assert sorted(f.task for f in res.failures) == ["lemma42", "lemma44"]
        for info in res.failures:
            assert info.kind == "crash"
            assert info.attempts == QUICK.max_attempts
            assert len(info.wall_times) == info.attempts
        assert sorted(r.id for r in res.reports) == ["L41", "L43", "L45"]
        baseline = run_experiments(
            ["lemma41", "lemma43", "lemma45"], jobs=1, cache=False
        )
        by_id = {r.id: r for r in baseline.reports}
        for rep in res.reports:
            assert rep.rows == by_id[rep.id].rows
        summary = res.summary()
        assert summary["failed"] == 2 and summary["ok"] == 3
        assert len(summary["failures"]) == 2
        # the three survivors were cached; the crashed two were not
        assert len(ResultCache(tmp_path)) == 3
        rerun = run_experiments(
            ["lemma41", "lemma43", "lemma45"], jobs=1, cache_dir=tmp_path
        )
        assert all(r.metrics.cache_hit for r in rerun.runs)

    def test_kill_fault_in_pool_worker_is_recovered(self, no_env_plan):
        """A SIGKILLed worker (real kill -9: no orderly ``os._exit``)
        breaks the pool; the driver rebuilds it and retries the charged
        attempts, and the final output is byte-identical to a clean run."""
        clean = run_quiet(FAST, jobs=1, cache=False)
        plan = FaultPlan((FaultSpec(task="lemma42", kind="kill", attempt=1),))
        res = run_quiet(
            FAST,
            jobs=max(2, matrix_jobs(2)),  # in-process kill would take pytest down
            cache=False,
            fault_plan=plan,
        )
        assert not res.errors
        assert res.retries >= 1
        assert res.pool_rebuilds >= 1
        assert not res.degraded
        assert [a.render() for a in clean.reports] == [
            b.render() for b in res.reports
        ]

    def test_hang_times_out_and_batch_continues(self, tmp_path, no_env_plan):
        plan = FaultPlan(
            (FaultSpec(task="lemma42", kind="hang", attempt=0, seconds=30.0),)
        )
        res = run_quiet(
            FIVE,
            jobs=max(2, matrix_jobs(2)),  # deadlines need pool mode
            cache_dir=tmp_path,
            task_timeout=0.5,
            fault_plan=plan,
        )
        assert res.timeouts == 1
        (bad,) = res.errors
        assert bad.name == "lemma42"
        assert bad.metrics.status == "timeout"
        assert bad.metrics.attempts == 1  # hangs are presumed deterministic
        (info,) = res.failures
        assert info.kind == "timeout"
        assert sorted(r.id for r in res.reports) == ["L41", "L43", "L44", "L45"]

    def test_summary_and_footer_surface_recovery(self, tmp_path, no_env_plan):
        plan = FaultPlan(
            (
                FaultSpec(task="rho", kind="raise", attempt=0),
                FaultSpec(task="lemma42", kind="raise", attempt=1, transient=True),
            )
        )
        res = run_quiet(FAST, jobs=1, cache_dir=tmp_path, fault_plan=plan)
        footer = res.footer()
        assert "recovery: 1 retries" in footer
        assert "failed:" in footer
        assert "ERROR" in footer  # status column for the failed run
        summary = res.summary()
        assert summary["retries"] == 1
        assert summary["failures"][0]["task"] == "rho"


# -- driver: deadlines vs queue wait, hung workers, submit-path crashes -------------


def _ok_worker(key, attempt):
    """In-process stand-in worker for scripted-pool driver tests."""
    return {"ok": True, "payload": key, "wall": 0.0}


class TestHardenedDriver:
    def test_queue_wait_does_not_count_against_deadline(self, no_env_plan):
        """5 × ~0.5s tasks on 2 workers: under submit-time deadlines the
        back of the queue would spuriously time out without ever running."""
        plan = FaultPlan(
            tuple(
                FaultSpec(task=n, kind="hang", attempt=0, seconds=0.5)
                for n in FIVE
            )
        )
        res = run_quiet(
            FIVE,
            jobs=max(2, matrix_jobs(2)),
            cache=False,
            task_timeout=1.0,
            fault_plan=plan,
        )
        assert res.timeouts == 0
        assert not res.errors
        assert len(res.reports) == 5

    def test_all_workers_hung_pool_is_replaced(self, no_env_plan):
        """Hangs pinning every worker must not deadlock the remaining work
        (cancel() cannot stop a running task; the pool is replaced)."""
        plan = FaultPlan(
            (
                FaultSpec(task="lemma41", kind="hang", attempt=0, seconds=30.0),
                FaultSpec(task="lemma42", kind="hang", attempt=0, seconds=30.0),
            )
        )
        t0 = time.monotonic()
        res = run_quiet(
            FIVE, jobs=2, cache=False, task_timeout=0.5, fault_plan=plan
        )
        assert res.timeouts == 2
        assert sorted(f.task for f in res.failures) == ["lemma41", "lemma42"]
        assert all(f.kind == "timeout" for f in res.failures)
        assert sorted(r.id for r in res.reports) == ["L43", "L44", "L45"]
        assert res.pool_rebuilds >= 1  # reclaimed the pinned workers
        assert not res.degraded
        assert time.monotonic() - t0 < 20.0  # hung workers killed, not awaited

    def test_backoff_does_not_delay_timeout_detection(self, no_env_plan):
        """A task backing off several seconds must not block the deadline
        check for a concurrently hung task."""
        policy = RetryPolicy(max_attempts=2, backoff_base=4.0, backoff_cap=4.0)
        plan = FaultPlan(
            (
                FaultSpec(task="rho", kind="raise", attempt=1, transient=True),
                FaultSpec(task="lemma42", kind="hang", attempt=0, seconds=30.0),
            )
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            res = run_experiments(
                ["rho", "lemma42"],
                jobs=2,
                cache=False,
                task_timeout=0.5,
                retry=policy,
                fault_plan=plan,
            )
        assert res.retries == 1
        assert res.timeouts == 1
        (info,) = res.failures
        assert info.kind == "timeout"
        # the deadline fired on schedule, not after rho's ~4s backoff
        assert info.wall_times[0] < policy.delay("rho", 1)
        assert [r.id for r in res.reports] == ["RHO"]

    def test_submit_path_pool_break_settles_inflight(self, monkeypatch):
        """BrokenProcessPool raised *at submission* must charge the already
        in-flight tasks a crashed attempt, not silently drop them."""

        class ScriptedPool:
            built = 0

            def __init__(self, max_workers):
                ScriptedPool.built += 1
                self.first = ScriptedPool.built == 1
                self.count = 0

            def submit(self, fn, *args):
                if self.first and self.count == 2:
                    raise BrokenProcessPool("scripted break")
                self.count += 1
                fut = Future()
                if not self.first:
                    fut.set_result(fn(*args))
                return fut  # first pool: futures never complete

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(engine_runner, "ProcessPoolExecutor", ScriptedPool)
        tasks = [HardenedTask(f"t{i}") for i in range(3)]
        succeeded, failed = [], []
        stats = execute_hardened(
            tasks,
            worker=_ok_worker,
            payload=lambda t: (t.task_key,),
            on_success=lambda t, o, d: succeeded.append(t.task_key),
            on_failure=lambda t, k, e: failed.append((t.task_key, k)),
            jobs=2,
            retry=QUICK,
        )
        assert failed == []
        assert sorted(succeeded) == ["t0", "t1", "t2"]  # nothing lost
        assert stats.pool_rebuilds == 1
        assert not stats.degraded
        assert stats.retries == 2  # t0/t1 were charged a crashed attempt
        assert [t.attempt for t in tasks] == [2, 2, 1]

    def test_double_break_degrades_and_flags_stream_tasks(self, monkeypatch):
        """After degrading to serial, every task the fallback runs — carried
        and not-yet-pulled alike — is flagged degraded."""

        class AlwaysBroken:
            def __init__(self, max_workers):
                pass

            def submit(self, fn, *args):
                raise BrokenProcessPool("scripted break")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(engine_runner, "ProcessPoolExecutor", AlwaysBroken)
        stream = iter([HardenedTask(f"t{i}") for i in range(3)])
        flags = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            stats = execute_hardened(
                stream,
                worker=_ok_worker,
                payload=lambda t: (t.task_key,),
                on_success=lambda t, o, d: flags.__setitem__(t.task_key, d),
                on_failure=lambda t, k, e: flags.__setitem__(t.task_key, k),
                jobs=2,
                retry=QUICK,
            )
        assert stats.degraded
        assert stats.pool_rebuilds == 2
        assert flags == {"t0": True, "t1": True, "t2": True}
        assert sorted(stats.degraded_tasks) == ["t0", "t1", "t2"]


# -- CLI surfaces -------------------------------------------------------------------


class TestReportCli:
    def test_injected_crashes_exit_nonzero_with_structured_errors(
        self, tmp_path, monkeypatch, capsys
    ):
        plan = FaultPlan((FaultSpec(task="lemma42", kind="raise", attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        rc = main(
            ["lemma42", "--cache-dir", str(tmp_path), "--max-attempts", "2"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "failed (error after 1 attempt(s))" in captured.err
        assert "InjectedFault" in captured.err

    def test_transient_fault_retries_and_exits_zero(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        rc = main(["lemma42", "--no-cache"])
        clean = capsys.readouterr()
        assert rc == 0
        plan = FaultPlan(
            (FaultSpec(task="lemma42", kind="raise", attempt=1, transient=True),)
        )
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        rc = main(["lemma42", "--no-cache"])
        faulted = capsys.readouterr()
        assert rc == 0
        assert faulted.out == clean.out  # byte-identical report
        assert "1 retries" in faulted.err

    def test_markdown_failure_footer(self, tmp_path, monkeypatch, capsys):
        plan = FaultPlan((FaultSpec(task="lemma42", kind="raise", attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        rc = main(["lemma42", "--cache-dir", str(tmp_path), "--markdown"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "## Failures" in captured.out
        assert "| lemma42 | error | 1 |" in captured.out

    def test_flag_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lemma42", "--task-timeout", "0"])
        with pytest.raises(SystemExit):
            main(["lemma42", "--max-attempts", "0"])


class TestReplayFaults:
    @pytest.fixture
    def jobs_stream(self):
        def make():
            for i in range(18):
                release = i * 0.5
                yield QJob(release, release + 4.0, 0.5, 2.0, 1.0, f"j{i}")

        return make

    def test_hung_shard_times_out_others_identical(
        self, tmp_path, no_env_plan, jobs_stream
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            base, _ = replay_jobs(
                jobs_stream(), shard_window=2.0, jobs=1, cache=False
            )
            plan = FaultPlan(
                (FaultSpec(task="shard:1", kind="hang", attempt=0, seconds=30.0),)
            )
            rep, metrics = replay_jobs(
                jobs_stream(),
                shard_window=2.0,
                jobs=max(2, matrix_jobs(2)),
                cache=False,
                task_timeout=0.5,
                retry=QUICK,
                fault_plan=plan,
            )
        assert metrics.timeouts == 1
        statuses = {s["index"]: s.get("status", "ok") for s in rep.shards}
        assert statuses[1] == "timeout"
        assert rep.shards[1]["rows"] == []
        assert [f.kind for f in metrics.failures] == ["timeout"]
        # every unaffected shard is byte-identical to the fault-free run
        for clean, faulted in zip(base.shards, rep.shards):
            if faulted["index"] == 1:
                continue
            canon_clean = dict(clean, status="ok")
            canon_fault = dict(faulted)
            canon_fault.setdefault("status", "ok")
            assert json.dumps(canon_clean, sort_keys=True) == json.dumps(
                canon_fault, sort_keys=True
            )

    def test_replay_cli_exits_one_on_failed_shard(
        self, tmp_path, monkeypatch, capsys
    ):
        trace = tmp_path / "jobs.csv"
        lines = ["release,deadline,runtime"]
        for i in range(12):
            r = i * 2.0
            lines.append(f"{r},{r + 8.0},{1.0 + (i % 3)}")
        trace.write_text("\n".join(lines) + "\n")
        plan = FaultPlan((FaultSpec(task="shard:1", kind="raise", attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        rc = replay_main(
            [
                str(trace),
                "--shard-window",
                "6",
                "--jobs",
                "1",
                "--no-cache",
                "--markdown",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "## Failed shards" in captured.out
        assert "status 'error'" in captured.err


# -- property: transient faults never change results --------------------------------


from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def transient_plans(draw):
    """A FaultPlan with < max_attempts transient faults per task.

    Each FAST experiment independently gets transient ``raise`` faults at
    a subset of attempts {1, 2}; with ``max_attempts = 3`` the third
    attempt is always clean, so every task must eventually succeed.
    """
    specs = []
    for name in FAST:
        for attempt in sorted(
            draw(st.sets(st.sampled_from([1, 2]), max_size=2))
        ):
            specs.append(
                FaultSpec(
                    task=name, kind="raise", attempt=attempt, transient=True
                )
            )
    return FaultPlan(specs)


class TestTransientFaultTransparency:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(plan=transient_plans())
    def test_output_is_byte_identical_to_fault_free(
        self, plan, tmp_path_factory, monkeypatch
    ):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        clean_dir = tmp_path_factory.mktemp("clean")
        fault_dir = tmp_path_factory.mktemp("faulted")
        clean = run_quiet(FAST, jobs=1, cache_dir=clean_dir)
        faulted = run_quiet(
            FAST, jobs=1, cache_dir=fault_dir, fault_plan=plan
        )
        assert not faulted.errors
        assert [a.render() for a in clean.reports] == [
            b.render() for b in faulted.reports
        ]
        # only a contiguous run of faults starting at attempt 1 fires: a
        # fault pinned to attempt 2 is unreachable when attempt 1 succeeds
        expected_retries = 0
        for name in FAST:
            attempts = {s.attempt for s in plan.specs if s.task == name}
            expected_retries += 2 if {1, 2} <= attempts else int(1 in attempts)
        assert faulted.retries == expected_retries
        # same content addresses: retries never leak into cache keys
        clean_keys = sorted(p.name for p, _, _ in ResultCache(clean_dir).entries())
        fault_keys = sorted(p.name for p, _, _ in ResultCache(fault_dir).entries())
        assert clean_keys == fault_keys
