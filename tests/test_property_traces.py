"""Property-based suite for the trace layer.

Every record the synthesizer touches must come out as a model-legal QBSS
job — ``0 < c <= w``, ``w* <= w``, ``r < d`` — for any noise model, any
seed, and any explicit query cost the trace supplies.  Sharding must
partition without loss and be invariant to how the stream was chunked.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qjob import QJob
from repro.traces import (
    NOISE_MODELS,
    TraceRecord,
    get_noise_model,
    iter_shards,
    synthesize_job,
    synthesize_jobs,
)

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def trace_records(draw, index=0):
    release = draw(st.floats(min_value=0.0, max_value=1e6, **finite))
    runtime = draw(st.floats(min_value=1e-6, max_value=1e5, **finite))
    deadline = None
    if draw(st.booleans()):
        deadline = release + draw(
            st.floats(min_value=1e-6, max_value=1e6, **finite)
        )
    requested = None
    if draw(st.booleans()):
        requested = draw(st.floats(min_value=1e-6, max_value=1e6, **finite))
    query_cost = None
    if draw(st.booleans()):
        query_cost = draw(st.floats(min_value=1e-9, max_value=1e9, **finite))
    return TraceRecord(
        index=index,
        id=f"h{index}",
        release=release,
        runtime=runtime,
        deadline=deadline,
        requested=requested,
        query_cost=query_cost,
    )


@settings(max_examples=120, deadline=None)
@given(
    record=trace_records(),
    model=st.sampled_from(sorted(NOISE_MODELS)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    slack=st.floats(min_value=0.1, max_value=10.0, **finite),
)
def test_every_synthesized_job_is_model_legal(record, model, seed, slack):
    job = synthesize_job(
        record, get_noise_model(model), seed=seed, deadline_slack=slack
    )
    assert isinstance(job, QJob)
    assert 0.0 < job.query_cost <= job.work_upper
    assert job.work_true <= job.work_upper
    assert job.release < job.deadline
    assert job.work_true == record.runtime
    assert job.release == record.release
    for value in (job.query_cost, job.work_upper, job.deadline):
        assert math.isfinite(value)


@settings(max_examples=60, deadline=None)
@given(
    record=trace_records(),
    model=st.sampled_from(sorted(NOISE_MODELS)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_synthesis_is_a_pure_function_of_seed_and_record(record, model, seed):
    noise = get_noise_model(model)
    assert synthesize_job(record, noise, seed=seed) == synthesize_job(
        record, noise, seed=seed
    )


@st.composite
def sorted_release_streams(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, **finite),
            min_size=n,
            max_size=n,
        )
    )
    releases = []
    t = 0.0
    for g in gaps:
        t += g
        releases.append(t)
    return [
        TraceRecord(index=i, id=f"s{i}", release=r, runtime=1.0 + (i % 5))
        for i, r in enumerate(releases)
    ]


@settings(max_examples=60, deadline=None)
@given(
    records=sorted_release_streams(),
    seed=st.integers(min_value=0, max_value=100),
    window=st.floats(min_value=0.5, max_value=200.0, **finite),
)
def test_sharding_partitions_the_stream_without_loss(records, seed, window):
    jobs = list(synthesize_jobs(iter(records), seed=seed))
    shards = list(iter_shards(iter(jobs), window=window))
    flattened = [job for shard in shards for job in shard.jobs]
    assert flattened == jobs  # order-preserving, nothing dropped
    assert [s.index for s in shards] == sorted(
        {s.index for s in shards}
    )  # strictly increasing shard grid
    for shard in shards:
        assert shard.end - shard.start > 0
        for job in shard.jobs:
            assert shard.start <= job.release or math.isclose(
                shard.start, job.release
            )
            assert job.release < shard.end or math.isclose(
                job.release, shard.end
            )


@settings(max_examples=40, deadline=None)
@given(
    records=sorted_release_streams(),
    seed=st.integers(min_value=0, max_value=100),
    split=st.integers(min_value=0, max_value=30),
)
def test_synthesis_invariant_under_chunking(records, seed, split):
    """Splitting the record stream anywhere yields the same jobs —
    the property the parallel replayer's determinism rests on."""
    split = min(split, len(records))
    whole = list(synthesize_jobs(iter(records), seed=seed))
    front = list(synthesize_jobs(iter(records[:split]), seed=seed))
    back = list(synthesize_jobs(iter(records[split:]), seed=seed))
    assert front + back == whole
