"""The clairvoyant baseline."""

import math

import pytest

from repro.core.instance import QBSSInstance
from repro.core.qjob import QJob
from repro.qbss.clairvoyant import clairvoyant, optimal_energy, optimal_max_speed
from repro.speed_scaling.yds import optimal_energy as yds_energy


def test_single_machine_equals_yds_on_pstar(common_window_qinstance):
    base = clairvoyant(common_window_qinstance, alpha=3.0)
    star = common_window_qinstance.clairvoyant_instance()
    assert math.isclose(base.energy_value, yds_energy(list(star.jobs), 3.0))
    assert base.exact
    assert base.schedule is not None


def test_single_job_closed_form():
    # p* = min(3, 0.5 + 1) = 1.5 over a window of 2 -> speed 0.75
    qi = QBSSInstance([QJob(0, 2, 0.5, 3.0, 1.0)])
    base = clairvoyant(qi, alpha=3.0)
    assert math.isclose(base.max_speed_value, 0.75)
    assert math.isclose(base.energy_value, 2 * 0.75**3)


def test_query_never_helps_when_cost_too_high():
    # c + w* > w: the clairvoyant skips the query, load = w
    qi = QBSSInstance([QJob(0, 1, 0.9, 1.0, 0.5)])
    assert math.isclose(clairvoyant(qi, alpha=2.0).energy_value, 1.0)


def test_multi_machine_pooled_default(common_window_qinstance):
    qi = common_window_qinstance.with_machines(2)
    base = clairvoyant(qi, alpha=3.0)
    assert not base.exact
    single = clairvoyant(common_window_qinstance, alpha=3.0)
    # pooling two machines divides the constant speed by 2: energy x m^{1-a}
    assert math.isclose(base.energy_value, single.energy_value / 4.0, rel_tol=1e-9)


def test_multi_machine_exact_at_least_pooled(common_window_qinstance):
    qi = common_window_qinstance.with_machines(2)
    pooled = clairvoyant(qi, alpha=3.0, exact_multi=False).energy_value
    exact = clairvoyant(qi, alpha=3.0, exact_multi=True).energy_value
    assert exact >= pooled * (1 - 1e-6)


def test_multi_machine_exact_provides_witness_schedule(common_window_qinstance):
    from repro.core.feasibility import check_feasible

    qi = common_window_qinstance.with_machines(2)
    base = clairvoyant(qi, alpha=3.0, exact_multi=True)
    assert base.schedule is not None
    report = check_feasible(base.schedule, base.star, tol=1e-5)
    assert report.ok, report.violations


def test_helpers(common_window_qinstance):
    assert optimal_energy(common_window_qinstance, 3.0) > 0
    assert optimal_max_speed(common_window_qinstance) > 0
