"""The parallel cached experiment engine and its CLI surface."""

import json

import pytest

from repro.analysis.experiments import (
    REGISTRY,
    ExperimentReport,
    experiment_params,
    resolve_kwargs,
)
from repro.engine import (
    ResultCache,
    cache_key,
    map_measure,
    run_experiments,
)
from repro.workloads import generators

FAST = ["lemma42", "rho"]


class TestKwargResolution:
    def test_params_are_json_serializable(self):
        for name in REGISTRY:
            json.dumps(experiment_params(name))  # must not raise

    def test_resolve_merges_and_reports_unused(self):
        call, resolved, unused = resolve_kwargs(
            "lemma42", {"alpha": 2.0, "bogus": 1}
        )
        assert call == {"alpha": 2.0}
        assert resolved["alpha"] == 2.0
        assert unused == ["bogus"]

    def test_explicit_default_resolves_to_same_key(self):
        _, via_default, _ = resolve_kwargs("lemma42")
        _, via_explicit, _ = resolve_kwargs("lemma42", {"alpha": 3.0})
        assert cache_key("lemma42", via_default) == cache_key(
            "lemma42", via_explicit
        )

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            resolve_kwargs("nope")


class TestCache:
    def test_same_key_hit_is_byte_identical(self, tmp_path):
        cold = run_experiments(FAST, jobs=1, cache_dir=tmp_path)
        warm = run_experiments(FAST, jobs=1, cache_dir=tmp_path)
        assert [r.metrics.cache_hit for r in cold.runs] == [False, False]
        assert [r.metrics.cache_hit for r in warm.runs] == [True, True]
        for a, b in zip(cold.reports, warm.reports):
            assert a.render() == b.render()

    def test_changed_kwargs_miss(self, tmp_path):
        run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        again = run_experiments(
            ["lemma42"], {"lemma42": {"alpha": 2.0}}, jobs=1, cache_dir=tmp_path
        )
        assert not again.runs[0].metrics.cache_hit

    def test_bumped_package_version_misses(self, tmp_path):
        run_experiments(
            ["lemma42"], jobs=1, cache_dir=tmp_path, package_version="1.0.0"
        )
        again = run_experiments(
            ["lemma42"], jobs=1, cache_dir=tmp_path, package_version="9.9.9"
        )
        assert not again.runs[0].metrics.cache_hit

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path):
        run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        assert len(store) == 1
        off = run_experiments(["lemma42"], jobs=1, cache=False, cache_dir=tmp_path)
        assert not off.runs[0].metrics.cache_hit
        assert len(store) == 1  # nothing new written

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        (path,) = list(tmp_path.glob("*/*.json"))
        path.write_text("{not json")
        assert store.get(path.stem) is None
        again = run_experiments(["lemma42"], jobs=1, cache_dir=tmp_path)
        assert not again.runs[0].metrics.cache_hit

    def test_cached_report_loads_via_io(self, tmp_path):
        from repro import io

        report = REGISTRY["lemma42"]()
        path = tmp_path / "report.json"
        io.save(report, path)
        loaded = io.load(path)
        assert isinstance(loaded, ExperimentReport)
        assert loaded.render() == ExperimentReport.from_dict(report.to_dict()).render()


class TestParallel:
    def test_jobs4_output_equals_serial(self, tmp_path):
        serial = run_experiments(
            FAST + ["lemma43"], jobs=1, cache_dir=tmp_path / "a"
        )
        parallel = run_experiments(
            FAST + ["lemma43"], jobs=4, cache_dir=tmp_path / "b"
        )
        assert [r.name for r in serial.runs] == [r.name for r in parallel.runs]
        for a, b in zip(serial.reports, parallel.reports):
            assert a.render() == b.render()

    def test_metrics_are_recorded(self, tmp_path):
        result = run_experiments(FAST, jobs=2, cache_dir=tmp_path)
        for run in result.runs:
            assert run.metrics.wall_time >= 0.0
            assert run.metrics.rows > 0
            assert run.metrics.error is None
        footer = result.footer()
        for name in FAST:
            assert name in footer
        assert "jobs=2" in footer

    def test_failing_experiment_is_isolated(self, tmp_path, monkeypatch):
        def boom():
            raise RuntimeError("kaboom")

        monkeypatch.setitem(REGISTRY, "lemma42", boom)
        result = run_experiments(FAST, jobs=1, cache_dir=tmp_path)
        failed, ok = result.runs
        assert not failed.ok and "kaboom" in failed.metrics.error
        assert ok.ok
        assert result.errors == [failed]

    def test_map_measure_parallel_matches_serial(self):
        instances = [generators.online_instance(5, seed=s) for s in range(3)]
        serial = map_measure("bkpq", instances, alpha=3.0, jobs=1)
        parallel = map_measure("bkpq", instances, alpha=3.0, jobs=3)
        assert [m.energy_ratio for m in serial] == [
            m.energy_ratio for m in parallel
        ]
        with pytest.raises(KeyError):
            map_measure("nope", instances, alpha=3.0)


class TestCLI:
    def test_list_flag(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out and "table1" in out

    def test_unused_override_warns(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["lemma42", "--n", "5", "--cache-dir", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "ignored" in err and "--n" in err

    def test_failure_gives_nonzero_exit(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        def boom(**kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(REGISTRY, "lemma42", boom)
        code = main(["lemma42", "--cache-dir", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "kaboom" in err

    def test_footer_on_stderr_not_stdout(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["lemma42", "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "engine" in captured.err and "cache" in captured.err
        assert "engine" not in captured.out

    def test_warm_rerun_hits_cache(self, capsys, tmp_path):
        from repro.cli import main

        main(["lemma42", "--cache-dir", str(tmp_path)])
        first = capsys.readouterr()
        main(["lemma42", "--cache-dir", str(tmp_path)])
        second = capsys.readouterr()
        assert first.out == second.out  # byte-identical report
        assert "miss" in first.err and "hit" in second.err

    def test_markdown_through_engine(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            ["lemma42", "--markdown", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# QBSS reproduction report")
        assert "L42" in out
