"""The one-call reproduction verifier."""

import pytest

from repro.analysis.verification import (
    Claim,
    _check,
    all_ok,
    render_claims,
    verify_reproduction,
)


def test_all_claims_pass_default():
    claims = verify_reproduction()
    assert all_ok(claims), render_claims(claims)
    assert len(claims) >= 12


def test_claims_pass_at_alpha_2():
    claims = verify_reproduction(alpha=2.0, n=8)
    assert all_ok(claims), render_claims(claims)


def test_check_comparisons():
    assert _check("x", "d", 1.0, 2.0, "<=").ok
    assert not _check("x", "d", 3.0, 2.0, "<=").ok
    assert _check("x", "d", 3.0, 2.0, ">=").ok
    assert not _check("x", "d", 1.0, 2.0, ">=").ok
    with pytest.raises(ValueError):
        _check("x", "d", 1.0, 2.0, "==")


def test_check_tolerates_float_slack():
    assert _check("x", "d", 2.0 + 1e-9, 2.0, "<=").ok


def test_render_claims_format():
    claims = [Claim("a", "desc", 1.0, 2.0, "<=", True)]
    out = render_claims(claims)
    assert "[PASS] a:" in out
    assert "1/1 claims verified" in out


def test_cli_verify_exits_zero(capsys):
    from repro.cli import main

    assert main(["verify", "--n", "8"]) == 0
    out = capsys.readouterr().out
    assert "claims verified" in out
    assert "FAIL" not in out


def test_claim_ids_unique():
    claims = verify_reproduction(n=6)
    ids = [c.id for c in claims]
    assert len(set(ids)) == len(ids)
