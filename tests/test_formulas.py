"""Closed-form bounds: spot values and structural relations."""

import math

import pytest

from repro.bounds import formulas
from repro.core.constants import PHI


def test_alpha_validation():
    with pytest.raises(ValueError):
        formulas.crcd_ub_energy(1.0)


def test_crcd_min_of_two_analyses():
    # at alpha = 3: min(4 phi^3, 8) = 8
    assert math.isclose(formulas.crcd_ub_energy(3.0), 8.0)
    # at alpha = 1.25 the phi analysis wins
    assert math.isclose(
        formulas.crcd_ub_energy(1.25), 2.0**0.25 * PHI**1.25
    )


def test_crp2d_and_crad_values():
    assert math.isclose(formulas.crp2d_ub_energy(2.0), (4 * PHI) ** 2)
    assert math.isclose(formulas.crad_ub_energy(2.0), (8 * PHI) ** 2)
    # CRAD pays exactly 2^alpha more than CRP2D
    for a in (1.5, 2.0, 3.0):
        assert math.isclose(
            formulas.crad_ub_energy(a) / formulas.crp2d_ub_energy(a), 2.0**a
        )


def test_avrq_is_2_alpha_times_avr():
    for a in (1.5, 2.0, 3.0):
        assert math.isclose(
            formulas.avrq_ub_energy(a), 2.0**a * formulas.avr_ub_energy(a)
        )


def test_avrq_lb_below_ub():
    for a in (2.0, 2.5, 3.0):
        assert formulas.avrq_lb_energy(a) <= formulas.avrq_ub_energy(a)


def test_bkpq_is_2phi_alpha_times_bkp():
    for a in (1.5, 2.0, 3.0):
        assert math.isclose(
            formulas.bkpq_ub_energy(a), (2 + PHI) ** a * formulas.bkp_ub_energy(a)
        )


def test_bkpq_max_speed():
    assert math.isclose(formulas.bkpq_ub_max_speed(), (2 + PHI) * math.e)


def test_avrq_m_is_2_alpha_times_avr_m():
    for a in (2.0, 3.0):
        assert math.isclose(
            formulas.avrq_m_ub_energy(a), 2.0**a * formulas.avr_m_ub_energy(a)
        )


def test_offline_lb_transitions_at_phi_dominance():
    """max{phi^a, 2^{a-1}}: phi^a dominates for small alpha."""
    # phi^a > 2^{a-1}  <=>  a < ln2 / ln(2/phi) ~ 3.27
    assert formulas.offline_lb_energy(2.0) == formulas.oracle_lb_energy(2.0)
    assert formulas.offline_lb_energy(5.0) == formulas.deterministic_lb_energy(5.0)


def test_randomized_lb_energy():
    assert math.isclose(formulas.randomized_lb_energy(3.0), 0.5 * (1 + PHI**3))


def test_all_bounds_monotone_in_alpha():
    grid = [1.5, 2.0, 2.5, 3.0, 3.5]
    for fn in (
        formulas.crcd_ub_energy,
        formulas.crp2d_ub_energy,
        formulas.crad_ub_energy,
        formulas.avrq_ub_energy,
        formulas.avrq_m_ub_energy,
        formulas.oracle_lb_energy,
        formulas.deterministic_lb_energy,
        formulas.equal_window_lb_energy,
    ):
        vals = [fn(a) for a in grid]
        assert all(x < y for x, y in zip(vals, vals[1:])), fn.__name__


def test_table1_values_complete():
    table = formulas.table1_values(3.0)
    assert set(table) == {"Oracle", "CRCD", "CRP2D", "CRAD", "AVRQ", "BKPQ", "AVRQ(m)"}
    assert table["Oracle"]["upper"] is None
    assert table["CRCD"]["upper"] == formulas.crcd_ub_energy(3.0)
    # every algorithm's UB dominates the corresponding LB
    for name, row in table.items():
        if row["lower"] is not None and row["upper"] is not None:
            assert row["upper"] >= row["lower"], name
