"""QJob and the information-hiding view protocol."""

import math

import pytest

from repro.core.qjob import QJob, QueryNotCompleted


class TestValidation:
    def test_query_cost_bounds(self):
        with pytest.raises(ValueError):
            QJob(0, 1, 0.0, 1.0, 0.5)  # c must be > 0
        with pytest.raises(ValueError):
            QJob(0, 1, 1.5, 1.0, 0.5)  # c must be <= w

    def test_true_work_bounds(self):
        with pytest.raises(ValueError):
            QJob(0, 1, 0.5, 1.0, 1.5)  # w* <= w
        with pytest.raises(ValueError):
            QJob(0, 1, 0.5, 1.0, -0.1)

    def test_window_must_be_nonempty(self):
        with pytest.raises(ValueError):
            QJob(1, 1, 0.5, 1.0, 0.5)

    def test_boundary_values_allowed(self):
        QJob(0, 1, 1.0, 1.0, 1.0)  # c == w, w* == w
        QJob(0, 1, 0.5, 1.0, 0.0)  # w* == 0


class TestDerived:
    def test_optimal_load_query_wins(self, qjob):
        # c=0.5, w=3, w*=1 -> p* = min(3, 1.5) = 1.5
        assert qjob.optimal_load == 1.5
        assert qjob.query_worthwhile

    def test_optimal_load_skip_wins(self):
        j = QJob(0, 1, 0.9, 1.0, 0.8)
        assert j.optimal_load == 1.0
        assert not j.query_worthwhile

    def test_midpoint(self, qjob):
        assert qjob.midpoint == 2.0

    def test_split_point(self, qjob):
        assert math.isclose(qjob.split_point(0.25), 1.0)
        with pytest.raises(ValueError):
            qjob.split_point(0.0)
        with pytest.raises(ValueError):
            qjob.split_point(1.0)

    def test_query_and_revealed_jobs(self, qjob):
        q = qjob.query_job(0.5)
        w = qjob.revealed_job(0.5)
        assert (q.release, q.deadline, q.work) == (0.0, 2.0, 0.5)
        assert (w.release, w.deadline, w.work) == (2.0, 4.0, 1.0)
        assert q.id.endswith(":query")
        assert w.id.endswith(":work")

    def test_clairvoyant_job(self, qjob):
        c = qjob.clairvoyant_job()
        assert (c.release, c.deadline, c.work) == (0.0, 4.0, 1.5)

    def test_upper_bound_job(self, qjob):
        u = qjob.as_upper_bound_job()
        assert u.work == 3.0


class TestViewProtocol:
    def test_view_exposes_known_attributes(self, qjob):
        v = qjob.view()
        assert v.release == 0.0
        assert v.deadline == 4.0
        assert v.query_cost == 0.5
        assert v.work_upper == 3.0

    def test_view_hides_true_work(self, qjob):
        v = qjob.view()
        assert not hasattr(v, "work_true")

    def test_reveal_returns_true_work_and_records_time(self, qjob):
        v = qjob.view()
        assert not v.queried
        assert v.reveal(2.0) == 1.0
        assert v.queried
        assert v.revealed_at == 2.0

    def test_reveal_idempotent_at_later_time(self, qjob):
        v = qjob.view()
        v.reveal(2.0)
        assert v.reveal(3.0) == 1.0
        assert v.revealed_at == 2.0  # first stamp wins

    def test_reveal_cannot_move_earlier(self, qjob):
        v = qjob.view()
        v.reveal(2.0)
        with pytest.raises(QueryNotCompleted):
            v.reveal(1.0)

    def test_reveal_rejects_times_outside_window(self, qjob):
        v = qjob.view()
        with pytest.raises(QueryNotCompleted):
            v.reveal(0.0)  # at/before release
        with pytest.raises(QueryNotCompleted):
            v.reveal(5.0)  # after deadline

    def test_views_are_independent(self, qjob):
        v1, v2 = qjob.view(), qjob.view()
        v1.reveal(2.0)
        assert not v2.queried
