"""Discrete speed levels (DVFS)."""

import math

import pytest

from repro.core.edf import run_edf
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.core.profile import Segment, SpeedProfile
from repro.speed_scaling.discrete import (
    SpeedLadder,
    discretization_penalty,
    discretize_profile,
    worst_case_penalty,
)
from repro.speed_scaling.yds import yds_profile

from _testutil import random_classical_jobs


class TestLadder:
    def test_sorted_deduplicated(self):
        ladder = SpeedLadder([2.0, 1.0, 2.0, 0.5])
        assert ladder.levels == (0.5, 1.0, 2.0)

    def test_requires_positive_level(self):
        with pytest.raises(ValueError):
            SpeedLadder([0.0])
        with pytest.raises(ValueError):
            SpeedLadder([])

    def test_geometric_ladder(self):
        ladder = SpeedLadder.geometric(1.0, 8.0, 4)
        assert ladder.levels == pytest.approx((1.0, 2.0, 4.0, 8.0))
        assert SpeedLadder.geometric(3.0, 3.0, 1).levels == (3.0,)

    def test_bracket_between_levels(self):
        ladder = SpeedLadder([1.0, 2.0, 4.0])
        assert ladder.bracket(3.0) == (2.0, 4.0)
        assert ladder.bracket(1.5) == (1.0, 2.0)

    def test_bracket_exact_level(self):
        ladder = SpeedLadder([1.0, 2.0])
        assert ladder.bracket(2.0) == (2.0, 2.0)

    def test_bracket_below_lowest_idles(self):
        ladder = SpeedLadder([1.0, 2.0])
        assert ladder.bracket(0.5) == (0.0, 1.0)

    def test_bracket_above_top_rejected(self):
        with pytest.raises(ValueError):
            SpeedLadder([1.0]).bracket(2.0)


class TestDiscretize:
    def test_work_preserved_per_segment(self):
        prof = SpeedProfile([Segment(0, 2, 1.5), Segment(2, 3, 3.0)])
        ladder = SpeedLadder([1.0, 2.0, 4.0])
        disc = discretize_profile(prof, ladder)
        assert math.isclose(disc.total_work(), prof.total_work(), rel_tol=1e-9)
        assert math.isclose(disc.work_in(0, 2), prof.work_in(0, 2), rel_tol=1e-9)
        assert math.isclose(disc.work_in(2, 3), prof.work_in(2, 3), rel_tol=1e-9)

    def test_only_ladder_speeds_used(self):
        prof = SpeedProfile([Segment(0, 1, 1.7), Segment(1, 2, 0.4)])
        ladder = SpeedLadder([0.5, 1.0, 2.0])
        disc = discretize_profile(prof, ladder)
        for seg in disc:
            assert any(
                math.isclose(seg.speed, lvl, rel_tol=1e-12)
                for lvl in ladder.levels
            )

    def test_exact_level_passthrough(self):
        prof = SpeedProfile.constant(0, 1, 2.0)
        disc = discretize_profile(prof, SpeedLadder([1.0, 2.0]))
        assert disc == prof

    def test_energy_never_below_continuous(self):
        """Convexity: emulating s with two levels can only cost more."""
        prof = SpeedProfile([Segment(0, 1, 1.3), Segment(1, 3, 2.6)])
        ladder = SpeedLadder.geometric(0.5, 4.0, 4)
        assert discretization_penalty(prof, ladder, 3.0) >= 1.0 - 1e-12

    def test_discretized_yds_still_edf_feasible(self, rng):
        """Window-aligned work preservation keeps EDF feasibility."""
        jobs = random_classical_jobs(rng, 10)
        prof = yds_profile(jobs)
        ladder = SpeedLadder.geometric(
            prof.max_speed() / 16, prof.max_speed(), 6
        )
        disc = discretize_profile(prof, ladder)
        assert run_edf(jobs, disc).feasible

    def test_penalty_shrinks_with_more_levels(self, rng):
        jobs = random_classical_jobs(rng, 8)
        prof = yds_profile(jobs)
        top = prof.max_speed()
        p_few = discretization_penalty(
            prof, SpeedLadder.geometric(top / 8, top, 3), 3.0
        )
        p_many = discretization_penalty(
            prof, SpeedLadder.geometric(top / 8, top, 12), 3.0
        )
        assert p_many <= p_few + 1e-9

    def test_penalty_bounded_by_worst_case(self, rng):
        jobs = random_classical_jobs(rng, 8)
        prof = yds_profile(jobs)
        top = prof.max_speed()
        count = 5
        ladder = SpeedLadder.geometric(top / 16, top, count)
        q = (16.0) ** (1.0 / (count - 1))
        measured = discretization_penalty(prof, ladder, 3.0)
        # segments below the lowest level pay the idle bracket instead, so
        # only assert the rung bound when every speed is inside the ladder
        if all(seg.speed >= ladder.levels[0] for seg in prof):
            assert measured <= worst_case_penalty(q, 3.0) * (1 + 1e-9)


class TestWorstCase:
    def test_limits(self):
        # tight rungs: penalty -> 1
        assert worst_case_penalty(1.0001, 3.0) < 1.001
        # coarse rungs hurt more
        assert worst_case_penalty(4.0, 3.0) > worst_case_penalty(2.0, 3.0)

    def test_alpha_monotonicity(self):
        assert worst_case_penalty(2.0, 3.0) > worst_case_penalty(2.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_penalty(1.0, 3.0)
        with pytest.raises(ValueError):
            worst_case_penalty(2.0, 1.0)

    def test_endpoints_are_penalty_free(self):
        """theta in {0, 1} runs exactly at a level: ratio 1."""
        q, alpha = 2.0, 3.0
        assert worst_case_penalty(q, alpha) >= 1.0
