"""Property-based tests for the YDS timeline compressor.

The compressed-coordinate machinery is the subtlest part of YDS; these
properties pin the invariants docs/design_notes.md documents.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.speed_scaling.yds import TimelineCompressor


@st.composite
def cut_lists(draw, max_cuts=4):
    """Disjoint, sorted cut intervals inside [0, 20]."""
    n = draw(st.integers(min_value=0, max_value=max_cuts))
    cuts = []
    t = 0.0
    for _ in range(n):
        gap = draw(st.floats(min_value=0.1, max_value=3.0))
        length = draw(st.floats(min_value=0.1, max_value=3.0))
        cuts.append((t + gap, t + gap + length))
        t = t + gap + length
    return cuts


@given(cut_lists(), st.floats(min_value=0.0, max_value=40.0))
def test_compress_monotone(cuts, t):
    c = TimelineCompressor(0.0)
    c.cut(cuts)
    t2 = t + 1.0
    assert c.compress(t) <= c.compress(t2) + 1e-12


@given(cut_lists(), st.floats(min_value=0.0, max_value=40.0))
def test_compress_bounded_by_identity(cuts, t):
    c = TimelineCompressor(0.0)
    c.cut(cuts)
    assert c.compress(t) <= t + 1e-12


@given(cut_lists())
def test_compress_constant_inside_cuts(cuts):
    c = TimelineCompressor(0.0)
    c.cut(cuts)
    for a, b in cuts:
        assert math.isclose(c.compress(a), c.compress(b), abs_tol=1e-12)
        mid = 0.5 * (a + b)
        assert math.isclose(c.compress(mid), c.compress(a), abs_tol=1e-12)


@given(
    cut_lists(),
    st.floats(min_value=0.0, max_value=15.0),
    st.floats(min_value=0.05, max_value=10.0),
)
def test_expand_measure_preserved(cuts, c1, length):
    """The original image of a compressed interval has the same measure."""
    c = TimelineCompressor(0.0)
    c.cut(cuts)
    total_uncut = 40.0 - sum(b - a for a, b in cuts)
    assume(c1 + length <= total_uncut)
    pieces = c.expand_interval(c1, c1 + length)
    assert math.isclose(
        sum(b - a for a, b in pieces), length, rel_tol=1e-9, abs_tol=1e-9
    )


@given(
    cut_lists(),
    st.floats(min_value=0.0, max_value=15.0),
    st.floats(min_value=0.05, max_value=10.0),
)
def test_expand_avoids_cuts(cuts, c1, length):
    c = TimelineCompressor(0.0)
    c.cut(cuts)
    for lo, hi in c.expand_interval(c1, c1 + length):
        mid = 0.5 * (lo + hi)
        for a, b in cuts:
            assert not (a + 1e-12 < mid < b - 1e-12)


@given(
    cut_lists(),
    st.floats(min_value=0.0, max_value=15.0),
    st.floats(min_value=0.05, max_value=10.0),
)
def test_expand_compress_roundtrip(cuts, c1, length):
    """Compressing any point of the expanded image lands back inside."""
    c = TimelineCompressor(0.0)
    c.cut(cuts)
    for lo, hi in c.expand_interval(c1, c1 + length):
        mid = 0.5 * (lo + hi)
        comp = c.compress(mid)
        assert c1 - 1e-9 <= comp <= c1 + length + 1e-9


@given(cut_lists(), cut_lists())
def test_cut_merging_keeps_disjoint_sorted(cuts_a, cuts_b):
    c = TimelineCompressor(0.0)
    c.cut(cuts_a)
    c.cut(cuts_b)
    merged = c.cuts
    for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
        assert b1 < a2 + 1e-12
        assert a1 < b1 and a2 < b2
