"""Cache pruning: eviction order, age/size criteria, and the CLI spec."""

import os

import pytest

from repro.engine import ResultCache, parse_prune_spec
from repro.engine.cache import PruneStats


def _fill(cache, n, base_time=1_000_000.0, spacing=1000.0):
    """Write n entries whose mtimes increase with the key index."""
    paths = []
    for i in range(n):
        key = f"{i:02x}" + "ab" * 31  # 64 hex chars, distinct buckets
        cache.put(key, f"exp{i}", {"i": i}, {"payload": "x" * 50 * (i + 1)}, 0.0)
        path = cache.path_for(key)
        stamp = base_time + i * spacing
        os.utime(path, (stamp, stamp))
        paths.append(path)
    return paths


def test_entries_are_oldest_first(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 4)
    listed = [p for p, _, _ in cache.entries()]
    assert listed == paths
    assert cache.total_bytes() == sum(s for _, _, s in cache.entries())


def test_prune_by_age(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 4, base_time=0.0, spacing=86400.0)  # one per day
    now = 86400.0 * 10
    # entries 0 and 1 are >= 8.5 days old relative to `now`
    stats = cache.prune(max_age_days=8.5, now=now)
    assert stats == PruneStats(
        scanned=4, removed=2, kept=2, freed_bytes=stats.freed_bytes
    )
    assert stats.freed_bytes > 0
    assert not paths[0].exists() and not paths[1].exists()
    assert paths[2].exists() and paths[3].exists()


def test_prune_by_size_evicts_oldest_first(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 5)
    sizes = {p: p.stat().st_size for p in paths}
    budget = sizes[paths[3]] + sizes[paths[4]]  # room for the newest two
    stats = cache.prune(max_bytes=budget)
    assert stats.removed == 3
    assert [p.exists() for p in paths] == [False, False, False, True, True]
    assert cache.total_bytes() <= budget


def test_prune_age_then_size(tmp_path):
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 4, base_time=0.0, spacing=86400.0)
    stats = cache.prune(max_age_days=2.5, max_bytes=0, now=86400.0 * 4)
    # age removes 0 and 1; the zero-byte budget then removes the survivors
    assert stats.removed == 4
    assert all(not p.exists() for p in paths)
    assert len(cache) == 0


def test_prune_noop_when_within_limits(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 3)
    stats = cache.prune(max_age_days=1, max_bytes=10**9, now=1_000_000.0 + 5000)
    assert stats.removed == 0
    assert stats.kept == 3
    assert stats.freed_bytes == 0


def test_prune_on_missing_root(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    stats = cache.prune(max_age_days=1)
    assert stats == PruneStats(scanned=0, removed=0, kept=0, freed_bytes=0)


def test_prune_mtime_order_beats_insertion_order(tmp_path):
    """Eviction follows mtime, not the order entries were written."""
    cache = ResultCache(tmp_path)
    paths = _fill(cache, 3)
    # make the *first-written* entry the freshest
    os.utime(paths[0], (9_999_999.0, 9_999_999.0))
    cache.prune(max_bytes=paths[0].stat().st_size)
    assert paths[0].exists()
    assert not paths[1].exists() and not paths[2].exists()


# -- orphaned temp files (interrupted put) ------------------------------------------


def _plant_orphan(cache, name="deadbeef.tmp12345", age=None, now=1_000_000.0):
    """A stranded ``<digest>.tmp<pid>`` as left by a put that died before
    its atomic rename."""
    bucket = cache.root / "de"
    bucket.mkdir(parents=True, exist_ok=True)
    orphan = bucket / name
    orphan.write_text("{" + "x" * 100)  # truncated mid-write
    if age is not None:
        os.utime(orphan, (now - age, now - age))
    return orphan


def test_prune_sweeps_stale_orphan_tmp_files(tmp_path):
    """Regression: orphans are invisible to entries()/glob('*/*.json'), so
    prune used to leave them accumulating outside any size budget."""
    cache = ResultCache(tmp_path)
    _fill(cache, 2)
    now = 1_000_000.0 + 5000
    orphan = _plant_orphan(cache, age=3600.0, now=now)
    orphan_size = orphan.stat().st_size
    assert all(p != orphan for p, _, _ in cache.entries())  # still invisible
    stats = cache.prune(max_age_days=365, now=now)
    assert not orphan.exists()
    assert stats.orphans_removed == 1
    assert stats.removed == 0  # orphans are not cache entries
    assert stats.freed_bytes == orphan_size
    assert len(cache) == 2  # live entries untouched


def test_prune_spares_fresh_tmp_files(tmp_path):
    """A temp file younger than the grace window may be a live concurrent
    write; prune must leave it alone."""
    cache = ResultCache(tmp_path)
    now = 1_000_000.0
    fresh = _plant_orphan(cache, age=10.0, now=now)
    stats = cache.prune(max_age_days=365, now=now)
    assert fresh.exists()
    assert stats.orphans_removed == 0


def test_clear_removes_orphans_unconditionally(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 2)
    _plant_orphan(cache)  # fresh: clear still removes it
    assert cache.clear() == 3
    assert len(cache) == 0
    assert list(cache.root.glob("*/*.tmp*")) == []


def test_quarantined_tmp_files_not_swept(tmp_path):
    """The quarantine directory is evidence; sweeps never reach into it."""
    cache = ResultCache(tmp_path)
    qdir = cache.quarantine_dir
    qdir.mkdir(parents=True)
    kept = qdir / "old.tmp99"
    kept.write_text("evidence")
    os.utime(kept, (0.0, 0.0))
    cache.prune(max_age_days=365, now=1_000_000.0)
    cache.clear()
    assert kept.exists()


# -- spec grammar -------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec,expected",
    [
        ("30d", (30.0, None)),
        ("12h", (0.5, None)),
        ("1.5days", (1.5, None)),
        ("36hours", (1.5, None)),
        ("500mb", (None, 500 * 10**6)),
        ("2gb", (None, 2 * 10**9)),
        ("1048576", (None, 1048576)),
        ("64kb", (None, 64000)),
        ("7d,1gb", (7.0, 10**9)),
        ("1gb, 7d", (7.0, 10**9)),
    ],
)
def test_parse_prune_spec(spec, expected):
    assert parse_prune_spec(spec) == expected


@pytest.mark.parametrize(
    "spec", ["", ",", "soon", "3parsecs", "1d,2d", "1gb,2gb", "-5d"]
)
def test_parse_prune_spec_rejects(spec):
    with pytest.raises(ValueError):
        parse_prune_spec(spec)
