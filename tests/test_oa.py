"""OA: replanning correctness and the alpha^alpha bound."""

import math

import numpy as np
import pytest

from repro.bounds.formulas import oa_ub_energy
from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.speed_scaling.oa import oa, oa_profile
from repro.speed_scaling.yds import optimal_energy, yds_profile

from _testutil import random_classical_jobs


def test_common_release_equals_yds():
    """With a single arrival batch OA never replans: it IS the optimum."""
    jobs = [Job(0, 2, 2, "a"), Job(0, 4, 1, "b"), Job(0, 1, 1, "c")]
    assert math.isclose(
        oa_profile(jobs).energy(PowerFunction(3.0)),
        yds_profile(jobs).energy(PowerFunction(3.0)),
        rel_tol=1e-9,
    )


@pytest.mark.parametrize("seed", range(5))
def test_always_feasible(seed):
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 12)
    result = oa(jobs)
    assert result.feasible, result.unfinished
    report = check_feasible(result.schedule, Instance(jobs))
    assert report.ok, report.violations


@pytest.mark.parametrize("alpha", [2.0, 3.0])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_energy_within_alpha_alpha(alpha, seed):
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 10)
    ratio = oa_profile(jobs).energy(PowerFunction(alpha)) / optimal_energy(jobs, alpha)
    assert 1.0 - 1e-9 <= ratio <= oa_ub_energy(alpha) * (1 + 1e-9)


def test_oa_replans_on_arrival():
    """A late heavy arrival raises the speed only after it arrives."""
    jobs = [Job(0, 4, 2, "early"), Job(2, 4, 6, "late")]
    prof = oa_profile(jobs)
    assert prof.speed_at(1.0) == pytest.approx(0.5)  # plan: 2 work over (0,4]
    assert prof.speed_at(3.0) > prof.speed_at(1.0)  # replanned upward


def test_oa_never_worse_than_avr_here(rng):
    """Not a theorem in general, but holds on these random instances and
    guards against pathological regressions in the replanner."""
    from repro.speed_scaling.avr import avr_profile

    jobs = random_classical_jobs(rng, 10)
    p = PowerFunction(3.0)
    assert oa_profile(jobs).energy(p) <= avr_profile(jobs).energy(p) * 1.05


def test_empty():
    assert oa([]).profile.is_empty
