"""JSON serialization round-trips."""

import json
import math

import pytest

from repro import io as rio
from repro.core.instance import Instance, QBSSInstance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.core.profile import Segment, SpeedProfile
from repro.core.qjob import QJob
from repro.core.schedule import Schedule


@pytest.fixture
def qinstance():
    return QBSSInstance(
        [QJob(0.0, 4.0, 0.5, 3.0, 1.0, "a"), QJob(1.0, 5.0, 1.0, 2.0, 0.0, "b")],
        machines=2,
    )


def test_qbss_instance_roundtrip(tmp_path, qinstance):
    path = tmp_path / "inst.json"
    rio.save(qinstance, path)
    loaded = rio.load(path)
    assert isinstance(loaded, QBSSInstance)
    assert loaded.machines == 2
    for a, b in zip(loaded.jobs, qinstance.jobs):
        assert (a.release, a.deadline, a.query_cost, a.work_upper, a.work_true, a.id) == (
            b.release,
            b.deadline,
            b.query_cost,
            b.work_upper,
            b.work_true,
            b.id,
        )


def test_classical_instance_roundtrip(tmp_path, simple_instance):
    path = tmp_path / "classical.json"
    rio.save(simple_instance, path)
    loaded = rio.load(path)
    assert isinstance(loaded, Instance)
    assert loaded.total_work() == simple_instance.total_work()


def test_profile_roundtrip_preserves_energy(tmp_path):
    prof = SpeedProfile([Segment(0, 1, 2.0), Segment(1, 3, 0.5)])
    path = tmp_path / "prof.json"
    rio.save(prof, path)
    loaded = rio.load(path)
    p = PowerFunction(3.0)
    assert math.isclose(loaded.energy(p), prof.energy(p))
    assert loaded == prof


def test_schedule_roundtrip(tmp_path):
    s = Schedule(2)
    s.add(0, 1, 2.0, "a", 0)
    s.add(0.5, 1.5, 1.0, "b", 1)
    path = tmp_path / "sched.json"
    rio.save(s, path)
    loaded = rio.load(path)
    assert loaded.machines == 2
    assert loaded.work_by_job() == s.work_by_job()


def test_file_is_plain_versioned_json(tmp_path, qinstance):
    path = tmp_path / "inst.json"
    rio.save(qinstance, path)
    data = json.loads(path.read_text())
    assert data["version"] == rio.FORMAT_VERSION
    assert data["kind"] == "qbss"


def test_unsupported_type_rejected(tmp_path):
    with pytest.raises(TypeError):
        rio.save({"not": "supported"}, tmp_path / "x.json")


def test_wrong_kind_rejected(tmp_path, qinstance):
    path = tmp_path / "inst.json"
    rio.save(qinstance, path)
    data = json.loads(path.read_text())
    with pytest.raises(rio.FormatError):
        rio.instance_from_dict(data)  # classical loader on a qbss doc


def test_wrong_version_rejected(tmp_path, qinstance):
    path = tmp_path / "inst.json"
    rio.save(qinstance, path)
    data = json.loads(path.read_text())
    data["version"] = 99
    with pytest.raises(rio.FormatError):
        rio.qbss_instance_from_dict(data)


def test_not_a_document_rejected(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"hello": 1}')
    with pytest.raises(rio.FormatError):
        rio.load(path)


def test_roundtrip_through_algorithms(tmp_path, qinstance):
    """A saved instance replays to the identical result."""
    from repro.qbss import avrq

    path = tmp_path / "inst.json"
    rio.save(qinstance.with_machines(1), path)
    loaded = rio.load(path)
    p = PowerFunction(3.0)
    assert math.isclose(
        avrq(loaded).energy(p), avrq(qinstance.with_machines(1)).energy(p)
    )
