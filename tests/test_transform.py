"""Derived-instance transformations (I*, I', I'_1/2, online derivation)."""

import math

import pytest

from repro.core.constants import PHI
from repro.core.instance import QBSSInstance
from repro.core.qjob import QJob
from repro.qbss.policies import AlwaysQuery, EqualWindowSplit, FixedSplit, NeverQuery
from repro.qbss.transform import (
    derive_online,
    instance_prime,
    instance_prime_half,
    instance_star,
    partition_golden,
)


@pytest.fixture
def qi():
    return QBSSInstance(
        [
            QJob(0.0, 4.0, 0.5, 3.0, 1.0, "cheap"),  # c << w: queried by golden
            QJob(0.0, 4.0, 2.5, 3.0, 2.0, "dear"),  # c > w/phi: not queried
        ]
    )


def queried_by_golden(j):
    return j.query_cost <= j.work_upper / PHI


class TestAnalysisInstances:
    def test_star_loads(self, qi):
        star = instance_star(qi)
        works = sorted(j.work for j in star.jobs)
        # cheap: min(3, 1.5) = 1.5 ; dear: min(3, 4.5) = 3
        assert works == [1.5, 3.0]

    def test_prime_splits_queried_jobs(self, qi):
        prime = instance_prime(qi, queried_by_golden)
        by_id = {j.id: j for j in prime.jobs}
        assert set(by_id) == {"cheap:q", "cheap:w", "dear:full"}
        assert by_id["cheap:q"].work == 0.5
        assert by_id["cheap:w"].work == 1.0
        assert by_id["dear:full"].work == 3.0
        # windows unchanged in I'
        assert by_id["cheap:q"].deadline == 4.0
        assert by_id["cheap:w"].release == 0.0

    def test_prime_half_halves_windows(self, qi):
        half = instance_prime_half(qi, queried_by_golden)
        by_id = {j.id: j for j in half.jobs}
        assert by_id["cheap:q"].deadline == 2.0
        assert by_id["cheap:w"].release == 2.0
        assert by_id["cheap:w"].deadline == 4.0
        assert by_id["dear:full"].deadline == 4.0

    def test_partition_golden(self, qi):
        a_set, b_set = partition_golden(qi)
        assert [j.id for j in a_set] == ["dear"]
        assert [j.id for j in b_set] == ["cheap"]


class TestDeriveOnline:
    def test_always_query_derivation(self, qi):
        derived = derive_online(qi, AlwaysQuery(), EqualWindowSplit())
        ids = {j.id for j in derived.jobs}
        assert ids == {"cheap:query", "cheap:work", "dear:query", "dear:work"}
        # arrivals: query at release, work at midpoint
        times = {a.job.id: a.time for a in derived.stream}
        assert times["cheap:query"] == 0.0
        assert times["cheap:work"] == 2.0

    def test_never_query_derivation(self, qi):
        derived = derive_online(qi, NeverQuery(), EqualWindowSplit())
        assert {j.id for j in derived.jobs} == {"cheap:full", "dear:full"}
        assert all(not d.query for d in derived.decisions.decisions.values())

    def test_reveal_stamped_at_split_point(self, qi):
        derived = derive_online(qi, AlwaysQuery(), FixedSplit(0.25))
        for v in derived.views:
            assert v.revealed_at == pytest.approx(1.0)  # 0 + 0.25 * 4

    def test_revealed_work_is_true_load(self, qi):
        derived = derive_online(qi, AlwaysQuery(), EqualWindowSplit())
        works = {j.id: j.work for j in derived.jobs}
        assert works["cheap:work"] == 1.0
        assert works["dear:work"] == 2.0

    def test_decision_log_matches_policy(self, qi):
        from repro.qbss.policies import golden_ratio_policy

        derived = derive_online(qi, golden_ratio_policy(), EqualWindowSplit())
        assert derived.decisions["cheap"].query
        assert not derived.decisions["dear"].query

    def test_derived_instance_roundtrip(self, qi):
        derived = derive_online(qi, AlwaysQuery(), EqualWindowSplit())
        inst = derived.instance()
        assert len(inst) == 4
