"""Classical Job semantics."""

import math

import pytest

from repro.core.job import Job


def test_rejects_empty_window():
    with pytest.raises(ValueError):
        Job(1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        Job(2.0, 1.0, 1.0)


def test_rejects_negative_work():
    with pytest.raises(ValueError):
        Job(0.0, 1.0, -0.1)


def test_zero_work_allowed():
    # w* = 0 after a query is a legitimate outcome
    j = Job(0.0, 1.0, 0.0)
    assert j.work == 0.0
    assert j.density == 0.0


def test_density():
    assert math.isclose(Job(1.0, 3.0, 4.0).density, 2.0)


def test_span():
    assert Job(0.5, 2.5, 1.0).span == 2.0


def test_active_interval_half_open():
    j = Job(1.0, 2.0, 1.0)
    assert not j.active_at(1.0)  # open on the left
    assert j.active_at(1.5)
    assert j.active_at(2.0)  # closed on the right
    assert not j.active_at(2.1)


def test_contains_interval():
    j = Job(1.0, 3.0, 1.0)
    assert j.contains_interval(1.0, 3.0)
    assert j.contains_interval(1.5, 2.0)
    assert not j.contains_interval(0.5, 2.0)
    assert not j.contains_interval(2.0, 3.5)


def test_auto_ids_unique():
    a, b = Job(0, 1, 1), Job(0, 1, 1)
    assert a.id != b.id


def test_with_work_keeps_window_and_suffixes_id():
    j = Job(0.0, 2.0, 3.0, "x")
    k = j.with_work(1.0, ":half")
    assert (k.release, k.deadline, k.work, k.id) == (0.0, 2.0, 1.0, "x:half")


def test_frozen():
    j = Job(0, 1, 1)
    with pytest.raises(Exception):
        j.work = 5.0
