"""AVRQ(m): Theorem 6.3's per-machine bound and Corollary 6.4."""

import math

import pytest

from repro.bounds.formulas import avrq_m_ub_energy
from repro.core.power import PowerFunction
from repro.qbss.clairvoyant import clairvoyant
from repro.qbss.multi import avrq_m
from repro.speed_scaling.multi.avr_m import avr_m
from repro.workloads.generators import multi_machine_instance, online_instance


@pytest.mark.parametrize("m", [2, 4])
@pytest.mark.parametrize("seed", [0, 1])
def test_schedule_feasible(m, seed):
    qi = multi_machine_instance(10, m, seed=seed)
    result = avrq_m(qi)
    report = result.validate()
    assert report.ok, report.violations


@pytest.mark.parametrize("m", [2, 3])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_theorem_63_per_machine_pointwise(m, seed):
    """s_i^{AVRQ(m)}(t) <= 2 s_i^{AVR*(m)}(t) for every machine i and time t."""
    qi = multi_machine_instance(8, m, seed=seed)
    result = avrq_m(qi)
    star = avr_m([j.clairvoyant_job() for j in qi], m)
    pts = set()
    for p in result.profiles + star.profiles:
        pts.update(p.breakpoints())
    pts = sorted(pts)
    for i in range(m):
        for a, b in zip(pts, pts[1:]):
            mid = 0.5 * (a + b)
            assert result.profiles[i].speed_at(mid) <= 2.0 * star.profiles[
                i
            ].speed_at(mid) + 1e-9


@pytest.mark.parametrize("m", [2, 4])
def test_corollary_64_energy_vs_exact_optimum(m):
    """Small instance so the convex optimum is computable exactly."""
    qi = multi_machine_instance(5, m, seed=7)
    result = avrq_m(qi)
    opt = clairvoyant(qi, alpha=3.0, exact_multi=True).energy_value
    assert result.energy(PowerFunction(3.0)) <= avrq_m_ub_energy(3.0) * opt * (
        1 + 1e-6
    )


def test_m1_matches_avrq():
    from repro.qbss.avrq import avrq

    qi = online_instance(8, seed=2)
    p = PowerFunction(3.0)
    assert math.isclose(avrq_m(qi).energy(p), avrq(qi).energy(p), rel_tol=1e-9)


def test_queries_all_jobs():
    qi = multi_machine_instance(6, 2, seed=1)
    result = avrq_m(qi)
    assert all(d.query for d in result.decisions.decisions.values())


def test_algorithm_name_includes_machines():
    qi = multi_machine_instance(4, 3, seed=0)
    assert avrq_m(qi).algorithm == "AVRQ(3)"
