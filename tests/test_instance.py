"""Instance and QBSSInstance containers."""

import pytest

from repro.core.instance import Instance, QBSSInstance
from repro.core.job import Job
from repro.core.qjob import QJob


class TestInstance:
    def test_unique_ids_required(self):
        with pytest.raises(ValueError):
            Instance([Job(0, 1, 1, "x"), Job(0, 2, 1, "x")])

    def test_machines_validated(self):
        with pytest.raises(ValueError):
            Instance([], machines=0)

    def test_span(self, simple_instance):
        assert simple_instance.span == (0.0, 3.0)

    def test_span_empty(self):
        assert Instance([]).span == (0.0, 0.0)

    def test_total_work(self, simple_instance):
        assert simple_instance.total_work() == 7.0

    def test_breakpoints(self, simple_instance):
        assert simple_instance.breakpoints() == [0.0, 1.0, 1.5, 2.0, 3.0]

    def test_active_jobs(self, simple_instance):
        ids = {j.id for j in simple_instance.active_jobs(1.0)}
        assert ids == {"a", "b"}  # c starts at 1.5; a is active at its deadline

    def test_jobs_within(self, simple_instance):
        ids = {j.id for j in simple_instance.jobs_within(0.0, 2.0)}
        assert ids == {"a", "b"}

    def test_with_machines(self, simple_instance):
        assert simple_instance.with_machines(4).machines == 4


class TestQBSSInstance:
    def test_structure_flags_common_everything(self):
        qi = QBSSInstance([QJob(0, 8, 1, 2, 1, "a"), QJob(0, 8, 1, 3, 0, "b")])
        assert qi.common_release and qi.common_deadline
        assert qi.power_of_two_deadlines  # 8 == 2^3

    def test_structure_flags_mixed(self):
        qi = QBSSInstance([QJob(0, 3, 1, 2, 1, "a"), QJob(1, 8, 1, 3, 0, "b")])
        assert not qi.common_release
        assert not qi.common_deadline
        assert not qi.power_of_two_deadlines  # 3 is not a power of two

    def test_power_of_two_accepts_fractional_powers(self):
        qi = QBSSInstance([QJob(0, 0.5, 0.1, 1, 0, "a")])
        assert qi.power_of_two_deadlines  # 2^-1

    def test_clairvoyant_instance_loads(self, common_window_qinstance):
        star = common_window_qinstance.clairvoyant_instance()
        loads = {j.id.rsplit(":", 1)[0]: j.work for j in star.jobs}
        # p* = min(w, c + w*)
        assert loads["j0"] == 3.0  # min(4, 1+2)
        assert loads["j1"] == 4.0  # min(4, 3+4)
        assert loads["j2"] == 0.7  # min(5, 0.5+0.2)
        assert loads["j3"] == 2.5  # min(2.5, 2+1) = 2.5 (tie -> w)

    def test_upper_bound_instance(self, common_window_qinstance):
        ub = common_window_qinstance.upper_bound_instance()
        assert sorted(j.work for j in ub.jobs) == [2.5, 4.0, 4.0, 5.0]

    def test_views_fresh_each_call(self, common_window_qinstance):
        v1 = common_window_qinstance.views()
        v1[0].reveal(4.0)
        v2 = common_window_qinstance.views()
        assert not v2[0].queried

    def test_rounded_down_deadlines(self):
        qi = QBSSInstance([QJob(0, 5.5, 1, 2, 1, "a"), QJob(0, 4.0, 1, 2, 0, "b")])
        rounded = qi.rounded_down_deadlines()
        by_id = {j.id: j.deadline for j in rounded}
        assert by_id == {"a": 4.0, "b": 4.0}
        assert rounded.power_of_two_deadlines

    def test_rounding_preserves_other_fields(self):
        qi = QBSSInstance([QJob(0, 5.5, 1.0, 2.0, 1.5, "a")])
        j = qi.rounded_down_deadlines().jobs[0]
        assert (j.query_cost, j.work_upper, j.work_true) == (1.0, 2.0, 1.5)
