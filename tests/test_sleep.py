"""Static power, critical speed and race-to-idle."""

import math

import pytest

from repro.core.edf import run_edf
from repro.core.profile import Segment, SpeedProfile
from repro.speed_scaling.sleep import (
    SleepSavings,
    StaticPowerModel,
    evaluate_race_to_idle,
    profile_energy_always_awake,
    profile_energy_with_sleep,
    race_to_idle,
)
from repro.speed_scaling.yds import yds_profile

from _testutil import random_classical_jobs


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StaticPowerModel(1.0, 1.0)
        with pytest.raises(ValueError):
            StaticPowerModel(3.0, -1.0)

    def test_critical_speed_closed_form(self):
        model = StaticPowerModel(3.0, 2.0)
        assert math.isclose(model.critical_speed, 1.0)  # (2/2)^(1/3)
        assert StaticPowerModel(3.0, 0.0).critical_speed == 0.0

    def test_critical_speed_minimises_energy_per_work(self):
        model = StaticPowerModel(2.5, 1.7)
        sc = model.critical_speed
        for s in (0.5 * sc, 0.9 * sc, 1.1 * sc, 2 * sc):
            assert model.energy_per_work(sc) <= model.energy_per_work(s) + 1e-12

    def test_awake_power(self):
        model = StaticPowerModel(3.0, 0.5)
        assert model.awake_power(2.0) == 8.5


class TestRaceToIdle:
    def test_subcritical_segment_compressed(self):
        model = StaticPowerModel(3.0, 2.0)  # s_crit = 1
        prof = SpeedProfile.constant(0, 4, 0.5)  # work 2 at half speed
        reshaped = race_to_idle(prof, model)
        assert math.isclose(reshaped.total_work(), 2.0, rel_tol=1e-9)
        assert math.isclose(reshaped.max_speed(), 1.0)
        assert math.isclose(reshaped.end, 2.0)  # busy for work/s_crit

    def test_supercritical_untouched(self):
        model = StaticPowerModel(3.0, 2.0)
        prof = SpeedProfile.constant(0, 2, 3.0)
        assert race_to_idle(prof, model) == prof

    def test_work_preserved_per_segment(self):
        model = StaticPowerModel(3.0, 8.0)
        prof = SpeedProfile([Segment(0, 2, 0.5), Segment(2, 3, 4.0)])
        reshaped = race_to_idle(prof, model)
        assert math.isclose(reshaped.work_in(0, 2), 1.0, rel_tol=1e-9)
        assert math.isclose(reshaped.work_in(2, 3), 4.0, rel_tol=1e-9)

    def test_feasibility_preserved_for_yds(self, rng):
        jobs = random_classical_jobs(rng, 8)
        prof = yds_profile(jobs)
        model = StaticPowerModel(3.0, prof.max_speed() ** 3)  # high leakage
        reshaped = race_to_idle(prof, model)
        assert run_edf(jobs, reshaped).feasible


class TestEnergyAccounting:
    def test_always_awake_includes_idle_static(self):
        model = StaticPowerModel(3.0, 1.0)
        prof = SpeedProfile([Segment(0, 1, 1.0), Segment(3, 4, 1.0)])
        # dynamic 2 x 1, static over the whole [0, 4] span
        assert math.isclose(
            profile_energy_always_awake(prof, model), 2.0 + 4.0
        )

    def test_with_sleep_only_busy_time(self):
        model = StaticPowerModel(3.0, 1.0)
        prof = SpeedProfile([Segment(0, 1, 1.0), Segment(3, 4, 1.0)])
        assert math.isclose(profile_energy_with_sleep(prof, model), 2.0 + 2.0)

    def test_wake_cost_counted_per_awake_period(self):
        model = StaticPowerModel(3.0, 0.0, wake_cost=5.0)
        prof = SpeedProfile([Segment(0, 1, 1.0), Segment(3, 4, 1.0)])
        assert math.isclose(
            profile_energy_with_sleep(prof, model), 2.0 + 2 * 5.0
        )

    def test_empty_profile(self):
        model = StaticPowerModel(3.0, 1.0)
        assert profile_energy_always_awake(SpeedProfile(), model) == 0.0
        assert profile_energy_with_sleep(SpeedProfile(), model) == 0.0


class TestSavings:
    def test_race_to_idle_always_helps_with_leakage(self, rng):
        jobs = random_classical_jobs(rng, 8)
        prof = yds_profile(jobs)
        model = StaticPowerModel(3.0, 1.0)
        savings = evaluate_race_to_idle(prof, model)
        assert savings.savings_ratio >= 1.0 - 1e-9

    def test_savings_grow_with_leakage(self, rng):
        jobs = random_classical_jobs(rng, 8)
        prof = yds_profile(jobs)
        low = evaluate_race_to_idle(prof, StaticPowerModel(3.0, 0.1))
        high = evaluate_race_to_idle(prof, StaticPowerModel(3.0, 10.0))
        assert high.savings_ratio >= low.savings_ratio - 1e-9

    def test_zero_leakage_no_op(self, rng):
        jobs = random_classical_jobs(rng, 6)
        prof = yds_profile(jobs)
        savings = evaluate_race_to_idle(prof, StaticPowerModel(3.0, 0.0))
        assert math.isclose(savings.savings_ratio, 1.0, rel_tol=1e-9)
