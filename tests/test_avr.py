"""AVR: density-sum profile, feasibility, competitiveness, causality."""

import math

import numpy as np
import pytest

from repro.bounds.formulas import avr_ub_energy
from repro.core.feasibility import check_feasible
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.power import PowerFunction
from repro.speed_scaling.avr import avr, avr_profile, avr_profile_online_replay
from repro.speed_scaling.yds import optimal_energy

from _testutil import random_classical_jobs


def test_profile_is_sum_of_densities(simple_jobs):
    prof = avr_profile(simple_jobs)
    # at t = 0.5: jobs a (density 2) and b (density 0.5)
    assert math.isclose(prof.speed_at(0.5), 2.5)
    # at t = 1.7: b (0.5) and c (4/1.5)
    assert math.isclose(prof.speed_at(1.7), 0.5 + 4.0 / 1.5)
    # outside all windows
    assert prof.speed_at(5.0) == 0.0


def test_total_work_preserved(simple_jobs):
    assert math.isclose(avr_profile(simple_jobs).total_work(), 7.0)


@pytest.mark.parametrize("seed", range(5))
def test_always_feasible(seed):
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 15)
    result = avr(jobs)
    assert result.feasible, result.edf.unfinished
    report = check_feasible(result.schedule, Instance(jobs))
    assert report.ok, report.violations


@pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_energy_within_paper_bound(alpha, seed):
    """AVR <= 2^{a-1} a^a x OPT (only asserted for a >= 2 where proven)."""
    rng = np.random.default_rng(seed)
    jobs = random_classical_jobs(rng, 10)
    ratio = avr_profile(jobs).energy(PowerFunction(alpha)) / optimal_energy(jobs, alpha)
    assert ratio >= 1.0 - 1e-9
    if alpha >= 2.0:
        assert ratio <= avr_ub_energy(alpha) * (1 + 1e-9)


def test_single_job_is_optimal():
    jobs = [Job(0, 2, 4, "a")]
    assert math.isclose(
        avr_profile(jobs).energy(PowerFunction(3.0)), optimal_energy(jobs, 3.0)
    )


def test_online_replay_causality(rng):
    """The profile before the next arrival never depends on future jobs."""
    jobs = sorted(random_classical_jobs(rng, 8), key=lambda j: j.release)
    prefixes = avr_profile_online_replay(jobs)
    full = avr_profile(jobs)
    for i, prefix in enumerate(prefixes):
        upto = jobs[i + 1].release if i + 1 < len(jobs) else float("inf")
        for t in np.linspace(jobs[0].release, min(upto, jobs[-1].deadline), 7):
            if t < upto:
                assert math.isclose(
                    prefix.speed_at(t), full.speed_at(t), abs_tol=1e-9
                )
