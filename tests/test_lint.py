"""qbss-lint: fixture-based rule tests, suppression/baseline workflow,
JSON schema stability, CLI exit codes, and the live-tree meta-test.

Each rule has a checked-in bad fixture (must fire, with the right ID and
position) and a good fixture (must stay silent) under
``tests/data/lint/<rule>/{bad,good}/repro/...`` — miniature package
trees so the package-scoped rules see realistic module names.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    LintConfigError,
    all_rules,
    lint_paths,
    load_config,
)
from repro.lint.cli import main as lint_main
from repro.lint.config import discover_config
from repro.lint.engine import render_json
from repro.lint.suppress import Suppressions

FIXTURES = Path(__file__).parent / "data" / "lint"
REPO_ROOT = Path(__file__).resolve().parent.parent

RULE_IDS = [
    "QL001",
    "QL002",
    "QL003",
    "QL004",
    "QL005",
    "QL006",
    "QL007",
    "QL008",
    "QL009",
    "QL010",
    "QL011",
]


def run_fixture(rule: str, flavor: str):
    root = FIXTURES / rule.lower() / flavor
    assert root.exists(), f"missing fixture tree {root}"
    return lint_paths([root], root=root)


def write_tree(base: Path, relpath: str, code: str) -> Path:
    path = base / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


# -- per-rule fixtures --------------------------------------------------------------


@pytest.mark.parametrize("rule", RULE_IDS)
def test_bad_fixture_fires_with_position(rule):
    run = run_fixture(rule, "bad")
    hits = [f for f in run.findings if f.rule == rule]
    assert hits, f"{rule} bad fixture produced no {rule} findings: {run.findings}"
    for f in hits:
        assert f.line >= 1 and f.col >= 1
        assert f.path.endswith(".py")
        assert f.message


@pytest.mark.parametrize("rule", RULE_IDS)
def test_good_fixture_is_clean(rule):
    run = run_fixture(rule, "good")
    hits = [f for f in run.findings if f.rule == rule]
    assert hits == [], f"{rule} good fixture flagged: {hits}"


def test_ql001_flags_each_nondeterminism_source():
    run = run_fixture("QL001", "bad")
    messages = " | ".join(f.message for f in run.findings if f.rule == "QL001")
    assert "time.time" in messages
    assert "random.random" in messages
    assert "numpy.random.rand" in messages


def test_ql002_reports_both_violations():
    run = run_fixture("QL002", "bad")
    messages = [f.message for f in run.findings if f.rule == "QL002"]
    assert any("keyword-only" in m for m in messages)
    assert any("positional defaults" in m for m in messages)


def test_ql004_distinguishes_bare_and_swallowed():
    run = run_fixture("QL004", "bad")
    messages = [f.message for f in run.findings if f.rule == "QL004"]
    assert any("bare `except:`" in m for m in messages)
    assert any("without a bare `raise`" in m for m in messages)


def test_ql005_is_conservative_about_name_comparisons(tmp_path):
    # Elementwise numpy masks (name == name) must not be flagged.
    write_tree(
        tmp_path,
        "repro/analysis/stats.py",
        """
        def win_rate(c, b):
            return float((c < b).mean() + 0.5 * (c == b).mean())
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert [f for f in run.findings if f.rule == "QL005"] == []


def test_ql007_names_class_attr_and_method():
    run = run_fixture("QL007", "bad")
    messages = [f.message for f in run.findings if f.rule == "QL007"]
    assert any("Tally.count" in m and "`bump`" in m for m in messages)


def test_ql008_reports_the_cycle_path():
    run = run_fixture("QL008", "bad")
    messages = [f.message for f in run.findings if f.rule == "QL008"]
    assert len(messages) == 1
    assert "Ledger.lock_a" in messages[0] and "Ledger.lock_b" in messages[0]
    assert "deadlock" in messages[0]


def test_ql009_flags_each_blocking_shape():
    run = run_fixture("QL009", "bad")
    messages = " | ".join(f.message for f in run.findings if f.rule == "QL009")
    assert "Event.wait()" in messages
    assert "Condition.wait()" in messages
    assert "socket.accept()" in messages


def test_ql009_ignores_worker_only_threads(tmp_path):
    """The same untimed wait is fine off the main thread."""
    write_tree(
        tmp_path,
        "repro/serve/bg.py",
        """
        import threading

        def _loop(done):
            done.wait()

        def main():
            done = threading.Event()
            threading.Thread(target=_loop, args=(done,)).start()
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert [f for f in run.findings if f.rule == "QL009"] == []


def test_ql010_reports_each_resource_kind():
    run = run_fixture("QL010", "bad")
    messages = " | ".join(f.message for f in run.findings if f.rule == "QL010")
    assert "socket `conn`" in messages
    assert "file `fh`" in messages
    assert "pool `pool`" in messages


def test_ql010_is_scoped_to_serve_and_engine(tmp_path):
    """The same leak outside repro.serve/repro.engine is not flagged."""
    write_tree(
        tmp_path,
        "repro/analysis/leaky.py",
        """
        def slurp(path):
            fh = open(path, "a")
            fh.write("x")
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert [f for f in run.findings if f.rule == "QL010"] == []


def test_ql011_flags_branch_skipped_fsync():
    run = run_fixture("QL011", "bad")
    hits = [f for f in run.findings if f.rule == "QL011"]
    assert len(hits) == 2
    messages = " | ".join(f.message for f in hits)
    assert "os.replace" in messages
    assert "sendall" in messages


# -- QL003 sanctioned-env configuration ---------------------------------------------


def test_ql003cfg_bad_fires_without_config():
    """A worker reading QBSS_SERVE_BIND is flagged under the defaults."""
    root = FIXTURES / "ql003cfg" / "bad"
    run = lint_paths([root], root=root)
    hits = [f for f in run.findings if f.rule == "QL003"]
    assert len(hits) == 1
    assert "QBSS_FAULT_PLAN" in hits[0].message


def test_ql003cfg_good_sanctioned_by_discovered_config():
    """The same read is clean when .qbss-lint.json sanctions the key."""
    root = FIXTURES / "ql003cfg" / "good"
    run = lint_paths([root], root=root)
    assert [f for f in run.findings if f.rule == "QL003"] == []


def test_ql003cfg_explicit_config_overrides_discovery():
    # Lint the *bad* tree (no config file) with the good tree's config
    # passed explicitly: the finding disappears.
    root = FIXTURES / "ql003cfg" / "bad"
    config = load_config(FIXTURES / "ql003cfg" / "good" / ".qbss-lint.json")
    run = lint_paths([root], root=root, config=config)
    assert [f for f in run.findings if f.rule == "QL003"] == []


def test_lint_config_is_additive_only(tmp_path):
    """A config can extend the sanctioned set but never drop the fault hook."""
    path = tmp_path / ".qbss-lint.json"
    path.write_text('{"version": 1, "sanctioned_env": ["EXTRA_KEY"]}')
    config = load_config(path)
    assert "QBSS_FAULT_PLAN" in config.sanctioned_env_keys
    assert "EXTRA_KEY" in config.sanctioned_env_keys
    assert config.source == str(path)


@pytest.mark.parametrize(
    "body",
    [
        "[]",
        '{"version": 2, "sanctioned_env": []}',
        '{"version": 1, "sanctioned_env": "QBSS_SERVE_BIND"}',
        '{"version": 1, "sanctioned_env": [""]}',
        '{"version": 1, "sanctioned_env": [], "unknown": true}',
        "not json",
    ],
)
def test_lint_config_rejects_malformed_files(tmp_path, body):
    path = tmp_path / ".qbss-lint.json"
    path.write_text(body)
    with pytest.raises(LintConfigError):
        load_config(path)


def test_discover_config_falls_back_to_defaults(tmp_path):
    config = discover_config(tmp_path)
    assert config == LintConfig()
    assert config.source is None


def test_cli_config_flag(tmp_path, capsys):
    write_tree(
        tmp_path,
        "case/repro/engine/w.py",
        """
        import os


        def _worker(task, attempt):
            os.environ.get("QBSS_SERVE_BIND")
            return task


        def run(tasks, execute_hardened):
            return execute_hardened(tasks, worker=_worker)
        """,
    )
    tree = str(tmp_path / "case")
    config = tmp_path / "lint.json"
    config.write_text('{"version": 1, "sanctioned_env": ["QBSS_SERVE_BIND"]}')
    assert lint_main([tree, "--baseline", "none", "--config", str(config)]) == 0
    capsys.readouterr()
    assert lint_main([tree, "--baseline", "none", "--config", "none"]) == 1
    assert "QL003" in capsys.readouterr().out


def test_cli_malformed_config_is_usage_error(tmp_path, capsys):
    config = tmp_path / "lint.json"
    config.write_text('{"version": 99}')
    write_tree(tmp_path, "repro/bounds/clean.py", "X = 1\n")
    assert lint_main([str(tmp_path), "--config", str(config)]) == 2
    assert "lint-config" in capsys.readouterr().err


def test_repo_root_config_sanctions_serve_bind():
    """The checked-in .qbss-lint.json sanctions the server bind key."""
    config = discover_config(REPO_ROOT)
    assert "QBSS_SERVE_BIND" in config.sanctioned_env_keys
    assert "QBSS_FAULT_PLAN" in config.sanctioned_env_keys


# -- planted violations (acceptance criterion) --------------------------------------


def test_planted_violations_fail_with_correct_ids(tmp_path, capsys):
    scratch = write_tree(
        tmp_path,
        "repro/qbss/_scratch.py",
        """
        import os
        import random
        import time


        def bad_algo(qi, extra, alpha=2.0):
            return extra


        ALGORITHMS = {"bad": bad_algo}


        def _bad_worker(task, attempt):
            os.environ.get("HOME")
            try:
                return time.time(), random.random()
            except:
                return None


        def run(tasks, execute_hardened):
            return execute_hardened(tasks, worker=_bad_worker)
        """,
    )
    write_tree(
        tmp_path,
        "repro/bounds/_scratch.py",
        """
        def verdict(ratio):
            doc = {"kind": "qbss", "ratio": ratio}
            return ratio == 1.0 / 3.0, doc
        """,
    )
    write_tree(
        tmp_path,
        "repro/serve/_scratch.py",
        """
        import os
        import socket
        import threading


        class Gauge:
            def __init__(self):
                self._lock = threading.Lock()
                self.inner = threading.Lock()
                self.total = 0

            def bump(self):
                self.total += 1

            def swap_ab(self):
                with self._lock:
                    with self.inner:
                        pass

            def swap_ba(self):
                with self.inner:
                    with self._lock:
                        pass


        def _feed(gauge: Gauge) -> None:
            gauge.bump()


        def main():
            gauge = Gauge()
            threading.Thread(target=_feed, args=(gauge,)).start()
            gauge.bump()
            done = threading.Event()
            done.wait()
            conn = socket.create_connection(("localhost", 1))
            fh = open("journal", "a")
            fh.write("x")
            os.replace("journal", "published")
            fh.close()
            conn.recv(1)
        """,
    )
    code = lint_main([str(tmp_path), "--baseline", "none"])
    out = capsys.readouterr().out
    assert code == 1
    for rule in RULE_IDS:
        assert rule in out, f"{rule} missing from planted-violation output:\n{out}"
    # findings carry file:line:col anchors
    assert f"{scratch}".split("/")[-1].replace(".py", "") or True
    for line in out.splitlines():
        if ": QL" in line:
            location = line.split(": QL")[0]
            parts = location.rsplit(":", 2)
            assert len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit(), line


# -- suppression --------------------------------------------------------------------


def test_trailing_suppression_honored(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0  # qbss-lint: disable=QL005
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert run.findings == []
    assert [f.rule for f in run.suppressed] == ["QL005"]


def test_standalone_suppression_applies_to_next_line(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            # qbss-lint: disable=QL005
            return r == 1.0
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert run.findings == []


def test_file_wide_suppression(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        # qbss-lint: disable-file=QL005
        def verdict(r):
            return r == 1.0 and r != 2.0
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert run.findings == []
    assert len(run.suppressed) == 2


def test_suppression_of_other_rule_does_not_mask(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0  # qbss-lint: disable=QL001
        """,
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert [f.rule for f in run.findings] == ["QL005"]


def test_directive_inside_string_is_inert(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        '''
        DOC = """how to silence: # qbss-lint: disable-file=QL005"""


        def verdict(r):
            return r == 1.0
        ''',
    )
    run = lint_paths([tmp_path], root=tmp_path)
    assert [f.rule for f in run.findings] == ["QL005"]


def test_suppressions_scanner_shapes():
    supp = Suppressions.scan(
        "x = 1  # qbss-lint: disable=QL001,QL005\n"
        "# qbss-lint: disable=all\n"
        "y = 2\n"
    )
    assert supp.is_suppressed("QL001", 1)
    assert supp.is_suppressed("QL005", 1)
    assert not supp.is_suppressed("QL002", 1)
    assert supp.is_suppressed("QL002", 3)  # "all" on the next code line


# -- baseline -----------------------------------------------------------------------


def test_baseline_roundtrip_and_diffing(tmp_path):
    tree = tmp_path / "case"
    write_tree(
        tree,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    run = lint_paths([tree], root=tree)
    assert len(run.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, run.findings, justification="grandfathered")
    baseline = Baseline.load(baseline_path)
    new, old = run.partition(baseline)
    assert new == [] and len(old) == 1

    # A *different* finding in the same file is still new.
    write_tree(
        tree,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0


        def verdict2(r):
            return r != 2.5
        """,
    )
    run2 = lint_paths([tree], root=tree)
    new2, old2 = run2.partition(baseline)
    assert len(old2) == 1 and len(new2) == 1


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    tree = tmp_path / "case"
    write_tree(
        tree,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    run = lint_paths([tree], root=tree)
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, run.findings)
    write_tree(
        tree,
        "repro/bounds/v.py",
        """
        # a new leading comment shifts every line number
        # by three lines, but the offending line is unchanged
        # so the fingerprint must survive.
        def verdict(r):
            return r == 1.0
        """,
    )
    run2 = lint_paths([tree], root=tree)
    new, old = run2.partition(Baseline.load(baseline_path))
    assert new == [] and len(old) == 1


def test_malformed_baseline_is_a_usage_error(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"kind": "something_else", "version": 1}')
    write_tree(tmp_path, "repro/bounds/v.py", "x = 1\n")
    code = lint_main([str(tmp_path), "--baseline", str(bad)])
    assert code == 2
    assert "baseline" in capsys.readouterr().err


# -- JSON schema stability ----------------------------------------------------------


def test_json_report_schema_is_stable():
    run = run_fixture("QL005", "bad")
    doc = json.loads(render_json(run, run.findings, []))
    assert sorted(doc) == ["findings", "kind", "rules", "summary", "tool", "version"]
    assert doc["kind"] == "qbss_lint_report"
    assert doc["version"] == 1
    assert sorted(doc["summary"]) == ["baselined", "files", "new", "suppressed"]
    for finding in doc["findings"]:
        assert sorted(finding) == [
            "col",
            "fingerprint",
            "line",
            "message",
            "path",
            "rule",
            "severity",
            "status",
        ]
        assert finding["status"] in ("new", "baselined", "suppressed")
    rule_meta = doc["rules"]["QL005"]
    assert sorted(rule_meta) == ["rationale", "severity", "title"]


def test_rule_catalog_is_complete_and_stable():
    rules = all_rules()
    assert [r.rule_id for r in rules] == RULE_IDS
    for rule in rules:
        assert rule.title and rule.rationale
        assert rule.severity in ("error", "warning")


# -- CLI ----------------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    write_tree(tmp_path, "repro/bounds/clean.py", "X = 1\n")
    assert lint_main([str(tmp_path), "--baseline", "none"]) == 0
    assert "0 new" in capsys.readouterr().out


def test_cli_exit_one_on_new_finding(tmp_path, capsys):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    assert lint_main([str(tmp_path), "--baseline", "none"]) == 1
    assert "QL005" in capsys.readouterr().out


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    baseline = tmp_path / "b.json"
    assert lint_main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_select_and_ignore(tmp_path, capsys):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    assert lint_main([str(tmp_path), "--baseline", "none", "--select", "QL001"]) == 0
    capsys.readouterr()
    assert lint_main([str(tmp_path), "--baseline", "none", "--ignore", "QL005"]) == 0
    capsys.readouterr()
    assert lint_main([str(tmp_path), "--baseline", "none", "--select", "QL999"]) == 2


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.py"), "--baseline", "none"]) == 2


def test_cli_json_output_to_file(tmp_path):
    write_tree(tmp_path, "repro/bounds/clean.py", "X = 1\n")
    out = tmp_path / "report.json"
    code = lint_main(
        [str(tmp_path), "--baseline", "none", "--format", "json", "--output", str(out)]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["kind"] == "qbss_lint_report"


def test_cli_sarif_output_schema(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    out = tmp_path / "report.sarif"
    code = lint_main(
        [str(tmp_path), "--baseline", "none", "--format", "sarif", "--output", str(out)]
    )
    assert code == 1
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    assert "sarif-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "qbss-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == RULE_IDS
    result = next(r for r in run["results"] if r["ruleId"] == "QL005")
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("v.py")
    assert location["region"]["startLine"] >= 1
    assert "qbssLintFingerprint/v1" in result["partialFingerprints"]
    assert "suppressions" not in result


def test_cli_sarif_marks_baselined_as_suppressed(tmp_path):
    write_tree(
        tmp_path,
        "repro/bounds/v.py",
        """
        def verdict(r):
            return r == 1.0
        """,
    )
    baseline = tmp_path / "b.json"
    assert lint_main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == 0
    out = tmp_path / "report.sarif"
    code = lint_main(
        [
            str(tmp_path),
            "--baseline",
            str(baseline),
            "--format",
            "sarif",
            "--output",
            str(out),
        ]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    result = next(
        r for r in doc["runs"][0]["results"] if r["ruleId"] == "QL005"
    )
    assert result["suppressions"] == [{"kind": "external"}]


def _git(tmp_path, *args):
    subprocess.run(
        ["git", *args],
        cwd=tmp_path,
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin",
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
        },
    )


def test_cli_changed_scopes_report_to_touched_files(tmp_path, monkeypatch, capsys):
    bad = """
    def verdict(r):
        return r == 1.0
    """
    write_tree(tmp_path, "repro/bounds/old.py", bad)
    write_tree(tmp_path, "repro/bounds/stale.py", bad)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    # One tracked file modified, one brand-new untracked file; stale.py
    # is untouched and must stay out of the report.
    write_tree(tmp_path, "repro/bounds/old.py", bad + "\nX = 1\n")
    write_tree(tmp_path, "repro/bounds/fresh.py", bad)
    monkeypatch.chdir(tmp_path)
    code = lint_main(["repro", "--baseline", "none", "--changed", "HEAD"])
    out = capsys.readouterr().out
    assert code == 1
    assert "old.py" in out
    assert "fresh.py" in out
    assert "stale.py" not in out


def test_cli_changed_with_bad_ref_is_usage_error(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, "repro/bounds/clean.py", "X = 1\n")
    _git(tmp_path, "init", "-q")
    monkeypatch.chdir(tmp_path)
    assert (
        lint_main(["repro", "--baseline", "none", "--changed", "no-such-ref"])
        == 2
    )


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULE_IDS:
        assert rule in out


def test_console_script_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint.cli", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "QL001" in proc.stdout


def test_syntax_error_becomes_ql000(tmp_path):
    write_tree(tmp_path, "repro/broken.py", "def oops(:\n")
    run = lint_paths([tmp_path], root=tmp_path)
    assert [f.rule for f in run.findings] == ["QL000"]


# -- live-tree meta-test (acceptance criterion) -------------------------------------


def test_live_tree_is_lint_clean_modulo_baseline():
    """`qbss-lint src/repro` has no new findings on the committed tree."""
    src = REPO_ROOT / "src" / "repro"
    baseline_path = REPO_ROOT / ".qbss-lint-baseline.json"
    run = lint_paths([src], root=REPO_ROOT)
    baseline = Baseline.load(baseline_path)
    new, baselined = run.partition(baseline)
    assert new == [], "new lint findings in the live tree:\n" + "\n".join(
        f.render() for f in new
    )
    # The baseline stays short and every entry is justified.
    assert len(baseline.entries) <= 5
    for entry in baseline.entries.values():
        assert entry.justification.strip(), f"unjustified baseline entry {entry}"


def test_live_baseline_entries_all_still_exist():
    """Baseline entries must die with the finding they grandfather."""
    src = REPO_ROOT / "src" / "repro"
    run = lint_paths([src], root=REPO_ROOT)
    live = {f.fingerprint for f in run.findings}
    baseline = Baseline.load(REPO_ROOT / ".qbss-lint-baseline.json")
    stale = set(baseline.entries) - live
    assert not stale, f"baseline entries no longer needed: {stale}"
