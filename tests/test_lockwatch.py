"""repro.lint.lockwatch: the runtime lock-order sanitizer, and the
agreement contract between the observed graph and QL008's static graph.

The two-thread cycle test is fully deterministic: the threads run to
completion one after the other (the edge *set* is what matters, not the
interleaving), so the cycle is observed without ever risking an actual
deadlock.
"""

import threading

import pytest

from repro.engine import RetryPolicy
from repro.lint import lockwatch
from repro.lint.concurrency import build_lock_graph
from repro.lint.context import LintContext, SourceModule
from repro.lint.engine import collect_files
from repro.lint.lockwatch import (
    LockOrderError,
    LockWatcher,
    find_cycles,
    new_condition,
    new_lock,
    new_rlock,
)
from repro.serve import QbssServer, ServeConfig

from test_lint import REPO_ROOT
from test_serve import job_lines


@pytest.fixture(autouse=True)
def _isolated_watcher():
    """Stash any session-level watcher (QBSS_LOCKWATCH=1) so these
    tests install their own, then restore it."""
    prior = lockwatch.active_watcher()
    if prior is not None:
        lockwatch.uninstall_watcher()
    yield
    lockwatch.uninstall_watcher()
    if prior is not None:
        lockwatch.install_watcher(prior)


# -- find_cycles (shared with QL008) ------------------------------------------------


class TestFindCycles:
    def test_acyclic_graph_has_no_cycles(self):
        assert find_cycles({("a", "b"), ("b", "c"), ("a", "c")}) == []

    def test_two_node_cycle(self):
        assert find_cycles({("a", "b"), ("b", "a")}) == [["a", "b"]]

    def test_self_edge_is_a_cycle(self):
        assert find_cycles({("a", "a"), ("a", "b")}) == [["a"]]

    def test_multiple_components_sorted(self):
        edges = {("a", "b"), ("b", "a"), ("x", "y"), ("y", "x"), ("b", "x")}
        assert find_cycles(edges) == [["a", "b"], ["x", "y"]]

    def test_long_chain_is_iterative_not_recursive(self):
        edges = {(f"n{i}", f"n{i + 1}") for i in range(5000)}
        assert find_cycles(edges) == []


# -- the factory seam ---------------------------------------------------------------


class TestSeam:
    def test_factories_return_plain_primitives_without_watcher(self):
        lock = new_lock("a")
        assert not isinstance(lock, lockwatch._WatchedLock)
        cond = new_condition("b")
        assert isinstance(cond, threading.Condition)

    def test_factories_return_watched_wrappers_with_watcher(self):
        with lockwatch.watching(LockWatcher()):
            assert isinstance(new_lock("a"), lockwatch._WatchedLock)
            assert isinstance(new_rlock("b"), lockwatch._WatchedLock)
            assert isinstance(new_condition("c"), lockwatch._WatchedCondition)

    def test_double_install_rejected(self):
        with lockwatch.watching(LockWatcher()):
            with pytest.raises(RuntimeError):
                lockwatch.install_watcher(LockWatcher())

    def test_watcher_uninstalled_after_block(self):
        with lockwatch.watching(LockWatcher()) as watcher:
            assert lockwatch.active_watcher() is watcher
        assert lockwatch.active_watcher() is None


# -- edge recording and cycle detection ---------------------------------------------


class TestWatcher:
    def test_nested_acquisition_records_edge(self):
        watcher = LockWatcher()
        with lockwatch.watching(watcher):
            a = new_lock("A")
            b = new_lock("B")
        with a:
            with b:
                pass
        assert watcher.edges() == {("A", "B")}
        assert watcher.edge_counts() == {("A", "B"): 1}
        watcher.check()  # acyclic: no error

    def test_two_thread_cycle_detected_deterministically(self):
        watcher = LockWatcher()
        with lockwatch.watching(watcher):
            a = new_lock("A")
            b = new_lock("B")

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        # Serialized: each thread runs to completion before the next
        # starts, so the cycle is observed without any real contention.
        for target in (ab, ba):
            t = threading.Thread(target=target)
            t.start()
            t.join()
        assert watcher.cycles() == [["A", "B"]]
        with pytest.raises(LockOrderError, match="A -> B -> A"):
            watcher.check()

    def test_rlock_reacquisition_is_not_a_self_edge(self):
        watcher = LockWatcher()
        with lockwatch.watching(watcher):
            r = new_rlock("R")
        with r:
            with r:
                pass
        assert watcher.edges() == set()
        watcher.check()

    def test_hold_time_violation_with_injected_clock(self):
        ticks = iter([0.0, 0.5])
        watcher = LockWatcher(max_hold_ms=100.0, clock=lambda: next(ticks))
        with lockwatch.watching(watcher):
            lock = new_lock("slow")
        with lock:
            pass
        (violation,) = watcher.hold_violations()
        assert violation[0] == "slow"
        assert violation[1] == pytest.approx(500.0)
        with pytest.raises(LockOrderError, match="held 500.0 ms"):
            watcher.check()

    def test_conditions_are_exempt_from_hold_time(self):
        ticks = iter([0.0, 9.0])
        watcher = LockWatcher(max_hold_ms=1.0, clock=lambda: next(ticks))
        with lockwatch.watching(watcher):
            cond = new_condition("C")
        with cond:
            cond.notify_all()
        assert watcher.hold_violations() == []
        watcher.check()

    def test_watched_condition_wait_notify_round_trip(self):
        watcher = LockWatcher()
        with lockwatch.watching(watcher):
            cond = new_condition("C")
        state = {"ready": False}

        def producer():
            with cond:
                state["ready"] = True
                cond.notify_all()

        t = threading.Thread(target=producer)
        with cond:
            t.start()
            assert cond.wait_for(lambda: state["ready"], timeout=5.0)
        t.join()
        watcher.check()


# -- static/dynamic agreement (acceptance criterion) --------------------------------


class TestAgreement:
    def test_observed_graph_is_subset_of_static_graph(self, tmp_path):
        """Drive the real daemon under a watcher: every observed edge
        must be predicted by QL008's static graph, and both are acyclic."""
        watcher = LockWatcher()
        with lockwatch.watching(watcher):
            server = QbssServer(
                ServeConfig(
                    shard_window=250.0,
                    seed=3,
                    cache_dir=tmp_path / "cache",
                    jobs=1,
                    retry=RetryPolicy(
                        max_attempts=2, backoff_base=0.001, backoff_cap=0.01
                    ),
                )
            )
            code, _ = server.serve_once(job_lines(12))
            server.drain()
        assert code == 0
        watcher.check()

        src = REPO_ROOT / "src" / "repro"
        modules = [
            SourceModule.parse(path, root=REPO_ROOT)
            for path in collect_files([src])
        ]
        static = build_lock_graph(LintContext(modules))
        assert static.cycles() == []
        unpredicted = watcher.edges() - static.edge_set()
        assert not unpredicted, (
            "runtime lock edges the static graph missed: "
            f"{sorted(unpredicted)}"
        )
