"""Markdown report generation and the --markdown CLI path."""

import pytest

from repro.analysis.experiments import ExperimentReport, experiment_rho
from repro.analysis.report import generate_markdown, report_to_markdown
from repro.cli import main


def test_report_to_markdown_structure():
    report = ExperimentReport(
        id="X",
        title="demo",
        headers=["a", "b"],
        rows=[[1.0, "x"], [None, True]],
        notes=["a note"],
    )
    md = report_to_markdown(report)
    lines = md.split("\n")
    assert lines[0] == "## X — demo"
    assert "| a | b |" in md
    assert "| 1.000 | x |" in md
    assert "| -- | yes |" in md
    assert "*a note*" in md


def test_generate_markdown_selected():
    md = generate_markdown(["rho"])
    assert md.startswith("# QBSS reproduction report")
    assert "## RHO" in md
    # the rho table's paper values appear
    assert "16.944" in md


def test_generate_markdown_unknown_rejected():
    with pytest.raises(KeyError):
        generate_markdown(["no-such-experiment"])


def test_generate_markdown_overrides():
    md = generate_markdown(["lemma42"], overrides={"lemma42": {"alpha": 2.0}})
    assert "alpha=2.0" in md


def test_cli_markdown_flag(capsys):
    assert main(["rho", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# QBSS reproduction report")
    assert "## RHO" in out
