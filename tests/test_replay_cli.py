"""The qbss-replay CLI and the shared --jobs/--cache-prune plumbing."""

import json
import pathlib

import pytest

from repro import io as rio
from repro.cli import main, replay_main
from repro.traces import ReplayReport

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_SWF = str(DATA / "sample.swf")
SAMPLE_CSV = str(DATA / "sample_trace.csv")


def _replay(tmp_path, *extra):
    return [
        SAMPLE_CSV,
        "--shard-window",
        "100",
        "--cache-dir",
        str(tmp_path / "cache"),
        "--jobs",
        "1",
        *extra,
    ]


def test_replay_cli_end_to_end(tmp_path, capsys):
    assert replay_main(_replay(tmp_path)) == 0
    out = capsys.readouterr()
    assert "[REPLAY]" in out.out
    assert "sample_trace.csv" in out.out
    assert "---- replay" in out.err
    assert "shards/s" in out.err


def test_replay_cli_swf_with_options(tmp_path, capsys):
    argv = [
        SAMPLE_SWF,
        "--format",
        "swf",
        "--noise-model",
        "lognormal",
        "--seed",
        "3",
        "--shard-window",
        "150",
        "--algorithms",
        "avrq",
        "--limit",
        "6",
        "--no-cache",
        "--jobs",
        "auto",
    ]
    assert replay_main(argv) == 0
    out = capsys.readouterr()
    assert "noise=lognormal" in out.out
    assert "bkpq" not in out.out


def test_replay_cli_markdown(tmp_path, capsys):
    assert replay_main(_replay(tmp_path, "--markdown")) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Trace replay")
    assert "## Summary" in out and "## Shards" in out


def test_replay_cli_output_round_trips(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    assert replay_main(_replay(tmp_path, "--output", str(out_file))) == 0
    capsys.readouterr()
    loaded = rio.load(out_file)
    assert isinstance(loaded, ReplayReport)
    assert loaded.n_jobs == 10
    # the JSON on disk is the repro.io envelope
    doc = json.loads(out_file.read_text())
    assert doc["kind"] == "trace_replay_report"


def test_replay_cli_warm_cache_identical_stdout(tmp_path, capsys):
    assert replay_main(_replay(tmp_path)) == 0
    cold = capsys.readouterr()
    assert replay_main(_replay(tmp_path)) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out  # report is deterministic across cache states
    assert "0 miss" in warm.err


def test_failed_shard_report_renders_everywhere(tmp_path, capsys):
    """Regression: ratios_for/summary_rows/render indexed s["rows"]
    unconditionally and crashed on any report whose failed shard (or
    externally produced JSON) lacks the key."""
    from repro.analysis.report import replay_report_to_markdown
    from repro.engine import FaultPlan, FaultSpec, RetryPolicy
    from repro.traces.replay import replay_jobs
    from repro.traces.records import TraceRecord
    from repro.traces.synthesize import synthesize_jobs

    records = (
        TraceRecord(
            index=i,
            id=f"t{i}",
            release=i * 2.0,
            runtime=1.0 + i % 3,
            deadline=i * 2.0 + 8.0,
        )
        for i in range(12)
    )
    plan = FaultPlan((FaultSpec(task="shard:1", kind="raise", attempt=0),))
    report, metrics = replay_jobs(
        synthesize_jobs(records, seed=0),
        algorithms=("avrq",),
        shard_window=4.0,
        jobs=1,
        cache=False,
        retry=RetryPolicy(max_attempts=1),
        fault_plan=plan,
    )
    assert [s["index"] for s in report.failed_shards] == [1]
    # a report loaded from foreign JSON may omit the keys entirely
    report.shards[1].pop("rows", None)
    report.shards[1].pop("n_jobs", None)
    assert report.ratios_for("avrq")  # surviving shards still counted
    assert report.summary_rows()
    rendered = report.render()
    assert "error" in rendered
    md = replay_report_to_markdown(report)
    assert "## Failed shards" in md and "shard 1" in md
    assert report.n_jobs == sum(s.get("n_jobs", 0) for s in report.shards)


def test_replay_cli_cache_prune_flag(tmp_path, capsys):
    assert replay_main(_replay(tmp_path)) == 0
    capsys.readouterr()
    assert replay_main(_replay(tmp_path, "--cache-prune", "0d")) == 0
    err = capsys.readouterr().err
    assert "cache prune: removed" in err


@pytest.mark.parametrize(
    "argv_tail",
    [
        ["--jobs", "-2"],
        ["--jobs", "many"],
        ["--shard-window", "0"],
        ["--limit", "0"],
        ["--algorithms", "crcd"],  # offline: rejected up front
        ["--algorithms", "nope"],
        ["--noise-model", "gaussian"],
        ["--cache-prune", "wat"],
    ],
)
def test_replay_cli_usage_errors(tmp_path, argv_tail):
    with pytest.raises(SystemExit) as exc:
        replay_main(_replay(tmp_path, *argv_tail))
    assert exc.value.code == 2


def test_replay_cli_missing_file(tmp_path):
    with pytest.raises(SystemExit) as exc:
        replay_main(_replay(tmp_path)[1:] + ["/no/such/trace.csv"])
    assert exc.value.code == 2


def test_replay_cli_parse_error_is_reported(tmp_path, capsys):
    bad = tmp_path / "bad.csv"
    bad.write_text("release,deadline,runtime\n0,2,-1\n")
    argv = [str(bad), "--no-cache", "--jobs", "1"]
    assert replay_main(argv) == 1
    err = capsys.readouterr().err
    assert "error:" in err
    assert f"{bad}:2:" in err  # file:line locates the bad record


def test_replay_cli_unknown_extension_needs_format(tmp_path, capsys):
    trace = tmp_path / "trace.log"
    trace.write_text("release,deadline,runtime\n0,2,1\n")
    assert replay_main([str(trace), "--no-cache", "--jobs", "1"]) == 1
    assert "--format" in capsys.readouterr().err
    assert (
        replay_main(
            [str(trace), "--format", "csv", "--no-cache", "--jobs", "1"]
        )
        == 0
    )


def test_report_cli_jobs_auto_and_zero(tmp_path, capsys):
    for jobs in ("auto", "0"):
        code = main(
            [
                "lemma42",
                "--jobs",
                jobs,
                "--no-cache",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out


def test_report_cli_standalone_cache_prune(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert replay_main(_replay(tmp_path)) == 0
    capsys.readouterr()
    # no experiment given: prune and exit 0
    assert main(["--cache-prune", "0d", "--cache-dir", cache_dir]) == 0
    err = capsys.readouterr().err
    assert "cache prune: removed" in err


def test_report_cli_bad_jobs(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["lemma42", "--jobs", "-1"])
    assert exc.value.code == 2
    assert "--jobs" in capsys.readouterr().err
