"""Executable lower-bound lemmas."""

import math

import pytest

from repro.bounds import lemmas
from repro.core.constants import PHI
from repro.core.power import PowerFunction
from repro.qbss.avrq import avrq
from repro.qbss.clairvoyant import clairvoyant


class TestLemma41:
    def test_instance_shape(self):
        qi = lemmas.lemma41_instance(0.1)
        j = qi.jobs[0]
        assert j.query_cost == j.work_true == 0.1

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            lemmas.lemma41_instance(0.6)

    def test_ratio_diverges(self):
        r1 = lemmas.lemma41_expected_ratio(0.1, 3.0, "energy")
        r2 = lemmas.lemma41_expected_ratio(0.01, 3.0, "energy")
        assert r2 > r1 > 1.0
        assert math.isclose(
            lemmas.lemma41_expected_ratio(0.1, 3.0, "max_speed"), 5.0
        )


class TestLemma42:
    def test_bounds(self):
        s, e = lemmas.lemma42_bounds(3.0)
        assert math.isclose(s, PHI)
        assert math.isclose(e, PHI**3)

    def test_instance_adversary_both_branches(self):
        """Whatever the algorithm does, the adversary's answer costs phi."""
        # algorithm queries -> adversary sets w* = w: alg = c + w = 1 + phi
        qi_q = lemmas.lemma42_instance(wstar_if_query=True)
        j = qi_q.jobs[0]
        assert math.isclose((j.query_cost + j.work_true) / j.optimal_load, PHI)
        # algorithm skips -> adversary sets w* = 0: alg = w = phi, opt = c = 1
        qi_n = lemmas.lemma42_instance(wstar_if_query=False)
        k = qi_n.jobs[0]
        assert math.isclose(k.work_upper / k.optimal_load, PHI)


class TestLemma45:
    def test_construction_reaches_3(self):
        s_lb, e_lb = lemmas.lemma45_equal_window_lower_bounds(1e-6, 3.0)
        assert s_lb >= 3.0 - 1e-3
        assert e_lb >= 9.0 - 1e-2

    def test_avrq_realises_the_bound(self):
        qi = lemmas.lemma45_instance(1e-6)
        m_speed = avrq(qi).max_speed() / clairvoyant(qi, alpha=3.0).max_speed_value
        assert m_speed >= 3.0 - 1e-3

    def test_both_jobs_queried_by_golden_rule(self):
        qi = lemmas.lemma45_instance(1e-4)
        for j in qi:
            assert j.query_cost <= j.work_upper / PHI

    def test_optimum_also_queries(self):
        """The paper's remark: the bound holds even when OPT queries both."""
        qi = lemmas.lemma45_instance(1e-4)
        k = next(j for j in qi if j.id == "L45-k")
        assert k.query_worthwhile  # c + 0 < w

    def test_energy_bound_scales_with_alpha(self):
        for alpha in (2.0, 2.5, 3.0):
            _, e_lb = lemmas.lemma45_equal_window_lower_bounds(1e-6, alpha)
            assert e_lb >= 3.0 ** (alpha - 1.0) - 1e-2


class TestLemma51Tower:
    def test_ratio_grows_with_levels(self):
        p = PowerFunction(3.0)
        ratios = []
        for k in (2, 6, 12):
            qi = lemmas.lemma51_tower_instance(k, 3.0)
            r = avrq(qi).energy(p) / clairvoyant(qi, alpha=3.0).energy_value
            ratios.append(r)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_stays_below_upper_bound(self):
        from repro.bounds.formulas import avrq_ub_energy

        qi = lemmas.lemma51_tower_instance(16, 3.0)
        r = avrq(qi).energy(PowerFunction(3.0)) / clairvoyant(qi, alpha=3.0).energy_value
        assert r <= avrq_ub_energy(3.0)

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            lemmas.lemma51_tower_instance(0, 3.0)
