"""repro — Speed Scaling with Explorable Uncertainty (QBSS).

A full reproduction of Bampis, Dogeas, Kononov, Lucarelli and Pascual,
"Speed Scaling with Explorable Uncertainty", SPAA 2021: the QBSS model, the
classical speed-scaling substrate it builds on (YDS, AVR, OA, BKP, AVR(m)),
the paper's algorithms (CRCD, CRP2D, CRAD, AVRQ, BKPQ, AVRQ(m)), its lower
bounds as executable adversarial games, and the benchmark harness that
regenerates every table and figure.

Quick start::

    from repro import QJob, QBSSInstance, PowerFunction
    from repro.qbss import bkpq, clairvoyant

    job = QJob(release=0.0, deadline=4.0, query_cost=0.5,
               work_upper=3.0, work_true=1.0)
    inst = QBSSInstance([job])
    run = bkpq(inst)
    print(run.energy(PowerFunction(3.0)),
          clairvoyant(inst, alpha=3.0).energy_value)
"""

from .core import (
    DEFAULT_ALPHA,
    EPS,
    PHI,
    Instance,
    Job,
    PowerFunction,
    QBSSInstance,
    QJob,
    Schedule,
    SpeedProfile,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_ALPHA",
    "EPS",
    "PHI",
    "Instance",
    "Job",
    "PowerFunction",
    "QBSSInstance",
    "QJob",
    "Schedule",
    "SpeedProfile",
    "__version__",
]
