"""The experiment registry: one callable per paper artifact.

Every table, figure and executable lemma of the paper has an
``experiment_*`` function here returning an :class:`ExperimentReport`
(headers + rows + notes).  The pytest benches under ``benchmarks/`` and the
``qbss-report`` CLI both render these, so the reproduction is defined in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from ..bounds import formulas, lemmas, rho
from ..bounds.adversary import (
    adversarial_ratio,
    best_deterministic_decision,
    game_value,
    optimal_value,
)
from ..core.constants import PHI
from ..core.power import PowerFunction
from ..qbss import (
    avrq,
    avrq_m,
    bkpq,
    clairvoyant,
    crad,
    crcd,
    crp2d,
    oaq,
)
from ..qbss.policies import FixedSplit, NeverQuery, ThresholdQuery
from ..qbss.randomized import solve_game
from ..qbss.transform import instance_prime, instance_prime_half, instance_star
from ..speed_scaling.yds import yds_profile
from ..workloads import generators, scenarios
from .ratios import (
    always_query_equal_window_offline,
    measure,
    measure_many,
    never_query_offline,
)
from .tables import render_table


def _jsonify(value):
    """Coerce an experiment parameter or report cell to plain JSON types.

    Floats round-trip exactly through JSON (repr-based), so a report that
    goes through ``to_dict``/``from_dict`` renders byte-identically — the
    property the engine's result cache relies on.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return str(value)


@dataclass
class ExperimentReport:
    """A rendered paper artifact."""

    id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = render_table(self.headers, self.rows, title=f"[{self.id}] {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def to_dict(self) -> dict:
        """JSON-serializable payload (cells coerced via :func:`_jsonify`)."""
        return {
            "id": self.id,
            "title": self.title,
            "headers": [str(h) for h in self.headers],
            "rows": [_jsonify(list(row)) for row in self.rows],
            "notes": [str(n) for n in self.notes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> ExperimentReport:
        """Rebuild a report from :meth:`to_dict` output (extra keys ignored)."""
        return cls(
            id=str(data["id"]),
            title=str(data["title"]),
            headers=list(data["headers"]),
            rows=[list(row) for row in data["rows"]],
            notes=list(data.get("notes", [])),
        )


def experiment_params(name: str) -> dict:
    """The declared default parameters of a registered experiment.

    Every experiment's parameters are plain JSON-serializable values
    (numbers, strings, tuples of numbers) by construction; this returns
    them resolved from the signature, in JSON form (tuples as lists).
    """
    import inspect

    fn = REGISTRY[name]
    return {
        p.name: _jsonify(p.default)
        for p in inspect.signature(fn).parameters.values()
        if p.default is not inspect.Parameter.empty
    }


def resolve_kwargs(name: str, overrides: dict | None = None):
    """Split ``overrides`` for one experiment into applicable and unused.

    Returns ``(call_kwargs, resolved, unused)``: the keyword arguments to
    actually pass, the fully-resolved JSON-form parameter dict (defaults
    merged with the applicable overrides — the engine's cache key), and the
    override names the experiment does not accept (previously these were
    silently dropped).
    """
    import inspect

    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}")
    params = inspect.signature(REGISTRY[name]).parameters
    overrides = dict(overrides or {})
    unused = sorted(k for k in overrides if k not in params)
    call_kwargs = {k: v for k, v in overrides.items() if k in params}
    resolved = experiment_params(name)
    resolved.update({k: _jsonify(v) for k, v in call_kwargs.items()})
    return call_kwargs, resolved, unused


# ----------------------------------------------------------------------------------
# T1 — Table 1
# ----------------------------------------------------------------------------------


def _measured_max(algorithm, instance_factory, alpha, seeds, **measure_kw):
    instances = [instance_factory(seed) for seed in seeds]
    summary = measure_many(algorithm, instances, alpha=alpha, **measure_kw)
    return summary


def experiment_table1(
    alpha: float = 3.0,
    n: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    machines: int = 3,
) -> ExperimentReport:
    """Regenerate Table 1: theoretical bounds + measured ratios.

    For each algorithm row the measured column is the *max* energy ratio
    over random instances of the algorithm's setting, and the adversarial
    column the ratio achieved on the paper's lower-bound construction for
    that row (played against the real implementation).
    """
    rows: list[list] = []

    # Oracle row: no algorithm — report the single-job oracle game value.
    oracle_val = _oracle_game_value(1.0, PHI, alpha, "energy")
    rows.append(
        [
            "offline",
            "Oracle",
            formulas.oracle_lb_energy(alpha),
            None,
            None,
            oracle_val,
            True,
        ]
    )

    specs = [
        (
            "offline",
            "CRCD",
            crcd,
            lambda s: generators.common_deadline_instance(n, seed=s),
            formulas.offline_lb_energy(alpha),
            formulas.crcd_ub_energy(alpha),
        ),
        (
            "offline",
            "CRP2D",
            crp2d,
            lambda s: generators.power_of_two_instance(n, seed=s),
            formulas.offline_lb_energy(alpha),
            formulas.crp2d_ub_energy(alpha),
        ),
        (
            "offline",
            "CRAD",
            crad,
            lambda s: generators.common_release_instance(n, seed=s),
            formulas.offline_lb_energy(alpha),
            formulas.crad_ub_energy(alpha),
        ),
        (
            "online",
            "AVRQ",
            avrq,
            lambda s: generators.online_instance(n, seed=s),
            formulas.avrq_lb_energy(alpha),
            formulas.avrq_ub_energy(alpha),
        ),
        (
            "online",
            "BKPQ",
            bkpq,
            lambda s: generators.online_instance(n, seed=s),
            formulas.bkpq_lb_energy(alpha),
            formulas.bkpq_ub_energy(alpha),
        ),
    ]
    adversarial: dict[str, float] = {
        "CRCD": adversarial_ratio(crcd, 1.0, 2.0, alpha, "energy").ratio,
        "CRP2D": adversarial_ratio(crp2d, 1.0, 2.0, alpha, "energy").ratio,
        "CRAD": adversarial_ratio(crad, 1.0, 2.0, alpha, "energy").ratio,
        "AVRQ": measure(
            avrq, lemmas.lemma51_tower_instance(14, alpha), alpha=alpha
        ).energy_ratio,
        "BKPQ": measure(bkpq, lemmas.lemma45_instance(1e-4), alpha=alpha).energy_ratio,
    }
    for setting, name, algo, factory, lb, ub in specs:
        summary = _measured_max(algo, factory, alpha, seeds)
        rows.append(
            [
                setting,
                name,
                lb,
                ub,
                summary.max_energy_ratio,
                adversarial[name],
                summary.max_energy_ratio <= ub * (1 + 1e-9),
            ]
        )

    # AVRQ(m): multi-machine (denominator is the pooled lower bound).
    summary_m = _measured_max(
        avrq_m,
        lambda s: generators.multi_machine_instance(n, machines, seed=s),
        alpha,
        seeds,
    )
    rows.append(
        [
            "online",
            f"AVRQ(m={machines})",
            formulas.avrq_m_lb_energy(alpha),
            formulas.avrq_m_ub_energy(alpha),
            summary_m.max_energy_ratio,
            None,
            summary_m.max_energy_ratio
            <= formulas.avrq_m_ub_energy(alpha) * (1 + 1e-9),
        ]
    )

    return ExperimentReport(
        id="T1",
        title=f"Table 1 — energy bounds vs measured ratios (alpha={alpha})",
        headers=[
            "setting",
            "algorithm",
            "paper LB",
            "paper UB",
            "measured max (random)",
            "measured (adversarial)",
            "within UB",
        ],
        rows=rows,
        notes=[
            f"random column: max over {len(seeds)} seeds x n={n} jobs per setting",
            "adversarial column: paper's lower-bound instance run against the real implementation",
            "AVRQ LB (2a)^a and AVRQ(m) bounds are asymptotic; finite instances approach them from below",
            "AVRQ(m) measured ratio uses the pooled lower bound as denominator (conservative upper estimate)",
        ],
    )


def _oracle_game_value(c: float, w: float, alpha: float, objective) -> float:
    """min over {query w/ oracle split, no-query} of max over w* (Lemma 4.2).

    In the oracle model a querying algorithm runs at the constant speed
    ``c + w*`` over the whole window; a non-querying one at ``w``; the
    optimum at ``p* = min(w, c + w*)``.
    """
    grid = np.linspace(0.0, w, 513)
    exp = alpha if objective == "energy" else 1.0
    q_worst = max(((c + ws) ** exp) / (min(w, c + ws) ** exp) for ws in grid)
    nq_worst = max((w**exp) / (min(w, c + ws) ** exp) for ws in grid)
    return min(q_worst, nq_worst)


# ----------------------------------------------------------------------------------
# RHO — the Section 4.2 table
# ----------------------------------------------------------------------------------


def experiment_rho() -> ExperimentReport:
    """Regenerate the rho table and validate CRCD against the best ratio."""
    rows = []
    for row, p1, p2, p3 in zip(
        rho.rho_table(), rho.PAPER_RHO1, rho.PAPER_RHO2, rho.PAPER_RHO3
    ):
        ok = (
            abs(row.rho1 - p1) <= 0.015 * max(1.0, p1)
            and abs(row.rho2 - p2) <= 0.015 * max(1.0, p2)
            and (row.rho3 is None or abs(row.rho3 - p3) <= 0.015 * max(1.0, p3))
        )
        rows.append(
            [
                row.alpha,
                row.rho1,
                p1,
                row.rho2,
                p2,
                row.rho3,
                p3 if p3 else None,
                rho.best_regime(row.alpha),
                ok,
            ]
        )
    return ExperimentReport(
        id="RHO",
        title="Sec. 4.2 table — CRCD energy ratios rho1/rho2/rho3",
        headers=[
            "alpha",
            "rho1",
            "paper",
            "rho2",
            "paper",
            "rho3",
            "paper",
            "best",
            "match",
        ],
        rows=rows,
        notes=[
            "paper regime claims: rho1 best for alpha<=1.44, rho2 for 1.44<alpha<2, rho3 for alpha>=2",
            "paper prints truncated decimals; match tolerance 1.5%",
        ],
    )


# ----------------------------------------------------------------------------------
# F1 — Figure 1: the I*, I', I'_1/2 transformation chain
# ----------------------------------------------------------------------------------


def experiment_figure1(
    alpha: float = 3.0, n: int = 12, seed: int = 7
) -> ExperimentReport:
    """Verify the Figure 1 instance chain and its per-step energy bounds.

    E*   = optimal energy of I*                    (Lemma 4.9's reference)
    E'   = optimal energy of I'    <= phi^alpha E*  (Lemma 4.9)
    E1/2 = optimal energy of I'_1/2 <= 2^alpha E'   (Lemma 4.10)
    E    = CRP2D's energy          <= 2^alpha E1/2  (Corollary 4.12)
    and overall E <= (4 phi)^alpha E*               (Theorem 4.13).
    """
    qi = generators.power_of_two_instance(n, seed=seed)
    power = PowerFunction(alpha)
    from ..qbss.transform import partition_golden

    _, b_set = partition_golden(qi)
    b_ids = {j.id for j in b_set}
    queried = lambda j: j.id in b_ids  # noqa: E731 - tiny predicate

    e_star = yds_profile(list(instance_star(qi).jobs)).energy(power)
    e_prime = yds_profile(list(instance_prime(qi, queried).jobs)).energy(power)
    e_half = yds_profile(list(instance_prime_half(qi, queried).jobs)).energy(power)
    e_alg = crp2d(qi).energy(power)

    rows = [
        ["E* (opt of I*)", e_star, None, None, None],
        ["E' (opt of I')", e_prime, "phi^a * E*", PHI**alpha, e_prime / e_star],
        ["E'_1/2 (opt of I'_1/2)", e_half, "2^a * E'", 2.0**alpha, e_half / e_prime],
        ["E (CRP2D)", e_alg, "2^a * E'_1/2", 2.0**alpha, e_alg / e_half],
        [
            "overall",
            e_alg,
            "(4 phi)^a * E*",
            (4 * PHI) ** alpha,
            e_alg / e_star,
        ],
    ]
    ok = (
        e_prime <= PHI**alpha * e_star * (1 + 1e-9)
        and e_half <= 2.0**alpha * e_prime * (1 + 1e-9)
        and e_alg <= 2.0**alpha * e_half * (1 + 1e-9)
        and e_alg <= (4 * PHI) ** alpha * e_star * (1 + 1e-9)
    )
    return ExperimentReport(
        id="F1",
        title=f"Figure 1 — instance transformation chain (alpha={alpha}, n={n})",
        headers=["quantity", "energy", "bound vs prev", "bound factor", "measured factor"],
        rows=rows,
        notes=[f"all chain inequalities hold: {ok}"],
    )


# ----------------------------------------------------------------------------------
# L41..L51 — lower-bound lemmas
# ----------------------------------------------------------------------------------


def experiment_lemma41(
    alpha: float = 3.0, eps_values: Sequence[float] = (0.2, 0.1, 0.05, 0.01)
) -> ExperimentReport:
    """Lemma 4.1 — never querying diverges as eps -> 0."""
    rows = []
    for eps in eps_values:
        inst = lemmas.lemma41_instance(eps)
        m = measure(never_query_offline, inst, alpha=alpha)
        rows.append(
            [
                eps,
                lemmas.lemma41_expected_ratio(eps, alpha, "max_speed"),
                m.max_speed_ratio,
                lemmas.lemma41_expected_ratio(eps, alpha, "energy"),
                m.energy_ratio,
            ]
        )
    return ExperimentReport(
        id="L41",
        title=f"Lemma 4.1 — never-query is unbounded (alpha={alpha})",
        headers=[
            "eps",
            "predicted speed ratio",
            "measured",
            "predicted energy ratio",
            "measured",
        ],
        rows=rows,
        notes=["the measured column uses the *best* never-query schedule (YDS)"],
    )


def experiment_lemma42(alpha: float = 3.0) -> ExperimentReport:
    """Lemma 4.2 — phi / phi^alpha, even in the oracle model."""
    rows = []
    for objective, claimed in (
        ("max_speed", PHI),
        ("energy", PHI**alpha),
    ):
        val = _oracle_game_value(1.0, PHI, alpha, objective)
        rows.append([objective, claimed, val, val >= claimed * (1 - 1e-9)])
    return ExperimentReport(
        id="L42",
        title=f"Lemma 4.2 — oracle-model lower bound on (c=1, w=phi) (alpha={alpha})",
        headers=["objective", "claimed LB", "oracle game value", "achieved"],
        rows=rows,
    )


def experiment_lemma43(alpha: float = 3.0) -> ExperimentReport:
    """Lemma 4.3 — 2 / 2^{alpha-1} for every deterministic algorithm."""
    c, w = lemmas.lemma43_params()
    rows = []
    for objective, claimed in (
        ("max_speed", 2.0),
        ("energy", 2.0 ** (alpha - 1.0)),
    ):
        best_val, best_query, best_x = best_deterministic_decision(
            c, w, alpha, objective
        )
        real = adversarial_ratio(crcd, c, w, alpha, objective)
        rows.append(
            [
                objective,
                claimed,
                best_val,
                "query" if best_query else "skip",
                best_x,
                real.ratio,
            ]
        )
    return ExperimentReport(
        id="L43",
        title=f"Lemma 4.3 — deterministic LB on (c=1, w=2) (alpha={alpha})",
        headers=[
            "objective",
            "claimed LB",
            "best decision value",
            "best decision",
            "best split x",
            "CRCD adversarial",
        ],
        rows=rows,
        notes=[
            "best-decision column: min over all (query, x) of the adversary's value — matches the claim",
            "CRCD achieves the lower bound exactly (its golden rule + equal window is optimal here)",
        ],
    )


def experiment_lemma44(alpha: float = 3.0) -> ExperimentReport:
    """Lemma 4.4 — randomized lower bounds via the solved game."""
    rows = []
    for objective in ("max_speed", "energy"):
        sol = solve_game(alpha, objective)
        rows.append(
            [
                objective,
                sol.claimed,
                sol.value,
                sol.theta,
                sol.rho,
                sol.value >= sol.claimed * (1 - 1e-6),
            ]
        )
    return ExperimentReport(
        id="L44",
        title=f"Lemma 4.4 — randomized single-job game (alpha={alpha})",
        headers=[
            "objective",
            "claimed LB",
            "game value",
            "worst theta=w/c",
            "optimal rho",
            "achieved",
        ],
        rows=rows,
        notes=[
            "claims: 4/3 for max speed (theta=2), (1+phi^a)/2 for energy (theta=phi)",
        ],
    )


def experiment_lemma45(
    alpha: float = 3.0, eps_values: Sequence[float] = (1e-2, 1e-3, 1e-4)
) -> ExperimentReport:
    """Lemma 4.5 — equal-window algorithms lose 3 / 3^{alpha-1}."""
    rows = []
    for eps in eps_values:
        s_lb, e_lb = lemmas.lemma45_equal_window_lower_bounds(eps, alpha)
        inst = lemmas.lemma45_instance(eps)
        m = measure(avrq, inst, alpha=alpha)
        rows.append([eps, 3.0, s_lb, m.max_speed_ratio, 3.0 ** (alpha - 1), e_lb, m.energy_ratio])
    return ExperimentReport(
        id="L45",
        title=f"Lemma 4.5 — equal-window lower bound (alpha={alpha})",
        headers=[
            "eps",
            "claimed speed LB",
            "class LB (YDS relaxation)",
            "AVRQ measured",
            "claimed energy LB",
            "class LB (YDS relaxation)",
            "AVRQ measured",
        ],
        rows=rows,
        notes=[
            "the paper omits the construction; ours: j=(0,2] w*=w traps its load in (1,2], k=(1,3] w*=0 traps its query there",
            "class LB = best possible equal-window schedule (YDS on derived half-window jobs)",
        ],
    )


def experiment_lemma51(
    alpha: float = 3.0, levels: Sequence[int] = (2, 4, 8, 16, 24)
) -> ExperimentReport:
    """Lemma 5.1 — AVRQ lower-bound trajectory on the tower family."""
    claimed = formulas.avrq_lb_energy(alpha)
    rows = []
    for k in levels:
        inst = lemmas.lemma51_tower_instance(k, alpha)
        m = measure(avrq, inst, alpha=alpha)
        rows.append([k, m.energy_ratio, claimed, formulas.avrq_ub_energy(alpha)])
    return ExperimentReport(
        id="L51",
        title=f"Lemma 5.1 — AVRQ on the nested tower family (alpha={alpha})",
        headers=["levels", "measured energy ratio", "claimed LB (asymptotic)", "paper UB"],
        rows=rows,
        notes=[
            "the (2a)^a bound is asymptotic (proof extends the AVR lower bound of [13]);",
            "the finite tower family shows the ratio growing with depth, sandwiched by the UB",
        ],
    )


# ----------------------------------------------------------------------------------
# ONL / MM — online and multi-machine measured ratios
# ----------------------------------------------------------------------------------


def experiment_online(
    alpha: float = 3.0,
    n: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7),
) -> ExperimentReport:
    """Measured online ratios (AVRQ, BKPQ, OAQ) vs the paper's bounds."""
    rows = []
    instances = [generators.online_instance(n, seed=s) for s in seeds]
    specs = [
        ("AVRQ", avrq, formulas.avrq_ub_energy(alpha)),
        ("BKPQ", bkpq, formulas.bkpq_ub_energy(alpha)),
        ("OAQ (ext.)", oaq, None),
    ]
    for name, algo, ub in specs:
        summary = measure_many(algo, instances, alpha=alpha)
        rows.append(
            [
                name,
                summary.max_energy_ratio,
                summary.mean_energy_ratio,
                summary.max_speed_ratio,
                ub,
                ub is None or summary.max_energy_ratio <= ub * (1 + 1e-9),
            ]
        )
    return ExperimentReport(
        id="ONL",
        title=f"Online algorithms on random streams (alpha={alpha}, n={n})",
        headers=[
            "algorithm",
            "max energy ratio",
            "mean energy ratio",
            "max speed ratio",
            "paper UB (energy)",
            "within",
        ],
        rows=rows,
        notes=["OAQ is the paper's open question (Sec. 7) — no bound is claimed"],
    )


def experiment_multi(
    alpha: float = 3.0,
    n: int = 16,
    machine_counts: Sequence[int] = (2, 4, 8),
    seeds: Sequence[int] = (0, 1, 2, 3),
) -> ExperimentReport:
    """AVRQ(m) vs the Corollary 6.4 bound across machine counts.

    The max-speed column uses the *exact* flow-based minimum peak speed of
    the clairvoyant instance as denominator (not a bound), so it is a true
    competitive measurement.
    """
    from ..core.power import PowerFunction
    from ..speed_scaling.multi.flow import min_max_speed

    ub = formulas.avrq_m_ub_energy(alpha)
    rows = []
    for m in machine_counts:
        instances = [
            generators.multi_machine_instance(n, m, seed=s) for s in seeds
        ]
        summary = measure_many(avrq_m, instances, alpha=alpha)
        speed_ratios = []
        for qi in instances:
            opt_speed = min_max_speed(
                [j.clairvoyant_job() for j in qi], m
            )
            if opt_speed > 0:
                speed_ratios.append(avrq_m(qi).max_speed() / opt_speed)
        rows.append(
            [
                m,
                summary.max_energy_ratio,
                summary.mean_energy_ratio,
                ub,
                max(speed_ratios),
                summary.max_energy_ratio <= ub * (1 + 1e-9),
            ]
        )
    return ExperimentReport(
        id="MM",
        title=f"AVRQ(m) on m parallel machines (alpha={alpha}, n={n})",
        headers=[
            "m",
            "max energy ratio",
            "mean",
            "paper UB",
            "max speed ratio (exact opt)",
            "within",
        ],
        rows=rows,
        notes=[
            "energy denominator is the pooled lower bound — conservative",
            "speed denominator is the exact flow-based minimum peak speed",
        ],
    )


def experiment_oaq_multi(
    alpha: float = 3.0,
    n: int = 10,
    machine_counts: Sequence[int] = (2, 3),
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentReport:
    """Extension: OAQ(m) vs AVRQ(m) (open question x Section 6)."""
    from ..core.power import PowerFunction
    from ..qbss.oaq_m import oaq_m

    power = PowerFunction(alpha)
    rows = []
    for m in machine_counts:
        instances = [
            generators.multi_machine_instance(n, m, seed=s) for s in seeds
        ]
        e_avrq = [avrq_m(qi).energy(power) for qi in instances]
        e_oaq = [oaq_m(qi, alpha=alpha).energy(power) for qi in instances]
        rows.append(
            [
                m,
                sum(e_avrq) / len(e_avrq),
                sum(e_oaq) / len(e_oaq),
                sum(o / a for o, a in zip(e_oaq, e_avrq)) / len(e_avrq),
            ]
        )
    return ExperimentReport(
        id="AB-OAQM",
        title=f"Extension — OAQ(m) vs AVRQ(m) (alpha={alpha}, n={n})",
        headers=["m", "AVRQ(m) mean energy", "OAQ(m) mean energy", "mean OAQ/AVRQ"],
        rows=rows,
        notes=["no bound claimed for OAQ(m); replanning wins empirically"],
    )


# ----------------------------------------------------------------------------------
# Ablations and the OAQ extension
# ----------------------------------------------------------------------------------


def experiment_split_ablation(
    alpha: float = 3.0,
    n: int = 12,
    seeds: Sequence[int] = (0, 1, 2, 3),
    x_values: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> ExperimentReport:
    """How the split point x changes AVRQ's measured ratio (equal-window ablation)."""
    from ..qbss.policies import ProportionalSplit

    instances = [generators.online_instance(n, seed=s) for s in seeds]
    rows = []
    for x in x_values:
        algo = lambda qi, _x=x: avrq(qi, split_policy=FixedSplit(_x))  # noqa: E731
        summary = measure_many(algo, instances, alpha=alpha)
        rows.append([str(x), summary.max_energy_ratio, summary.mean_energy_ratio, summary.max_speed_ratio])
    # the c-aware heuristic: x = c / (c + w/2), per job
    prop = lambda qi: avrq(qi, split_policy=ProportionalSplit())  # noqa: E731
    summary = measure_many(prop, instances, alpha=alpha)
    rows.append(
        [
            "proportional",
            summary.max_energy_ratio,
            summary.mean_energy_ratio,
            summary.max_speed_ratio,
        ]
    )
    return ExperimentReport(
        id="AB-SPLIT",
        title=f"Ablation — split point x for AVRQ (alpha={alpha})",
        headers=["x", "max energy ratio", "mean energy ratio", "max speed ratio"],
        rows=rows,
        notes=[
            "Lemma 4.3's argument: any fixed x != 1/2 worsens the worst case;",
            "on random instances the curve is typically flat-bottomed around x=1/2",
            "'proportional' = per-job x = c/(c + w/2), the uninformed oracle-split mimic",
        ],
    )


def experiment_query_policy_ablation(
    alpha: float = 3.0,
    n: int = 20,
    seeds: Sequence[int] = (0, 1, 2, 3),
) -> ExperimentReport:
    """Never / always / golden / other thresholds on the motivating scenarios."""
    policies = [
        ("never", NeverQuery()),
        ("golden (phi)", ThresholdQuery(PHI)),
        ("threshold 5", ThresholdQuery(5.0)),
        ("threshold 10", ThresholdQuery(10.0)),
        ("threshold 20", ThresholdQuery(20.0)),
    ]
    scenario_makers = [
        ("code-optimizer", lambda s: scenarios.code_optimizer_scenario(n, seed=s)),
        ("file-compression", lambda s: scenarios.file_compression_scenario(n, seed=s)),
    ]
    rows = []
    for scen_name, make in scenario_makers:
        instances = [make(s) for s in seeds]
        for pol_name, pol in policies:
            algo = lambda qi, _p=pol: bkpq(qi, query_policy=_p)  # noqa: E731
            summary = measure_many(algo, instances, alpha=alpha)
            rows.append(
                [scen_name, pol_name, summary.max_energy_ratio, summary.mean_energy_ratio]
            )
    return ExperimentReport(
        id="AB-QP",
        title=f"Ablation — query policy under BKPQ on scenario workloads (alpha={alpha})",
        headers=["scenario", "policy", "max energy ratio", "mean energy ratio"],
        rows=rows,
        notes=["'never' pays the full upper bound; the golden rule tracks the best threshold"],
    )


def experiment_oaq_extension(
    alpha: float = 3.0,
    n: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5),
) -> ExperimentReport:
    """The Sec. 7 open question: OAQ measured against AVRQ and BKPQ."""
    rows = []
    makers = [
        ("uniform online", lambda s: generators.online_instance(n, seed=s)),
        ("bursty", lambda s: generators.bursty_online_instance(3, max(n // 3, 2), seed=s)),
        ("code-optimizer", lambda s: scenarios.code_optimizer_scenario(n, seed=s)),
    ]
    for workload, make in makers:
        instances = [make(s) for s in seeds]
        for name, algo in (("AVRQ", avrq), ("BKPQ", bkpq), ("OAQ", oaq)):
            summary = measure_many(algo, instances, alpha=alpha)
            rows.append(
                [workload, name, summary.max_energy_ratio, summary.mean_energy_ratio]
            )
    return ExperimentReport(
        id="AB-OAQ",
        title=f"Extension — OAQ vs AVRQ/BKPQ (alpha={alpha})",
        headers=["workload", "algorithm", "max energy ratio", "mean energy ratio"],
        rows=rows,
        notes=["OAQ has no proven bound (open question); empirically it dominates here"],
    )


def experiment_adaptive_adversary(
    alpha: float = 3.0,
    steps: int = 5,
) -> ExperimentReport:
    """Greedy adaptive adversary vs the online algorithms.

    The search (see :mod:`repro.bounds.online_adversary`) extends an
    instance job by job, always picking the extension the algorithm handles
    worst.  The found ratios sit far above random-workload maxima — the
    practical face of the paper's adaptive lower-bound arguments — while
    never crossing the proven upper bounds.
    """
    from ..bounds.online_adversary import adaptive_online_search

    specs = [
        ("AVRQ", avrq, formulas.avrq_ub_energy(alpha)),
        ("BKPQ", bkpq, formulas.bkpq_ub_energy(alpha)),
        ("OAQ (ext.)", oaq, None),
    ]
    rows = []
    for name, algo, ub in specs:
        found = adaptive_online_search(algo, alpha=alpha, steps=steps)
        rows.append(
            [
                name,
                found.ratio,
                len(found.instance),
                ub,
                ub is None or found.ratio <= ub * (1 + 1e-9),
            ]
        )
    return ExperimentReport(
        id="ADV-SEARCH",
        title=f"Adaptive adversary search (alpha={alpha}, {steps} steps)",
        headers=[
            "algorithm",
            "worst ratio found",
            "jobs",
            "paper UB",
            "within",
        ],
        rows=rows,
        notes=[
            "greedy adaptive construction over a 5-template menu; deterministic",
            "compare the ONL experiment's random maxima — adaptivity is worth 3-6x here",
        ],
    )


def experiment_crcd_design_space(
    alpha: float = 3.0,
    n: int = 12,
    seeds: Sequence[int] = (0, 1, 2, 3),
    x_values: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8),
    lam_values: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> ExperimentReport:
    """Sweep CRCD's (x, lam) design plane on random instances.

    For each grid point the column is the *max* energy ratio over seeds —
    the worst-case flavour the paper optimises for.  The expectation from
    Theorem 4.6 / the minimax study: (0.5, 0.5) is at or near the flat
    bottom of the worst-case surface even though individual instances
    prefer other points.
    """
    from ..qbss.crcd import crcd_tuned

    instances = [
        generators.common_deadline_instance(n, seed=s) for s in seeds
    ]
    rows = []
    for x in x_values:
        for lam in lam_values:
            algo = lambda qi, _x=x, _l=lam: crcd_tuned(qi, _x, _l)  # noqa: E731
            summary = measure_many(algo, instances, alpha=alpha)
            rows.append(
                [x, lam, summary.max_energy_ratio, summary.mean_energy_ratio]
            )
    return ExperimentReport(
        id="AB-CRCD",
        title=f"Ablation — CRCD design space (x, lam) (alpha={alpha})",
        headers=["x", "lam", "max energy ratio", "mean energy ratio"],
        rows=rows,
        notes=["(0.5, 0.5) is the paper's Algorithm 1"],
    )


def experiment_sleep(
    alpha: float = 3.0,
    n: int = 14,
    seeds: Sequence[int] = (0, 1, 2),
    leakages: Sequence[float] = (0.0, 0.1, 0.5, 2.0, 8.0),
) -> ExperimentReport:
    """Static power / race-to-idle ablation.

    With leakage ``p_static`` the awake power is ``s^alpha + p_static``;
    race-to-idle raises sub-critical segments to the critical speed and
    sleeps the rest.  Reports, per leakage level, the mean no-sleep /
    race-to-idle energy ratio for the AVRQ and clairvoyant profiles.
    """
    from ..speed_scaling.sleep import StaticPowerModel, evaluate_race_to_idle
    from ..speed_scaling.yds import yds

    instances = [generators.online_instance(n, seed=s) for s in seeds]
    avrq_profiles = [avrq(qi).profile for qi in instances]
    opt_profiles = [
        yds([j.clairvoyant_job() for j in qi]).profile for qi in instances
    ]
    rows = []
    for p_static in leakages:
        model = StaticPowerModel(alpha, p_static)
        s_avrq = [
            evaluate_race_to_idle(p, model).savings_ratio for p in avrq_profiles
        ]
        s_opt = [
            evaluate_race_to_idle(p, model).savings_ratio for p in opt_profiles
        ]
        rows.append(
            [
                p_static,
                model.critical_speed,
                sum(s_avrq) / len(s_avrq),
                sum(s_opt) / len(s_opt),
            ]
        )
    return ExperimentReport(
        id="SLEEP",
        title=f"Ablation — static power and race-to-idle (alpha={alpha})",
        headers=[
            "p_static",
            "critical speed",
            "AVRQ mean savings (no-sleep / race-to-idle)",
            "optimal-profile mean savings",
        ],
        rows=rows,
        notes=[
            "race-to-idle: run sub-critical segments at s_crit = (p_static/(alpha-1))^(1/alpha), sleep the rest",
            "feasibility preserved: speeds only rise, per-segment work unchanged",
        ],
    )


def experiment_slack_sweep(
    alpha: float = 3.0,
    n: int = 14,
    seeds: Sequence[int] = (0, 1, 2, 3),
    slack_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
) -> ExperimentReport:
    """How window slack changes the online ratios.

    Scales every window by ``slack`` (more room to spread work).  The
    expectation: AVRQ's ratio is roughly slack-invariant (densities scale
    down uniformly) while OAQ converges towards 1 — replanning exploits
    slack, density-tracking cannot.
    """
    rows = []
    for slack in slack_factors:
        instances = [
            generators.online_instance(
                n,
                min_window=0.5 * slack,
                max_window=2.0 * slack,
                seed=s,
            )
            for s in seeds
        ]
        summaries = {
            name: measure_many(algo, instances, alpha=alpha)
            for name, algo in (("AVRQ", avrq), ("BKPQ", bkpq), ("OAQ", oaq))
        }
        rows.append(
            [
                slack,
                summaries["AVRQ"].mean_energy_ratio,
                summaries["BKPQ"].mean_energy_ratio,
                summaries["OAQ"].mean_energy_ratio,
            ]
        )
    return ExperimentReport(
        id="SLACK",
        title=f"Ablation — window slack vs online ratios (alpha={alpha})",
        headers=[
            "window scale",
            "AVRQ mean ratio",
            "BKPQ mean ratio",
            "OAQ mean ratio",
        ],
        rows=rows,
        notes=["windows scaled by the factor; arrivals unchanged"],
    )


def experiment_minimax(
    alpha: float = 3.0,
) -> ExperimentReport:
    """How close is CRCD to the best possible two-phase policy?

    Solves the exact (grid-resolution) minimax game over query set, phase
    split x and workload split lam for small common-window instances, and
    compares CRCD's value on the same instances.  Findings recorded in
    EXPERIMENTS.md: on the Lemma 4.3 instance CRCD is minimax-optimal up to
    grid resolution; on heterogeneous instances a per-instance tuned policy
    can be meaningfully better — the equal window is worst-case-motivated,
    not instance-optimal.
    """
    from ..bounds.minimax import (
        CommonWindowJob,
        crcd_policy_value,
        minimax_common_window,
    )

    cases = [
        ("lemma 4.3 (c=1, w=2)", [CommonWindowJob(1.0, 2.0)]),
        ("golden boundary (c=1, w=phi)", [CommonWindowJob(1.0, PHI)]),
        (
            "mixed pair",
            [CommonWindowJob(0.3, 2.0), CommonWindowJob(1.5, 2.0)],
        ),
        (
            "cheap queries",
            [CommonWindowJob(0.1, 1.0), CommonWindowJob(0.2, 3.0)],
        ),
        (
            "dear queries",
            [CommonWindowJob(0.9, 1.0), CommonWindowJob(1.8, 2.0)],
        ),
    ]
    rows = []
    for label, jobs in cases:
        mm = minimax_common_window(jobs, alpha)
        crcd_val, crcd_q = crcd_policy_value(jobs, alpha)
        rows.append(
            [
                label,
                mm.value,
                f"Q={mm.query_set} x={mm.x:.2f}",
                crcd_val,
                f"Q={crcd_q}",
                crcd_val / mm.value,
            ]
        )
    return ExperimentReport(
        id="MINIMAX",
        title=f"Minimax two-phase policies vs CRCD (alpha={alpha})",
        headers=[
            "instance",
            "minimax value",
            "minimax policy",
            "CRCD value",
            "CRCD policy",
            "CRCD / minimax",
        ],
        rows=rows,
        notes=[
            "minimax over query set x phase split x workload split, adversary on per-job w* grids",
            "grid resolution ~0.05 on x; values are exact up to that",
        ],
    )


def experiment_discretization(
    alpha: float = 3.0,
    n: int = 14,
    seeds: Sequence[int] = (0, 1, 2),
    level_counts: Sequence[int] = (2, 3, 5, 8, 16),
    span: float = 16.0,
) -> ExperimentReport:
    """DVFS ablation: energy penalty of discrete speed levels.

    Post-processes the AVRQ and clairvoyant profiles onto geometric speed
    ladders of growing size (dynamic range ``span``), reporting the mean
    discrete/continuous energy ratio next to the closed-form one-rung
    worst case.  The practical answer to "real CPUs have finitely many
    states": a handful of levels already costs only a few percent.
    """
    from ..speed_scaling.discrete import (
        SpeedLadder,
        discretization_penalty,
        worst_case_penalty,
    )
    from ..speed_scaling.yds import yds

    instances = [generators.online_instance(n, seed=s) for s in seeds]
    avrq_profiles = [avrq(qi).profile for qi in instances]
    opt_profiles = [
        yds([j.clairvoyant_job() for j in qi]).profile for qi in instances
    ]

    rows = []
    for count in level_counts:
        q = span ** (1.0 / (count - 1)) if count > 1 else span
        pen_avrq, pen_opt = [], []
        for prof in avrq_profiles:
            top = prof.max_speed()
            ladder = SpeedLadder.geometric(top / span, top, count)
            pen_avrq.append(discretization_penalty(prof, ladder, alpha))
        for prof in opt_profiles:
            top = prof.max_speed()
            ladder = SpeedLadder.geometric(top / span, top, count)
            pen_opt.append(discretization_penalty(prof, ladder, alpha))
        rows.append(
            [
                count,
                sum(pen_avrq) / len(pen_avrq),
                sum(pen_opt) / len(pen_opt),
                worst_case_penalty(q, alpha),
            ]
        )
    return ExperimentReport(
        id="DVFS",
        title=f"Ablation — discrete speed levels (alpha={alpha}, range {span}x)",
        headers=[
            "levels",
            "AVRQ mean penalty",
            "optimal-profile mean penalty",
            "one-rung worst case",
        ],
        rows=rows,
        notes=[
            "penalty = discrete energy / continuous energy on the same profile",
            "speeds below the lowest level pay the idle bracket (0, s_min), so the",
            "measured penalty can exceed the one-rung bound on low-speed tails",
        ],
    )


def experiment_randomized_policy(
    alpha: float = 3.0,
    n: int = 16,
    seeds: Sequence[int] = (0, 1, 2),
    rhos: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    coin_seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> ExperimentReport:
    """Randomized query policies in the large (beyond Lemma 4.4's game).

    Lemma 4.4 analyses the randomized single-job game; here we run the
    coin-flipping policy through the full BKPQ machinery on random streams
    and report the *expected* energy ratio per query probability rho,
    against the deterministic golden rule.  On workload distributions (as
    opposed to the adversarial game) the golden rule typically beats every
    fixed rho — queries should depend on (c, w), not on a coin.
    """
    from ..core.power import PowerFunction
    from ..qbss.policies import RandomizedQuery

    instances = [generators.online_instance(n, seed=s) for s in seeds]
    rows = []
    for rho in rhos:
        ratios = []
        for coin in coin_seeds:
            policy = RandomizedQuery(rho, rng=coin)
            algo = lambda qi, _p=policy: bkpq(qi, query_policy=_p)  # noqa: E731
            summary = measure_many(algo, instances, alpha=alpha)
            ratios.append(summary.mean_energy_ratio)
        rows.append(
            [rho, sum(ratios) / len(ratios), min(ratios), max(ratios)]
        )
    golden = measure_many(bkpq, instances, alpha=alpha)
    rows.append(["golden rule", golden.mean_energy_ratio, None, None])
    return ExperimentReport(
        id="RAND",
        title=f"Randomized query policies under BKPQ (alpha={alpha})",
        headers=[
            "rho (query prob.)",
            "expected mean energy ratio",
            "best coin",
            "worst coin",
        ],
        rows=rows,
        notes=[
            f"expectation over {len(coin_seeds)} coin seeds x {len(seeds)} instance seeds",
            "the deterministic golden rule is the last row",
        ],
    )


def experiment_migration_ablation(
    alpha: float = 3.0,
    n: int = 14,
    machine_counts: Sequence[int] = (2, 4),
    seeds: Sequence[int] = (0, 1, 2, 3),
) -> ExperimentReport:
    """The Sec. 7 remark: the non-migratory variant, quantified.

    Compares AVRQ(m) (free migration, Theorem 6.3) against AVRQ-NM (each
    job pinned to one machine at arrival) and, offline, the assignment
    heuristics of the non-migratory substrate, all against the pooled lower
    bound.  The paired column reports mean NM/migratory energy with a
    bootstrap confidence interval.
    """
    from ..core.power import PowerFunction
    from ..qbss.nonmigratory import avrq_nm
    from .stats import paired_improvement

    from ..speed_scaling.multi.nonmigratory import optimal_non_migratory
    from ..speed_scaling.multi.optimal import convex_optimal_energy

    power = PowerFunction(alpha)
    rows = []
    for m in machine_counts:
        instances = [
            generators.multi_machine_instance(n, m, seed=s) for s in seeds
        ]
        mig = [avrq_m(qi).energy(power) for qi in instances]
        nm = [avrq_nm(qi).energy(power) for qi in instances]
        mean_rel, (lo, hi), win = paired_improvement(mig, nm)
        # the *true* migration gap on small clairvoyant instances
        small = [
            generators.multi_machine_instance(6, m, seed=s) for s in seeds[:2]
        ]
        gaps = []
        for qi in small:
            jobs = [j.clairvoyant_job() for j in qi]
            exact_nm = optimal_non_migratory(jobs, m, alpha).energy(power)
            exact_mig = convex_optimal_energy(jobs, m, alpha)
            if exact_mig > 0:
                gaps.append(exact_nm / exact_mig)
        rows.append(
            [
                m,
                sum(mig) / len(mig),
                sum(nm) / len(nm),
                mean_rel,
                lo,
                hi,
                sum(gaps) / len(gaps) if gaps else None,
            ]
        )
    return ExperimentReport(
        id="AB-MIG",
        title=f"Ablation — cost of forbidding migration (alpha={alpha})",
        headers=[
            "m",
            "AVRQ(m) mean energy",
            "AVRQ-NM mean energy",
            "NM/mig mean ratio",
            "CI low",
            "CI high",
            "true optimal gap (n=6)",
        ],
        rows=rows,
        notes=[
            "paper Sec. 7: 'our approach can directly be applied to the "
            "preemptive-non-migratory variant' — this measures what pinning costs",
            "bootstrap 95% CI over paired seeds",
            "last column: exact NM optimum / exact migratory optimum on small clairvoyant instances",
        ],
    )


def experiment_classical_lb_families(
    alpha: float = 3.0,
    levels: Sequence[int] = (4, 8, 16, 32),
) -> ExperimentReport:
    """The classical AVR/OA lower-bound families Lemma 5.1 builds on."""
    from ..bounds.classical import (
        avr_tower_instance,
        avr_two_sided_instance,
        family_ratio,
        oa_staircase_instance,
    )
    from ..speed_scaling.avr import avr_profile
    from ..speed_scaling.oa import oa_profile

    rows = []
    for k in levels:
        rows.append(
            [
                k,
                family_ratio(avr_tower_instance(k, alpha), avr_profile, alpha),
                family_ratio(avr_two_sided_instance(k, alpha), avr_profile, alpha),
                alpha**alpha,
                family_ratio(oa_staircase_instance(k, alpha), oa_profile, alpha),
                alpha**alpha,
            ]
        )
    return ExperimentReport(
        id="CLB",
        title=f"Classical lower-bound families (alpha={alpha})",
        headers=[
            "levels",
            "AVR one-sided",
            "AVR two-sided",
            "AVR LB target a^a",
            "OA staircase",
            "OA tight a^a",
        ],
        rows=rows,
        notes=[
            "finite truncations of the asymptotic constructions; the Lemma 5.1",
            "AVRQ bound (2a)^a = 2^a x the AVR behaviour on these families",
        ],
    )


# ----------------------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------------------

REGISTRY: dict[str, Callable[..., ExperimentReport]] = {
    "table1": experiment_table1,
    "rho": experiment_rho,
    "figure1": experiment_figure1,
    "lemma41": experiment_lemma41,
    "lemma42": experiment_lemma42,
    "lemma43": experiment_lemma43,
    "lemma44": experiment_lemma44,
    "lemma45": experiment_lemma45,
    "lemma51": experiment_lemma51,
    "online": experiment_online,
    "multi": experiment_multi,
    "ablation-split": experiment_split_ablation,
    "ablation-query": experiment_query_policy_ablation,
    "ablation-migration": experiment_migration_ablation,
    "classical-lb": experiment_classical_lb_families,
    "oaq": experiment_oaq_extension,
    "oaq-multi": experiment_oaq_multi,
    "randomized-policy": experiment_randomized_policy,
    "dvfs": experiment_discretization,
    "minimax": experiment_minimax,
    "sleep": experiment_sleep,
    "slack": experiment_slack_sweep,
    "crcd-design-space": experiment_crcd_design_space,
    "adaptive-adversary": experiment_adaptive_adversary,
}
