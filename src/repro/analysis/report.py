"""Markdown report generation from the experiment registry.

`EXPERIMENTS.md` in this repository was written from bench output; this
module automates the mechanical part: run any subset of the registry and
emit a self-contained markdown document with one table per artifact.  Used
by ``qbss-report --markdown`` and by downstream users archiving their own
parameterisations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .experiments import REGISTRY, ExperimentReport
from .tables import format_cell


def report_to_markdown(report: ExperimentReport) -> str:
    """One experiment as a markdown section with a pipe table."""
    lines = [f"## {report.id} — {report.title}", ""]
    lines.append("| " + " | ".join(report.headers) + " |")
    lines.append("|" + "|".join("---" for _ in report.headers) + "|")
    for row in report.rows:
        lines.append(
            "| " + " | ".join(format_cell(c) for c in row) + " |"
        )
    if report.notes:
        lines.append("")
        for note in report.notes:
            lines.append(f"*{note}*")
    return "\n".join(lines)


def generate_markdown(
    names: Optional[Sequence[str]] = None,
    overrides: Optional[Dict[str, dict]] = None,
    title: str = "QBSS reproduction report",
) -> str:
    """Run experiments and return a full markdown document.

    ``names`` defaults to the whole registry (sorted); ``overrides`` maps an
    experiment name to keyword arguments for its callable.
    """
    chosen = list(names) if names is not None else sorted(REGISTRY)
    unknown = [n for n in chosen if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    sections: List[str] = [f"# {title}", ""]
    for name in chosen:
        kwargs = (overrides or {}).get(name, {})
        report = REGISTRY[name](**kwargs)
        sections.append(report_to_markdown(report))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"
