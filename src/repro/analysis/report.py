"""Markdown report generation from the experiment registry.

`EXPERIMENTS.md` in this repository was written from bench output; this
module automates the mechanical part: run any subset of the registry and
emit a self-contained markdown document with one table per artifact.  Used
by ``qbss-report --markdown`` and by downstream users archiving their own
parameterisations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .experiments import REGISTRY, ExperimentReport
from .tables import format_cell


def report_to_markdown(report: ExperimentReport) -> str:
    """One experiment as a markdown section with a pipe table."""
    lines = [f"## {report.id} — {report.title}", ""]
    lines.append("| " + " | ".join(report.headers) + " |")
    lines.append("|" + "|".join("---" for _ in report.headers) + "|")
    for row in report.rows:
        lines.append(
            "| " + " | ".join(format_cell(c) for c in row) + " |"
        )
    if report.notes:
        lines.append("")
        for note in report.notes:
            lines.append(f"*{note}*")
    return "\n".join(lines)


def reports_to_markdown(
    reports: Sequence[ExperimentReport],
    title: str = "QBSS reproduction report",
) -> str:
    """Assemble already-evaluated reports into a full markdown document.

    This is the rendering half of :func:`generate_markdown`; the
    ``qbss-report`` CLI feeds it reports evaluated by
    :mod:`repro.engine` (parallel, cached) instead of re-running them here.
    """
    sections: List[str] = [f"# {title}", ""]
    for report in reports:
        sections.append(report_to_markdown(report))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def generate_markdown(
    names: Optional[Sequence[str]] = None,
    overrides: Optional[Dict[str, dict]] = None,
    title: str = "QBSS reproduction report",
) -> str:
    """Run experiments serially and return a full markdown document.

    ``names`` defaults to the whole registry (sorted); ``overrides`` maps an
    experiment name to keyword arguments for its callable.  For parallel or
    cached evaluation, run through :func:`repro.engine.run_experiments` and
    render with :func:`reports_to_markdown`.
    """
    chosen = list(names) if names is not None else sorted(REGISTRY)
    unknown = [n for n in chosen if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    reports = [
        REGISTRY[name](**(overrides or {}).get(name, {})) for name in chosen
    ]
    return reports_to_markdown(reports, title=title)
