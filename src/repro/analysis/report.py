"""Markdown report generation from the experiment registry.

`EXPERIMENTS.md` in this repository was written from bench output; this
module automates the mechanical part: run any subset of the registry and
emit a self-contained markdown document with one table per artifact.  Used
by ``qbss-report --markdown`` and by downstream users archiving their own
parameterisations.
"""

from __future__ import annotations

from collections.abc import Sequence

from .experiments import REGISTRY, ExperimentReport
from .tables import format_cell


def report_to_markdown(report: ExperimentReport) -> str:
    """One experiment as a markdown section with a pipe table."""
    lines = [f"## {report.id} — {report.title}", ""]
    lines.append("| " + " | ".join(report.headers) + " |")
    lines.append("|" + "|".join("---" for _ in report.headers) + "|")
    for row in report.rows:
        lines.append(
            "| " + " | ".join(format_cell(c) for c in row) + " |"
        )
    if report.notes:
        lines.append("")
        for note in report.notes:
            lines.append(f"*{note}*")
    return "\n".join(lines)


def reports_to_markdown(
    reports: Sequence[ExperimentReport],
    title: str = "QBSS reproduction report",
) -> str:
    """Assemble already-evaluated reports into a full markdown document.

    This is the rendering half of :func:`generate_markdown`; the
    ``qbss-report`` CLI feeds it reports evaluated by
    :mod:`repro.engine` (parallel, cached) instead of re-running them here.
    """
    sections: list[str] = [f"# {title}", ""]
    for report in reports:
        sections.append(report_to_markdown(report))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def engine_failures_to_markdown(result) -> str:
    """A markdown footer section for an :class:`~repro.engine.EngineResult`.

    Empty string when every experiment succeeded; otherwise a "Failures"
    section with one row per failed run — kind, attempts, per-attempt wall
    times — so archived ``qbss-report --markdown`` documents record what
    is *missing* as faithfully as what is present.
    """
    failures = list(result.failures)
    if not failures:
        return ""
    lines = ["", "## Failures", ""]
    headers = ["experiment", "kind", "attempts", "wall times (s)"]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for info in failures:
        walls = ", ".join(f"{w:.3f}" for w in info.wall_times)
        lines.append(
            f"| {info.task} | {info.kind} | {info.attempts} | {walls} |"
        )
    if result.degraded:
        lines += ["", "*engine degraded to serial after repeated pool crashes*"]
    return "\n".join(lines) + "\n"


def replay_report_to_markdown(report) -> str:
    """A :class:`~repro.traces.replay.ReplayReport` as a markdown document.

    One summary table (per-algorithm percentiles over the shard energy
    ratios) plus a per-shard table, mirroring :meth:`ReplayReport.render`
    for the ``qbss-replay --markdown`` flag.
    """
    lines = [
        f"# Trace replay — {report.source}",
        "",
        f"- format: `{report.trace_format}`, noise model: "
        f"`{report.noise_model}` (seed {report.seed})",
        f"- alpha: {report.alpha}, shard window: {report.shard_window}, "
        f"deadline slack: {report.deadline_slack}",
        f"- {len(report.shards)} shards / {report.n_jobs} jobs"
        + (f" ({report.skipped} records skipped)" if report.skipped else ""),
        "",
        "## Summary",
        "",
    ]
    headers = [
        "algorithm",
        "shards",
        "mean",
        "p50",
        "p90",
        "p99",
        "max",
        "paper UB",
        "within",
    ]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in report.summary_rows():
        lines.append("| " + " | ".join(format_cell(c) for c in row) + " |")
    lines += ["", "## Shards", ""]
    shard_headers = [
        "shard",
        "start",
        "end",
        "jobs",
        "status",
        "algorithm",
        "energy ratio",
        "speed ratio",
        "within",
    ]
    lines.append("| " + " | ".join(shard_headers) + " |")
    lines.append("|" + "|".join("---" for _ in shard_headers) + "|")
    for s in report.shards:
        status = s.get("status", "ok")
        rows = s.get("rows") or [None]
        for row in rows:
            cells = [
                s["index"],
                s["start"],
                s["end"],
                s.get("n_jobs", 0),
                status,
            ]
            if row is None:
                cells += ["-", "-", "-", "-"]
            else:
                cells += [
                    row["algorithm"],
                    row["energy_ratio"],
                    row["max_speed_ratio"],
                    row["within_bound"],
                ]
            lines.append(
                "| " + " | ".join(format_cell(c) for c in cells) + " |"
            )
    failed = report.failed_shards
    if failed:
        lines += ["", "## Failed shards", ""]
        for s in failed:
            info = s.get("failure") or {}
            detail = (
                f" — {info.get('kind')} after {info.get('attempts')} attempt(s)"
                if info
                else ""
            )
            lines.append(
                f"- shard {s['index']} [{s['start']}, {s['end']}): "
                f"`{s.get('status')}`{detail}"
            )
    return "\n".join(lines) + "\n"


def generate_markdown(
    names: Sequence[str] | None = None,
    overrides: dict[str, dict] | None = None,
    title: str = "QBSS reproduction report",
) -> str:
    """Run experiments serially and return a full markdown document.

    ``names`` defaults to the whole registry (sorted); ``overrides`` maps an
    experiment name to keyword arguments for its callable.  For parallel or
    cached evaluation, run through :func:`repro.engine.run_experiments` and
    render with :func:`reports_to_markdown`.
    """
    chosen = list(names) if names is not None else sorted(REGISTRY)
    unknown = [n for n in chosen if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    reports = [
        REGISTRY[name](**(overrides or {}).get(name, {})) for name in chosen
    ]
    return reports_to_markdown(reports, title=title)
