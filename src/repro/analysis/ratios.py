"""Measuring algorithms against the clairvoyant optimum.

The unit of every experiment is a *ratio measurement*: run an algorithm on
a QBSS instance, validate the schedule, and divide its energy / max speed
by the clairvoyant baseline's.  :func:`measure` does one instance;
:func:`measure_many` aggregates a batch (max and mean ratios — the max is
what competitive analysis talks about).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from ..core.compat import absorb_positional
from ..core.constants import DEFAULT_ALPHA
from ..core.instance import QBSSInstance
from ..core.power import PowerFunction
from ..qbss.clairvoyant import ClairvoyantBaseline, clairvoyant
from ..qbss.registry import get_algorithm
from ..qbss.result import QBSSResult

#: Algorithms are passed either as a callable ``qi -> QBSSResult`` or as an
#: :data:`~repro.qbss.registry.ALGORITHMS` name (resolved at measure time).
Algorithm = Callable[[QBSSInstance], QBSSResult] | str


def _resolve_algorithm(algorithm: Algorithm, alpha: float):
    """Turn a registry name into its runner (callables pass through)."""
    if not isinstance(algorithm, str):
        return algorithm
    spec = get_algorithm(algorithm)
    if "alpha" in spec.accepts:
        return lambda qi: spec.fn(qi, alpha=alpha)
    return spec.fn


@dataclass(frozen=True)
class RatioMeasurement:
    """One algorithm run compared against the clairvoyant optimum."""

    algorithm: str
    energy: float
    optimal_energy: float
    max_speed: float
    optimal_max_speed: float
    feasible: bool
    exact_baseline: bool  # False => multi-machine pooled LB (conservative)

    @property
    def energy_ratio(self) -> float:
        if self.optimal_energy <= 0:
            return math.inf if self.energy > 0 else 1.0
        return self.energy / self.optimal_energy

    @property
    def max_speed_ratio(self) -> float:
        if self.optimal_max_speed <= 0:
            return math.inf if self.max_speed > 0 else 1.0
        return self.max_speed / self.optimal_max_speed


def measure(
    algorithm: Algorithm,
    qinstance: QBSSInstance,
    *args,
    alpha: float = DEFAULT_ALPHA,
    exact_multi: bool = False,
    validate: bool = True,
    baseline: "ClairvoyantBaseline | None" = None,
) -> RatioMeasurement:
    """Run ``algorithm`` on ``qinstance`` and compare against the optimum.

    ``algorithm`` may be an :data:`~repro.qbss.registry.ALGORITHMS` name
    (e.g. ``"bkpq"``) or any callable ``qi -> QBSSResult``.  ``baseline``
    supplies a precomputed clairvoyant optimum for ``qinstance`` (e.g. one
    shared across the algorithms of a replay shard); when omitted, it is
    computed here.
    """
    alpha, exact_multi, validate = absorb_positional(
        "measure",
        args,
        ("alpha", "exact_multi", "validate"),
        (alpha, exact_multi, validate),
    )
    result = _resolve_algorithm(algorithm, alpha)(qinstance)
    if validate:
        result.validate().raise_if_infeasible()
    power = PowerFunction(alpha)
    base = (
        baseline
        if baseline is not None
        else clairvoyant(qinstance, alpha=alpha, exact_multi=exact_multi)
    )
    return RatioMeasurement(
        algorithm=result.algorithm or getattr(algorithm, "__name__", "algorithm"),
        energy=result.energy(power),
        optimal_energy=base.energy_value,
        max_speed=result.max_speed(),
        optimal_max_speed=base.max_speed_value,
        feasible=True,
        exact_baseline=base.exact,
    )


@dataclass(frozen=True)
class RatioSummary:
    """Aggregate of many measurements of one algorithm."""

    algorithm: str
    count: int
    max_energy_ratio: float
    mean_energy_ratio: float
    max_speed_ratio: float
    mean_speed_ratio: float
    exact_baseline: bool


def measure_many(
    algorithm: Algorithm,
    instances: Iterable[QBSSInstance],
    *args,
    alpha: float = DEFAULT_ALPHA,
    exact_multi: bool = False,
) -> RatioSummary:
    """Measure a batch of instances and aggregate."""
    alpha, exact_multi = absorb_positional(
        "measure_many", args, ("alpha", "exact_multi"), (alpha, exact_multi)
    )
    measurements: list[RatioMeasurement] = [
        measure(algorithm, inst, alpha=alpha, exact_multi=exact_multi)
        for inst in instances
    ]
    if not measurements:
        raise ValueError("need at least one instance")
    name = measurements[0].algorithm
    e_ratios = [m.energy_ratio for m in measurements]
    s_ratios = [m.max_speed_ratio for m in measurements]
    return RatioSummary(
        algorithm=name,
        count=len(measurements),
        max_energy_ratio=max(e_ratios),
        mean_energy_ratio=sum(e_ratios) / len(e_ratios),
        max_speed_ratio=max(s_ratios),
        mean_speed_ratio=sum(s_ratios) / len(s_ratios),
        exact_baseline=all(m.exact_baseline for m in measurements),
    )


# -- reference baselines -------------------------------------------------------------


def never_query_offline(qinstance: QBSSInstance) -> QBSSResult:
    """Optimal offline schedule that never queries: YDS on ``(r, d, w_j)``.

    This is the strongest member of the never-query class, so its measured
    ratio *lower-bounds* every never-query algorithm — the right comparator
    for Lemma 4.1.
    """
    from ..core.schedule import Schedule
    from ..qbss.decisions import DecisionLog, QueryDecision
    from ..speed_scaling.yds import yds

    if qinstance.machines != 1:
        raise ValueError("never_query_offline is single-machine")
    upper = qinstance.upper_bound_instance()
    run = yds(list(upper.jobs))
    log = DecisionLog()
    for j in qinstance:
        log.record(j.id, QueryDecision(False))
    return QBSSResult(
        run.schedule, [run.profile], upper, log, qinstance, "NeverQuery-YDS"
    )


def always_query_equal_window_offline(qinstance: QBSSInstance) -> QBSSResult:
    """Optimal offline schedule of the always-query equal-window class.

    YDS on the derived half-window jobs; every equal-window always-query
    algorithm is at least this expensive (used by the Lemma 4.5 bench).
    Information-wise this is a relaxation — YDS sees ``w*`` — which is
    exactly what makes it a *lower bound* for the class.
    """
    from ..core.job import Job
    from ..core.instance import Instance
    from ..qbss.decisions import DecisionLog, QueryDecision
    from ..speed_scaling.yds import yds

    if qinstance.machines != 1:
        raise ValueError("always_query_equal_window_offline is single-machine")
    derived = []
    log = DecisionLog()
    for j in qinstance:
        mid = j.midpoint
        derived.append(Job(j.release, mid, j.query_cost, j.id + ":query"))
        derived.append(Job(mid, j.deadline, j.work_true, j.id + ":work"))
        log.record(j.id, QueryDecision(True, 0.5))
    run = yds(derived)
    return QBSSResult(
        run.schedule,
        [run.profile],
        Instance(derived),
        log,
        qinstance,
        "EqualWindow-YDS",
    )
