"""Parameter sweeps over alpha, instance size and policy knobs.

Thin, composable helpers over :mod:`repro.analysis.ratios` used by the
ablation benches and by anyone exploring the model interactively.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..core.instance import QBSSInstance
from .ratios import Algorithm, RatioSummary, measure_many


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep."""

    parameter: float
    summary: RatioSummary


def alpha_sweep(
    algorithm: Algorithm,
    instances: Sequence[QBSSInstance],
    alphas: Sequence[float],
) -> list[SweepPoint]:
    """Measure the same instances under different power exponents."""
    return [
        SweepPoint(a, measure_many(algorithm, instances, alpha=a)) for a in alphas
    ]


def size_sweep(
    algorithm: Algorithm,
    instance_factory: Callable[[int, int], QBSSInstance],
    sizes: Sequence[int],
    alpha: float,
    seeds: Sequence[int] = (0, 1, 2),
) -> list[SweepPoint]:
    """Measure instances of growing size; ``instance_factory(n, seed)``."""
    out = []
    for n in sizes:
        instances = [instance_factory(n, s) for s in seeds]
        out.append(SweepPoint(float(n), measure_many(algorithm, instances, alpha=alpha)))
    return out


def parameter_sweep(
    algorithm_factory: Callable[[float], Algorithm],
    instances: Sequence[QBSSInstance],
    values: Sequence[float],
    alpha: float,
) -> list[SweepPoint]:
    """Sweep an algorithm knob; ``algorithm_factory(value)`` builds the runner."""
    return [
        SweepPoint(v, measure_many(algorithm_factory(v), instances, alpha=alpha))
        for v in values
    ]


def worst_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The grid point with the highest max energy ratio."""
    return max(points, key=lambda p: p.summary.max_energy_ratio)


def best_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The grid point with the lowest max energy ratio."""
    return min(points, key=lambda p: p.summary.max_energy_ratio)
