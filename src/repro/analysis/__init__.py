"""Measurement harness: ratios vs the optimum, sweeps, tables, experiments."""

from .experiments import REGISTRY, ExperimentReport
from .ratios import (
    Algorithm,
    RatioMeasurement,
    RatioSummary,
    always_query_equal_window_offline,
    measure,
    measure_many,
    never_query_offline,
)
from .stats import RatioStats, bootstrap_ci, paired_improvement
from .verification import Claim, all_ok, render_claims, verify_reproduction
from .sweep import SweepPoint, alpha_sweep, best_point, parameter_sweep, size_sweep, worst_point
from .tables import render_table

__all__ = [
    "REGISTRY",
    "ExperimentReport",
    "Algorithm",
    "RatioMeasurement",
    "RatioSummary",
    "always_query_equal_window_offline",
    "measure",
    "measure_many",
    "never_query_offline",
    "RatioStats",
    "bootstrap_ci",
    "paired_improvement",
    "Claim",
    "all_ok",
    "render_claims",
    "verify_reproduction",
    "SweepPoint",
    "alpha_sweep",
    "best_point",
    "parameter_sweep",
    "size_sweep",
    "worst_point",
    "render_table",
]
