"""One-call verification of the reproduction's headline claims.

``verify_reproduction()`` runs a condensed version of every reproduction
criterion — bounds respected, lower bounds achieved, tables matching — and
returns a structured list of :class:`Claim` outcomes.  It is the
programmatic mirror of the benchmark suite (which asserts the same things
with more samples), intended for CI smoke checks and for users who want a
single call that answers "does this library still reproduce the paper?".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..bounds import formulas, lemmas, rho
from ..bounds.adversary import adversarial_ratio
from ..core.power import PowerFunction
from ..qbss import avrq, bkpq, clairvoyant, crad, crcd, crp2d
from ..qbss.randomized import solve_game
from ..workloads import generators
from .ratios import measure, never_query_offline


@dataclass(frozen=True)
class Claim:
    """One verified claim: description, expectation, observation, verdict."""

    id: str
    description: str
    observed: float
    threshold: float
    comparison: str  # "<=" or ">="
    ok: bool


def _check(
    claim_id: str, description: str, observed: float, threshold: float, cmp: str
) -> Claim:
    slack = 1e-6 * max(1.0, abs(threshold))
    if cmp == "<=":
        ok = observed <= threshold + slack
    elif cmp == ">=":
        ok = observed >= threshold - slack
    else:
        raise ValueError(f"unknown comparison {cmp!r}")
    return Claim(claim_id, description, observed, threshold, cmp, ok)


def verify_reproduction(
    alpha: float = 3.0, n: int = 12, seed: int = 0
) -> list[Claim]:
    """Run the condensed reproduction check-list (seconds, not minutes)."""
    claims: list[Claim] = []
    power = PowerFunction(alpha)

    # -- upper bounds on random instances ------------------------------------
    specs = [
        (
            "crcd-ub",
            "CRCD energy <= min{2^(a-1) phi^a, 2^a} x OPT (Thm 4.6)",
            crcd,
            generators.common_deadline_instance(n, seed=seed),
            formulas.crcd_ub_energy(alpha),
        ),
        (
            "crp2d-ub",
            "CRP2D energy <= (4 phi)^a x OPT (Thm 4.13)",
            crp2d,
            generators.power_of_two_instance(n, seed=seed),
            formulas.crp2d_ub_energy(alpha),
        ),
        (
            "crad-ub",
            "CRAD energy <= (8 phi)^a x OPT (Cor 4.15)",
            crad,
            generators.common_release_instance(n, seed=seed),
            formulas.crad_ub_energy(alpha),
        ),
        (
            "avrq-ub",
            "AVRQ energy <= 2^(2a-1) a^a x OPT (Cor 5.3)",
            avrq,
            generators.online_instance(n, seed=seed),
            formulas.avrq_ub_energy(alpha),
        ),
        (
            "bkpq-ub",
            "BKPQ energy <= (2+phi)^a 2(a/(a-1))^a e^a x OPT (Cor 5.5)",
            bkpq,
            generators.online_instance(n, seed=seed),
            formulas.bkpq_ub_energy(alpha),
        ),
    ]
    for cid, desc, algo, inst, bound in specs:
        m = measure(algo, inst, alpha=alpha)
        claims.append(_check(cid, desc, m.energy_ratio, bound, "<="))

    # max-speed guarantees
    m = measure(crcd, generators.common_deadline_instance(n, seed=seed), alpha=alpha)
    claims.append(
        _check(
            "crcd-speed",
            "CRCD max speed <= 2 x OPT (Thm 4.6)",
            m.max_speed_ratio,
            2.0,
            "<=",
        )
    )
    m = measure(bkpq, generators.online_instance(n, seed=seed), alpha=alpha)
    claims.append(
        _check(
            "bkpq-speed",
            "BKPQ max speed <= (2+phi) e x OPT (Cor 5.5)",
            m.max_speed_ratio,
            formulas.bkpq_ub_max_speed(),
            "<=",
        )
    )

    # -- lower bounds achieved against the real implementations ---------------
    out = adversarial_ratio(crcd, 1.0, 2.0, alpha, "energy")
    claims.append(
        _check(
            "lemma43-energy",
            "adversary extracts >= 2^(a-1) from CRCD on (c=1, w=2) (Lemma 4.3)",
            out.ratio,
            formulas.deterministic_lb_energy(alpha),
            ">=",
        )
    )
    out = adversarial_ratio(crcd, 1.0, 2.0, alpha, "max_speed")
    claims.append(
        _check(
            "lemma43-speed",
            "adversary extracts speed ratio >= 2 from CRCD (Lemma 4.3)",
            out.ratio,
            2.0,
            ">=",
        )
    )
    m = measure(never_query_offline, lemmas.lemma41_instance(0.05), alpha=alpha)
    claims.append(
        _check(
            "lemma41",
            "never-query pays >= (1/(2 eps))^a at eps = 0.05 (Lemma 4.1)",
            m.energy_ratio,
            (1.0 / 0.1) ** alpha,
            ">=",
        )
    )
    s_lb, e_lb = lemmas.lemma45_equal_window_lower_bounds(1e-6, alpha)
    claims.append(
        _check(
            "lemma45",
            "equal-window construction reaches 3^(a-1) (Lemma 4.5)",
            e_lb,
            formulas.equal_window_lb_energy(alpha),
            ">=",
        )
    )
    sol = solve_game(alpha, "max_speed")
    claims.append(
        _check(
            "lemma44",
            "randomized game value >= 4/3 for max speed (Lemma 4.4)",
            sol.value,
            4.0 / 3.0,
            ">=",
        )
    )

    # -- the rho table --------------------------------------------------------
    worst_cell_err = 0.0
    for row, p1, p2, p3 in zip(
        rho.rho_table(), rho.PAPER_RHO1, rho.PAPER_RHO2, rho.PAPER_RHO3
    ):
        worst_cell_err = max(
            worst_cell_err,
            abs(row.rho1 - p1) / max(p1, 1.0),
            abs(row.rho2 - p2) / max(p2, 1.0),
            (abs(row.rho3 - p3) / max(p3, 1.0)) if row.rho3 is not None else 0.0,
        )
    claims.append(
        _check(
            "rho-table",
            "Sec. 4.2 rho table matches the paper (max relative cell error)",
            worst_cell_err,
            0.015,
            "<=",
        )
    )

    # -- clairvoyant sanity -----------------------------------------------------
    qi = generators.online_instance(n, seed=seed)
    base = clairvoyant(qi, alpha=alpha)
    claims.append(
        _check(
            "opt-sanity",
            "clairvoyant optimum is positive and finite on a random instance",
            base.energy_value,
            0.0,
            ">=",
        )
    )
    return claims


def all_ok(claims: list[Claim]) -> bool:
    return all(c.ok for c in claims)


def render_claims(claims: list[Claim]) -> str:
    """Human-readable checklist."""
    lines = []
    for c in claims:
        mark = "PASS" if c.ok else "FAIL"
        lines.append(
            f"[{mark}] {c.id}: {c.description} "
            f"(observed {c.observed:.4g} {c.comparison} {c.threshold:.4g})"
        )
    n_ok = sum(c.ok for c in claims)
    lines.append(f"{n_ok}/{len(claims)} claims verified")
    return "\n".join(lines)
