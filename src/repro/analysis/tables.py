"""Plain-text table rendering for benches, the CLI and EXPERIMENTS.md."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_cell(value, float_fmt: str = "{:.3f}") -> str:
    if value is None:
        return "--"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return float_fmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: list[list[str]] = [
        [format_cell(c, float_fmt) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def _latex_escape(text: str) -> str:
    for char, repl in (
        ("&", r"\&"),
        ("%", r"\%"),
        ("_", r"\_"),
        ("#", r"\#"),
        ("^", r"\^{}"),
    ):
        text = text.replace(char, repl)
    return text


def render_latex(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    caption: str | None = None,
    label: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a LaTeX ``tabular`` (wrapped in ``table`` when captioned).

    Handy for pasting regenerated tables straight into a writeup; the
    experiment registry's reports all render through here via
    ``ExperimentReport`` rows.
    """
    cols = "l" * len(headers)
    body = [
        r"\begin{tabular}{" + cols + "}",
        r"\toprule",
        " & ".join(_latex_escape(h) for h in headers) + r" \\",
        r"\midrule",
    ]
    for row in rows:
        body.append(
            " & ".join(_latex_escape(format_cell(c, float_fmt)) for c in row)
            + r" \\"
        )
    body += [r"\bottomrule", r"\end{tabular}"]
    if caption is None and label is None:
        return "\n".join(body)
    wrapped = [r"\begin{table}[t]", r"\centering"] + body
    if caption:
        wrapped.append(r"\caption{" + _latex_escape(caption) + "}")
    if label:
        wrapped.append(r"\label{" + label + "}")
    wrapped.append(r"\end{table}")
    return "\n".join(wrapped)
