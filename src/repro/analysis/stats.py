"""Statistics for measured ratios: summaries and bootstrap intervals.

Competitive analysis cares about the max, but when comparing algorithms on
random workloads the *distribution* of ratios matters; this module gives
the experiments honest error bars (nonparametric bootstrap, seeded).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True)
class RatioStats:
    """Summary of a sample of ratios."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_sample(cls, values: Sequence[float]) -> RatioStats:
        if len(values) == 0:
            raise ValueError("need at least one value")
        arr = np.asarray(values, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
            maximum=float(arr.max()),
        )


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, lo)),
        float(np.quantile(stats, 1.0 - lo)),
    )


def paired_improvement(
    baseline: Sequence[float],
    candidate: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, tuple[float, float], float]:
    """Paired comparison of two algorithms on the same instances.

    Returns ``(mean ratio candidate/baseline, bootstrap CI of that mean,
    win rate)`` — a mean ratio below 1 with a CI excluding 1 means the
    candidate is reliably better on this workload distribution.

    The win rate counts strict wins (``candidate < baseline``) as 1 and
    ties as 0.5, so two identical algorithms score 0.5 — not the 100%
    "win" the old ``candidate <= baseline`` rule reported.
    """
    b = np.asarray(baseline, dtype=float)
    c = np.asarray(candidate, dtype=float)
    if b.shape != c.shape or b.size == 0:
        raise ValueError("need equal-length non-empty paired samples")
    rel = c / b
    ci = bootstrap_ci(rel, np.mean, confidence, n_resamples, seed)
    win_rate = float((c < b).mean() + 0.5 * (c == b).mean())
    return float(rel.mean()), ci, win_rate
