"""``qbss-report`` — regenerate the paper's tables and figures from the CLI.

Examples::

    qbss-report rho                 # the Sec. 4.2 rho table
    qbss-report table1 --alpha 2.5  # Table 1 at alpha = 2.5
    qbss-report all                 # every registered experiment
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.experiments import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-report",
        description=(
            "Regenerate the evaluation artifacts of 'Speed Scaling with "
            "Explorable Uncertainty' (SPAA 2021)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY) + ["all", "verify"],
        help=(
            "which paper artifact to regenerate; 'verify' runs the "
            "condensed reproduction check-list"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="power exponent (where the experiment takes one; default 3.0)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="jobs per random instance (where applicable)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of random seeds (where applicable)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown document instead of ASCII tables",
    )
    return parser


def _kwargs_for(name: str, args: argparse.Namespace) -> dict:
    import inspect

    fn = REGISTRY[name]
    sig = inspect.signature(fn)
    kwargs = {}
    if args.alpha is not None and "alpha" in sig.parameters:
        kwargs["alpha"] = args.alpha
    if args.n is not None and "n" in sig.parameters:
        kwargs["n"] = args.n
    if args.seeds is not None and "seeds" in sig.parameters:
        kwargs["seeds"] = tuple(range(args.seeds))
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "verify":
        from .analysis.verification import all_ok, render_claims, verify_reproduction

        claims = verify_reproduction(
            alpha=args.alpha or 3.0, n=args.n or 12
        )
        print(render_claims(claims))
        return 0 if all_ok(claims) else 1
    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    if args.markdown:
        from .analysis.report import generate_markdown

        overrides = {name: _kwargs_for(name, args) for name in names}
        print(generate_markdown(names, overrides))
        return 0
    for name in names:
        report = REGISTRY[name](**_kwargs_for(name, args))
        print(report.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
