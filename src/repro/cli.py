"""``qbss-report`` — regenerate the paper's tables and figures from the CLI.

Examples::

    qbss-report rho                 # the Sec. 4.2 rho table
    qbss-report table1 --alpha 2.5  # Table 1 at alpha = 2.5
    qbss-report all --jobs 4        # every experiment, over a process pool
    qbss-report all --no-cache      # recompute, bypassing the result cache
    qbss-report --list              # what's in the registry

Evaluation goes through :mod:`repro.engine`: experiments fan out over a
process pool (``--jobs``, with ``0``/``auto`` meaning one worker per CPU)
and warm re-runs are served from the content-addressed result cache
(``--cache-dir``, ``--no-cache``, ``--cache-prune``).  Reports go to
stdout; the engine-metrics footer (per-experiment wall time and cache
hit/miss) goes to stderr, so piped report output stays deterministic.

This module also hosts ``qbss-replay`` (:func:`replay_main`) — the
trace-driven evaluation CLI of :mod:`repro.traces`::

    qbss-replay trace.swf --shard-window 3600 --algorithms avrq,bkpq
    qbss-replay jobs.csv --format csv --noise-model lognormal --jobs auto
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__ as PACKAGE_VERSION
from .analysis.experiments import REGISTRY, experiment_params, resolve_kwargs


def _add_version_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {PACKAGE_VERSION}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-report",
        description=(
            "Regenerate the evaluation artifacts of 'Speed Scaling with "
            "Explorable Uncertainty' (SPAA 2021)."
        ),
    )
    _add_version_argument(parser)
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(REGISTRY) + ["all", "verify"],
        help=(
            "which paper artifact to regenerate; 'verify' runs the "
            "condensed reproduction check-list"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="power exponent (where the experiment takes one; default 3.0)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="jobs per random instance (where applicable)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of random seeds (where applicable)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown document instead of ASCII tables",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help=(
            "fan experiments out over N worker processes; 0 or 'auto' "
            "means one per CPU (default: serial)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result-cache directory (default: $QBSS_CACHE_DIR or "
            "~/.cache/qbss-repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    parser.add_argument(
        "--cache-prune",
        default=None,
        metavar="SPEC",
        help=(
            "prune the result cache before running: delete entries older "
            "than an age ('30d', '12h') and/or evict oldest-first beyond a "
            "size budget ('500mb', '7d,1gb'); with no experiment given, "
            "prune and exit"
        ),
    )
    _add_robustness_arguments(parser)
    _add_obs_arguments(parser)
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered experiments and their parameters, then exit",
    )
    return parser


def _add_robustness_arguments(parser: argparse.ArgumentParser) -> None:
    """The hardened-execution flags shared by both CLIs (docs/robustness.md)."""
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline per task: a task running longer is cancelled and "
            "reported as a timeout while the batch continues (enforced "
            "with --jobs > 1; serial execution cannot preempt a task)"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help=(
            "total attempts per task for transient failures — worker "
            "death, cache I/O errors (default 3; 1 disables retries)"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "execution backend: 'serial' (inline), 'pool' (local process "
            "pool, the default), or 'remote:HOST:PORT[,HOST:PORT...]' to "
            "fan tasks out to qbss-worker processes over TCP; remote "
            "entries may also be '@FILE' naming a qbss-worker --port-file "
            "(see docs/backends.md)"
        ),
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flags shared by both CLIs (docs/observability.md)."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write a JSON-lines span trace of the run (batch/task/attempt "
            "spans plus retry/timeout/quarantine events); report output is "
            "byte-identical with or without this flag"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "export run metrics after the run; a '.prom'/'.txt' suffix "
            "selects Prometheus text exposition, anything else JSON"
        ),
    )
    parser.add_argument(
        "--manifest-out",
        default=None,
        metavar="FILE",
        help=(
            "write a run manifest (package/python version, resolved "
            "arguments, seed, cache dir, fault plan, wall-clock start) "
            "as a repro.io JSON document"
        ),
    )


def _obs_setup(args: argparse.Namespace):
    """Build the (tracer, metrics registry, wall-clock start) triple.

    The wall clock is read exactly once, here — the manifest is the only
    consumer of ``time.time()``; nothing on the execution path touches it.
    """
    import time

    tracer = None
    if args.trace_out is not None:
        from .obs import Tracer

        tracer = Tracer.to_path(args.trace_out)
    registry = None
    if args.metrics_out is not None:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    return tracer, registry, time.time()


def _obs_finish(
    args: argparse.Namespace,
    tool: str,
    tracer,
    registry,
    *,
    started_at: float,
    seed=None,
    cache_dir=None,
    recovery=None,
) -> None:
    """Flush the trace and write the metrics/manifest output files."""
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if registry is not None:
        from .obs import write_metrics

        fmt = write_metrics(registry, args.metrics_out)
        print(
            f"metrics written to {args.metrics_out} ({fmt})", file=sys.stderr
        )
    if args.manifest_out is not None:
        from . import io as rio
        from .engine.faults import active_fault_plan
        from .obs import RunManifest

        manifest = RunManifest.create(
            tool,
            vars(args),
            seed=seed,
            cache_dir=cache_dir,
            fault_plan=active_fault_plan(),
            recovery=recovery,
            now=started_at,
        )
        rio.save(manifest, args.manifest_out)
        print(f"manifest written to {args.manifest_out}", file=sys.stderr)


def _retry_policy(parser: argparse.ArgumentParser, args: argparse.Namespace):
    from .engine import RetryPolicy

    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be > 0")
    try:
        return RetryPolicy(max_attempts=args.max_attempts)
    except ValueError as exc:
        parser.error(str(exc))


def _overrides_from_args(args: argparse.Namespace) -> dict:
    """The CLI's global keyword overrides, in experiment-kwargs form."""
    overrides = {}
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.n is not None:
        overrides["n"] = args.n
    if args.seeds is not None:
        overrides["seeds"] = tuple(range(args.seeds))
    return overrides


def _list_experiments() -> str:
    """One line per registry entry: name, defaults, docstring summary."""
    lines = []
    for name in sorted(REGISTRY):
        doc = (REGISTRY[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        params = ", ".join(
            f"{k}={v}" for k, v in experiment_params(name).items()
        )
        lines.append(f"{name:<22} {summary}")
        if params:
            lines.append(f"{'':<22}   defaults: {params}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Reader went away (e.g. `qbss-report rho | head`); die quietly with
        # the conventional 128+SIGPIPE status instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _resolve_jobs_arg(parser: argparse.ArgumentParser, value) -> int:
    from .engine import resolve_jobs

    try:
        return resolve_jobs(value)
    except ValueError as exc:
        parser.error(str(exc))


def _backend_arg(
    parser: argparse.ArgumentParser, args: argparse.Namespace, jobs: int
) -> tuple[str | None, int]:
    """Validate ``--backend``; returns ``(spec, effective jobs)``.

    A remote spec raises the effective job count to the worker count so
    the driver actually feeds the whole fleet (and the replay memory
    bound of ``2 x jobs`` in-flight shards scales with it).
    """
    if args.backend is None:
        return None, jobs
    from .engine import parse_backend_spec

    try:
        kind, entries = parse_backend_spec(args.backend)
    except ValueError as exc:
        parser.error(str(exc))
    if kind == "remote":
        jobs = max(jobs, len(entries))
    return args.backend, jobs


def _prune_cache(
    parser: argparse.ArgumentParser, spec: str, cache_dir
) -> None:
    """Apply a ``--cache-prune`` spec; reports the outcome on stderr."""
    from .engine import ResultCache, parse_prune_spec

    try:
        max_age_days, max_bytes = parse_prune_spec(spec)
    except ValueError as exc:
        parser.error(str(exc))
    stats = ResultCache(cache_dir).prune(
        max_age_days=max_age_days, max_bytes=max_bytes
    )
    print(
        f"cache prune: removed {stats.removed} of {stats.scanned} entries "
        f"({stats.freed_bytes} bytes freed)",
        file=sys.stderr,
    )


def _main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(_list_experiments())
        return 0
    if args.cache_prune is not None:
        _prune_cache(parser, args.cache_prune, args.cache_dir)
        if args.experiment is None:
            return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all'/'verify') is required")
    jobs = _resolve_jobs_arg(parser, args.jobs)
    if args.experiment == "verify":
        from .analysis.verification import all_ok, render_claims, verify_reproduction

        claims = verify_reproduction(alpha=args.alpha or 3.0, n=args.n or 12)
        print(render_claims(claims))
        return 0 if all_ok(claims) else 1

    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    cli_overrides = _overrides_from_args(args)
    overrides = {}
    used_anywhere = set()
    per_name_unused = {}
    for name in names:
        call_kwargs, _resolved, unused = resolve_kwargs(name, cli_overrides)
        overrides[name] = call_kwargs
        used_anywhere.update(call_kwargs)
        per_name_unused[name] = unused
    if len(names) == 1:
        # Warn per unused override: previously --alpha etc. were silently
        # dropped when the experiment named its parameters differently.
        for key in per_name_unused[names[0]]:
            print(
                f"warning: --{key.replace('_', '-')} is not a parameter of "
                f"experiment '{names[0]}' and was ignored",
                file=sys.stderr,
            )
    else:
        for key in sorted(set(cli_overrides) - used_anywhere):
            print(
                f"warning: --{key.replace('_', '-')} matched no experiment "
                "and was ignored everywhere",
                file=sys.stderr,
            )

    from .engine import run_experiments

    backend, jobs = _backend_arg(parser, args, jobs)
    tracer, registry, started_at = _obs_setup(args)
    try:
        result = run_experiments(
            names,
            overrides,
            jobs=jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            task_timeout=args.task_timeout,
            retry=_retry_policy(parser, args),
            tracer=tracer,
            metrics=registry,
            backend=backend,
        )
    except BaseException:
        if tracer is not None:
            tracer.close()
        raise

    if args.markdown:
        from .analysis.report import engine_failures_to_markdown, reports_to_markdown

        print(reports_to_markdown(result.reports), end="")
        print(engine_failures_to_markdown(result), end="")
    else:
        for run in result.runs:
            if run.report is not None:
                print(run.report.render())
                print()

    _obs_finish(
        args,
        "qbss-report",
        tracer,
        registry,
        started_at=started_at,
        cache_dir=result.cache_dir,
    )
    print(result.footer(), file=sys.stderr)
    for run in result.errors:
        print(
            f"error: experiment '{run.name}' failed "
            f"({run.metrics.status} after {run.metrics.attempts} attempt(s)):"
            f"\n{run.metrics.error}",
            file=sys.stderr,
        )
    return 1 if result.errors else 0


# ----------------------------------------------------------------------------------
# qbss-replay — trace-driven evaluation (see repro.traces)
# ----------------------------------------------------------------------------------


def build_replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-replay",
        description=(
            "Replay an external workload trace (SWF cluster log or "
            "release,deadline,runtime[,query_cost] CSV/JSONL) through the "
            "QBSS online algorithms: synthesize uncertainty around each "
            "observed runtime, shard the stream into time windows, and "
            "report per-shard competitive ratios against the clairvoyant "
            "optimum."
        ),
    )
    _add_version_argument(parser)
    parser.add_argument("trace", help="path to the trace file")
    parser.add_argument(
        "--format",
        choices=["auto", "swf", "csv", "jsonl"],
        default="auto",
        help="trace format (default: detect from the file extension)",
    )
    parser.add_argument(
        "--noise-model",
        default="multiplicative",
        metavar="NAME",
        help=(
            "how the upper bound w is synthesized from the observed "
            "runtime w*: multiplicative, lognormal or adversarial "
            "(default: multiplicative)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="noise-synthesis seed (per-record derivation; default 0)",
    )
    parser.add_argument(
        "--deadline-slack",
        type=float,
        default=2.0,
        metavar="F",
        help=(
            "for traces without explicit deadlines (SWF): window = F x "
            "requested (or observed) runtime (default 2.0)"
        ),
    )
    parser.add_argument(
        "--shard-window",
        type=float,
        default=3600.0,
        metavar="W",
        help="time-window width of one shard, in trace time units "
        "(default 3600 — one hour of an SWF log)",
    )
    parser.add_argument(
        "--algorithms",
        default=",".join(_default_replay_algorithms()),
        metavar="A,B,...",
        help=(
            "comma-separated online algorithms to replay "
            f"(default: {','.join(_default_replay_algorithms())})"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=3.0,
        help="power exponent (default 3.0)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="replay only the first N usable records",
    )
    parser.add_argument(
        "--jobs",
        default="auto",
        metavar="N",
        help=(
            "evaluate shards over N worker processes; 0 or 'auto' means "
            "one per CPU (default: auto)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "shard-result cache directory (default: $QBSS_CACHE_DIR or "
            "~/.cache/qbss-repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the shard cache entirely (no reads, no writes)",
    )
    parser.add_argument(
        "--cache-prune",
        default=None,
        metavar="SPEC",
        help=(
            "prune the cache before replaying ('30d', '500mb', '7d,1gb')"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help=(
            "durably record each completed shard to FILE (fsync'd JSONL) "
            "so an interrupted replay can be resumed with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from an existing --checkpoint file: shards it already "
            "holds are served from it and skipped, everything else re-runs"
        ),
    )
    _add_robustness_arguments(parser)
    _add_obs_arguments(parser)
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown document instead of ASCII tables",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also serialize the full replay report (repro.io JSON)",
    )
    return parser


def _default_replay_algorithms():
    from .traces.replay import DEFAULT_ALGORITHMS

    return DEFAULT_ALGORITHMS


def replay_main(argv: list[str] | None = None) -> int:
    try:
        return _replay_main(argv)
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _replay_main(argv: list[str] | None = None) -> int:
    parser = build_replay_parser()
    args = parser.parse_args(argv)
    jobs = _resolve_jobs_arg(parser, args.jobs)
    if args.shard_window <= 0:
        parser.error("--shard-window must be > 0")
    if args.limit is not None and args.limit < 1:
        parser.error("--limit must be >= 1")
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.cache_prune is not None:
        _prune_cache(parser, args.cache_prune, args.cache_dir)

    from .traces import (
        TraceOrderError,
        TraceParseError,
        get_noise_model,
        replay_trace,
        validate_replay_algorithms,
    )

    algorithms = tuple(
        name.strip() for name in args.algorithms.split(",") if name.strip()
    )
    try:
        validate_replay_algorithms(algorithms)
        get_noise_model(args.noise_model)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))
    if not os.path.exists(args.trace):
        parser.error(f"trace file not found: {args.trace}")

    backend, jobs = _backend_arg(parser, args, jobs)
    tracer, registry, started_at = _obs_setup(args)
    checkpoint = None
    if args.checkpoint is not None:
        from .traces.checkpoint import ReplayCheckpoint

        checkpoint = ReplayCheckpoint(args.checkpoint, resume=args.resume)
        if args.resume:
            note = (
                f" ({checkpoint.torn} torn entries dropped)"
                if checkpoint.torn
                else ""
            )
            print(
                f"resuming from {args.checkpoint}: "
                f"{checkpoint.completed} shards already completed{note}",
                file=sys.stderr,
            )
    try:
        report, metrics = replay_trace(
            args.trace,
            trace_format=args.format,
            noise_model=args.noise_model,
            seed=args.seed,
            deadline_slack=args.deadline_slack,
            limit=args.limit,
            algorithms=algorithms,
            alpha=args.alpha,
            shard_window=args.shard_window,
            jobs=jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            task_timeout=args.task_timeout,
            retry=_retry_policy(parser, args),
            tracer=tracer,
            metrics=registry,
            backend=backend,
            checkpoint=checkpoint,
        )
    except (TraceParseError, TraceOrderError, ValueError) as exc:
        if tracer is not None:
            tracer.close()
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BaseException:
        if tracer is not None:
            tracer.close()
        raise
    finally:
        if checkpoint is not None:
            checkpoint.close()

    if not report.shards:
        if tracer is not None:
            tracer.close()
        print("error: trace contains no usable records", file=sys.stderr)
        return 1

    if args.markdown:
        from .analysis.report import replay_report_to_markdown

        print(replay_report_to_markdown(report), end="")
    else:
        print(report.render())

    if args.output:
        from . import io as rio

        rio.save(report, args.output)
        print(f"report written to {args.output}", file=sys.stderr)

    recovery = None
    if args.checkpoint is not None:
        recovery = {
            "checkpoint": args.checkpoint,
            "resumed_shards": metrics.resumed,
        }
    _obs_finish(
        args,
        "qbss-replay",
        tracer,
        registry,
        started_at=started_at,
        seed=args.seed,
        cache_dir=metrics.cache_dir,
        recovery=recovery,
    )
    print(metrics.footer(), file=sys.stderr)
    failed = report.failed_shards
    if failed:
        for shard in failed:
            print(
                f"error: shard {shard.get('index')} "
                f"[{shard.get('start')}, {shard.get('end')}) "
                f"ended with status '{shard.get('status')}'",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
