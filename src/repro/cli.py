"""``qbss-report`` — regenerate the paper's tables and figures from the CLI.

Examples::

    qbss-report rho                 # the Sec. 4.2 rho table
    qbss-report table1 --alpha 2.5  # Table 1 at alpha = 2.5
    qbss-report all --jobs 4        # every experiment, over a process pool
    qbss-report all --no-cache      # recompute, bypassing the result cache
    qbss-report --list              # what's in the registry

Evaluation goes through :mod:`repro.engine`: experiments fan out over a
process pool (``--jobs``) and warm re-runs are served from the
content-addressed result cache (``--cache-dir``, ``--no-cache``).  Reports
go to stdout; the engine-metrics footer (per-experiment wall time and
cache hit/miss) goes to stderr, so piped report output stays deterministic.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.experiments import REGISTRY, experiment_params, resolve_kwargs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-report",
        description=(
            "Regenerate the evaluation artifacts of 'Speed Scaling with "
            "Explorable Uncertainty' (SPAA 2021)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(REGISTRY) + ["all", "verify"],
        help=(
            "which paper artifact to regenerate; 'verify' runs the "
            "condensed reproduction check-list"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="power exponent (where the experiment takes one; default 3.0)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="jobs per random instance (where applicable)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of random seeds (where applicable)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown document instead of ASCII tables",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan experiments out over N worker processes (default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result-cache directory (default: $QBSS_CACHE_DIR or "
            "~/.cache/qbss-repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered experiments and their parameters, then exit",
    )
    return parser


def _overrides_from_args(args: argparse.Namespace) -> dict:
    """The CLI's global keyword overrides, in experiment-kwargs form."""
    overrides = {}
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.n is not None:
        overrides["n"] = args.n
    if args.seeds is not None:
        overrides["seeds"] = tuple(range(args.seeds))
    return overrides


def _list_experiments() -> str:
    """One line per registry entry: name, defaults, docstring summary."""
    lines = []
    for name in sorted(REGISTRY):
        doc = (REGISTRY[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        params = ", ".join(
            f"{k}={v}" for k, v in experiment_params(name).items()
        )
        lines.append(f"{name:<22} {summary}")
        if params:
            lines.append(f"{'':<22}   defaults: {params}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Reader went away (e.g. `qbss-report rho | head`); die quietly with
        # the conventional 128+SIGPIPE status instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(_list_experiments())
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all'/'verify') is required")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.experiment == "verify":
        from .analysis.verification import all_ok, render_claims, verify_reproduction

        claims = verify_reproduction(alpha=args.alpha or 3.0, n=args.n or 12)
        print(render_claims(claims))
        return 0 if all_ok(claims) else 1

    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    cli_overrides = _overrides_from_args(args)
    overrides = {}
    used_anywhere = set()
    per_name_unused = {}
    for name in names:
        call_kwargs, _resolved, unused = resolve_kwargs(name, cli_overrides)
        overrides[name] = call_kwargs
        used_anywhere.update(call_kwargs)
        per_name_unused[name] = unused
    if len(names) == 1:
        # Warn per unused override: previously --alpha etc. were silently
        # dropped when the experiment named its parameters differently.
        for key in per_name_unused[names[0]]:
            print(
                f"warning: --{key.replace('_', '-')} is not a parameter of "
                f"experiment '{names[0]}' and was ignored",
                file=sys.stderr,
            )
    else:
        for key in sorted(set(cli_overrides) - used_anywhere):
            print(
                f"warning: --{key.replace('_', '-')} matched no experiment "
                "and was ignored everywhere",
                file=sys.stderr,
            )

    from .engine import run_experiments

    result = run_experiments(
        names,
        overrides,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )

    if args.markdown:
        from .analysis.report import reports_to_markdown

        print(reports_to_markdown(result.reports), end="")
    else:
        for run in result.runs:
            if run.report is not None:
                print(run.report.render())
                print()

    print(result.footer(), file=sys.stderr)
    for run in result.errors:
        print(
            f"error: experiment '{run.name}' failed:\n{run.metrics.error}",
            file=sys.stderr,
        )
    return 1 if result.errors else 0


if __name__ == "__main__":
    sys.exit(main())
