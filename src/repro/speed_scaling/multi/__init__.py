"""Multi-machine speed scaling: AVR(m), slot allocation, bounds, optimum."""

from .allocation import SlotAllocation, allocate_slot
from .avr_m import AVRmResult, avr_m
from .bounds import max_speed_lower_bound, pooled_lower_bound
from .flow import (
    MinMaxSpeedResult,
    feasible_with_cap,
    max_flow_allocation,
    min_max_speed,
    min_max_speed_schedule,
)
from .mcnaughton import mcnaughton_slot
from .oa_m import OAmResult, oa_m
from .nonmigratory import (
    NonMigratoryResult,
    assign_arrival_least_density,
    assign_greedy_energy,
    assign_least_density,
    assign_round_robin,
    non_migratory,
    optimal_non_migratory,
)
from .optimal import (
    convex_optimal_energy,
    elementary_grid,
    optimal_allocation,
    optimal_schedule,
    slot_energy,
)

__all__ = [
    "MinMaxSpeedResult",
    "feasible_with_cap",
    "max_flow_allocation",
    "min_max_speed",
    "min_max_speed_schedule",
    "OAmResult",
    "oa_m",
    "NonMigratoryResult",
    "assign_arrival_least_density",
    "assign_greedy_energy",
    "assign_least_density",
    "assign_round_robin",
    "non_migratory",
    "optimal_non_migratory",
    "SlotAllocation",
    "allocate_slot",
    "AVRmResult",
    "avr_m",
    "max_speed_lower_bound",
    "pooled_lower_bound",
    "mcnaughton_slot",
    "convex_optimal_energy",
    "elementary_grid",
    "optimal_allocation",
    "optimal_schedule",
    "slot_energy",
]
