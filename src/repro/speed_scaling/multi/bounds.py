"""Lower bounds on the optimal multi-machine energy.

The *pooled relaxation* drops the no-self-parallelism constraint: a set of
``m`` machines becomes one fluid resource whose aggregate speed ``S(t)`` is
split equally across machines (optimal by convexity of ``s**alpha``), so the
power drawn at aggregate speed ``S`` is ``m * (S/m)**alpha``.  The function
``S -> m (S/m)**alpha`` is convex, and the YDS profile minimises the
integral of *every* convex function of the aggregate speed subject to the
deadline constraints; hence

    OPT_m(I)  >=  sum over YDS segments of  m * (s_seg / m)**alpha * dur.

This bound is exact when no single job forces a machine above the average
(no "big" jobs in the optimal solution), and is within a factor of the true
optimum otherwise; the convex-programming optimum in
:mod:`repro.speed_scaling.multi.optimal` closes the gap for small instances.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...core.job import Job
from ...core.power import PowerFunction
from ..yds import yds_profile


def pooled_lower_bound(jobs: Sequence[Job], machines: int, alpha: float) -> float:
    """Energy lower bound for ``jobs`` on ``machines`` machines."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    power = PowerFunction(alpha)
    profile = yds_profile(jobs)
    return sum(
        machines * power.energy(seg.speed / machines, seg.duration)
        for seg in profile
    )


def max_speed_lower_bound(jobs: Sequence[Job], machines: int) -> float:
    """Max-speed lower bound: the larger of the pooled intensity and the
    largest single-job density (a job cannot run parallel to itself)."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    profile = yds_profile(jobs)
    pooled = profile.max_speed() / machines
    solo = max((j.density for j in jobs if j.work > 0), default=0.0)
    return max(pooled, solo)
