"""Preemptive *non-migratory* multi-machine speed scaling.

The paper's conclusion notes its approach "can directly be applied to the
preemptive-non-migratory variant" (Greiner, Nonner, Souza 2014): jobs may
be preempted but every piece of one job must run on a single machine.  A
non-migratory schedule is an *assignment* of jobs to machines followed by
an independent single-machine problem per machine — optimal per machine is
just YDS, so the whole difficulty is the assignment.

This module provides the assignment strategies and the two-level runner:

* :func:`assign_least_density` — list scheduling by density (sort jobs by
  density descending, place each on the machine with the least density
  already assigned over the job's window) — the natural online-compatible
  heuristic;
* :func:`assign_round_robin` — the baseline strawman;
* :func:`assign_greedy_energy` — offline greedy: place each job where it
  increases the YDS energy least (O(n * m) YDS calls, small n only);
* :func:`non_migratory` — run an assignment, then YDS per machine.

Greiner et al. show the gap between migratory and non-migratory optima is
bounded (the "Bell is ringing" bound B_alpha-related constant); the
ablation bench measures the empirical gap against AVR(m) and the pooled
lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ...core.constants import EPS
from ...core.job import Job
from ...core.power import PowerFunction
from ...core.profile import SpeedProfile, profiles_energy, profiles_max_speed
from ...core.schedule import Schedule
from ..yds import yds

Assignment = dict[str, int]  # job id -> machine
Assigner = Callable[[Sequence[Job], int], Assignment]


def assign_round_robin(jobs: Sequence[Job], machines: int) -> Assignment:
    """Jobs to machines in arrival order, round robin."""
    ordered = sorted(jobs, key=lambda j: (j.release, j.id))
    return {j.id: i % machines for i, j in enumerate(ordered)}


def assign_least_density(jobs: Sequence[Job], machines: int) -> Assignment:
    """List scheduling by density.

    Jobs are placed densest-first on the machine whose already-assigned
    density overlapping the job's window is smallest — the classical
    makespan-style heuristic transplanted to density space.  Processing
    jobs in arrival order instead (online mode) is what
    :func:`repro.qbss.nonmigratory.avrq_nm` uses.
    """
    assignment: Assignment = {}
    loads: list[list[Job]] = [[] for _ in range(machines)]

    def overlap_density(machine_jobs: list[Job], job: Job) -> float:
        total = 0.0
        for other in machine_jobs:
            lo = max(other.release, job.release)
            hi = min(other.deadline, job.deadline)
            if hi > lo:
                total += other.density * (hi - lo) / job.span
        return total

    for job in sorted(jobs, key=lambda j: (-j.density, j.id)):
        best = min(
            range(machines), key=lambda m: (overlap_density(loads[m], job), m)
        )
        assignment[job.id] = best
        loads[best].append(job)
    return assignment


def assign_arrival_least_density(jobs: Sequence[Job], machines: int) -> Assignment:
    """Online-compatible variant: assign in arrival order, least overlap."""
    assignment: Assignment = {}
    loads: list[list[Job]] = [[] for _ in range(machines)]

    def overlap_density(machine_jobs: list[Job], job: Job) -> float:
        total = 0.0
        for other in machine_jobs:
            lo = max(other.release, job.release)
            hi = min(other.deadline, job.deadline)
            if hi > lo:
                total += other.density * (hi - lo) / job.span
        return total

    for job in sorted(jobs, key=lambda j: (j.release, j.id)):
        best = min(
            range(machines), key=lambda m: (overlap_density(loads[m], job), m)
        )
        assignment[job.id] = best
        loads[best].append(job)
    return assignment


def assign_greedy_energy(
    jobs: Sequence[Job], machines: int, alpha: float = 3.0
) -> Assignment:
    """Offline greedy: place each job (densest first) where the increase in
    per-machine YDS energy is smallest.  Exact energies, so O(n m) YDS runs
    — intended for small instances and as an upper reference for the
    cheaper heuristics."""
    power = PowerFunction(alpha)
    assignment: Assignment = {}
    per_machine: list[list[Job]] = [[] for _ in range(machines)]
    energies = [0.0] * machines

    for job in sorted(jobs, key=lambda j: (-j.density, j.id)):
        best_m, best_delta, best_energy = 0, float("inf"), 0.0
        for m in range(machines):
            candidate = per_machine[m] + [job]
            e = yds(candidate).profile.energy(power)
            delta = e - energies[m]
            if delta < best_delta - EPS:
                best_m, best_delta, best_energy = m, delta, e
        assignment[job.id] = best_m
        per_machine[best_m].append(job)
        energies[best_m] = best_energy
    return assignment


@dataclass
class NonMigratoryResult:
    """Per-machine YDS schedules under a fixed assignment."""

    assignment: Assignment
    profiles: list[SpeedProfile]
    schedule: Schedule

    def energy(self, power: PowerFunction) -> float:
        return profiles_energy(self.profiles, power)

    def max_speed(self) -> float:
        return profiles_max_speed(self.profiles)


def optimal_non_migratory(
    jobs: Sequence[Job],
    machines: int,
    alpha: float,
    max_jobs: int = 9,
) -> NonMigratoryResult:
    """The exact non-migratory optimum by assignment enumeration (tiny n).

    Tries every one of the ``machines**n`` assignments (deduplicated by
    machine symmetry via canonical first-use ordering) and keeps the one
    whose per-machine YDS energies sum lowest.  With the exact migratory
    optimum (:func:`repro.speed_scaling.multi.optimal.convex_optimal_energy`)
    this measures the true migration gap on small instances.
    """
    live = [j for j in jobs if j.work > EPS]
    if len(live) > max_jobs:
        raise ValueError(
            f"exact enumeration is machines**n; got n={len(live)} > {max_jobs}"
        )
    if not live:
        return non_migratory(jobs, machines)

    power = PowerFunction(alpha)
    ordered = sorted(live, key=lambda j: j.id)
    best_energy = float("inf")
    best_assignment: Assignment = {}

    def recurse(idx: int, assignment: list[int], used: int) -> None:
        nonlocal best_energy, best_assignment
        if idx == len(ordered):
            energy = 0.0
            for m in range(machines):
                mine = [
                    ordered[i] for i, mm in enumerate(assignment) if mm == m
                ]
                if mine:
                    energy += yds(mine).profile.energy(power)
                if energy >= best_energy:
                    return
            best_energy = energy
            best_assignment = {
                ordered[i].id: m for i, m in enumerate(assignment)
            }
            return
        # canonical symmetry breaking: a job may open at most one new machine
        for m in range(min(used + 1, machines)):
            assignment.append(m)
            recurse(idx + 1, assignment, max(used, m + 1))
            assignment.pop()

    recurse(0, [], 0)
    return non_migratory(
        jobs, machines, assigner=lambda js, m: dict(best_assignment)
    )


def non_migratory(
    jobs: Sequence[Job],
    machines: int,
    assigner: Assigner = assign_least_density,
) -> NonMigratoryResult:
    """Assign jobs, then schedule each machine optimally with YDS."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    live = [j for j in jobs if j.work > EPS]
    assignment = assigner(live, machines)
    missing = {j.id for j in live} - set(assignment)
    if missing:
        raise ValueError(f"assigner left jobs unassigned: {sorted(missing)}")

    schedule = Schedule(machines)
    profiles: list[SpeedProfile] = []
    for m in range(machines):
        mine = [j for j in live if assignment[j.id] == m]
        result = yds(mine)
        profiles.append(result.profile)
        for s in result.schedule.slices(0):
            schedule.add(s.start, s.end, s.speed, s.job_id, m)
    return NonMigratoryResult(assignment, profiles, schedule)
