"""AVR(m): the Average Rate heuristic on m parallel machines.

Albers, Antoniadis and Greiner 2015 extend AVR to ``m`` identical machines
with free migration and show it is ``2^{alpha-1} alpha^alpha + 1``-
competitive for energy.  Per elementary time slot (between consecutive
releases/deadlines), every active job contributes its density; rates are
placed on machines with the big/small rule
(:func:`repro.speed_scaling.multi.allocation.allocate_slot`) and the shared
machines are realised with McNaughton's wrap-around rule.

Speeds depend only on jobs released by the slot start, so the offline
construction equals the online behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ...core.constants import EPS
from ...core.job import Job
from ...core.power import PowerFunction
from ...core.profile import (
    Segment,
    SpeedProfile,
    profiles_energy,
    profiles_max_speed,
)
from ...core.schedule import Schedule
from ...core.timeline import dedupe_times
from .allocation import allocate_slot
from .mcnaughton import mcnaughton_slot


@dataclass
class AVRmResult:
    """Per-machine profiles and the realised migratory schedule."""

    profiles: list[SpeedProfile]
    schedule: Schedule

    def energy(self, power: PowerFunction) -> float:
        return profiles_energy(self.profiles, power)

    def max_speed(self) -> float:
        return profiles_max_speed(self.profiles)


def avr_m(jobs: Sequence[Job], machines: int) -> AVRmResult:
    """Run AVR(m) on ``jobs`` over ``machines`` identical machines."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    live = [j for j in jobs if j.work > EPS]
    schedule = Schedule(machines)
    per_machine_segments: list[list[Segment]] = [[] for _ in range(machines)]

    if not live:
        return AVRmResult([SpeedProfile() for _ in range(machines)], schedule)

    events = dedupe_times(
        [j.release for j in live] + [j.deadline for j in live]
    )
    for a, b in zip(events, events[1:]):
        active = [
            j for j in live if j.release - EPS <= a and b <= j.deadline + EPS
        ]
        if not active:
            continue
        densities = [j.density for j in active]
        alloc = allocate_slot(densities, machines)

        # Big jobs: sole occupancy of their machine for the whole slot.
        for item_idx, mach, dens in alloc.big:
            job = active[item_idx]
            schedule.add(a, b, dens, job.id, mach)
            per_machine_segments[mach].append(Segment(a, b, dens))

        # Small jobs: shared machines, wrap-around packing.
        if alloc.small_indices:
            works = [
                (active[i].id, active[i].density * (b - a))
                for i in alloc.small_indices
            ]
            pieces = mcnaughton_slot(
                works, a, b, alloc.small_speed, alloc.small_machines
            )
            for mach, piece in pieces:
                schedule.add(piece.start, piece.end, piece.speed, piece.job_id, mach)
            for mach in alloc.small_machines:
                per_machine_segments[mach].append(
                    Segment(a, b, alloc.small_speed)
                )

    profiles = [SpeedProfile(segs) for segs in per_machine_segments]
    return AVRmResult(profiles, schedule)
