"""McNaughton's wrap-around rule.

Realises a fluid slot allocation — each job owes ``x_j`` units of work in a
slot ``[a, b)`` on a pool of machines running at a common speed ``s`` — as a
concrete migratory schedule: fill machine after machine left to right, and
when a job crosses the slot boundary, wrap its remainder onto the next
machine starting again at ``a``.  Because every ``x_j <= s * (b - a)``, the
wrapped pieces of one job never overlap in time, so no job runs parallel to
itself (the classical McNaughton argument).
"""

from __future__ import annotations

from collections.abc import Sequence

from ...core.constants import EPS
from ...core.schedule import Slice


def mcnaughton_slot(
    works: Sequence[tuple[str, float]],
    start: float,
    end: float,
    speed: float,
    machines: Sequence[int],
) -> list[tuple[int, Slice]]:
    """Pack ``works = [(job_id, x_j), ...]`` into the slot.

    Returns ``(machine, slice)`` pairs.  Raises when the total work exceeds
    pool capacity or any single job exceeds per-machine capacity (both would
    make the fluid allocation bogus).
    """
    duration = end - start
    if duration <= 0:
        raise ValueError("slot must have positive duration")
    if speed <= 0:
        if any(x > EPS for _, x in works):
            raise ValueError("positive work in a zero-speed slot")
        return []

    cap = speed * duration
    total = sum(x for _, x in works)
    scale = max(1.0, abs(cap))
    if total > len(machines) * cap + EPS * scale * max(1, len(machines)):
        raise ValueError(
            f"slot overloaded: work {total} > capacity {len(machines) * cap}"
        )

    out: list[tuple[int, Slice]] = []
    mi = 0  # index into machines
    t = start
    for job_id, x in works:
        if x <= EPS * scale:
            continue
        if x > cap + EPS * scale:
            raise ValueError(
                f"job {job_id} work {x} exceeds per-machine slot capacity {cap}"
            )
        remaining = x
        while remaining > EPS * scale:
            if mi >= len(machines):
                raise ValueError("ran out of machines packing the slot")
            room = (end - t) * speed
            piece = min(remaining, room)
            if piece > EPS * scale:
                t2 = t + piece / speed
                out.append(
                    (machines[mi], Slice(t, min(t2, end), speed, job_id))
                )
                remaining -= piece
                t = t2
            if t >= end - EPS:
                mi += 1
                t = start
    return out
