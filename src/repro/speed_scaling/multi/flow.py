"""Flow-based feasibility and minimum maximum speed on m machines.

The classical feasibility characterisation (Horvath–Lam–Sethi /
Federgruen–Groenevelt): a set of jobs with windows and works can be
scheduled preemptively with migration on ``m`` machines whose speed never
exceeds ``s`` iff the bipartite flow network

    source --w_j--> job_j --s*|I|--> interval_I --m*s*|I|--> sink

(with an edge job->interval only when the job's window covers the
elementary interval) carries ``sum_j w_j`` units of flow.  The job->interval
capacity encodes "no job runs parallel to itself"; the interval->sink
capacity encodes the machine pool; McNaughton's rule realises any feasible
flow inside each interval.

On top of the oracle this module computes the exact minimum feasible peak
speed by bisection and constructs a witness schedule at that speed —
the multi-machine analogue of YDS's max-speed optimality, used as the
exact max-speed baseline for AVRQ(m) experiments (the density lower bound
in :mod:`repro.speed_scaling.multi.bounds` is only a bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import networkx as nx

from ...core.constants import EPS
from ...core.job import Job
from ...core.schedule import Schedule
from ...core.timeline import dedupe_times
from .mcnaughton import mcnaughton_slot

SOURCE = "__source__"
SINK = "__sink__"


def _grid(jobs: Sequence[Job]) -> list[tuple[float, float]]:
    pts = dedupe_times(
        [j.release for j in jobs] + [j.deadline for j in jobs]
    )
    return list(zip(pts, pts[1:]))


def _build_network(
    jobs: Sequence[Job], machines: int, cap: float
) -> tuple[nx.DiGraph, list[tuple[float, float]]]:
    grid = _grid(jobs)
    g = nx.DiGraph()
    for j in jobs:
        g.add_edge(SOURCE, ("job", j.id), capacity=j.work)
    for gi, (a, b) in enumerate(grid):
        length = b - a
        g.add_edge(("ivl", gi), SINK, capacity=machines * cap * length)
        for j in jobs:
            if j.release - EPS <= a and b <= j.deadline + EPS:
                g.add_edge(("job", j.id), ("ivl", gi), capacity=cap * length)
    return g, grid


def max_flow_allocation(
    jobs: Sequence[Job], machines: int, cap: float
) -> tuple[float, dict[str, dict[int, float]]]:
    """Max flow under speed cap ``cap``; returns (value, job->interval works)."""
    live = [j for j in jobs if j.work > EPS]
    if not live:
        return 0.0, {}
    g, _ = _build_network(live, machines, cap)
    value, flows = nx.maximum_flow(g, SOURCE, SINK)
    alloc: dict[str, dict[int, float]] = {}
    for j in live:
        per = {}
        for node, amount in flows.get(("job", j.id), {}).items():
            if isinstance(node, tuple) and node[0] == "ivl" and amount > EPS:
                per[node[1]] = amount
        alloc[j.id] = per
    return value, alloc


def feasible_with_cap(
    jobs: Sequence[Job], machines: int, cap: float, tol: float = 1e-9
) -> bool:
    """Can the jobs be scheduled with per-machine speed never above ``cap``?"""
    live = [j for j in jobs if j.work > EPS]
    total = sum(j.work for j in live)
    if total <= tol:
        return True
    value, _ = max_flow_allocation(live, machines, cap)
    return value >= total - tol * max(1.0, total)


def min_max_speed(
    jobs: Sequence[Job], machines: int, tol: float = 1e-9
) -> float:
    """The exact minimum feasible peak speed (bisection over the flow oracle)."""
    live = [j for j in jobs if j.work > EPS]
    if not live:
        return 0.0
    # lower bound: pooled intensity and single-job density; upper: AVR peak
    from .bounds import max_speed_lower_bound

    lo = max_speed_lower_bound(live, machines)
    hi = max(lo, max(j.density for j in live))
    while not feasible_with_cap(live, machines, hi, tol):
        hi *= 2.0
    if feasible_with_cap(live, machines, lo, tol):
        return lo
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if feasible_with_cap(live, machines, mid, tol):
            hi = mid
        else:
            lo = mid
        if hi - lo <= tol * max(1.0, hi):
            break
    return hi


@dataclass
class MinMaxSpeedResult:
    """The optimal peak speed with a witness schedule running at it."""

    speed: float
    schedule: Schedule


def min_max_speed_schedule(
    jobs: Sequence[Job], machines: int, tol: float = 1e-9
) -> MinMaxSpeedResult:
    """Construct a schedule attaining the minimum peak speed.

    Takes the max-flow allocation at the optimal cap (nudged up by the
    bisection tolerance so the flow saturates) and realises each elementary
    interval with McNaughton's wrap-around rule at the constant cap speed.
    """
    live = [j for j in jobs if j.work > EPS]
    schedule_cap = min_max_speed(live, machines, tol)
    if not live:
        return MinMaxSpeedResult(0.0, Schedule(machines))
    cap = schedule_cap * (1 + 10 * tol) + 10 * tol
    value, alloc = max_flow_allocation(live, machines, cap)
    total = sum(j.work for j in live)
    if value < total - 1e-6 * max(1.0, total):  # pragma: no cover
        raise RuntimeError("flow did not saturate at the computed optimum")

    grid = _grid(live)
    schedule = Schedule(machines)
    for gi, (a, b) in enumerate(grid):
        works = [
            (jid, per[gi]) for jid, per in alloc.items() if gi in per
        ]
        if not works:
            continue
        pieces = mcnaughton_slot(works, a, b, cap, list(range(machines)))
        for mach, sl in pieces:
            schedule.add(sl.start, sl.end, sl.speed, sl.job_id, mach)
    return MinMaxSpeedResult(schedule_cap, schedule)
