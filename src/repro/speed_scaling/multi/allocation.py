"""The AVR(m) per-slot allocation rule (Albers, Antoniadis, Greiner 2015).

Within a time slot, AVR(m) must place one density ``delta_j`` of work-rate
per active job onto ``m`` identical machines.  The rule, restated from the
paper (Sec. 6): iteratively take the densest unassigned job ``j*``; if its
density exceeds the average density over the remaining machines
(``delta_{j*} > Delta / |R|``), it is *big* — it gets the lowest-indexed
remaining machine all to itself at speed ``delta_{j*}``; otherwise all
remaining jobs are *small* and share the remaining machines at the common
speed ``Delta / |R|``.

The resulting machine-speed vector is non-increasing in the machine index,
the property Lemma 6.2 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence


@dataclass(frozen=True)
class SlotAllocation:
    """Result of allocating rates to machines within one slot.

    Attributes
    ----------
    big:
        ``(item_index, machine, speed)`` for each big job, machines in
        increasing index order and speeds non-increasing.
    small_indices:
        Indices (into the input sequence) of the small jobs.
    small_machines:
        Machines shared by the small jobs (all machines after the big ones).
    small_speed:
        The common speed of the shared machines (0 when no small jobs).
    machine_speeds:
        Speed of every machine, non-increasing in machine index.
    """

    big: tuple[tuple[int, int, float], ...]
    small_indices: tuple[int, ...]
    small_machines: tuple[int, ...]
    small_speed: float
    machine_speeds: tuple[float, ...]


def allocate_slot(densities: Sequence[float], machines: int) -> SlotAllocation:
    """Apply the big/small rule to ``densities`` on ``machines`` machines.

    Zero densities are treated as absent jobs.  Raises when the jobs cannot
    fit (more big jobs than machines can only happen if ``machines < 1``).
    """
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")

    order = sorted(
        (i for i, d in enumerate(densities) if d > 0),
        key=lambda i: -densities[i],
    )
    total = sum(densities[i] for i in order)

    big: list[tuple[int, int, float]] = []
    next_machine = 0
    remaining = machines
    k = 0  # how many of `order` are big
    while k < len(order):
        if remaining == 0:
            raise ValueError(
                "more big jobs than machines — instance is infeasible for "
                "the fluid AVR(m) allocation"
            )
        dens = densities[order[k]]
        if dens > total / remaining:
            big.append((order[k], next_machine, dens))
            next_machine += 1
            remaining -= 1
            total -= dens
            k += 1
        else:
            break

    small = tuple(order[k:])
    small_speed = (total / remaining) if small else 0.0
    small_machines = tuple(range(next_machine, machines)) if small else ()

    speeds = [0.0] * machines
    for _, mach, dens in big:
        speeds[mach] = dens
    for mach in small_machines:
        speeds[mach] = small_speed

    return SlotAllocation(
        big=tuple(big),
        small_indices=small,
        small_machines=small_machines,
        small_speed=small_speed,
        machine_speeds=tuple(speeds),
    )
