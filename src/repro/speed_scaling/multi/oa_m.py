"""OA(m): Optimal Available on m parallel machines (Albers et al. 2015).

The multi-machine replanning strategy: at every arrival, compute the
energy-optimal *migratory* schedule for all remaining work assuming no
further arrivals, and follow it until the next arrival.  Albers,
Antoniadis and Greiner prove OA(m) is ``alpha^alpha``-competitive, like
its single-machine parent.

The per-arrival plan is the convex program of
:mod:`repro.speed_scaling.multi.optimal` (exact but small-n); following the
plan means executing, per elementary interval, the planned per-job works
with the big/small machine split and McNaughton packing.  Intended for the
experiment sizes of this library (tens of jobs); the value is an exact
multi-machine replanning baseline for OAQ(m).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ...core.constants import EPS
from ...core.job import Job
from ...core.power import PowerFunction
from ...core.profile import (
    Segment,
    SpeedProfile,
    profiles_energy,
    profiles_max_speed,
)
from ...core.schedule import Schedule
from ...core.timeline import dedupe_times
from .allocation import allocate_slot
from .mcnaughton import mcnaughton_slot
from .optimal import elementary_grid, optimal_allocation




@dataclass
class OAmResult:
    """Per-machine profiles and the realised schedule of an OA(m) run."""

    profiles: list[SpeedProfile]
    schedule: Schedule
    unfinished: dict[str, float]

    @property
    def feasible(self) -> bool:
        return not self.unfinished

    def energy(self, power: PowerFunction) -> float:
        return profiles_energy(self.profiles, power)

    def max_speed(self) -> float:
        return profiles_max_speed(self.profiles)


def oa_m(jobs: Sequence[Job], machines: int, alpha: float = 3.0) -> OAmResult:
    """Run OA(m): replan the convex optimum at every arrival and follow it."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    live = [j for j in jobs if j.work > EPS]
    schedule = Schedule(machines)
    per_machine: list[list[Segment]] = [[] for _ in range(machines)]
    if not live:
        return OAmResult([SpeedProfile() for _ in range(machines)], schedule, {})

    arrivals = dedupe_times(j.release for j in live)
    horizon = max(j.deadline for j in live)
    remaining = {j.id: j.work for j in live}
    by_id = {j.id: j for j in live}

    for idx, t in enumerate(arrivals):
        until = arrivals[idx + 1] if idx + 1 < len(arrivals) else horizon
        if until <= t + EPS:
            continue
        plan_jobs = [
            Job(max(by_id[jid].release, t), by_id[jid].deadline, rem, jid)
            for jid, rem in remaining.items()
            if rem > EPS and by_id[jid].release <= t + EPS
        ]
        if not plan_jobs:
            continue
        alloc = optimal_allocation(plan_jobs, machines, alpha)
        grid = elementary_grid(plan_jobs)

        # follow the plan on [t, until): execute each planned interval's
        # works (pro-rated when `until` cuts an interval) with the big/small
        # split and McNaughton packing
        for gi, (a, b) in enumerate(grid):
            lo, hi = max(a, t), min(b, until)
            if hi <= lo + EPS:
                continue
            frac = (hi - lo) / (b - a)
            works = []
            for jid, per in alloc.items():
                x = per.get(gi, 0.0) * frac
                if x > EPS:
                    works.append((jid, x))
            if not works:
                continue
            densities = [w / (hi - lo) for _, w in works]
            slot = allocate_slot(densities, machines)
            for item_idx, mach, dens in slot.big:
                jid = works[item_idx][0]
                schedule.add(lo, hi, dens, jid, mach)
                per_machine[mach].append(Segment(lo, hi, dens))
                remaining[jid] = max(0.0, remaining[jid] - dens * (hi - lo))
            if slot.small_indices:
                small_works = [works[i] for i in slot.small_indices]
                pieces = mcnaughton_slot(
                    small_works, lo, hi, slot.small_speed, slot.small_machines
                )
                for mach, sl in pieces:
                    schedule.add(sl.start, sl.end, sl.speed, sl.job_id, mach)
                    remaining[sl.job_id] = max(
                        0.0, remaining[sl.job_id] - sl.work
                    )
                for mach in slot.small_machines:
                    per_machine[mach].append(
                        Segment(lo, hi, slot.small_speed)
                    )

    dust = 1e-6
    unfinished = {
        jid: rem
        for jid, rem in remaining.items()
        if rem > dust * max(1.0, by_id[jid].work)
    }
    profiles = [SpeedProfile(segs) for segs in per_machine]
    return OAmResult(profiles, schedule, unfinished)
