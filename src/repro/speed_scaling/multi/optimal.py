"""Exact optimal energy on m machines with migration, via convex programming.

Albers, Antoniadis and Greiner 2015 solve the offline migratory problem
optimally with a combinatorial algorithm.  We use a value-equivalent convex
formulation, which is easier to make robust in Python and doubles as an
independent cross-check of YDS for ``m = 1``:

* Partition time into elementary intervals between consecutive releases /
  deadlines.  In an optimal schedule the speed of each machine is constant
  on each elementary interval (convexity), so only the per-interval work
  vector matters.
* Variables: ``x[j, i] >= 0`` — work of job ``j`` done in interval ``i``
  (zero outside the job's window); ``sum_i x[j, i] = w_j``.
* The minimum energy to execute works ``x[., i]`` in an interval of length
  ``L`` on ``m`` machines is the *water-filling* value: iteratively, a job
  whose required speed ``x_j / L`` exceeds the average of the rest gets its
  own machine ("big", running the whole interval), and the remainder share
  the remaining machines equally — exactly the shape of the AVR(m) slot
  rule, here applied to per-interval works instead of densities.  This
  function is convex in ``x[., i]``.

The resulting program is convex and is solved with SLSQP.  Intended for
small instances (tests and spot checks); large benchmarks use
:func:`repro.speed_scaling.multi.bounds.pooled_lower_bound` instead.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import optimize

from ...core.constants import EPS
from ...core.job import Job
from ...core.timeline import dedupe_times


def slot_energy(works: np.ndarray, length: float, machines: int, alpha: float) -> float:
    """Minimum energy to run ``works`` within one interval of ``length``.

    Implements the water-filling split described in the module docstring.
    """
    xs = np.sort(works[works > 0])[::-1]
    if xs.size == 0:
        return 0.0
    total = float(xs.sum())
    remaining = machines
    energy = 0.0
    k = 0
    while k < xs.size and remaining > 0:
        if xs[k] > total / remaining + 0.0:
            # big: own machine for the whole interval
            energy += length * (xs[k] / length) ** alpha
            total -= float(xs[k])
            remaining -= 1
            k += 1
        else:
            break
    if k < xs.size:
        if remaining == 0:
            # infeasible packing; return a steep penalty to push SLSQP away
            return energy + 1e6 * total
        shared_speed = total / (remaining * length)
        energy += remaining * length * shared_speed**alpha
    return energy


def elementary_grid(jobs: Sequence[Job]) -> list[tuple[float, float]]:
    """Elementary intervals spanned by the jobs' releases and deadlines."""
    pts = dedupe_times(
        [j.release for j in jobs] + [j.deadline for j in jobs]
    )
    return list(zip(pts, pts[1:]))


def optimal_allocation(
    jobs: Sequence[Job],
    machines: int,
    alpha: float,
    tol: float = 1e-9,
) -> dict[str, dict[int, float]]:
    """Solve the convex program and return per-job per-interval works.

    Keys are job ids; inner keys index :func:`elementary_grid`'s intervals.
    Used by :func:`optimal_schedule` and by OA(m)'s replanning.
    """
    live = [j for j in jobs if j.work > EPS]
    if not live:
        return {}
    grid = elementary_grid(live)
    lengths = np.array([b - a for a, b in grid])
    n, g = len(live), len(grid)

    allowed = np.zeros((n, g), dtype=bool)
    for jidx, job in enumerate(live):
        for gidx, (a, b) in enumerate(grid):
            if job.release - EPS <= a and b <= job.deadline + EPS:
                allowed[jidx, gidx] = True

    var_index = [(j, i) for j in range(n) for i in range(g) if allowed[j, i]]
    nv = len(var_index)
    works = np.array([j.work for j in live])

    def unpack(z: np.ndarray) -> np.ndarray:
        x = np.zeros((n, g))
        for v, (j, i) in enumerate(var_index):
            x[j, i] = max(z[v], 0.0)
        return x

    def objective(z: np.ndarray) -> float:
        x = unpack(z)
        return sum(
            slot_energy(x[:, i], float(lengths[i]), machines, alpha)
            for i in range(g)
        )

    A = np.zeros((n, nv))
    for v, (j, _i) in enumerate(var_index):
        A[j, v] = 1.0
    z0 = np.zeros(nv)
    for v, (j, i) in enumerate(var_index):
        span = lengths[allowed[j]].sum()
        z0[v] = works[j] * lengths[i] / span

    res = optimize.minimize(
        objective,
        z0,
        method="SLSQP",
        bounds=[(0.0, None)] * nv,
        constraints=[{"type": "eq", "fun": lambda z: A @ z - works}],
        options={"maxiter": 500, "ftol": tol},
    )
    z = res.x if res.success and objective(res.x) <= objective(z0) else z0
    x = unpack(z)
    # renormalise each job exactly (SLSQP equality residuals are ~ftol)
    for jidx in range(n):
        total = x[jidx].sum()
        if total > 0:
            x[jidx] *= works[jidx] / total
    return {
        live[jidx].id: {
            gidx: float(x[jidx, gidx])
            for gidx in range(g)
            if x[jidx, gidx] > EPS
        }
        for jidx in range(n)
    }


def optimal_schedule(
    jobs: Sequence[Job],
    machines: int,
    alpha: float,
):
    """An exact optimal migratory schedule (small n).

    Realises the convex optimum's per-interval allocation with the
    water-filling machine split and McNaughton packing — the schedule's
    energy equals :func:`convex_optimal_energy` up to solver tolerance.
    Returns a :class:`~repro.core.schedule.Schedule`.
    """
    from ...core.schedule import Schedule
    from .allocation import allocate_slot
    from .mcnaughton import mcnaughton_slot

    live = [j for j in jobs if j.work > EPS]
    schedule = Schedule(machines)
    if not live:
        return schedule
    alloc = optimal_allocation(live, machines, alpha)
    grid = elementary_grid(live)
    for gidx, (a, b) in enumerate(grid):
        works = [
            (jid, per[gidx]) for jid, per in alloc.items() if gidx in per
        ]
        if not works:
            continue
        densities = [w / (b - a) for _, w in works]
        slot = allocate_slot(densities, machines)
        for item_idx, mach, dens in slot.big:
            schedule.add(a, b, dens, works[item_idx][0], mach)
        if slot.small_indices:
            small_works = [works[i] for i in slot.small_indices]
            for mach, sl in mcnaughton_slot(
                small_works, a, b, slot.small_speed, slot.small_machines
            ):
                schedule.add(sl.start, sl.end, sl.speed, sl.job_id, mach)
    return schedule


def convex_optimal_energy(
    jobs: Sequence[Job],
    machines: int,
    alpha: float,
    tol: float = 1e-9,
) -> float:
    """Optimal energy for ``jobs`` on ``machines`` machines (small n only)."""
    live = [j for j in jobs if j.work > EPS]
    if not live:
        return 0.0
    grid = elementary_grid(live)
    lengths = np.array([b - a for a, b in grid])
    n, g = len(live), len(grid)

    allowed = np.zeros((n, g), dtype=bool)
    for jidx, job in enumerate(live):
        for gidx, (a, b) in enumerate(grid):
            if job.release - EPS <= a and b <= job.deadline + EPS:
                allowed[jidx, gidx] = True

    var_index = [(j, i) for j in range(n) for i in range(g) if allowed[j, i]]
    nv = len(var_index)

    def unpack(z: np.ndarray) -> np.ndarray:
        x = np.zeros((n, g))
        for v, (j, i) in enumerate(var_index):
            x[j, i] = z[v]
        return x

    def objective(z: np.ndarray) -> float:
        x = unpack(np.maximum(z, 0.0))
        return sum(
            slot_energy(x[:, i], float(lengths[i]), machines, alpha)
            for i in range(g)
        )

    # equality constraints: each job's work adds up
    A = np.zeros((n, nv))
    for v, (j, _i) in enumerate(var_index):
        A[j, v] = 1.0
    works = np.array([j.work for j in live])

    # feasible start: spread each job uniformly over its allowed intervals
    z0 = np.zeros(nv)
    for v, (j, i) in enumerate(var_index):
        span = lengths[allowed[j]].sum()
        z0[v] = works[j] * lengths[i] / span

    res = optimize.minimize(
        objective,
        z0,
        method="SLSQP",
        bounds=[(0.0, None)] * nv,
        constraints=[{"type": "eq", "fun": lambda z: A @ z - works}],
        options={"maxiter": 500, "ftol": tol},
    )
    if not res.success:  # pragma: no cover - SLSQP convergence hiccups
        # fall back to the best point found; objective is convex so the
        # value is still an upper bound on the optimum
        return float(min(objective(res.x), objective(z0)))
    return float(res.fun)
