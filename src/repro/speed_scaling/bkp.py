"""The BKP online algorithm (Bansal, Kimbrel, Pruhs 2007).

At any time ``t`` the machine runs at

    s(t) = e * max_{t1 < t <= t2}  w(t, t1, t2) / (t2 - t1)

where ``w(t, t1, t2)`` is the total work of jobs that have *arrived* by time
``t`` (``r_j <= t``), have release at least ``t1`` and deadline at most
``t2``; jobs are executed in EDF order.  BKP is ``2 (alpha/(alpha-1))^alpha
e^alpha``-competitive for energy and ``e``-competitive for maximum speed —
the best possible for a deterministic algorithm on the latter objective.

Between consecutive event times (releases and deadlines) the maximising pair
``(t1, t2)`` ranges over a fixed finite candidate set, so ``s`` is piecewise
constant with breakpoints among the events; we evaluate the inner maximum at
segment midpoints, vectorised over candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.constants import E_CONST, EPS
from ..core.edf import EDFResult, run_edf
from ..core.job import Job
from ..core.profile import Segment, SpeedProfile
from ..core.timeline import dedupe_times


@dataclass
class BKPResult:
    """Profile plus the EDF realisation of a BKP run."""

    profile: SpeedProfile
    edf: EDFResult

    @property
    def schedule(self):
        return self.edf.schedule

    @property
    def feasible(self) -> bool:
        return self.edf.feasible


def bkp_intensity_at(jobs: Sequence[Job], t: float) -> float:
    """``max_{t1 < t <= t2} w(t, t1, t2) / (t2 - t1)`` (without the factor e).

    Only jobs with ``r_j <= t`` (arrived) are visible.  The supremum over
    ``t1`` is attained at the smallest release of the chosen job set (or
    approached when that release equals ``t``; callers evaluate at times
    strictly between events so the two coincide).
    """
    arrived = [j for j in jobs if j.release <= t and j.work > 0]
    if not arrived:
        return 0.0
    r = np.array([j.release for j in arrived])
    d = np.array([j.deadline for j in arrived])
    w = np.array([j.work for j in arrived])

    t1s = np.array(dedupe_times(r[r < t]))
    t2s = np.array(dedupe_times(d[d >= t]))
    if t1s.size == 0 or t2s.size == 0:
        return 0.0

    # include[i, j]: job j inside window [t1s[i], ...]; end[k, j]: ... <= t2s[k]
    lo = r[None, :] >= t1s[:, None] - EPS
    hi = d[None, :] <= t2s[:, None] + EPS
    work = (lo * w[None, :]) @ hi.T.astype(float)
    span = t2s[None, :] - t1s[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(span > EPS, work / span, 0.0)
    return float(ratio.max(initial=0.0))


def bkp_profile(jobs: Sequence[Job]) -> SpeedProfile:
    """The piecewise-constant BKP speed profile ``s(t)``."""
    live = [j for j in jobs if j.work > EPS]
    if not live:
        return SpeedProfile()
    events = dedupe_times(
        [j.release for j in live] + [j.deadline for j in live]
    )
    segments = []
    for a, b in zip(events, events[1:]):
        mid = 0.5 * (a + b)
        speed = E_CONST * bkp_intensity_at(live, mid)
        if speed > 0:
            segments.append(Segment(a, b, speed))
    return SpeedProfile(segments)


def bkp(jobs: Sequence[Job]) -> BKPResult:
    """Run BKP: compute the profile and realise it with EDF.

    Feasibility is guaranteed by the BKP analysis (the profile always
    dominates the current critical intensity of the remaining work); tests
    assert it on random instances.
    """
    profile = bkp_profile(jobs)
    return BKPResult(profile, run_edf(jobs, profile))
