"""Static power and race-to-idle (speed scaling with a sleep state).

The paper's model charges ``P(s) = s^alpha`` — zero power when idle.  Real
platforms burn static (leakage) power whenever awake, which changes the
calculus: running slowly for a long time keeps the platform awake longer.
The classical treatment (Irani, Shukla, Gupta 2003; Albers, Antoniadis
2014): with awake power ``P(s) = s^alpha + p_static`` and the ability to
sleep when idle, it never pays to run below the *critical speed*

    s_crit = argmin_s (s^alpha + p_static) / s
           = (p_static / (alpha - 1)) ** (1 / alpha),

the speed minimising energy per unit of work.  *Race-to-idle* reshapes any
continuous-model schedule: every segment slower than ``s_crit`` is executed
at ``s_crit`` (same work, shorter busy time) and the remainder of the
segment sleeps.  Speeds only increase and per-segment work is preserved, so
window-aligned feasibility is untouched.

This module provides the extended power model, the reshaping, and the
energy accounting with and without reshaping, feeding the ``sleep``
ablation experiment (how much race-to-idle saves for the QBSS algorithms
as leakage grows).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.constants import EPS
from ..core.profile import Segment, SpeedProfile


@dataclass(frozen=True)
class StaticPowerModel:
    """Awake power ``P(s) = s^alpha + p_static``; sleeping draws zero.

    ``wake_cost`` charges a fixed energy per sleep-to-awake transition
    (0 by default — transitions free, the pure race-to-idle setting).
    """

    alpha: float
    p_static: float
    wake_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.alpha > 1.0:
            raise ValueError(f"alpha must be > 1, got {self.alpha}")
        if self.p_static < 0 or self.wake_cost < 0:
            raise ValueError("static power and wake cost must be >= 0")

    @property
    def critical_speed(self) -> float:
        """The energy-per-work-optimal speed ``(p_static/(alpha-1))^(1/alpha)``."""
        if self.p_static == 0:
            return 0.0
        return (self.p_static / (self.alpha - 1.0)) ** (1.0 / self.alpha)

    def awake_power(self, speed: float) -> float:
        if speed < 0:
            raise ValueError("speed must be >= 0")
        return speed**self.alpha + self.p_static

    def energy_per_work(self, speed: float) -> float:
        """Awake energy per executed work unit at constant ``speed > 0``."""
        if speed <= 0:
            raise ValueError("need positive speed")
        return self.awake_power(speed) / speed


def profile_energy_always_awake(
    profile: SpeedProfile, model: StaticPowerModel, horizon_end: float | None = None
) -> float:
    """Energy when the platform never sleeps between profile start and end.

    Static power is paid over the whole span ``[profile.start, horizon]``
    (including idle gaps) — the no-sleep baseline.
    """
    if profile.is_empty:
        return 0.0
    end = horizon_end if horizon_end is not None else profile.end
    dynamic = sum(
        seg.speed**model.alpha * seg.duration for seg in profile
    )
    return dynamic + model.p_static * (end - profile.start)


def race_to_idle(
    profile: SpeedProfile, model: StaticPowerModel
) -> SpeedProfile:
    """Raise every sub-critical segment to the critical speed, then sleep.

    Each segment ``[a, b) @ s`` with ``0 < s < s_crit`` becomes
    ``[a, a + work/s_crit) @ s_crit`` followed by sleep.  Work per segment
    is preserved and speeds never decrease, so EDF feasibility for any job
    set whose windows align with segment boundaries is preserved.
    """
    s_crit = model.critical_speed
    out: list[Segment] = []
    for seg in profile:
        if seg.speed >= s_crit - EPS:
            out.append(seg)
            continue
        busy = seg.work / s_crit
        if busy > EPS:
            out.append(Segment(seg.start, seg.start + busy, s_crit))
    return SpeedProfile(out)


def profile_energy_with_sleep(
    profile: SpeedProfile, model: StaticPowerModel
) -> float:
    """Energy when the platform sleeps during every idle gap.

    Awake exactly on the profile's positive-speed segments; each maximal
    awake period costs one ``wake_cost``.
    """
    if profile.is_empty:
        return 0.0
    energy = sum(
        model.awake_power(seg.speed) * seg.duration for seg in profile
    )
    # count maximal awake periods (merged adjacent segments already are)
    wakeups = 1
    for prev, nxt in zip(profile.segments, profile.segments[1:]):
        if nxt.start > prev.end + EPS:
            wakeups += 1
    return energy + model.wake_cost * wakeups


@dataclass(frozen=True)
class SleepSavings:
    """Outcome of applying race-to-idle to one profile."""

    energy_no_sleep: float
    energy_race_to_idle: float
    critical_speed: float

    @property
    def savings_ratio(self) -> float:
        """``no_sleep / race_to_idle`` (>= 1 whenever reshaping is valid)."""
        if self.energy_race_to_idle <= 0:
            return 1.0
        return self.energy_no_sleep / self.energy_race_to_idle


def evaluate_race_to_idle(
    profile: SpeedProfile, model: StaticPowerModel
) -> SleepSavings:
    """Compare never-sleeping against the race-to-idle reshaping."""
    reshaped = race_to_idle(profile, model)
    return SleepSavings(
        energy_no_sleep=profile_energy_always_awake(profile, model),
        energy_race_to_idle=profile_energy_with_sleep(reshaped, model),
        critical_speed=model.critical_speed,
    )
