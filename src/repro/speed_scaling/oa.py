"""The Optimal Available (OA) online heuristic.

Introduced (unanalysed) by Yao, Demers and Shenker 1995 and shown to be
exactly ``alpha^alpha``-competitive for energy by Bansal, Kimbrel and Pruhs
2007.  OA is the natural replanning strategy: whenever a job arrives,
recompute the optimal (YDS) schedule for all *remaining* work, assuming no
further arrivals, and follow it until the next arrival.

The paper's conclusion (Sec. 7) asks whether OA extends to the QBSS model —
our :mod:`repro.qbss.oaq` explores that extension empirically, on top of
this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.constants import EPS
from ..core.job import Job
from ..core.profile import Segment, SpeedProfile
from ..core.schedule import Schedule
from ..core.timeline import dedupe_times
from .yds import yds


@dataclass
class OAResult:
    """Profile and schedule of an OA run."""

    profile: SpeedProfile
    schedule: Schedule
    unfinished: dict[str, float]

    @property
    def feasible(self) -> bool:
        return not self.unfinished


def oa(jobs: Sequence[Job]) -> OAResult:
    """Run OA over ``jobs`` (each arriving at its release time).

    Between consecutive arrival times the algorithm follows the current YDS
    plan for the remaining work; at each arrival the plan is recomputed.
    OA never misses deadlines (each plan is feasible for the remaining work,
    and following a feasible plan keeps the residual instance feasible).
    """
    live = [j for j in jobs if j.work > EPS]
    schedule = Schedule(1)
    segments: list[Segment] = []
    if not live:
        return OAResult(SpeedProfile(), schedule, {})

    arrivals = dedupe_times(j.release for j in live)
    horizon = max(j.deadline for j in live)
    remaining: dict[str, float] = {j.id: j.work for j in live}
    by_id = {j.id: j for j in live}

    for idx, t in enumerate(arrivals):
        until = arrivals[idx + 1] if idx + 1 < len(arrivals) else horizon
        if until <= t + EPS:
            continue
        # Replan: YDS on remaining work of arrived jobs, windows clipped to t.
        plan_jobs = [
            Job(max(by_id[jid].release, t), by_id[jid].deadline, rem, jid)
            for jid, rem in remaining.items()
            if rem > EPS and by_id[jid].release <= t + EPS
        ]
        if not plan_jobs:
            continue
        plan = yds(plan_jobs)
        # Follow the plan on [t, until): copy its slices, debit the work.
        for s in plan.schedule.slices(0):
            lo, hi = max(s.start, t), min(s.end, until)
            if hi <= lo + EPS:
                continue
            schedule.add(lo, hi, s.speed, s.job_id)
            segments.append(Segment(lo, hi, s.speed))
            executed = s.speed * (hi - lo)
            remaining[s.job_id] = max(0.0, remaining[s.job_id] - executed)

    unfinished = {jid: rem for jid, rem in remaining.items() if rem > 1e-6}
    return OAResult(SpeedProfile(segments), schedule, unfinished)


def oa_profile(jobs: Sequence[Job]) -> SpeedProfile:
    """The OA speed profile only (convenience wrapper)."""
    return oa(jobs).profile
