"""The YDS optimal offline algorithm (Yao, Demers, Shenker 1995).

YDS repeatedly finds the *critical interval* — the interval ``[a, b]``
maximising the intensity ``g(a, b) = (sum of work of jobs whose windows lie
inside [a, b]) / (b - a)`` — schedules exactly those jobs at constant speed
``g`` inside it (EDF order), removes them, excises the interval from the
timeline, and recurses.  The result is the minimum-energy preemptive
single-machine schedule for any convex power function, and simultaneously
minimises the maximum speed.

The excision is implemented with an explicit compressed-time coordinate
system (:class:`TimelineCompressor`): each iteration works in compressed
coordinates, and scheduled slices are mapped back to original time, where a
later critical interval may interleave *around* earlier ones.

This is the workhorse of the whole library: the clairvoyant baseline of
every QBSS experiment is YDS on the jobs ``(r_j, d_j, p*_j)`` (paper Sec. 3),
and CRP2D calls YDS as a subroutine (Algorithm 2, line 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

import numpy as np

from ..core.constants import EPS
from ..core.edf import run_edf
from ..core.job import Job
from ..core.profile import Segment, SpeedProfile
from ..core.schedule import Schedule
from ..core import profile_kernel as _pk
from ..core.timeline import dedupe_times


class TimelineCompressor:
    """Tracks excised original-time intervals and maps between coordinates.

    Compressed time is original time with all cut intervals removed:
    ``comp(t) = |[t0, t] \\ cuts|`` where ``t0`` is the global origin.
    """

    def __init__(self, origin: float) -> None:
        self.origin = origin
        self._cuts: list[tuple[float, float]] = []  # disjoint, sorted, merged
        self._cut_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def cuts(self) -> list[tuple[float, float]]:
        return list(self._cuts)

    def compress(self, t: float) -> float:
        """Map original time ``t`` to compressed time."""
        removed = 0.0
        for a, b in self._cuts:
            if b <= t:
                removed += b - a
            elif a < t:
                removed += t - a
            else:
                break
        return (t - self.origin) - removed

    def compress_many(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`compress` over an array of original times.

        Bit-identical to the scalar loop: the per-cut removed lengths are
        accumulated left-to-right (``np.cumsum``), and the partial term of
        the one cut straddling ``t`` is added last, exactly like the scalar
        accumulation order.
        """
        ts = np.asarray(times, dtype=np.float64)
        base = ts - self.origin
        if not self._cuts:
            return base
        if self._cut_arrays is None:
            a = np.array([c[0] for c in self._cuts], dtype=np.float64)
            b = np.array([c[1] for c in self._cuts], dtype=np.float64)
            self._cut_arrays = (a, b, np.concatenate([[0.0], np.cumsum(b - a)]))
        a, b, cum = self._cut_arrays
        k = np.searchsorted(b, ts, side="right")  # cuts fully below t
        removed = cum[k]
        ak = a[np.minimum(k, a.size - 1)]
        straddles = (k < a.size) & (ak < ts)
        removed = np.where(straddles, removed + (ts - ak), removed)
        return base - removed

    def expand_interval(self, c1: float, c2: float) -> list[tuple[float, float]]:
        """Map compressed interval ``[c1, c2)`` back to original time.

        The image is a union of intervals, one per maximal gap between cuts.
        """
        if c2 <= c1:
            return []
        out: list[tuple[float, float]] = []
        pos = 0.0  # compressed time at cursor
        cursor = self.origin  # original time
        remaining_start = c1
        for a, b in self._cuts + [(float("inf"), float("inf"))]:
            gap = a - cursor  # length of un-cut original time before next cut
            if gap > 0:
                lo = max(remaining_start, pos)
                hi = min(c2, pos + gap)
                o1, o2 = cursor + (lo - pos), cursor + (hi - pos)
                # guard against zero-length intervals born of float rounding
                if hi > lo and o2 > o1 + EPS * max(1.0, abs(o1)) * 1e-3:
                    out.append((o1, o2))
                pos += gap
                if pos >= c2 - EPS:
                    break
            cursor = b
        return out

    def cut(self, intervals: Sequence[tuple[float, float]]) -> None:
        """Excise original-time ``intervals`` (merging with existing cuts)."""
        merged = sorted(self._cuts + [(a, b) for a, b in intervals if b > a])
        out: list[tuple[float, float]] = []
        for a, b in merged:
            if out and a <= out[-1][1] + EPS:
                out[-1] = (out[-1][0], max(out[-1][1], b))
            else:
                out.append((a, b))
        self._cuts = out
        self._cut_arrays = None


@dataclass(frozen=True)
class CriticalInterval:
    """One YDS iteration: jobs run at ``speed`` in ``original_intervals``."""

    speed: float
    compressed: tuple[float, float]
    original_intervals: tuple[tuple[float, float], ...]
    job_ids: tuple[str, ...]


@dataclass
class YDSResult:
    """Schedule, speed profile and the critical-interval decomposition."""

    schedule: Schedule
    profile: SpeedProfile
    critical_intervals: list[CriticalInterval]


def _max_intensity(
    jobs: Sequence[Job], compressor: TimelineCompressor
) -> tuple[float, float, float, list[Job], list[tuple[float, float]]] | None:
    """Find the compressed interval of maximum intensity.

    Returns ``(intensity, c_start, c_end, critical_jobs, comp_windows)`` —
    where ``comp_windows`` are the critical jobs' compressed
    ``(release, deadline)`` windows — or ``None`` when no positive-work
    interval exists.  Vectorised over all candidate (release, deadline)
    pairs — this is the hot loop of YDS; the coordinate mapping runs
    through :meth:`TimelineCompressor.compress_many` in one pass.
    """
    if _pk.kernel_enabled():
        comp_all = compressor.compress_many(
            [j.release for j in jobs] + [j.deadline for j in jobs]
        )
        comp_r, comp_d = comp_all[: len(jobs)], comp_all[len(jobs):]
        # collapse_times == dedupe_times on floats (sub-EPS chain collapse
        # keeping the first of each group), minus the Python sort.
        starts = _pk.collapse_times(comp_r)
        ends = _pk.collapse_times(comp_d)
    else:
        comp_r = np.array([compressor.compress(j.release) for j in jobs])
        comp_d = np.array([compressor.compress(j.deadline) for j in jobs])
        starts = np.array(dedupe_times(comp_r))
        ends = np.array(dedupe_times(comp_d))
    works = np.array([j.work for j in jobs])

    # in_start[i, j] : job j's compressed window starts at or after starts[i]
    in_start = comp_r[None, :] >= starts[:, None] - EPS
    # in_end[k, j] : job j's compressed window ends at or before ends[k]
    in_end = comp_d[None, :] <= ends[:, None] + EPS

    # work_matrix[i, k] = total work of jobs inside [starts[i], ends[k]]
    work_matrix = (in_start * works[None, :]) @ in_end.T.astype(float)

    lengths = ends[None, :] - starts[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        intensity = np.where(lengths > EPS, work_matrix / lengths, -np.inf)
    intensity[work_matrix <= 0] = -np.inf

    flat = int(np.argmax(intensity))
    i, k = divmod(flat, intensity.shape[1])
    if not np.isfinite(intensity[i, k]):
        return None
    a, b = float(starts[i]), float(ends[k])
    inside: list[Job] = []
    windows: list[tuple[float, float]] = []
    for j, r, d in zip(jobs, comp_r.tolist(), comp_d.tolist()):
        if r >= a - EPS and d <= b + EPS:
            inside.append(j)
            windows.append((r, d))
    return (float(intensity[i, k]), a, b, inside, windows)


@dataclass(frozen=True)
class _DiscoveryStep:
    """One critical interval as discovered, before timeline excision.

    ``compressor`` is the live compressor in its *pre-cut* state — valid
    only until the generator is advanced, which is exactly the window a
    consumer needs to map compressed slices back to original time.
    """

    speed: float
    c1: float
    c2: float
    jobs: list[Job]
    comp_windows: list[tuple[float, float]]
    original_cover: list[tuple[float, float]]
    compressor: TimelineCompressor = field(repr=False)


def _discover(jobs: Sequence[Job]) -> Iterator[_DiscoveryStep]:
    """Yield the critical-interval decomposition step by step.

    This is the schedule-free core of YDS: both :func:`yds` (which
    additionally realises EDF inside each step) and :func:`yds_profile`
    (which only needs the speeds and covers) drive it.
    """
    pending = [j for j in jobs if j.work > EPS]
    if not pending:
        return
    origin = min(j.release for j in pending)
    compressor = TimelineCompressor(origin)
    while pending:
        found = _max_intensity(pending, compressor)
        if found is None:
            break
        speed, c1, c2, critical_jobs, comp_windows = found
        original_cover = compressor.expand_interval(c1, c2)
        yield _DiscoveryStep(
            speed, c1, c2, critical_jobs, comp_windows, original_cover, compressor
        )
        compressor.cut(original_cover)
        scheduled_ids = {j.id for j in critical_jobs}
        pending = [j for j in pending if j.id not in scheduled_ids]


def _step_critical(step: _DiscoveryStep) -> CriticalInterval:
    return CriticalInterval(
        speed=step.speed,
        compressed=(step.c1, step.c2),
        original_intervals=tuple(step.original_cover),
        job_ids=tuple(sorted(j.id for j in step.jobs)),
    )


def _criticals_profile(criticals: Sequence[CriticalInterval]) -> SpeedProfile:
    return SpeedProfile(
        Segment(a, b, ci.speed)
        for ci in criticals
        for (a, b) in ci.original_intervals
    )


def yds(jobs: Sequence[Job]) -> YDSResult:
    """Compute the optimal offline single-machine schedule.

    Zero-work jobs are trivially complete and are ignored.  Returns the
    concrete schedule, the optimal speed profile and the critical-interval
    decomposition (in discovery order, i.e. non-increasing speeds).
    """
    schedule = Schedule(1)
    criticals: list[CriticalInterval] = []

    for step in _discover(jobs):
        # EDF inside the compressed critical interval with compressed windows.
        comp_jobs = [
            Job(max(r, step.c1), min(d, step.c2), j.work, j.id)
            for j, (r, d) in zip(step.jobs, step.comp_windows)
        ]
        comp_profile = SpeedProfile.constant(step.c1, step.c2, step.speed)
        result = run_edf(comp_jobs, comp_profile)
        if not result.feasible:  # pragma: no cover - guaranteed by YDS theory
            raise RuntimeError(
                "internal error: EDF infeasible inside a critical interval "
                f"({result.unfinished})"
            )

        # Map compressed slices back to (possibly split) original time.
        for s in result.schedule.slices(0):
            for (o1, o2) in step.compressor.expand_interval(s.start, s.end):
                schedule.add(o1, o2, step.speed, s.job_id)

        criticals.append(_step_critical(step))

    return YDSResult(schedule, _criticals_profile(criticals), criticals)


def yds_profile(jobs: Sequence[Job]) -> SpeedProfile:
    """The optimal speed profile, without realising a schedule.

    Identical to ``yds(jobs).profile`` but skips the per-interval EDF
    simulation and :class:`~repro.core.schedule.Schedule` construction —
    the fast path for clairvoyant baselines, which only need the profile's
    energy and peak speed.
    """
    criticals = [_step_critical(step) for step in _discover(jobs)]
    return _criticals_profile(criticals)


def optimal_energy(jobs: Sequence[Job], alpha: float) -> float:
    """Minimum energy for ``jobs`` on one machine under ``P(s) = s**alpha``."""
    from ..core.power import PowerFunction

    return yds_profile(jobs).energy(PowerFunction(alpha))


def optimal_max_speed(jobs: Sequence[Job]) -> float:
    """Minimum possible maximum speed (the top critical-interval intensity)."""
    return yds_profile(jobs).max_speed()
