"""The YDS optimal offline algorithm (Yao, Demers, Shenker 1995).

YDS repeatedly finds the *critical interval* — the interval ``[a, b]``
maximising the intensity ``g(a, b) = (sum of work of jobs whose windows lie
inside [a, b]) / (b - a)`` — schedules exactly those jobs at constant speed
``g`` inside it (EDF order), removes them, excises the interval from the
timeline, and recurses.  The result is the minimum-energy preemptive
single-machine schedule for any convex power function, and simultaneously
minimises the maximum speed.

The excision is implemented with an explicit compressed-time coordinate
system (:class:`TimelineCompressor`): each iteration works in compressed
coordinates, and scheduled slices are mapped back to original time, where a
later critical interval may interleave *around* earlier ones.

This is the workhorse of the whole library: the clairvoyant baseline of
every QBSS experiment is YDS on the jobs ``(r_j, d_j, p*_j)`` (paper Sec. 3),
and CRP2D calls YDS as a subroutine (Algorithm 2, line 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.constants import EPS
from ..core.edf import run_edf
from ..core.job import Job
from ..core.profile import Segment, SpeedProfile
from ..core.schedule import Schedule
from ..core.timeline import dedupe_times


class TimelineCompressor:
    """Tracks excised original-time intervals and maps between coordinates.

    Compressed time is original time with all cut intervals removed:
    ``comp(t) = |[t0, t] \\ cuts|`` where ``t0`` is the global origin.
    """

    def __init__(self, origin: float) -> None:
        self.origin = origin
        self._cuts: list[tuple[float, float]] = []  # disjoint, sorted, merged

    @property
    def cuts(self) -> list[tuple[float, float]]:
        return list(self._cuts)

    def compress(self, t: float) -> float:
        """Map original time ``t`` to compressed time."""
        removed = 0.0
        for a, b in self._cuts:
            if b <= t:
                removed += b - a
            elif a < t:
                removed += t - a
            else:
                break
        return (t - self.origin) - removed

    def expand_interval(self, c1: float, c2: float) -> list[tuple[float, float]]:
        """Map compressed interval ``[c1, c2)`` back to original time.

        The image is a union of intervals, one per maximal gap between cuts.
        """
        if c2 <= c1:
            return []
        out: list[tuple[float, float]] = []
        pos = 0.0  # compressed time at cursor
        cursor = self.origin  # original time
        remaining_start = c1
        for a, b in self._cuts + [(float("inf"), float("inf"))]:
            gap = a - cursor  # length of un-cut original time before next cut
            if gap > 0:
                lo = max(remaining_start, pos)
                hi = min(c2, pos + gap)
                o1, o2 = cursor + (lo - pos), cursor + (hi - pos)
                # guard against zero-length intervals born of float rounding
                if hi > lo and o2 > o1 + EPS * max(1.0, abs(o1)) * 1e-3:
                    out.append((o1, o2))
                pos += gap
                if pos >= c2 - EPS:
                    break
            cursor = b
        return out

    def cut(self, intervals: Sequence[tuple[float, float]]) -> None:
        """Excise original-time ``intervals`` (merging with existing cuts)."""
        merged = sorted(self._cuts + [(a, b) for a, b in intervals if b > a])
        out: list[tuple[float, float]] = []
        for a, b in merged:
            if out and a <= out[-1][1] + EPS:
                out[-1] = (out[-1][0], max(out[-1][1], b))
            else:
                out.append((a, b))
        self._cuts = out


@dataclass(frozen=True)
class CriticalInterval:
    """One YDS iteration: jobs run at ``speed`` in ``original_intervals``."""

    speed: float
    compressed: tuple[float, float]
    original_intervals: tuple[tuple[float, float], ...]
    job_ids: tuple[str, ...]


@dataclass
class YDSResult:
    """Schedule, speed profile and the critical-interval decomposition."""

    schedule: Schedule
    profile: SpeedProfile
    critical_intervals: list[CriticalInterval]


def _max_intensity(
    jobs: Sequence[Job], compressor: TimelineCompressor
) -> tuple[float, float, float, list[Job]] | None:
    """Find the compressed interval of maximum intensity.

    Returns ``(intensity, c_start, c_end, critical_jobs)`` or ``None`` when
    no positive-work interval exists.  Vectorised over all candidate
    (release, deadline) pairs — this is the hot loop of YDS.
    """
    import numpy as np

    comp_r = np.array([compressor.compress(j.release) for j in jobs])
    comp_d = np.array([compressor.compress(j.deadline) for j in jobs])
    works = np.array([j.work for j in jobs])

    starts = np.array(dedupe_times(comp_r))
    ends = np.array(dedupe_times(comp_d))

    # in_start[i, j] : job j's compressed window starts at or after starts[i]
    in_start = comp_r[None, :] >= starts[:, None] - EPS
    # in_end[k, j] : job j's compressed window ends at or before ends[k]
    in_end = comp_d[None, :] <= ends[:, None] + EPS

    # work_matrix[i, k] = total work of jobs inside [starts[i], ends[k]]
    work_matrix = (in_start * works[None, :]) @ in_end.T.astype(float)

    lengths = ends[None, :] - starts[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        intensity = np.where(lengths > EPS, work_matrix / lengths, -np.inf)
    intensity[work_matrix <= 0] = -np.inf

    flat = int(np.argmax(intensity))
    i, k = divmod(flat, intensity.shape[1])
    if not np.isfinite(intensity[i, k]):
        return None
    a, b = float(starts[i]), float(ends[k])
    inside = [
        j
        for j, r, d in zip(jobs, comp_r, comp_d)
        if r >= a - EPS and d <= b + EPS
    ]
    return (float(intensity[i, k]), a, b, inside)


def yds(jobs: Sequence[Job]) -> YDSResult:
    """Compute the optimal offline single-machine schedule.

    Zero-work jobs are trivially complete and are ignored.  Returns the
    concrete schedule, the optimal speed profile and the critical-interval
    decomposition (in discovery order, i.e. non-increasing speeds).
    """
    pending = [j for j in jobs if j.work > EPS]
    schedule = Schedule(1)
    criticals: list[CriticalInterval] = []

    if not pending:
        return YDSResult(schedule, SpeedProfile(), criticals)

    origin = min(j.release for j in pending)
    compressor = TimelineCompressor(origin)

    while pending:
        found = _max_intensity(pending, compressor)
        if found is None:
            break
        speed, c1, c2, critical_jobs = found

        # EDF inside the compressed critical interval with compressed windows.
        comp_jobs = [
            Job(
                max(compressor.compress(j.release), c1),
                min(compressor.compress(j.deadline), c2),
                j.work,
                j.id,
            )
            for j in critical_jobs
        ]
        comp_profile = SpeedProfile.constant(c1, c2, speed)
        result = run_edf(comp_jobs, comp_profile)
        if not result.feasible:  # pragma: no cover - guaranteed by YDS theory
            raise RuntimeError(
                "internal error: EDF infeasible inside a critical interval "
                f"({result.unfinished})"
            )

        # Map compressed slices back to (possibly split) original time.
        original_cover = compressor.expand_interval(c1, c2)
        for s in result.schedule.slices(0):
            for (o1, o2) in _map_slice(compressor, s.start, s.end):
                schedule.add(o1, o2, speed, s.job_id)

        criticals.append(
            CriticalInterval(
                speed=speed,
                compressed=(c1, c2),
                original_intervals=tuple(original_cover),
                job_ids=tuple(sorted(j.id for j in critical_jobs)),
            )
        )

        compressor.cut(original_cover)
        scheduled_ids = {j.id for j in critical_jobs}
        pending = [j for j in pending if j.id not in scheduled_ids]

    profile = SpeedProfile(
        Segment(a, b, ci.speed)
        for ci in criticals
        for (a, b) in ci.original_intervals
    )
    return YDSResult(schedule, profile, criticals)


def _map_slice(
    compressor: TimelineCompressor, c1: float, c2: float
) -> list[tuple[float, float]]:
    """Map one compressed slice back to original-time intervals."""
    return compressor.expand_interval(c1, c2)


def yds_profile(jobs: Sequence[Job]) -> SpeedProfile:
    """The optimal speed profile only (convenience wrapper)."""
    return yds(jobs).profile


def optimal_energy(jobs: Sequence[Job], alpha: float) -> float:
    """Minimum energy for ``jobs`` on one machine under ``P(s) = s**alpha``."""
    from ..core.power import PowerFunction

    return yds_profile(jobs).energy(PowerFunction(alpha))


def optimal_max_speed(jobs: Sequence[Job]) -> float:
    """Minimum possible maximum speed (the top critical-interval intensity)."""
    return yds_profile(jobs).max_speed()
