"""The Average Rate (AVR) online heuristic (Yao, Demers, Shenker 1995).

At every time ``t`` the machine runs at the sum of the densities of the
active jobs, ``s(t) = sum_{j : t in (r_j, d_j]} delta_j``, executing the
pending job with the earliest deadline.  AVR is ``2^{alpha-1} alpha^alpha``-
competitive for energy (tight up to lower-order terms, Bansal et al. 2011).

The speed at ``t`` depends only on jobs released by ``t``, so constructing
the profile from the full job list is *exactly* the online behaviour; tests
verify this against an explicit arrival-by-arrival replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.edf import EDFResult, run_edf
from ..core.job import Job
from ..core.profile import SpeedProfile, sum_profiles


@dataclass
class AVRResult:
    """Profile plus the EDF realisation of an AVR run."""

    profile: SpeedProfile
    edf: EDFResult

    @property
    def schedule(self):
        return self.edf.schedule

    @property
    def feasible(self) -> bool:
        return self.edf.feasible


def avr_profile(jobs: Sequence[Job]) -> SpeedProfile:
    """The AVR speed profile: pointwise sum of per-job density rectangles."""
    return sum_profiles(
        [
            SpeedProfile.constant(j.release, j.deadline, j.density)
            for j in jobs
            if j.work > 0
        ]
    )


def avr(jobs: Sequence[Job]) -> AVRResult:
    """Run AVR: build the density-sum profile, realise it with EDF.

    AVR is always feasible — the fluid schedule that processes every active
    job at exactly its density finishes each job at its deadline, and EDF
    dominates any fixed-profile scheduler — so ``result.feasible`` holds for
    every valid instance (asserted by property-based tests).
    """
    profile = avr_profile(jobs)
    return AVRResult(profile, run_edf(jobs, profile))


def avr_profile_online_replay(jobs: Sequence[Job]) -> list[SpeedProfile]:
    """Arrival-by-arrival prefixes of the AVR profile (for causality tests).

    Element ``i`` is the profile computed from the first ``i+1`` arrivals
    (sorted by release).  Causality of AVR means prefix ``i`` agrees with the
    final profile on all times up to the next arrival.
    """
    ordered = sorted(jobs, key=lambda j: (j.release, j.id))
    return [avr_profile(ordered[: i + 1]) for i in range(len(ordered))]
