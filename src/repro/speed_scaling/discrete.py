"""Discrete speed levels (DVFS): adapting continuous schedules to real CPUs.

The paper (like most of the literature) assumes a continuously variable
speed.  Real processors expose a finite set of DVFS states.  The classical
bridge (Ishihara–Yasuura 1998; Kwon–Kim 2005): an optimal discrete-speed
schedule emulates each continuous speed ``s`` by time-multiplexing the two
*adjacent* available levels ``s_lo <= s <= s_hi``, splitting the interval
so the executed work is preserved::

    theta * s_hi + (1 - theta) * s_lo = s,
    theta = (s - s_lo) / (s_hi - s_lo).

Because our profiles' segments are aligned with job releases/deadlines,
per-segment work preservation preserves capacity over every window, so the
discretised profile remains EDF-feasible for the same jobs.

The energy penalty of level granularity is quantified by the
``discretization`` ablation bench; with levels forming a geometric ladder
of ratio ``q``, the worst-case penalty is bounded by the convexity gap of
``s^alpha`` across one rung (function :func:`worst_case_penalty`).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..core.constants import EPS
from ..core.power import PowerFunction
from ..core.profile import Segment, SpeedProfile


@dataclass(frozen=True)
class SpeedLadder:
    """A sorted set of available speed levels (0 is always available)."""

    levels: tuple[float, ...]

    def __init__(self, levels: Sequence[float]) -> None:
        cleaned = sorted({float(v) for v in levels if v > 0})
        if not cleaned:
            raise ValueError("need at least one positive speed level")
        object.__setattr__(self, "levels", tuple(cleaned))

    @classmethod
    def geometric(cls, s_min: float, s_max: float, count: int) -> SpeedLadder:
        """``count`` levels from ``s_min`` to ``s_max`` in geometric steps."""
        if count < 1:
            raise ValueError("need at least one level")
        if not 0 < s_min <= s_max:
            raise ValueError("need 0 < s_min <= s_max")
        if count == 1:
            return cls([s_max])
        ratio = (s_max / s_min) ** (1.0 / (count - 1))
        return cls([s_min * ratio**i for i in range(count)])

    @property
    def max_level(self) -> float:
        return self.levels[-1]

    def bracket(self, speed: float) -> tuple[float, float]:
        """The adjacent levels ``(s_lo, s_hi)`` with ``s_lo <= speed <= s_hi``.

        Below the lowest level, ``s_lo`` is 0 (idling); above the highest,
        raises — the demanded speed is simply not available.
        """
        if speed <= 0:
            return (0.0, 0.0)
        if speed > self.max_level * (1 + 1e-12):
            raise ValueError(
                f"speed {speed} exceeds the top level {self.max_level}"
            )
        i = bisect.bisect_left(self.levels, speed)
        hi = self.levels[min(i, len(self.levels) - 1)]
        if math.isclose(hi, speed, rel_tol=1e-12, abs_tol=1e-15):
            return (hi, hi)
        lo = self.levels[i - 1] if i > 0 else 0.0
        return (lo, hi)


def discretize_profile(
    profile: SpeedProfile, ladder: SpeedLadder
) -> SpeedProfile:
    """Emulate ``profile`` with ladder levels, preserving per-segment work.

    Each continuous segment is split into a high-level prefix and a
    low-level suffix (order is immaterial for both energy and window-aligned
    capacity).  Raises when any demanded speed exceeds the top level.
    """
    out: list[Segment] = []
    for seg in profile:
        lo, hi = ladder.bracket(seg.speed)
        if hi <= 0:
            continue
        if math.isclose(lo, hi, rel_tol=1e-12, abs_tol=1e-15):
            out.append(Segment(seg.start, seg.end, hi))
            continue
        theta = (seg.speed - lo) / (hi - lo)
        cut = seg.start + theta * seg.duration
        if cut > seg.start + EPS:
            out.append(Segment(seg.start, min(cut, seg.end), hi))
        if cut < seg.end - EPS and lo > 0:
            out.append(Segment(cut, seg.end, lo))
    return SpeedProfile(out)


def discretization_penalty(
    profile: SpeedProfile, ladder: SpeedLadder, alpha: float
) -> float:
    """Energy ratio ``discrete / continuous`` for a profile (>= 1)."""
    power = PowerFunction(alpha)
    base = profile.energy(power)
    if base <= 0:
        return 1.0
    return discretize_profile(profile, ladder).energy(power) / base


def worst_case_penalty(q: float, alpha: float) -> float:
    """Worst energy penalty across one geometric rung of ratio ``q > 1``.

    Running speed ``s`` between levels ``l`` and ``ql`` by time-multiplexing
    costs ``(theta (ql)^a + (1-theta) l^a) / s^a`` with
    ``s = theta ql + (1-theta) l``; the maximum over ``theta`` in [0, 1] is
    the convexity gap of ``s^a`` across the rung, found in closed form by
    maximising over ``theta``.
    """
    if q <= 1:
        raise ValueError("rung ratio must exceed 1")
    if alpha <= 1:
        raise ValueError("alpha must exceed 1")

    def ratio(theta: float) -> float:
        s = theta * q + (1 - theta)
        return (theta * q**alpha + (1 - theta)) / s**alpha

    # stationary point of the chord/curve ratio
    best = max(ratio(0.0), ratio(1.0))
    lo_t, hi_t = 0.0, 1.0
    for _ in range(200):
        m1 = lo_t + (hi_t - lo_t) / 3
        m2 = hi_t - (hi_t - lo_t) / 3
        if ratio(m1) < ratio(m2):
            lo_t = m1
        else:
            hi_t = m2
    return max(best, ratio(0.5 * (lo_t + hi_t)))
