"""Classical speed-scaling algorithms (the substrate the paper builds on).

Single machine: YDS (optimal offline), AVR, OA and BKP (online).
Parallel machines: AVR(m), the pooled lower bound, and a convex-programming
optimum for small instances.
"""

from .avr import AVRResult, avr, avr_profile, avr_profile_online_replay
from .bkp import BKPResult, bkp, bkp_intensity_at, bkp_profile
from .discrete import (
    SpeedLadder,
    discretization_penalty,
    discretize_profile,
    worst_case_penalty,
)
from .oa import OAResult, oa, oa_profile
from .yds import (
    CriticalInterval,
    YDSResult,
    optimal_energy,
    optimal_max_speed,
    yds,
    yds_profile,
)

__all__ = [
    "AVRResult",
    "avr",
    "avr_profile",
    "avr_profile_online_replay",
    "BKPResult",
    "bkp",
    "bkp_intensity_at",
    "bkp_profile",
    "SpeedLadder",
    "discretization_penalty",
    "discretize_profile",
    "worst_case_penalty",
    "OAResult",
    "oa",
    "oa_profile",
    "CriticalInterval",
    "YDSResult",
    "optimal_energy",
    "optimal_max_speed",
    "yds",
    "yds_profile",
]
