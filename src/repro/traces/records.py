"""Shared vocabulary of the trace-ingestion layer.

A :class:`TraceRecord` is one *observed* job from an external workload
trace — release time, measured runtime, and whatever else the source
format knows (a user-requested time, an explicit deadline, a query cost).
Parsers (:mod:`repro.traces.swf`, :mod:`repro.traces.tabular`) emit these
lazily; the synthesizer (:mod:`repro.traces.synthesize`) turns them into
QBSS jobs ``(r, d, c, w, w*)`` with ``w* = runtime``.

Error reporting contract: every malformed line raises
:class:`TraceParseError` carrying the source name and 1-based line
number, so a bad record in a million-line log is locatable immediately.
Records the model cannot represent (non-positive runtime — SWF uses
``-1``/``0`` for killed or missing jobs) are *skipped*, not fatal, and
counted in :class:`ParseStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TraceParseError(ValueError):
    """A malformed trace line, with enough context to find it.

    ``source`` is the file name (or a caller-supplied label), ``line`` the
    1-based line number of the offending record.
    """

    def __init__(self, source: str, line: int, message: str):
        super().__init__(f"{source}:{line}: {message}")
        self.source = source
        self.line = line
        self.reason = message


class TraceOrderError(ValueError):
    """Records arrived out of release order (breaks bounded-memory replay)."""


@dataclass(frozen=True)
class TraceRecord:
    """One observed job from a workload trace.

    Attributes
    ----------
    index:
        0-based position among the *emitted* (non-skipped) records.  The
        synthesizer seeds its per-record RNG from this, so noise draws are
        independent of how the stream is chunked or parallelised.
    id:
        Source job identifier (SWF job number, CSV ``id`` column, or a
        generated ``t<index>``).
    release:
        Observed arrival/submit time (``>= 0``).
    runtime:
        Observed processing time (``> 0``) — becomes the exact load ``w*``.
    deadline:
        Explicit deadline when the format provides one (tabular traces);
        ``None`` for SWF, where the synthesizer derives it from the slack
        factor.
    requested:
        The user's runtime estimate (SWF field 9) when available; a natural
        seed for the upper bound ``w``.
    query_cost:
        Explicit query cost when the format provides one; otherwise the
        noise model draws it.
    """

    index: int
    id: str
    release: float
    runtime: float
    deadline: float | None = None
    requested: float | None = None
    query_cost: float | None = None


@dataclass
class ParseStats:
    """Mutable tally a parser updates while its iterator is consumed.

    ``emitted`` counts records yielded, ``skipped`` counts data lines the
    QBSS model cannot represent (non-positive runtime or negative release).
    Both are only complete once the iterator is exhausted — the parsers
    are lazy.
    """

    emitted: int = 0
    skipped: int = 0
    skip_reasons: dict = field(default_factory=dict)

    def skip(self, reason: str) -> None:
        self.skipped += 1
        self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1
