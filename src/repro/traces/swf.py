"""Standard Workload Format (SWF) parser.

SWF is the archive format of the Parallel Workloads Archive: ``;``-prefixed
header comments followed by data lines of 18 whitespace-separated fields.
The fields this layer uses:

====  ====================  =============================================
 #    name                  use here
====  ====================  =============================================
 1    job number            record id
 2    submit time           release ``r`` (seconds from trace start)
 4    run time              observed runtime — the exact load ``w*``
 9    requested time        user's estimate — seeds the upper bound ``w``
====  ====================  =============================================

Parsing is *lazy* (a generator over the open file) and *strict*: a data
line with fewer than 18 fields or a non-numeric field raises
:class:`~repro.traces.records.TraceParseError` with the file and line
number.  Lines the QBSS model cannot represent — runtime ``<= 0`` (SWF
writes ``-1`` for missing, ``0`` for cancelled jobs) or negative submit
time — are skipped and tallied in :class:`~repro.traces.records.ParseStats`.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterator

from .records import ParseStats, TraceParseError, TraceRecord

PathLike = str | Path

#: SWF data lines carry exactly 18 fields; we accept trailing extras
#: (some archives append site-specific columns) but never fewer.
SWF_FIELDS = 18


def parse_swf(
    path: PathLike, stats: ParseStats | None = None
) -> Iterator[TraceRecord]:
    """Lazily yield :class:`TraceRecord` from an SWF file.

    ``stats``, when given, is updated in place as the iterator is consumed
    (emitted/skipped tallies).  The file is read line by line — a
    million-job log never materializes in memory.
    """
    source = str(path)
    stats = stats if stats is not None else ParseStats()
    with open(path, encoding="utf-8", errors="replace") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            fields = line.split()
            if len(fields) < SWF_FIELDS:
                raise TraceParseError(
                    source,
                    lineno,
                    f"SWF data line has {len(fields)} fields, "
                    f"expected {SWF_FIELDS} "
                    "(is this really a Standard Workload Format file?)",
                )
            try:
                job_id = fields[0]
                submit = float(fields[1])
                runtime = float(fields[3])
                requested = float(fields[8])
            except ValueError as exc:
                raise TraceParseError(
                    source, lineno, f"non-numeric SWF field: {exc}"
                ) from None
            if runtime <= 0.0:
                stats.skip("non-positive runtime")
                continue
            if submit < 0.0:
                stats.skip("negative submit time")
                continue
            yield TraceRecord(
                index=stats.emitted,
                id=f"swf-{job_id}",
                release=submit,
                runtime=runtime,
                requested=requested if requested > 0.0 else None,
            )
            stats.emitted += 1
