"""Sharded streaming replay of a QBSS job stream through the engine.

The replayer consumes a *lazy* stream of :class:`~repro.core.qjob.QJob`
(usually a parser piped through the synthesizer), partitions it into
time-window shards by release time, evaluates each shard's competitive
ratios against the clairvoyant optimum, and aggregates everything into a
:class:`ReplayReport` with percentile summaries.

Memory contract: the full trace is **never** materialized.  Resident at
any moment are the shard being assembled plus the shards in flight on the
worker pool (bounded by ``2 x jobs``); :class:`ReplayMetrics` records the
observed peak so tests can verify the bound.  This requires the stream to
be sorted by release time — the replayer raises
:class:`~repro.traces.records.TraceOrderError` otherwise rather than
silently buffering without bound.

Shard evaluation reuses the engine's content-addressed
:class:`~repro.engine.cache.ResultCache`: the key is the SHA-256 of the
shard's serialized jobs plus the algorithm list, alpha and package
version, so warm replay campaigns skip every shard they have seen before
regardless of which trace file it came from.

Determinism: shard rows are always normalised through their JSON payload,
so a cold serial run, a ``jobs=4`` run and a fully cached run render — and
serialize — byte-identically.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
import traceback
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from .. import __version__ as PACKAGE_VERSION
from ..analysis.tables import render_table
from ..core.instance import QBSSInstance
from ..core.qjob import QJob
from ..engine.faults import (
    FailureInfo,
    FaultPlan,
    RetryPolicy,
    TransientError,
    WorkerCrashError,
    active_fault_plan,
    corrupt_cache_entry,
    installed_fault_plan,
    torn_write_entry,
)
from ..engine.runner import _UNSET, HardenedTask
from ..engine.session import ExecutionSession
from .checkpoint import ReplayCheckpoint
from ..qbss.registry import get_algorithm
from .records import TraceOrderError

REPLAY_FORMAT_VERSION = 1

#: Shard verdicts: successfully evaluated (any execution mode) = ``ok``;
#: ``degraded`` = valid result recovered in-process after repeated pool
#: crashes; ``error``/``timeout`` = no rows for this shard.
SHARD_STATUSES = ("ok", "degraded", "error", "timeout")

#: Default algorithm line-up: the paper's online algorithms (arbitrary
#: releases and deadlines — the only setting a general trace fits).
DEFAULT_ALGORITHMS = ("avrq", "bkpq")


def paper_energy_bound(algorithm: str, alpha: float) -> float | None:
    """The proven energy-ratio upper bound for ``algorithm``, if any.

    AVRQ and BKPQ carry Theorem 5.2 / 5.4 bounds valid on arbitrary
    instances; OAQ is the paper's open question (no bound claimed), and
    the offline algorithms never appear here (their structural settings
    do not cover general traces).
    """
    from ..bounds import formulas

    bounds = {
        "avrq": formulas.avrq_ub_energy,
        "bkpq": formulas.bkpq_ub_energy,
    }
    fn = bounds.get(algorithm)
    return fn(alpha) if fn is not None else None


def validate_replay_algorithms(algorithms: Sequence[str]) -> tuple[str, ...]:
    """Check every name is a registered *online* algorithm.

    Trace shards have arbitrary releases and deadlines, so the offline
    algorithms (common-release settings) and the multi-machine runners are
    rejected up front with a message naming the valid choices.
    """
    if not algorithms:
        raise ValueError("need at least one algorithm to replay")
    online = sorted(_online_specs())
    chosen = []
    for name in algorithms:
        spec = get_algorithm(name)  # KeyError with the full list on typos
        if spec.setting != "online":
            raise ValueError(
                f"algorithm {name!r} is {spec.setting!r}; trace replay "
                f"needs online algorithms (one of: {', '.join(online)})"
            )
        chosen.append(name)
    return tuple(chosen)


def _online_specs():
    from ..qbss.registry import ALGORITHMS

    return {n: s for n, s in ALGORITHMS.items() if s.setting == "online"}


# -- sharding -----------------------------------------------------------------------


@dataclass(frozen=True)
class Shard:
    """One time-window worth of jobs, [start, end) by release time."""

    index: int
    start: float
    end: float
    jobs: tuple[QJob, ...]


def iter_shards(
    jobs: Iterable[QJob], window: float, origin: float = 0.0
) -> Iterator[Shard]:
    """Group a release-sorted job stream into consecutive time shards.

    Shards are aligned to the absolute grid ``origin + k * window`` and
    empty windows are skipped.  Holding only the current shard in memory
    is what gives replay its bounded footprint, so a release time moving
    backwards raises :class:`TraceOrderError` immediately.
    """
    if window <= 0.0:
        raise ValueError(f"shard window must be > 0, got {window}")
    current: int | None = None
    last_release = -math.inf
    buf: list[QJob] = []
    for job in jobs:
        if job.release < last_release:
            raise TraceOrderError(
                f"job {job.id!r} released at {job.release} after a job "
                f"released at {last_release}; trace replay streams in "
                "release order — sort the trace first"
            )
        last_release = job.release
        k = int(math.floor((job.release - origin) / window))
        if current is None:
            current = k
        if k != current:
            yield Shard(
                current,
                origin + current * window,
                origin + (current + 1) * window,
                tuple(buf),
            )
            buf = []
            current = k
        buf.append(job)
    if buf and current is not None:
        yield Shard(
            current,
            origin + current * window,
            origin + (current + 1) * window,
            tuple(buf),
        )


# -- shard evaluation ---------------------------------------------------------------


def _shard_doc(shard: Shard) -> dict:
    from ..io import qbss_instance_to_dict

    doc = qbss_instance_to_dict(QBSSInstance(shard.jobs))
    return {
        "index": shard.index,
        "start": shard.start,
        "end": shard.end,
        "instance": doc,
    }


def shard_cache_key(
    shard_doc: dict,
    algorithms: Sequence[str],
    alpha: float,
    package_version: str | None = None,
) -> str:
    """Content address of one shard evaluation (SHA-256 hex).

    Keyed by the serialized jobs themselves (not the trace file or its
    noise parameters): two campaigns that synthesize identical shards
    share cache entries, and any change to a job, the algorithm list,
    alpha or the package version misses.
    """
    material = json.dumps(
        {
            "kind": "trace_shard",
            "replay_version": REPLAY_FORMAT_VERSION,
            "jobs": shard_doc["instance"]["jobs"],
            "algorithms": list(algorithms),
            "alpha": alpha,
            "package_version": package_version or PACKAGE_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _evaluate_shard(
    shard_doc: dict, algorithms: tuple[str, ...], alpha: float
) -> dict:
    """Worker body: measure every algorithm on one shard.

    Module-level (pickled by name into pool workers); returns a plain-JSON
    payload so cached and fresh results are indistinguishable.
    """
    from ..analysis.ratios import measure
    from ..core.profile_kernel import kernel_enabled
    from ..io import qbss_instance_from_dict
    from ..qbss.clairvoyant import clairvoyant_values

    qi = qbss_instance_from_dict(shard_doc["instance"])
    # One clairvoyant baseline serves every algorithm of the shard (the
    # values are identical per algorithm anyway).  Gated on the kernel flag
    # so pure_python() reproduces the pre-kernel call graph exactly.
    baseline = clairvoyant_values(qi, alpha=alpha) if kernel_enabled() else None
    rows = []
    for name in algorithms:
        m = measure(name, qi, alpha=alpha, baseline=baseline)
        bound = paper_energy_bound(name, alpha)
        rows.append(
            {
                "algorithm": name,
                "energy": m.energy,
                "optimal_energy": m.optimal_energy,
                "energy_ratio": m.energy_ratio,
                "max_speed": m.max_speed,
                "optimal_max_speed": m.optimal_max_speed,
                "max_speed_ratio": m.max_speed_ratio,
                "paper_bound": bound,
                "within_bound": (
                    None if bound is None else m.energy_ratio <= bound * (1 + 1e-9)
                ),
            }
        )
    return {
        "index": shard_doc["index"],
        "start": shard_doc["start"],
        "end": shard_doc["end"],
        "n_jobs": len(shard_doc["instance"]["jobs"]),
        "rows": rows,
    }


def _evaluate_shard_task(
    shard_doc: dict,
    algorithms: tuple[str, ...],
    alpha: float,
    task: str,
    attempt: int,
) -> dict:
    """Hardened worker body: fault hook + captured exceptions.

    Module-level (pickled by name); reads the ``QBSS_FAULT_PLAN`` env hook,
    then defers to :func:`_evaluate_shard`.  Ordinary exceptions come back
    as a failure outcome so one pathological shard cannot abort the
    replay; ``KeyboardInterrupt``/``SystemExit`` still propagate.
    """
    start = time.perf_counter()
    try:
        plan = active_fault_plan()
        if plan is not None:
            plan.inject(task, attempt)
        payload = _evaluate_shard(shard_doc, algorithms, alpha)
        return {
            "ok": True,
            "payload": payload,
            "wall": time.perf_counter() - start,
        }
    except BaseException as exc:
        if not isinstance(exc, Exception):
            raise
        return {
            "ok": False,
            "error": traceback.format_exc(limit=8),
            "transient": isinstance(exc, TransientError),
            "kind": "crash" if isinstance(exc, WorkerCrashError) else "error",
            "wall": time.perf_counter() - start,
        }


def _normalise(payload: dict) -> dict:
    """Round-trip through JSON so every result path renders identically."""
    return json.loads(json.dumps(payload))


# -- the report ---------------------------------------------------------------------


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile on pre-sorted values (numpy-free
    and bit-deterministic across platforms)."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class ReplayReport:
    """The aggregated outcome of one trace replay.

    ``shards`` holds the per-shard JSON payloads (one row per algorithm);
    the summary statistics are *derived* at render time, so a report that
    round-trips through :meth:`to_dict`/:meth:`from_dict` renders
    byte-identically.
    """

    source: str
    trace_format: str
    noise_model: str
    seed: int
    deadline_slack: float
    alpha: float
    shard_window: float
    algorithms: list[str]
    shards: list[dict]
    skipped: int = 0

    @property
    def n_jobs(self) -> int:
        return sum(s.get("n_jobs", 0) for s in self.shards)

    @property
    def failed_shards(self) -> list[dict]:
        """Shards with a non-result verdict (``error`` or ``timeout``)."""
        return [
            s
            for s in self.shards
            if s.get("status", "ok") in ("error", "timeout")
        ]

    def ratios_for(self, algorithm: str) -> list[float]:
        # failed shards (error/timeout) carry no rows — and a report read
        # from external JSON may omit the key entirely, so never index it
        return [
            row["energy_ratio"]
            for s in self.shards
            for row in s.get("rows") or []
            if row["algorithm"] == algorithm
        ]

    def summary_rows(self) -> list[list]:
        """Per-algorithm percentile summary over the shard energy ratios."""
        rows = []
        for name in self.algorithms:
            ratios = sorted(self.ratios_for(name))
            if not ratios:
                continue
            bound = None
            within = []
            for s in self.shards:
                for row in s.get("rows") or []:
                    if row["algorithm"] == name:
                        bound = row["paper_bound"]
                        within.append(row["within_bound"])
            all_within = (
                None
                if bound is None
                else all(w for w in within if w is not None)
            )
            rows.append(
                [
                    name,
                    len(ratios),
                    sum(ratios) / len(ratios),
                    _percentile(ratios, 50.0),
                    _percentile(ratios, 90.0),
                    _percentile(ratios, 99.0),
                    ratios[-1],
                    bound,
                    all_within,
                ]
            )
        return rows

    def render(self, max_shard_rows: int = 20) -> str:
        title = (
            f"[REPLAY] {self.source} — {self.trace_format} trace, "
            f"{len(self.shards)} shards / {self.n_jobs} jobs "
            f"(noise={self.noise_model}, seed={self.seed}, "
            f"alpha={self.alpha}, window={self.shard_window})"
        )
        out = render_table(
            [
                "algorithm",
                "shards",
                "mean",
                "p50",
                "p90",
                "p99",
                "max",
                "paper UB",
                "within",
            ],
            self.summary_rows(),
            title=title,
        )
        shard_rows = []
        for s in self.shards[:max_shard_rows]:
            status = s.get("status", "ok")
            rows = s.get("rows") or []
            if not rows:
                shard_rows.append(
                    [
                        s["index"],
                        s["start"],
                        s["end"],
                        s.get("n_jobs", 0),
                        "-",
                        status,
                        None,
                        None,
                        None,
                    ]
                )
            for row in rows:
                shard_rows.append(
                    [
                        s["index"],
                        s["start"],
                        s["end"],
                        s["n_jobs"],
                        row["algorithm"],
                        status,
                        row["energy_ratio"],
                        row["max_speed_ratio"],
                        row["within_bound"],
                    ]
                )
        out += "\n\n" + render_table(
            [
                "shard",
                "start",
                "end",
                "jobs",
                "algorithm",
                "status",
                "energy ratio",
                "speed ratio",
                "within",
            ],
            shard_rows,
        )
        if len(self.shards) > max_shard_rows:
            out += (
                f"\n({len(self.shards) - max_shard_rows} more shards not "
                "shown; serialize with --output for the full data)"
            )
        failed = self.failed_shards
        if failed:
            out += (
                f"\nwarning: {len(failed)} shard(s) have no results "
                f"({', '.join(str(s['index']) + ':' + s.get('status', '?') for s in failed)})"
            )
        if self.skipped:
            out += (
                f"\nnote: {self.skipped} trace records skipped "
                "(non-positive runtime or negative release)"
            )
        return out

    def to_dict(self) -> dict:
        return {
            "version": REPLAY_FORMAT_VERSION,
            "kind": "trace_replay_report",
            "source": self.source,
            "trace_format": self.trace_format,
            "noise_model": self.noise_model,
            "seed": self.seed,
            "deadline_slack": self.deadline_slack,
            "alpha": self.alpha,
            "shard_window": self.shard_window,
            "algorithms": list(self.algorithms),
            "skipped": self.skipped,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> ReplayReport:
        return cls(
            source=str(data["source"]),
            trace_format=str(data["trace_format"]),
            noise_model=str(data["noise_model"]),
            seed=int(data["seed"]),
            deadline_slack=float(data["deadline_slack"]),
            alpha=float(data["alpha"]),
            shard_window=float(data["shard_window"]),
            algorithms=list(data["algorithms"]),
            shards=list(data["shards"]),
            skipped=int(data.get("skipped", 0)),
        )


@dataclass
class ReplayMetrics:
    """Execution metrics of one replay (stderr material, not report data).

    Timing and cache behaviour stay out of :class:`ReplayReport` so report
    output is deterministic; this carries the operational story instead.
    ``peak_resident_jobs`` is the largest number of jobs simultaneously
    held in memory (current shard + in-flight shards) — the number the
    bounded-memory test pins down.
    """

    shards: int = 0
    jobs: int = 0
    hits: int = 0
    misses: int = 0
    resumed: int = 0
    wall_time: float = 0.0
    peak_resident_jobs: int = 0
    cache_dir: str | None = None
    pool_jobs: int = 1
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    quarantined: int = 0
    failures: list[FailureInfo] = field(default_factory=list)

    def footer(self) -> str:
        rate = self.shards / self.wall_time if self.wall_time > 0 else 0.0
        cache_note = self.cache_dir if self.cache_dir else "disabled"
        out = (
            "---- replay " + "-" * 46 + "\n"
            f"{self.shards} shards / {self.jobs} jobs in "
            f"{self.wall_time:.3f}s ({rate:.2f} shards/s) | "
            f"{self.hits} hit / {self.misses} miss | "
            f"jobs={self.pool_jobs} | peak resident jobs="
            f"{self.peak_resident_jobs} | cache: {cache_note}"
        )
        if self.resumed:
            out += f"\nresumed: {self.resumed} shards from checkpoint"
        if (
            self.retries
            or self.timeouts
            or self.pool_rebuilds
            or self.degraded
            or self.quarantined
        ):
            out += (
                f"\nrecovery: {self.retries} retries | {self.timeouts} "
                f"timeouts | {self.pool_rebuilds} pool rebuilds | "
                f"{self.quarantined} quarantined"
                + (" | DEGRADED to serial" if self.degraded else "")
            )
        for fail in self.failures:
            out += f"\nfailed: {fail.summary_line()}"
        return out


# -- the replayer -------------------------------------------------------------------


class _ShardTask(HardenedTask):
    """One shard awaiting hardened evaluation."""

    __slots__ = ("doc", "key", "njobs")

    def __init__(self, doc: dict, key: str | None):
        super().__init__(f"shard:{doc['index']}")
        self.doc = doc
        self.key = key
        self.njobs = len(doc["instance"]["jobs"])


def replay_jobs(
    jobs_stream: Iterable[QJob],
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    alpha: float = 3.0,
    shard_window: float = 3600.0,
    session: "ExecutionSession | None" = None,
    jobs: int | str = _UNSET,
    cache: bool = _UNSET,
    cache_dir=_UNSET,
    package_version: str | None = _UNSET,
    meta: dict | None = None,
    task_timeout: float | None = _UNSET,
    retry: RetryPolicy | None = _UNSET,
    fault_plan: FaultPlan | None = _UNSET,
    tracer=_UNSET,
    metrics=_UNSET,
    backend=_UNSET,
    checkpoint: ReplayCheckpoint | None = None,
) -> tuple[ReplayReport, ReplayMetrics]:
    """Stream a release-sorted QJob iterable through sharded evaluation.

    ``session`` (an :class:`~repro.engine.session.ExecutionSession`)
    carries the execution context — pool, cache, hardening,
    observability — and can be shared across replays (one cache handle).
    The individual execution kwargs remain as the legacy spelling:
    without a session they construct one ad hoc; alongside an explicit
    session they are deprecated pass-throughs overriding its fields for
    this call.

    ``meta`` carries the provenance fields of the report (source, format,
    noise model, seed, deadline_slack, skipped) — :func:`replay_trace`
    fills them; direct callers may omit any.  Evaluation is serial for
    ``jobs <= 1``, else fanned over a process pool with at most
    ``2 * jobs`` shards in flight (the memory bound; with a
    ``task_timeout`` the driver further bounds submissions to free
    workers so queue wait never counts against a shard's deadline).

    Execution is hardened (``docs/robustness.md``): shards running past
    ``task_timeout`` (pool mode) are cancelled and reported with verdict
    ``timeout``; transient failures retry under ``retry`` (injection
    coordinates are ``shard:<index>``); a broken pool is rebuilt once and
    then degraded to in-process evaluation; corrupt cache entries are
    quarantined and recomputed.  The replay always finishes — shards that
    could not be evaluated carry a ``status``/``failure`` record instead
    of rows.

    Observability (``docs/observability.md``): ``tracer`` (a
    :class:`repro.obs.Tracer`) records a ``batch`` span over the replay
    with ``cache-lookup`` / ``task`` / ``attempt`` child spans per shard;
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
    ``qbss_cache_*`` and ``qbss_replay_*`` series.  Both are optional and
    never change report payloads.

    ``checkpoint`` (a :class:`~repro.traces.checkpoint.ReplayCheckpoint`)
    makes the replay restartable: every completed shard is durably
    appended before the replay moves on, and shards the checkpoint
    already holds are served from it (counted in ``metrics.resumed``)
    without touching cache or pool.  Failed shards are never
    checkpointed — they re-run on resume.
    """
    from ..engine.session import session_from_kwargs

    # Sessions built here (no caller session) are closed before returning:
    # backend capacity — pool workers, warm remote links — must not outlive
    # the call unless the caller owns the session.
    owns_session = session is None
    session = session_from_kwargs(
        session,
        warn_name="replay_jobs",
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        package_version=package_version,
        task_timeout=task_timeout,
        retry=retry,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
        backend=backend,
    )
    jobs = session.pool_jobs
    package_version = session.package_version
    task_timeout = session.task_timeout
    fault_plan = session.fault_plan
    tracer = session.tracer
    algorithms = validate_replay_algorithms(algorithms)
    registry = session.metrics
    store = session.store
    quarantined_before = store.quarantined if store is not None else 0
    meta = dict(meta or {})
    start_wall = time.perf_counter()
    metrics = ReplayMetrics(
        cache_dir=str(store.root) if store is not None else None,
        pool_jobs=max(1, jobs),
    )
    results: dict[int, dict] = {}
    resident = 0
    batch_span = (
        tracer.begin("batch", kind="replay", algorithms=len(algorithms))
        if tracer is not None
        else None
    )

    with installed_fault_plan(fault_plan):
        plan = fault_plan if fault_plan is not None else active_fault_plan()

        def shard_tasks() -> Iterator[_ShardTask]:
            """Shards still needing evaluation; cache hits recorded inline."""
            nonlocal resident
            for shard in iter_shards(jobs_stream, shard_window):
                metrics.shards += 1
                metrics.jobs += len(shard.jobs)
                doc = _shard_doc(shard)
                key = None
                if store is not None or checkpoint is not None:
                    key = shard_cache_key(doc, algorithms, alpha, package_version)
                if checkpoint is not None and key is not None:
                    stored = checkpoint.get(key)
                    if stored is not None:
                        payload = _normalise(stored)
                        payload.setdefault("status", "ok")
                        results[shard.index] = payload
                        metrics.resumed += 1
                        continue
                if store is not None and key is not None:
                    shard_name = f"shard:{shard.index}"
                    before_q = store.quarantined
                    lookup_span = (
                        tracer.begin("cache-lookup", batch_span, task=shard_name)
                        if tracer is not None
                        else None
                    )
                    entry = store.get(key)
                    if tracer is not None:
                        for _ in range(store.quarantined - before_q):
                            tracer.event(
                                "cache_quarantine", lookup_span, task=shard_name
                            )
                        tracer.end(
                            lookup_span,
                            result="hit" if entry is not None else "miss",
                        )
                    if entry is not None:
                        payload = _normalise(entry["report"])
                        payload.setdefault("status", "ok")
                        results[shard.index] = payload
                        metrics.hits += 1
                        if checkpoint is not None:
                            checkpoint.record(key, dict(payload, status="ok"))
                        continue
                metrics.misses += 1
                task = _ShardTask(doc, key)
                if store is not None and key is not None:
                    # Remote workers publish the shard verdict by digest
                    # before replying — the shared cache is the
                    # coordination point on worker loss.
                    task.publish = {
                        "key": key,
                        "experiment": "trace-shard",
                        "params": {
                            "algorithms": list(algorithms),
                            "alpha": alpha,
                        },
                        "package_version": package_version,
                        "wrap_status": True,
                    }
                resident += task.njobs
                metrics.peak_resident_jobs = max(
                    metrics.peak_resident_jobs, resident
                )
                yield task

        def on_success(task: _ShardTask, outcome: dict, degraded: bool) -> None:
            nonlocal resident
            resident -= task.njobs
            payload = _normalise(outcome["payload"])
            if store is not None and task.key is not None:
                # Cache the mode-independent verdict: a degraded result is
                # still the correct result, so warm replays serve it as ok.
                path = store.put(
                    task.key,
                    "trace-shard",
                    {"algorithms": list(algorithms), "alpha": alpha},
                    dict(payload, status="ok"),
                    outcome["wall"],
                    package_version,
                )
                if plan is not None and plan.wants_corrupt_cache(
                    task.task_key, task.attempt
                ):
                    corrupt_cache_entry(path)
                if plan is not None and plan.wants_torn_write(
                    task.task_key, task.attempt
                ):
                    torn_write_entry(path)
            if checkpoint is not None and task.key is not None:
                checkpoint.record(
                    task.key,
                    dict(payload, status="ok"),
                    torn=plan is not None
                    and plan.wants_torn_write(task.task_key, task.attempt),
                )
            payload["status"] = "degraded" if degraded else "ok"
            results[task.doc["index"]] = payload

        def on_failure(task: _ShardTask, kind: str, error: str | None) -> None:
            nonlocal resident
            resident -= task.njobs
            failure = FailureInfo(
                task=task.task_key,
                kind=kind,
                attempts=task.attempt,
                wall_times=list(task.walls),
                traceback=error,
            )
            metrics.failures.append(failure)
            doc = task.doc
            results[doc["index"]] = _normalise(
                {
                    "index": doc["index"],
                    "start": doc["start"],
                    "end": doc["end"],
                    "n_jobs": len(doc["instance"]["jobs"]),
                    "rows": [],
                    "status": "timeout" if kind == "timeout" else "error",
                    "failure": failure.to_dict(),
                }
            )

        stats = session.execute(
            shard_tasks(),
            worker=_evaluate_shard_task,
            payload=lambda t: (t.doc, algorithms, alpha, t.task_key),
            on_success=on_success,
            on_failure=on_failure,
            max_inflight=2 * jobs if jobs > 1 else None,
            trace_parent=batch_span,
        )

    metrics.retries = stats.retries
    metrics.timeouts = stats.timeouts
    metrics.pool_rebuilds = stats.pool_rebuilds
    metrics.degraded = stats.degraded
    metrics.quarantined = (
        store.quarantined - quarantined_before if store is not None else 0
    )
    metrics.wall_time = time.perf_counter() - start_wall
    if tracer is not None:
        tracer.end(
            batch_span,
            status="degraded" if metrics.degraded else "ok",
            shards=metrics.shards,
            failures=len(metrics.failures),
        )
    report = ReplayReport(
        source=str(meta.get("source", "<stream>")),
        trace_format=str(meta.get("trace_format", "jobs")),
        noise_model=str(meta.get("noise_model", "none")),
        seed=int(meta.get("seed", 0)),
        deadline_slack=float(meta.get("deadline_slack", 0.0)),
        alpha=alpha,
        shard_window=shard_window,
        algorithms=list(algorithms),
        shards=[results[i] for i in sorted(results)],
        skipped=int(meta.get("skipped", 0)),
    )
    if registry is not None:
        from ..obs.publish import publish_replay

        publish_replay(registry, report, metrics)
    if owns_session:
        session.close()
    return report, metrics


TRACE_FORMATS = ("swf", "csv", "jsonl")


def detect_format(path) -> str:
    """Guess the trace format from the file extension."""
    suffix = str(path).rsplit(".", 1)[-1].lower()
    if suffix in TRACE_FORMATS:
        return suffix
    raise ValueError(
        f"cannot detect trace format from {path!r}; "
        f"pass --format (one of: {', '.join(TRACE_FORMATS)})"
    )


def replay_trace(
    path,
    *,
    trace_format: str = "auto",
    noise_model: str = "multiplicative",
    seed: int = 0,
    deadline_slack: float = 2.0,
    limit: int | None = None,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    alpha: float = 3.0,
    shard_window: float = 3600.0,
    session: ExecutionSession | None = None,
    jobs: int = _UNSET,
    cache: bool = _UNSET,
    cache_dir=_UNSET,
    package_version: str | None = _UNSET,
    task_timeout: float | None = _UNSET,
    retry: RetryPolicy | None = _UNSET,
    fault_plan: FaultPlan | None = _UNSET,
    tracer=_UNSET,
    metrics=_UNSET,
    backend=_UNSET,
    checkpoint: ReplayCheckpoint | None = None,
) -> tuple[ReplayReport, ReplayMetrics]:
    """End-to-end replay: parse ``path``, synthesize uncertainty, shard,
    evaluate, aggregate.  The trace is streamed — bounded memory holds for
    arbitrarily large files.  ``session`` bundles the execution context
    (see :func:`replay_jobs`); ``task_timeout``/``retry``/``fault_plan``
    configure the hardened execution layer and ``tracer``/``metrics`` the
    observability layer, as legacy per-call spellings."""
    import itertools

    from .records import ParseStats
    from .swf import parse_swf
    from .synthesize import synthesize_jobs
    from .tabular import parse_csv, parse_jsonl

    fmt = detect_format(path) if trace_format == "auto" else trace_format
    parsers = {"swf": parse_swf, "csv": parse_csv, "jsonl": parse_jsonl}
    if fmt not in parsers:
        raise ValueError(
            f"unknown trace format {fmt!r} (one of: {', '.join(TRACE_FORMATS)})"
        )
    stats = ParseStats()
    records = parsers[fmt](path, stats)
    if limit is not None:
        records = itertools.islice(records, limit)
    stream = synthesize_jobs(
        records, model=noise_model, seed=seed, deadline_slack=deadline_slack
    )
    if metrics is not _UNSET:
        registry = metrics
    elif session is not None:
        registry = session.metrics
    else:
        registry = None
    report, metrics = replay_jobs(
        stream,
        algorithms=algorithms,
        alpha=alpha,
        shard_window=shard_window,
        session=session,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        package_version=package_version,
        task_timeout=task_timeout,
        retry=retry,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
        backend=backend,
        checkpoint=checkpoint,
        meta={
            "source": str(path),
            "trace_format": fmt,
            "noise_model": noise_model,
            "seed": seed,
            "deadline_slack": deadline_slack,
        },
    )
    # the stream is exhausted now, so the parser's tallies are complete
    report.skipped = stats.skipped
    if registry is not None and stats.skipped:
        # replay_jobs published before this tally existed; top it up.
        from ..obs.publish import publish_skipped

        publish_skipped(registry, stats.skipped)
    return report, metrics
