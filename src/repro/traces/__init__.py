"""Workload-trace ingestion, uncertainty synthesis and streaming replay.

The pipeline this package provides::

    trace file  --parse-->  TraceRecord stream  --synthesize-->  QJob stream
                --shard-->  time-window shards  --evaluate-->  ReplayReport

* :mod:`repro.traces.swf` / :mod:`repro.traces.tabular` — lazy, strictly
  validated parsers for SWF cluster logs and the generic
  ``release,deadline,runtime[,query_cost]`` CSV/JSONL schema;
* :mod:`repro.traces.synthesize` — pluggable noise models mapping each
  observed runtime to a QBSS job ``(r, d, c, w, w*)`` with ``w* = runtime``
  and seeded per-record determinism;
* :mod:`repro.traces.replay` — the sharded streaming replayer (bounded
  memory, process-pool fan-out, content-addressed shard cache) and the
  :class:`~repro.traces.replay.ReplayReport` it aggregates.

CLI surface: ``qbss-replay`` (see :mod:`repro.cli`).
"""

from .records import ParseStats, TraceOrderError, TraceParseError, TraceRecord
from .replay import (
    DEFAULT_ALGORITHMS,
    REPLAY_FORMAT_VERSION,
    SHARD_STATUSES,
    TRACE_FORMATS,
    ReplayMetrics,
    ReplayReport,
    Shard,
    detect_format,
    iter_shards,
    paper_energy_bound,
    replay_jobs,
    replay_trace,
    shard_cache_key,
    validate_replay_algorithms,
)
from .swf import parse_swf
from .synthesize import (
    NOISE_MODELS,
    NoiseModel,
    get_noise_model,
    synthesize_job,
    synthesize_jobs,
)
from .tabular import parse_csv, parse_jsonl

__all__ = [
    "ParseStats",
    "TraceOrderError",
    "TraceParseError",
    "TraceRecord",
    "DEFAULT_ALGORITHMS",
    "REPLAY_FORMAT_VERSION",
    "SHARD_STATUSES",
    "TRACE_FORMATS",
    "ReplayMetrics",
    "ReplayReport",
    "Shard",
    "detect_format",
    "iter_shards",
    "paper_energy_bound",
    "replay_jobs",
    "replay_trace",
    "shard_cache_key",
    "validate_replay_algorithms",
    "parse_swf",
    "NOISE_MODELS",
    "NoiseModel",
    "get_noise_model",
    "synthesize_job",
    "synthesize_jobs",
    "parse_csv",
    "parse_jsonl",
]
