"""Generic tabular trace parsers: CSV and JSONL.

The schema is ``release,deadline,runtime[,query_cost][,id]`` — the minimal
information needed to build a QBSS job around an observed runtime.  CSV
files carry a header row naming the columns (any order, unknown columns
rejected); JSONL files carry one object per line with the same keys.

Validation is strict and per-line — every violation raises
:class:`~repro.traces.records.TraceParseError` with the file and 1-based
line number:

* ``release >= 0`` and finite;
* ``runtime > 0`` and finite (it becomes the exact load ``w*``);
* ``deadline > release`` (the window must be non-empty);
* ``query_cost > 0`` when present.

Unlike SWF (whose archives encode missing data as ``-1``), this schema is
ours, so there is no skip policy: a tabular trace with a bad record is a
bad trace.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from collections.abc import Iterator

from .records import ParseStats, TraceParseError, TraceRecord

PathLike = str | Path

REQUIRED_COLUMNS = ("release", "deadline", "runtime")
OPTIONAL_COLUMNS = ("query_cost", "id")


def _validated_record(
    source: str, lineno: int, row: dict[str, object], index: int
) -> TraceRecord:
    """Build one validated TraceRecord from a parsed row dict."""

    def number(key: str) -> float:
        try:
            value = float(row[key])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise TraceParseError(
                source, lineno, f"column {key!r} is not a number: {row[key]!r}"
            ) from None
        if not math.isfinite(value):
            raise TraceParseError(
                source, lineno, f"column {key!r} must be finite, got {value}"
            )
        return value

    release = number("release")
    deadline = number("deadline")
    runtime = number("runtime")
    if release < 0.0:
        raise TraceParseError(
            source, lineno, f"release must be >= 0, got {release}"
        )
    if runtime <= 0.0:
        raise TraceParseError(
            source, lineno, f"runtime must be > 0, got {runtime}"
        )
    if deadline <= release:
        raise TraceParseError(
            source,
            lineno,
            f"deadline ({deadline}) must exceed release ({release})",
        )
    query_cost: float | None = None
    if row.get("query_cost") not in (None, ""):
        query_cost = number("query_cost")
        if query_cost <= 0.0:
            raise TraceParseError(
                source, lineno, f"query_cost must be > 0, got {query_cost}"
            )
    raw_id = row.get("id")
    job_id = str(raw_id) if raw_id not in (None, "") else f"t{index}"
    return TraceRecord(
        index=index,
        id=job_id,
        release=release,
        runtime=runtime,
        deadline=deadline,
        query_cost=query_cost,
    )


def parse_csv(
    path: PathLike, stats: ParseStats | None = None
) -> Iterator[TraceRecord]:
    """Lazily yield records from a CSV trace (header row required)."""
    source = str(path)
    stats = stats if stats is not None else ParseStats()
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceParseError(source, 1, "empty CSV trace") from None
        columns = [c.strip().lower() for c in header]
        missing = [c for c in REQUIRED_COLUMNS if c not in columns]
        if missing:
            raise TraceParseError(
                source,
                1,
                f"missing required columns {missing}; "
                f"schema is release,deadline,runtime[,query_cost][,id]",
            )
        unknown = [
            c
            for c in columns
            if c not in REQUIRED_COLUMNS + OPTIONAL_COLUMNS
        ]
        if unknown:
            raise TraceParseError(
                source, 1, f"unknown columns {unknown} (strict schema)"
            )
        for lineno, cells in enumerate(reader, start=2):
            if not cells or all(not c.strip() for c in cells):
                continue
            if len(cells) != len(columns):
                raise TraceParseError(
                    source,
                    lineno,
                    f"expected {len(columns)} cells, got {len(cells)}",
                )
            row = dict(zip(columns, (c.strip() for c in cells)))
            yield _validated_record(source, lineno, row, stats.emitted)
            stats.emitted += 1


def parse_jsonl(
    path: PathLike, stats: ParseStats | None = None
) -> Iterator[TraceRecord]:
    """Lazily yield records from a JSONL trace (one object per line)."""
    source = str(path)
    stats = stats if stats is not None else ParseStats()
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                raise TraceParseError(
                    source, lineno, f"invalid JSON: {exc}"
                ) from None
            if not isinstance(row, dict):
                raise TraceParseError(
                    source,
                    lineno,
                    f"expected a JSON object, got {type(row).__name__}",
                )
            missing = [c for c in REQUIRED_COLUMNS if c not in row]
            if missing:
                raise TraceParseError(
                    source, lineno, f"missing required keys {missing}"
                )
            unknown = [
                c
                for c in row
                if c not in REQUIRED_COLUMNS + OPTIONAL_COLUMNS
            ]
            if unknown:
                raise TraceParseError(
                    source, lineno, f"unknown keys {unknown} (strict schema)"
                )
            yield _validated_record(source, lineno, row, stats.emitted)
            stats.emitted += 1
