"""Uncertainty synthesis: observed runtimes -> QBSS jobs.

A trace records what *actually* happened (the runtime); the QBSS model
needs what was *known beforehand* (the upper bound ``w`` and query cost
``c``) alongside the hidden truth ``w*``.  Following the processing-time
oracle viewpoint (Dufossé et al.), we set ``w* = runtime`` and synthesize
``w >= w*`` under a pluggable noise model:

``multiplicative``
    ``w = w* * U[slack_low, slack_high]`` — a uniform over-estimate factor,
    the "users pad their estimates by 1.2-3x" regime.
``lognormal``
    ``w = w* * exp(|N(0, sigma)|)`` — heavy-tailed over-estimates; most
    bounds are tight, a few are wildly conservative.
``adversarial``
    The deterministic worst case of the single-job game (Lemma 4.2 scaled
    to ``w*``): ``c = max(w*, unit)/phi`` and ``w = phi * (c + w*)``, so
    every job sits exactly at the golden-ratio decision boundary.

When a trace supplies an explicit ``query_cost`` it is honoured (clipped
to ``(0, w]``, the model constraint); otherwise the noise model draws
``c = U[0.05, 1.0] * w``, mirroring
:class:`repro.workloads.generators.UncertaintyModel`.

Determinism: each record gets its own ``numpy`` generator seeded by
``(seed, record.index)``, so the draw for job *i* does not depend on how
the stream was chunked, sharded or parallelised — the property the
replayer's serial == parallel guarantee rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from ..core.constants import PHI
from ..core.qjob import QJob
from .records import TraceRecord

#: Range of the query-cost fraction draw when the trace has no explicit c.
QUERY_FRAC_LOW = 0.05
QUERY_FRAC_HIGH = 1.0


@dataclass(frozen=True)
class NoiseModel:
    """One named way of inflating ``w*`` into the known upper bound ``w``.

    ``draw_upper`` maps ``(rng, w_star) -> w`` with the contract
    ``w >= w_star > 0``; ``deterministic`` marks models that ignore the
    RNG entirely (the adversarial construction), which the docs surface.
    """

    name: str
    summary: str
    draw_upper: Callable[[np.random.Generator, float], float]
    deterministic: bool = False


def _multiplicative_upper(
    rng: np.random.Generator, w_star: float, low: float = 1.25, high: float = 3.0
) -> float:
    return w_star * float(rng.uniform(low, high))


def _lognormal_upper(
    rng: np.random.Generator, w_star: float, sigma: float = 0.75
) -> float:
    return w_star * float(np.exp(abs(rng.normal(0.0, sigma))))


def _adversarial_upper(rng: np.random.Generator, w_star: float) -> float:
    # c is fixed to max(w*, unit)/phi by synthesize_jobs below; the upper
    # bound then lands exactly on the golden threshold w = phi (c + w*).
    unit = w_star if w_star > 0 else 1.0
    return PHI * (unit / PHI + w_star)


NOISE_MODELS: dict[str, NoiseModel] = {
    model.name: model
    for model in (
        NoiseModel(
            "multiplicative",
            "w = w* x U[1.25, 3.0] (uniform over-estimate)",
            _multiplicative_upper,
        ),
        NoiseModel(
            "lognormal",
            "w = w* x exp|N(0, 0.75)| (heavy-tailed over-estimate)",
            _lognormal_upper,
        ),
        NoiseModel(
            "adversarial",
            "w = phi (c + w*), c = max(w*,1)/phi (golden-boundary worst case)",
            _adversarial_upper,
            deterministic=True,
        ),
    )
}


def get_noise_model(name: str) -> NoiseModel:
    """Look up a noise model by name (KeyError lists the names)."""
    try:
        return NOISE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown noise model {name!r}; "
            f"registered: {', '.join(sorted(NOISE_MODELS))}"
        ) from None


def _record_rng(seed: int, index: int) -> np.random.Generator:
    """Per-record generator — chunking/sharding cannot change the draws."""
    return np.random.default_rng((seed, index))


def synthesize_job(
    record: TraceRecord,
    model: NoiseModel,
    *,
    seed: int = 0,
    deadline_slack: float = 2.0,
) -> QJob:
    """Turn one observed record into a QBSS job ``(r, d, c, w, w*)``.

    Invariants guaranteed (and property-tested): ``0 < c <= w``,
    ``w* <= w`` and ``r < d``.  For SWF records (no explicit deadline) the
    window is ``deadline_slack`` times the user's requested time (falling
    back to the runtime): the slack a deadline-feasibility evaluation
    grants the scheduler, as in the Abousamra-Bunde-Pruhs comparison.
    """
    if record.runtime <= 0.0:
        raise ValueError(f"record {record.id}: runtime must be > 0")
    if deadline_slack <= 0.0:
        raise ValueError(f"deadline_slack must be > 0, got {deadline_slack}")
    w_star = record.runtime
    rng = _record_rng(seed, record.index)
    w = float(model.draw_upper(rng, w_star))
    w = max(w, w_star)  # defensive: the contract, even for custom models

    if record.query_cost is not None:
        c = min(record.query_cost, w)
    elif model.name == "adversarial":
        c = max(w_star, 1.0) / PHI
    else:
        c = float(rng.uniform(QUERY_FRAC_LOW, QUERY_FRAC_HIGH)) * w
    c = float(np.clip(c, np.nextafter(0.0, 1.0), w))

    if record.deadline is not None:
        d = record.deadline
    else:
        base = (
            record.requested
            if record.requested is not None and record.requested > 0
            else w_star
        )
        d = record.release + deadline_slack * base
    if d <= record.release:
        raise ValueError(
            f"record {record.id}: derived deadline {d} does not exceed "
            f"release {record.release}"
        )
    return QJob(
        release=record.release,
        deadline=d,
        query_cost=c,
        work_upper=w,
        work_true=w_star,
        id=record.id,
    )


def synthesize_jobs(
    records: Iterable[TraceRecord],
    *,
    model: str = "multiplicative",
    seed: int = 0,
    deadline_slack: float = 2.0,
) -> Iterator[QJob]:
    """Lazily map a record stream through :func:`synthesize_job`."""
    noise = get_noise_model(model)
    for record in records:
        yield synthesize_job(
            record, noise, seed=seed, deadline_slack=deadline_slack
        )
