"""Crash-safe checkpointing for sharded trace replay.

A :class:`ReplayCheckpoint` is an append-only JSONL file recording every
shard a replay has finished: one ``{"kind": "replay_checkpoint_entry",
"version": 1, "key": ..., "payload": ...}`` object per line, flushed and
fsync'd before the replay moves on.  ``qbss-replay --checkpoint FILE``
writes one; ``--resume`` loads it back and skips exactly the shards it
holds — a replay killed mid-run (SIGKILL, OOM, power loss) restarts
where it left off instead of from shard zero.

Entries are keyed by the shard's content-addressed cache key, so a
checkpoint is only ever consulted for byte-identical work: same trace,
same algorithms, same alpha, same package version.  The *payload* (the
normalized shard report) is stored too, not just a completion digest —
resume therefore works even with ``--no-cache``, and the resumed run's
report is complete without re-evaluating anything.

Loading is tolerant the same way the serve journal is: a torn final
line (the crash hit mid-append, before the fsync) is dropped and
counted in :attr:`ReplayCheckpoint.torn` — that shard simply re-runs,
which is safe because shard evaluation is deterministic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any

CHECKPOINT_FORMAT_VERSION = 1
CHECKPOINT_KIND = "replay_checkpoint_entry"


class ReplayCheckpoint:
    """Append-only completed-shard log with tolerant resume.

    ``resume=False`` starts a fresh checkpoint (truncating any previous
    file at ``path``); ``resume=True`` first loads every intact entry so
    :meth:`get` can serve previously completed shards.
    """

    def __init__(self, path: str | Path, *, resume: bool = False):
        self.path = Path(path)
        self.torn = 0
        self._entries: dict[str, dict[str, Any]] = {}
        if resume and self.path.exists():
            self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume else "w"
        self._fh: IO[str] | None = open(self.path, mode)

    def _load(self) -> None:
        text = self.path.read_text()
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                self.torn += 1
                continue
            if (
                not isinstance(data, dict)
                or data.get("kind") != CHECKPOINT_KIND
                or data.get("version") != CHECKPOINT_FORMAT_VERSION
                or "key" not in data
                or "payload" not in data
            ):
                self.torn += 1
                continue
            self._entries[str(data["key"])] = dict(data["payload"])

    @property
    def completed(self) -> int:
        """How many distinct shards this checkpoint holds."""
        return len(self._entries)

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None if not checkpointed.

        Returns a detached deep copy: callers may mutate the result (or
        the payload they passed to :meth:`record`) without corrupting
        the checkpoint's view of what is durably on disk.
        """
        payload = self._entries.get(key)
        if payload is None:
            return None
        return json.loads(json.dumps(payload))

    def record(
        self, key: str, payload: dict[str, Any], *, torn: bool = False
    ) -> None:
        """Durably append one completed shard (write, flush, fsync).

        ``torn=True`` is the fault-injection hook: it writes only a
        prefix of the line and skips the fsync, modelling a crash
        mid-append — the tolerant loader must drop exactly this entry.
        """
        if self._fh is None:
            raise ValueError(f"checkpoint {self.path} is closed")
        line = json.dumps(
            {
                "kind": CHECKPOINT_KIND,
                "version": CHECKPOINT_FORMAT_VERSION,
                "key": key,
                "payload": payload,
            },
            sort_keys=True,
        )
        if torn:
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            return
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        # re-parse the line just written: the in-memory view is exactly
        # the bytes on disk, detached from the caller's dict
        self._entries[key] = json.loads(line)["payload"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> ReplayCheckpoint:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
