"""JSON serialization for instances, schedules and results.

Lets experiments be archived and replayed: instances round-trip exactly
(including the hidden exact loads — a serialized instance is ground truth,
so treat the files accordingly), and schedules/profiles serialize enough to
recompute energies and validate feasibility offline.

The format is versioned plain JSON; no pickle anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core.instance import Instance, QBSSInstance
from .core.job import Job
from .core.profile import Segment, SpeedProfile
from .core.qjob import QJob
from .core.schedule import Schedule

FORMAT_VERSION = 1

PathLike = str | Path


# -- encoding -----------------------------------------------------------------------


def job_to_dict(job: Job) -> dict[str, Any]:
    return {
        "id": job.id,
        "release": job.release,
        "deadline": job.deadline,
        "work": job.work,
    }


def qjob_to_dict(job: QJob) -> dict[str, Any]:
    return {
        "id": job.id,
        "release": job.release,
        "deadline": job.deadline,
        "query_cost": job.query_cost,
        "work_upper": job.work_upper,
        "work_true": job.work_true,
    }


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "classical",
        "machines": instance.machines,
        "jobs": [job_to_dict(j) for j in instance.jobs],
    }


def qbss_instance_to_dict(instance: QBSSInstance) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "qbss",
        "machines": instance.machines,
        "jobs": [qjob_to_dict(j) for j in instance.jobs],
    }


def profile_to_dict(profile: SpeedProfile) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "profile",
        "segments": [
            {"start": s.start, "end": s.end, "speed": s.speed} for s in profile
        ],
    }


def experiment_report_to_dict(report) -> dict[str, Any]:
    """Encode an :class:`~repro.analysis.experiments.ExperimentReport`.

    The cells are already JSON-coerced by ``report.to_dict()``; this adds
    the versioned envelope so the document round-trips through
    :func:`save`/:func:`load` like every other kind.
    """
    data = report.to_dict()
    data["version"] = FORMAT_VERSION
    data["kind"] = "experiment_report"
    return data


def trace_replay_report_to_dict(report) -> dict[str, Any]:
    """Encode a :class:`~repro.traces.replay.ReplayReport`.

    The report's own ``to_dict`` already carries the versioned envelope
    (``version``/``kind``), so this is a pass-through kept for symmetry
    with the other encoders.
    """
    return report.to_dict()


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "kind": "schedule",
        "machines": schedule.machines,
        "slices": [
            {
                "machine": m,
                "start": s.start,
                "end": s.end,
                "speed": s.speed,
                "job_id": s.job_id,
            }
            for m in range(schedule.machines)
            for s in schedule.slices(m)
        ],
    }


# -- decoding -----------------------------------------------------------------------


class FormatError(ValueError):
    """Raised on malformed or wrong-kind documents."""


def _expect(data: dict[str, Any], kind: str) -> None:
    if not isinstance(data, dict):
        raise FormatError(f"expected a JSON object, got {type(data).__name__}")
    if data.get("version") != FORMAT_VERSION:
        raise FormatError(
            f"unsupported format version {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    if data.get("kind") != kind:
        raise FormatError(f"expected kind {kind!r}, got {data.get('kind')!r}")


def job_from_dict(data: dict[str, Any]) -> Job:
    return Job(
        release=float(data["release"]),
        deadline=float(data["deadline"]),
        work=float(data["work"]),
        id=str(data["id"]),
    )


def qjob_from_dict(data: dict[str, Any]) -> QJob:
    return QJob(
        release=float(data["release"]),
        deadline=float(data["deadline"]),
        query_cost=float(data["query_cost"]),
        work_upper=float(data["work_upper"]),
        work_true=float(data["work_true"]),
        id=str(data["id"]),
    )


def instance_from_dict(data: dict[str, Any]) -> Instance:
    _expect(data, "classical")
    return Instance(
        [job_from_dict(j) for j in data["jobs"]], machines=int(data["machines"])
    )


def qbss_instance_from_dict(data: dict[str, Any]) -> QBSSInstance:
    _expect(data, "qbss")
    return QBSSInstance(
        [qjob_from_dict(j) for j in data["jobs"]], machines=int(data["machines"])
    )


def profile_from_dict(data: dict[str, Any]) -> SpeedProfile:
    _expect(data, "profile")
    return SpeedProfile(
        Segment(float(s["start"]), float(s["end"]), float(s["speed"]))
        for s in data["segments"]
    )


def experiment_report_from_dict(data: dict[str, Any]):
    """Decode an experiment-report document (lazy import, heavy module)."""
    from .analysis.experiments import ExperimentReport

    _expect(data, "experiment_report")
    return ExperimentReport.from_dict(data)


def trace_replay_report_from_dict(data: dict[str, Any]):
    """Decode a trace-replay report (lazy import, heavy module)."""
    from .traces.replay import REPLAY_FORMAT_VERSION, ReplayReport

    if not isinstance(data, dict):
        raise FormatError(f"expected a JSON object, got {type(data).__name__}")
    if data.get("version") != REPLAY_FORMAT_VERSION:
        raise FormatError(
            f"unsupported trace-replay version {data.get('version')!r} "
            f"(this library reads version {REPLAY_FORMAT_VERSION})"
        )
    if data.get("kind") != "trace_replay_report":
        raise FormatError(
            f"expected kind 'trace_replay_report', got {data.get('kind')!r}"
        )
    return ReplayReport.from_dict(data)


def run_manifest_to_dict(manifest) -> dict[str, Any]:
    """Encode a :class:`~repro.obs.manifest.RunManifest`.

    The manifest's own ``to_dict`` carries its versioned envelope
    (``version``/``kind``); pass-through kept for encoder symmetry.
    """
    return manifest.to_dict()


def run_manifest_from_dict(data: dict[str, Any]):
    """Decode a run-manifest document (lazy import)."""
    from .obs.manifest import RunManifest

    try:
        return RunManifest.from_dict(data)
    except ValueError as exc:
        raise FormatError(str(exc)) from exc


def serve_journal_record_to_dict(record) -> dict[str, Any]:
    """Encode a :class:`~repro.serve.journal.JournalRecord`.

    The record's own ``to_dict`` carries its versioned envelope
    (``version``/``kind``); pass-through kept for encoder symmetry.
    """
    return record.to_dict()


def serve_journal_record_from_dict(data: dict[str, Any]):
    """Decode a serve-journal record (lazy import)."""
    from .serve.journal import JournalRecord

    try:
        return JournalRecord.from_dict(data)
    except ValueError as exc:
        raise FormatError(str(exc)) from exc


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    _expect(data, "schedule")
    schedule = Schedule(int(data["machines"]))
    for s in data["slices"]:
        schedule.add(
            float(s["start"]),
            float(s["end"]),
            float(s["speed"]),
            str(s["job_id"]),
            int(s["machine"]),
        )
    return schedule


# -- file helpers -------------------------------------------------------------------

_SAVERS = {
    Instance: instance_to_dict,
    QBSSInstance: qbss_instance_to_dict,
    SpeedProfile: profile_to_dict,
    Schedule: schedule_to_dict,
}


def save(obj, path: PathLike) -> None:
    """Serialize a supported object to a JSON file."""
    encoder = _SAVERS.get(type(obj))
    if encoder is None and type(obj).__name__ == "ExperimentReport":
        # Registered lazily: importing repro.analysis at module import time
        # would pull the whole experiment stack into every io user.
        encoder = experiment_report_to_dict
    if encoder is None and type(obj).__name__ == "ReplayReport":
        encoder = trace_replay_report_to_dict
    if encoder is None and type(obj).__name__ == "RunManifest":
        encoder = run_manifest_to_dict
    if encoder is None and type(obj).__name__ == "JournalRecord":
        encoder = serve_journal_record_to_dict
    if encoder is None:
        raise TypeError(f"cannot serialize objects of type {type(obj).__name__}")
    Path(path).write_text(json.dumps(encoder(obj), indent=2, sort_keys=True))


_LOADERS = {
    "classical": instance_from_dict,
    "qbss": qbss_instance_from_dict,
    "profile": profile_from_dict,
    "schedule": schedule_from_dict,
    "experiment_report": experiment_report_from_dict,
    "trace_replay_report": trace_replay_report_from_dict,
    "run_manifest": run_manifest_from_dict,
    "serve_journal_record": serve_journal_record_from_dict,
}


def load(path: PathLike):
    """Load any supported object from a JSON file (dispatch on 'kind')."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "kind" not in data:
        raise FormatError("not a repro document (missing 'kind')")
    loader = _LOADERS.get(data["kind"])
    if loader is None:
        raise FormatError(f"unknown kind {data['kind']!r}")
    return loader(data)
