"""The versioned wire vocabulary of ``qbss-serve``.

Requests are job dictionaries — one JSON object per JSONL line, or a
JSON array of the same objects — mirroring :class:`repro.traces.records.
TraceRecord` field for field (minus ``index``, which the *server*
assigns in admission order so the synthesizer's per-record RNG draws
match a ``qbss-replay`` of the same stream exactly).

Responses are JSONL envelopes, one object per line, each tagged with
``kind`` and the protocol version:

* ``{"kind": "shard_result", "version": 1, "shard": {...}}`` — one per
  evaluated shard, carrying the *same* payload ``qbss-replay`` puts in
  ``ReplayReport.shards`` (including ``status``/``failure`` for
  degraded, errored or timed-out shards — a failed shard is a structured
  response, never a dead daemon);
* ``{"kind": "summary", "version": 1, ...}`` — the closing envelope
  with stream-level tallies;
* ``{"kind": "error", "version": 1, "code": ..., "status": ...,
  "detail": ...}`` — a structured rejection (:class:`ServeError`):
  ``queue_full``/``rate_limited`` map to HTTP 429, ``draining`` to 503,
  ``invalid_request`` to 400.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from ..traces.records import TraceRecord

SERVE_PROTOCOL_VERSION = 1

#: Structured rejection codes and the HTTP status each maps to.
#: ``unavailable`` is client-synthesized (connection-level failure after
#: the retry budget) — it never appears in a server response envelope.
ERROR_STATUS = {
    "invalid_request": 400,
    "rate_limited": 429,
    "queue_full": 429,
    "draining": 503,
    "unavailable": 503,
    "timeout": 504,
    "internal": 500,
}

#: Rejection codes a client may transparently retry with backoff: the
#: condition is load-dependent, and resubmission is safe because shard
#: evaluation is deterministic and the result cache idempotent.
RETRYABLE_CODES = frozenset({"queue_full"})

_OPTIONAL_FIELDS = ("deadline", "requested", "query_cost")
_KNOWN_FIELDS = frozenset(("id", "release", "runtime", *_OPTIONAL_FIELDS))


class ProtocolError(ValueError):
    """A malformed job request, located by source label and 1-based line."""

    def __init__(self, source: str, line: int, message: str):
        super().__init__(f"{source}:{line}: {message}")
        self.source = source
        self.line = line
        self.reason = message


class ServeError(Exception):
    """A structured service rejection with a stable code and HTTP status.

    Raised server-side on admission failures and rendered as the
    ``error`` response envelope; the client re-raises it (as
    :class:`repro.serve.client.ServeClientError`) from the same fields.
    """

    def __init__(self, code: str, detail: str, status: int | None = None):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.status = status if status is not None else ERROR_STATUS.get(code, 500)

    def to_dict(self) -> dict:
        return {
            "kind": "error",
            "version": SERVE_PROTOCOL_VERSION,
            "code": self.code,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class JobRequest:
    """One requested job — a :class:`TraceRecord` minus the index.

    The index is deliberately absent: it is assigned by the server in
    admission order, which is what keeps the per-record noise draws (and
    therefore every shard payload) byte-identical to a ``qbss-replay``
    of the same stream.
    """

    id: str
    release: float
    runtime: float
    deadline: float | None = None
    requested: float | None = None
    query_cost: float | None = None

    @classmethod
    def from_dict(
        cls, data: object, *, source: str = "<request>", line: int = 1
    ) -> JobRequest:
        """Validate one request object; raises :class:`ProtocolError`."""
        if not isinstance(data, dict):
            raise ProtocolError(
                source, line, f"job request must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - _KNOWN_FIELDS)
        if unknown:
            raise ProtocolError(
                source, line,
                f"unknown field(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_KNOWN_FIELDS))})",
            )
        for required in ("release", "runtime"):
            if required not in data:
                raise ProtocolError(source, line, f"missing required field {required!r}")
        values: dict[str, float | None] = {}
        for name in ("release", "runtime", *_OPTIONAL_FIELDS):
            raw = data.get(name)
            if raw is None:
                values[name] = None
                continue
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                raise ProtocolError(
                    source, line, f"field {name!r} must be a number, got {raw!r}"
                )
            values[name] = float(raw)
        release, runtime = values["release"], values["runtime"]
        assert release is not None and runtime is not None
        if release < 0.0:
            raise ProtocolError(source, line, f"release must be >= 0, got {release}")
        if runtime <= 0.0:
            raise ProtocolError(source, line, f"runtime must be > 0, got {runtime}")
        deadline = values["deadline"]
        if deadline is not None and deadline <= release:
            raise ProtocolError(
                source, line,
                f"deadline {deadline} must exceed release {release}",
            )
        query_cost = values["query_cost"]
        if query_cost is not None and query_cost <= 0.0:
            raise ProtocolError(
                source, line, f"query_cost must be > 0, got {query_cost}"
            )
        job_id = data.get("id", f"t{line}")
        return cls(
            id=str(job_id),
            release=release,
            runtime=runtime,
            deadline=deadline,
            requested=values["requested"],
            query_cost=query_cost,
        )

    def to_dict(self) -> dict:
        # Field access, not dataclasses.asdict: asdict's recursive copy
        # costs ~10x as much, and this runs per job on the journalled
        # admission path.
        data = {
            "id": self.id,
            "release": self.release,
            "runtime": self.runtime,
            "deadline": self.deadline,
            "requested": self.requested,
            "query_cost": self.query_cost,
        }
        return {k: v for k, v in data.items() if v is not None}

    def to_record(self, index: int) -> TraceRecord:
        """The trace record this request becomes at position ``index``."""
        return TraceRecord(
            index=index,
            id=self.id,
            release=self.release,
            runtime=self.runtime,
            deadline=self.deadline,
            requested=self.requested,
            query_cost=self.query_cost,
        )


def parse_jobs_payload(
    body: str, *, source: str = "<request>"
) -> list[JobRequest]:
    """Parse a request body — JSONL (one object per line) or a JSON array.

    Raises :class:`ProtocolError` with the offending line on any
    malformed record; an empty payload is an error (an empty submission
    has no meaningful response stream).
    """
    stripped = body.lstrip()
    if stripped.startswith("["):
        try:
            items = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(source, 1, f"invalid JSON array: {exc}") from exc
        requests = [
            JobRequest.from_dict(item, source=source, line=i + 1)
            for i, item in enumerate(items)
        ]
    else:
        requests = []
        for lineno, line in enumerate(body.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(
                    source, lineno, f"invalid JSON: {exc}"
                ) from exc
            requests.append(JobRequest.from_dict(data, source=source, line=lineno))
    if not requests:
        raise ProtocolError(source, 1, "empty submission (no job requests)")
    releases = [r.release for r in requests]
    if releases != sorted(releases):
        raise ProtocolError(
            source, 1,
            "jobs must be sorted by release time (bounded-memory sharding "
            "streams in release order)",
        )
    return requests


# -- response envelopes -------------------------------------------------------------


def shard_envelope(payload: dict) -> dict:
    """Wrap one replay shard payload for the response stream."""
    return {
        "kind": "shard_result",
        "version": SERVE_PROTOCOL_VERSION,
        "shard": payload,
    }


def summary_envelope(
    *,
    n_jobs: int,
    n_shards: int,
    failed_shards: int,
    algorithms: list[str],
    alpha: float,
    shard_window: float,
    noise_model: str,
    seed: int,
    deadline_slack: float,
) -> dict:
    """The closing envelope of one response stream."""
    return {
        "kind": "summary",
        "version": SERVE_PROTOCOL_VERSION,
        "n_jobs": n_jobs,
        "n_shards": n_shards,
        "failed_shards": failed_shards,
        "algorithms": algorithms,
        "alpha": alpha,
        "shard_window": shard_window,
        "noise_model": noise_model,
        "seed": seed,
        "deadline_slack": deadline_slack,
    }


def encode_jsonl(envelopes: Iterable[dict]) -> str:
    """Serialize envelopes as JSONL, deterministically ordered keys."""
    return "".join(
        json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
        for e in envelopes
    )


def parse_response_lines(text: str) -> Iterator[dict]:
    """Parse a JSONL response stream back into envelope dicts."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError("<response>", lineno, f"invalid JSON: {exc}") from exc
        if not isinstance(envelope, dict) or "kind" not in envelope:
            raise ProtocolError(
                "<response>", lineno, "response envelope missing 'kind'"
            )
        yield envelope
