"""Per-client token-bucket rate accounting for ``qbss-serve``.

Each client (the ``X-QBSS-Client`` request header; ``anonymous`` when
absent) gets its own :class:`TokenBucket`: capacity ``burst`` jobs,
refilled at ``rate`` jobs/second.  A submission of *n* jobs takes *n*
tokens atomically — either the whole batch is within budget or the whole
batch is rejected (``rate_limited``, HTTP 429); there are no partial
admissions.

The clock is injectable so tests drive time deterministically.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable


class TokenBucket:
    """Classic token bucket: ``capacity`` tokens, ``refill_rate``/s."""

    __slots__ = ("capacity", "refill_rate", "tokens", "updated")

    def __init__(self, capacity: float, refill_rate: float, now: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_rate <= 0:
            raise ValueError(f"refill_rate must be > 0, got {refill_rate}")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.tokens = float(capacity)  # start full: first burst is free
        self.updated = now

    def try_take(self, n: float, now: float) -> bool:
        """Atomically take ``n`` tokens at time ``now``; False if short."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_rate)
        self.updated = now
        if n > self.tokens:
            return False
        self.tokens -= n
        return True


class RateLimiter:
    """Per-client buckets; ``rate=None`` disables limiting entirely."""

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 (or None), got {rate}")
        self.rate = rate
        # Default burst: one second's worth of budget, at least one job.
        self.burst = burst if burst is not None else (max(1.0, rate) if rate else None)
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    def allow(self, client: str, n: int = 1) -> bool:
        """Whether ``client`` may submit ``n`` jobs right now."""
        if self.rate is None:
            return True
        assert self.burst is not None
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.burst, self.rate, now=now)
                self._buckets[client] = bucket
            return bucket.try_take(float(n), now)

    def tokens_left(self, client: str) -> float | None:
        """Remaining budget for ``client`` (None = unlimited/unseen)."""
        if self.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(client)
            return None if bucket is None else bucket.tokens
