"""Per-client token-bucket rate accounting for ``qbss-serve``.

Each client (the ``X-QBSS-Client`` request header; ``anonymous`` when
absent) gets its own :class:`TokenBucket`: capacity ``burst`` jobs,
refilled at ``rate`` jobs/second.  A submission of *n* jobs takes *n*
tokens atomically — either the whole batch is within budget or the whole
batch is rejected (``rate_limited``, HTTP 429); there are no partial
admissions.

Idle buckets are evicted: a bucket untouched for :data:`DEFAULT_IDLE_GRACE`
seconds whose refill has brought it back to full carries no state worth
keeping (a fresh bucket starts full, so eviction is lossless) — without
this, one-shot clients each leak a bucket and the map grows without bound
for the life of the daemon.

The clock is injectable so tests drive time deterministically.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..lint import lockwatch

#: Seconds a bucket may sit untouched before it is eligible for eviction.
DEFAULT_IDLE_GRACE = 300.0


class TokenBucket:
    """Classic token bucket: ``capacity`` tokens, ``refill_rate``/s."""

    __slots__ = ("capacity", "refill_rate", "tokens", "updated")

    def __init__(self, capacity: float, refill_rate: float, now: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_rate <= 0:
            raise ValueError(f"refill_rate must be > 0, got {refill_rate}")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.tokens = float(capacity)  # start full: first burst is free
        self.updated = now

    def try_take(self, n: float, now: float) -> bool:
        """Atomically take ``n`` tokens at time ``now``; False if short."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_rate)
        self.updated = now
        if n > self.tokens:
            return False
        self.tokens -= n
        return True


class RateLimiter:
    """Per-client buckets; ``rate=None`` disables limiting entirely."""

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        idle_grace: float = DEFAULT_IDLE_GRACE,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 (or None), got {rate}")
        if idle_grace <= 0:
            raise ValueError(f"idle_grace must be > 0, got {idle_grace}")
        self.rate = rate
        # Default burst: one second's worth of budget, at least one job.
        self.burst = burst if burst is not None else (max(1.0, rate) if rate else None)
        self.clock = clock
        self.idle_grace = idle_grace
        self._lock = lockwatch.new_lock("RateLimiter._lock")
        self._buckets: dict[str, TokenBucket] = {}
        self._last_sweep = clock()

    def _sweep(self, now: float) -> None:
        """Evict idle, fully-refilled buckets (call with ``_lock`` held).

        Eviction is lossless: a new bucket starts full, so dropping one
        that has refilled to capacity changes no admission decision.  A
        bucket still below capacity (client in debt) is kept until its
        refill completes, however long it idles.  Runs at most once per
        grace period, so the amortized cost per request is O(1).
        """
        if now - self._last_sweep < self.idle_grace:
            return
        self._last_sweep = now
        idle = [
            client
            for client, b in self._buckets.items()
            if (now - b.updated) >= self.idle_grace
            and b.tokens + (now - b.updated) * b.refill_rate >= b.capacity
        ]
        for client in idle:
            del self._buckets[client]

    def allow(self, client: str, n: int = 1) -> bool:
        """Whether ``client`` may submit ``n`` jobs right now."""
        if self.rate is None:
            return True
        assert self.burst is not None
        now = self.clock()
        with self._lock:
            self._sweep(now)
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.burst, self.rate, now=now)
                self._buckets[client] = bucket
            return bucket.try_take(float(n), now)

    @property
    def tracked_clients(self) -> int:
        """How many client buckets are currently resident."""
        with self._lock:
            return len(self._buckets)

    def tokens_left(self, client: str) -> float | None:
        """Remaining budget for ``client`` (None = unlimited/unseen)."""
        if self.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(client)
            return None if bucket is None else bucket.tokens
