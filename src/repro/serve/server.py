"""The ``qbss-serve`` daemon: admission, warm evaluation, HTTP surface.

One :class:`QbssServer` owns

* a single warm :class:`~repro.engine.session.ExecutionSession` — the
  pool configuration, the open content-addressed shard cache and the
  metrics registry live for the daemon's whole lifetime;
* the bounded :class:`~repro.serve.queue.AdmissionQueue` and per-client
  :class:`~repro.serve.rate.RateLimiter` deciding, synchronously and
  cheaply, whether a submission is admitted;
* one scheduler thread that pops admitted batches and evaluates each
  through :func:`~repro.traces.replay.replay_jobs` on the warm session —
  sessions are not thread-safe, so all evaluation serializes here by
  design;
* a :class:`ThreadingHTTPServer` exposing ``POST /v1/jobs``,
  ``GET /healthz`` and ``GET /metrics``.

Determinism contract: a submission stream is validated into
:class:`~repro.traces.records.TraceRecord` with indexes assigned in
submission order, synthesized with the configured noise model/seed, and
sharded on the same absolute window grid as ``qbss-replay`` — so a warm
server answering a workload produces byte-identical per-shard payloads
to a cold ``qbss-replay`` of the same records.

Graceful drain (SIGTERM/SIGINT via the CLI): :meth:`QbssServer.
begin_drain` stops admission (new submissions get structured
``draining`` errors), :meth:`QbssServer.drain` lets the scheduler finish
every already-admitted batch — so waiting clients get their responses
flushed — then closes the session; :meth:`QbssServer.stop` tears the
HTTP listener down last.

Hard-crash durability (``--journal DIR``): every admission is appended
to a fsync'd write-ahead :class:`~repro.serve.journal.AdmissionJournal`
before it can be acknowledged, completion marks follow per shard, and
:meth:`QbssServer.recover` replays incomplete entries on restart —
byte-identically, because evaluation is deterministic and the
content-addressed cache makes re-execution idempotent.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from collections.abc import Sequence

from .. import __version__ as PACKAGE_VERSION
from ..engine.faults import FaultPlan, RetryPolicy, active_fault_plan
from ..engine.session import ExecutionSession
from ..lint import lockwatch
from ..obs.metrics import MetricsRegistry
from ..obs.publish import WALL_BUCKETS
from ..traces.replay import DEFAULT_ALGORITHMS, ReplayReport, replay_jobs
from ..traces.synthesize import synthesize_jobs
from . import protocol
from .journal import AdmissionJournal, RecoveryReport, shard_payload_digest
from .protocol import JobRequest, ProtocolError, ServeError
from .queue import AdmissionQueue, QueueClosedError, QueueFullError
from .rate import RateLimiter


class LockedMetricsRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` safe for one writer thread per series
    plus concurrent renderers.

    The base registry is deliberately unthreaded; the daemon adds the
    minimum: ``lock`` is held around series *registration* and around
    full-text rendering, so a scrape can never iterate the series dict
    while a new series is being inserted.  Value updates on existing
    series stay lock-free (single-writer discipline: the scheduler owns
    the replay/cache series, admission updates happen under ``lock``).
    """

    def __init__(self) -> None:
        super().__init__()
        self.lock = lockwatch.new_rlock("LockedMetricsRegistry.lock")

    def _get(self, cls: type, name: str, help: str, labels: dict, **kwargs: object) -> object:
        with self.lock:
            return super()._get(cls, name, help, labels, **kwargs)

    def to_prometheus(self) -> str:
        with self.lock:
            return super().to_prometheus()

    def to_dict(self) -> dict:
        with self.lock:
            return super().to_dict()


@dataclass
class ServeConfig:
    """Everything the daemon needs, in one declarative object.

    Evaluation parameters (``algorithms``/``alpha``/``shard_window``/
    ``noise_model``/``seed``/``deadline_slack``) are fixed per daemon —
    they are part of the shard cache key and of the byte-identity
    contract with ``qbss-replay``, so they are configuration, not
    request fields.
    """

    host: str = "127.0.0.1"
    port: int = 0
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS
    alpha: float = 3.0
    shard_window: float = 3600.0
    noise_model: str = "multiplicative"
    seed: int = 0
    deadline_slack: float = 2.0
    queue_limit: int = 4096
    rate: float | None = None
    burst: float | None = None
    request_timeout: float = 300.0
    jobs: int | str = 1
    cache: bool = True
    cache_dir: str | Path | None = None
    task_timeout: float | None = None
    retry: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    #: Execution backend spec for shard evaluation: ``"serial"``,
    #: ``"pool"``, ``"remote:HOST:PORT[,...]"`` or ``None`` for the
    #: default local pool (see ``docs/backends.md``).
    backend: str | None = None
    #: Directory of the write-ahead admission journal (``--journal``).
    #: ``None`` disables durability; see ``docs/serving.md``.
    journal_dir: str | Path | None = None
    #: Optional :class:`repro.obs.Tracer` receiving journal events and
    #: the per-batch replay spans of the warm session.
    tracer: object | None = None


class Batch:
    """One admitted submission awaiting (or holding) its evaluation."""

    __slots__ = (
        "requests", "client", "done", "report", "error", "admitted_at",
        "batch_id", "recovered",
    )

    def __init__(self, requests: list[JobRequest], client: str, admitted_at: float):
        self.requests = requests
        self.client = client
        self.done = threading.Event()
        self.report: ReplayReport | None = None
        self.error: ServeError | None = None
        self.admitted_at = admitted_at
        #: Journal sequence number (``None`` when journaling is off).
        self.batch_id: int | None = None
        #: True for batches rebuilt from the journal at startup.
        self.recovered = False


class QbssServer:
    """The long-lived scheduling service around one warm session."""

    def __init__(self, config: ServeConfig, registry: LockedMetricsRegistry | None = None):
        self.config = config
        self.registry = registry if registry is not None else LockedMetricsRegistry()
        self.session = ExecutionSession(
            jobs=config.jobs,
            cache=config.cache,
            cache_dir=config.cache_dir,
            task_timeout=config.task_timeout,
            retry=config.retry,
            fault_plan=config.fault_plan,
            tracer=config.tracer,
            metrics=self.registry,
            backend=config.backend,
        )
        self.queue = AdmissionQueue(config.queue_limit)
        self.limiter = RateLimiter(config.rate, config.burst)
        self._draining = threading.Event()
        self._scheduler: threading.Thread | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self.journal: AdmissionJournal | None = None
        #: Batches rebuilt by :meth:`recover`, evaluated before any new
        #: admission once the scheduler (or stdin mode) starts.
        self._recovered_batches: list[Batch] = []
        if config.journal_dir is not None:
            self.journal = AdmissionJournal(
                config.journal_dir,
                metrics=self.registry,
                tracer=config.tracer,
                fault_plan=(
                    config.fault_plan
                    if config.fault_plan is not None
                    else active_fault_plan()
                ),
            )
        # Pre-register every qbss_serve_* series so /metrics shows the
        # full shape (zeros included) from the first scrape onward.
        reg = self.registry
        self._depth_gauge = reg.gauge(
            "qbss_serve_queue_depth", "Jobs admitted and awaiting evaluation."
        )
        self._draining_gauge = reg.gauge(
            "qbss_serve_draining", "1 once drain has begun."
        )
        self._admitted = reg.counter(
            "qbss_serve_jobs_admitted_total", "Jobs admitted into the queue."
        )
        self._completed = reg.counter(
            "qbss_serve_jobs_completed_total", "Jobs whose batch finished evaluation."
        )
        self._rejected = {
            reason: reg.counter(
                "qbss_serve_jobs_rejected_total",
                "Jobs rejected at admission, by structured reason.",
                reason=reason,
            )
            for reason in ("queue_full", "rate_limited", "draining", "invalid_request")
        }
        self._batches = {
            status: reg.counter(
                "qbss_serve_batches_total",
                "Submissions fully processed, by outcome.",
                status=status,
            )
            for status in ("ok", "error")
        }
        self._shard_latency = reg.histogram(
            "qbss_serve_shard_latency_seconds",
            "Evaluation wall time attributed per shard.",
            buckets=WALL_BUCKETS,
        )
        self._recovered_batches_total = reg.counter(
            "qbss_serve_recovered_batches_total",
            "Incomplete journal batches replayed at startup.",
        )
        self._recovered_jobs = reg.counter(
            "qbss_serve_recovered_jobs_total",
            "Jobs re-enqueued from incomplete journal entries at startup.",
        )

    # -- lifecycle -------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound TCP port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return int(self._httpd.server_address[1])

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def recover(self) -> RecoveryReport | None:
        """Replay the journal's incomplete admissions; call before :meth:`start`.

        Scans the journal tolerantly (torn tail records — crash debris —
        are dropped and counted), compacts it down to the admissions that
        never completed, and rebuilds each as a :class:`Batch` evaluated
        *before* any new submission once the scheduler starts.  Requests
        travel the same validation path as live traffic and indexes are
        re-assigned per batch in admission order, so a recovered batch
        produces byte-identical shard payloads to its uninterrupted run
        (shards evaluated before the crash come straight from the
        content-addressed cache).  Returns ``None`` with journaling off.
        """
        if self.journal is None:
            return None
        if self._scheduler is not None:
            raise RuntimeError("recover() must run before start()")
        scan = self.journal.scan()
        incomplete = scan.incomplete()
        report = RecoveryReport(torn_records=scan.torn)
        kept = []
        for record in incomplete:
            try:
                requests = [
                    JobRequest.from_dict(
                        dict(doc),
                        source=f"journal:b{record.batch}",
                        line=i + 1,
                    )
                    for i, doc in enumerate(record.jobs)
                ]
            except ProtocolError:
                # An admission that no longer validates is preserved in
                # the journal for the operator, never silently dropped.
                report.skipped += 1
                kept.append(record)
                continue
            batch = Batch(requests, record.client, admitted_at=time.monotonic())
            batch.batch_id = record.batch
            batch.recovered = True
            self._recovered_batches.append(batch)
            kept.append(record)
            report.batches += 1
            report.jobs += len(requests)
        self.journal.compact(kept)
        with self.registry.lock:
            self._recovered_batches_total.inc(report.batches)
            self._recovered_jobs.inc(report.jobs)
        tracer = self.config.tracer
        if tracer is not None:
            tracer.event(
                "journal_recover",
                None,
                batches=report.batches,
                jobs=report.jobs,
                torn=report.torn_records,
            )
        return report

    def start(self, *, http: bool = True) -> None:
        """Start the scheduler thread and (optionally) the HTTP listener."""
        if self._scheduler is not None:
            raise RuntimeError("server already started")
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="qbss-serve-scheduler"
        )
        self._scheduler.start()
        if http:
            self._httpd = _make_httpd(self)
            self._http_thread = threading.Thread(
                target=self._httpd.serve_forever, name="qbss-serve-http"
            )
            self._http_thread.start()

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted batches will still complete."""
        self._draining.set()
        with self.registry.lock:
            self._draining_gauge.set(1.0)
        self.queue.close()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for the scheduler to finish every admitted batch, then
        close the session.  Returns ``False`` on timeout."""
        if not self._draining.is_set():
            self.begin_drain()
        if self._scheduler is not None:
            self._scheduler.join(timeout)
            if self._scheduler.is_alive():
                return False
        self.session.close()
        if self.journal is not None:
            self.journal.close()
        return True

    def stop(self) -> None:
        """Tear down the HTTP listener (after :meth:`drain`, normally)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join()
            self._http_thread = None

    # -- admission -------------------------------------------------------------------

    def submit_payload(
        self, body: str, client: str, *, block: bool = False
    ) -> Batch:
        """Validate, rate-check and enqueue one submission.

        Raises :class:`ServeError` with a structured code on any
        rejection; every rejection is counted in
        ``qbss_serve_jobs_rejected_total`` by reason.
        """
        try:
            requests = protocol.parse_jobs_payload(body, source=f"client:{client}")
        except ProtocolError as exc:
            self._count_rejection("invalid_request", 1)
            raise ServeError("invalid_request", str(exc)) from exc
        n = len(requests)
        if self._draining.is_set():
            self._count_rejection("draining", n)
            raise ServeError(
                "draining", "server is draining; not accepting new submissions"
            )
        if not self.limiter.allow(client, n):
            self._count_rejection("rate_limited", n)
            raise ServeError(
                "rate_limited",
                f"client {client!r} exceeded {self.config.rate} jobs/s "
                f"(burst {self.limiter.burst})",
            )
        batch = Batch(requests, client, admitted_at=time.monotonic())
        self._journal_admission(batch)
        try:
            self.queue.submit(batch, n, block=block)
        except QueueFullError as exc:
            self._count_rejection("queue_full", n)
            self._journal_rejected(batch)
            raise ServeError("queue_full", str(exc)) from exc
        except QueueClosedError as exc:
            self._count_rejection("draining", n)
            self._journal_rejected(batch)
            raise ServeError(
                "draining", "server is draining; not accepting new submissions"
            ) from exc
        with self.registry.lock:
            self._admitted.inc(n)
            self._depth_gauge.set(self.queue.depth)
        return batch

    def _journal_admission(self, batch: Batch) -> None:
        """Durably journal one submission *before* it can be acknowledged.

        The append is fsync'd before ``submit_payload`` returns — and
        therefore before any response (the implicit ack) can reach the
        client — so a crash at any later point leaves a replayable
        record.  A journal that cannot be written is an ``internal``
        rejection: better to refuse work than to accept it undurably.
        """
        if self.journal is None:
            return
        try:
            batch.batch_id = self.journal.log_admission(
                batch.client, [r.to_dict() for r in batch.requests]
            )
        except OSError as exc:
            self._count_rejection("invalid_request", len(batch.requests))
            raise ServeError(
                "internal", f"admission journal append failed: {exc}"
            ) from exc

    def _journal_rejected(self, batch: Batch) -> None:
        """Close the journal entry of a journaled-then-rejected batch.

        The client saw a structured rejection (never an ack), so the
        entry must not replay on restart; an immediate ``batch_complete``
        mark with status ``rejected`` retires it.
        """
        if self.journal is None or batch.batch_id is None:
            return
        try:
            self.journal.log_batch_complete(batch.batch_id, "rejected")
        except OSError:  # pragma: no cover - best effort; replay is idempotent
            pass

    def _count_rejection(self, reason: str, n: int) -> None:
        with self.registry.lock:
            self._rejected[reason].inc(n)

    # -- evaluation ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        # Recovered batches first: they were admitted (and journaled)
        # before anything the queue can currently hold.
        for batch in self._drain_recovered():
            self._evaluate(batch)
        while True:
            batch = self.queue.pop()
            with self.registry.lock:
                self._depth_gauge.set(self.queue.depth)
            if batch is None:
                return
            self._evaluate(batch)

    def _drain_recovered(self) -> list[Batch]:
        batches, self._recovered_batches = self._recovered_batches, []
        return batches

    def _evaluate(self, batch: Batch) -> None:
        """Evaluate one batch on the warm session; never raises.

        Shard-level failures (faults, timeouts, degraded pools) are
        already structured *inside* the replay report; only a failure of
        the replay machinery itself becomes an ``internal`` error — and
        even that is a response envelope, not a dead scheduler.
        """
        t0 = time.perf_counter()
        try:
            records = [req.to_record(i) for i, req in enumerate(batch.requests)]
            stream = synthesize_jobs(
                iter(records),
                model=self.config.noise_model,
                seed=self.config.seed,
                deadline_slack=self.config.deadline_slack,
            )
            report, _ = replay_jobs(
                stream,
                algorithms=self.config.algorithms,
                alpha=self.config.alpha,
                shard_window=self.config.shard_window,
                session=self.session,
                meta={
                    "source": f"serve:{batch.client}",
                    "trace_format": "serve",
                    "noise_model": self.config.noise_model,
                    "seed": self.config.seed,
                    "deadline_slack": self.config.deadline_slack,
                },
            )
            batch.report = report
        except Exception as exc:
            batch.error = ServeError("internal", f"{type(exc).__name__}: {exc}")
        wall = time.perf_counter() - t0
        with self.registry.lock:
            if batch.error is None and batch.report is not None:
                self._completed.inc(len(batch.requests))
                self._batches["ok"].inc()
                n_shards = len(batch.report.shards)
                per_shard = wall / n_shards if n_shards else wall
                for _ in range(n_shards):
                    self._shard_latency.observe(per_shard)
            else:
                self._batches["error"].inc()
        self._journal_completion(batch)
        batch.done.set()

    def _journal_completion(self, batch: Batch) -> None:
        """Mark a fully-evaluated batch complete, shard by shard.

        Completion marks are an optimization, not a correctness
        requirement: a crash *after* evaluation but *before* the marks
        merely re-runs the batch on restart, where the idempotent cache
        reproduces the identical payloads.  So journal I/O trouble here
        is swallowed — the scheduler must never die on a full disk.
        """
        if self.journal is None or batch.batch_id is None:
            return
        try:
            if batch.report is not None:
                for shard in batch.report.shards:
                    self.journal.log_shard_complete(
                        batch.batch_id,
                        int(shard.get("index", -1)),
                        shard_payload_digest(shard),
                    )
            self.journal.log_batch_complete(
                batch.batch_id, "ok" if batch.error is None else "error"
            )
        except OSError:  # pragma: no cover - best effort; replay is idempotent
            pass

    def response_envelopes(self, batch: Batch) -> list[dict]:
        """The JSONL response stream for one finished batch."""
        if batch.error is not None or batch.report is None:
            error = batch.error or ServeError("internal", "batch lost its report")
            return [error.to_dict()]
        report = batch.report
        envelopes = [protocol.shard_envelope(shard) for shard in report.shards]
        envelopes.append(
            protocol.summary_envelope(
                n_jobs=report.n_jobs,
                n_shards=len(report.shards),
                failed_shards=len(report.failed_shards),
                algorithms=list(report.algorithms),
                alpha=report.alpha,
                shard_window=report.shard_window,
                noise_model=report.noise_model,
                seed=report.seed,
                deadline_slack=report.deadline_slack,
            )
        )
        return envelopes

    # -- read-only surfaces ----------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "version": PACKAGE_VERSION,
            "protocol": protocol.SERVE_PROTOCOL_VERSION,
            "queue_depth": self.queue.depth,
            "queue_limit": self.queue.max_jobs,
            "journal": str(self.journal.path) if self.journal else None,
        }

    def metrics_text(self) -> str:
        return self.registry.to_prometheus()

    # -- one-shot (stdin) mode -------------------------------------------------------

    def serve_once(self, body: str, *, client: str = "stdin") -> tuple[int, str]:
        """Evaluate one submission inline (no queue, no threads).

        The stdin JSONL mode: the pipe itself is the backpressure, so
        admission control does not apply — but the warm session, the
        metrics and the response vocabulary are exactly the HTTP path's.
        Returns ``(exit_code, jsonl_text)``.
        """
        for recovered in self._drain_recovered():
            self._evaluate(recovered)
        try:
            requests = protocol.parse_jobs_payload(body, source=f"client:{client}")
        except ProtocolError as exc:
            self._count_rejection("invalid_request", 1)
            error = ServeError("invalid_request", str(exc))
            return 1, protocol.encode_jsonl([error.to_dict()])
        batch = Batch(requests, client, admitted_at=time.monotonic())
        try:
            self._journal_admission(batch)
        except ServeError as err:
            return 1, protocol.encode_jsonl([err.to_dict()])
        with self.registry.lock:
            self._admitted.inc(len(requests))
        self._evaluate(batch)
        code = 0 if batch.error is None else 1
        return code, protocol.encode_jsonl(self.response_envelopes(batch))


# -- the HTTP surface ---------------------------------------------------------------


def _make_httpd(server: QbssServer) -> ThreadingHTTPServer:
    handler = type("QbssServeHandler", (_Handler,), {"qbss": server})
    return ThreadingHTTPServer((server.config.host, server.config.port), handler)


class _Handler(BaseHTTPRequestHandler):
    """Routes: ``POST /v1/jobs``, ``GET /healthz``, ``GET /metrics``."""

    qbss: QbssServer  # bound by _make_httpd
    server_version = f"qbss-serve/{PACKAGE_VERSION}"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Silence the stock per-request stderr access log; the daemon's
        observable surface is /metrics, not chatter on stderr."""

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/healthz":
            body = json.dumps(self.qbss.health(), sort_keys=True) + "\n"
            self._send(200, body, "application/json")
        elif self.path == "/metrics":
            self._send(200, self.qbss.metrics_text(), "text/plain; version=0.0.4")
        else:
            self._send_error_envelope(
                ServeError("invalid_request", f"no such path {self.path!r}", status=404)
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/v1/jobs":
            self._send_error_envelope(
                ServeError("invalid_request", f"no such path {self.path!r}", status=404)
            )
            return
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        client = self.headers.get("X-QBSS-Client", "anonymous")
        try:
            batch = self.qbss.submit_payload(body, client)
        except ServeError as err:
            self._send_error_envelope(err)
            return
        if not batch.done.wait(self.qbss.config.request_timeout):
            self._send_error_envelope(
                ServeError(
                    "timeout",
                    f"batch not evaluated within {self.qbss.config.request_timeout}s",
                )
            )
            return
        envelopes = self.qbss.response_envelopes(batch)
        status = batch.error.status if batch.error is not None else 200
        self._send(status, protocol.encode_jsonl(envelopes), "application/jsonl")

    def _send_error_envelope(self, err: ServeError) -> None:
        self._send(err.status, protocol.encode_jsonl([err.to_dict()]), "application/jsonl")

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
