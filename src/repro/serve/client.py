"""The typed client for ``qbss-serve``.

:class:`Client` speaks the JSONL protocol over plain
:mod:`http.client` (stdlib only) and returns a :class:`ServeResult` —
the Client/Runner/typed-result split: transport here, evaluation in the
daemon, a structured result object for callers.

Rejections come back as :class:`ServeClientError` carrying the same
structured ``code``/``status``/``detail`` the server put on the wire.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from ..obs.metrics import LabelItems, parse_prometheus_text
from .protocol import JobRequest, ProtocolError, parse_response_lines


class ServeClientError(Exception):
    """A structured server rejection, reconstructed client-side."""

    def __init__(self, code: str, detail: str, status: int):
        super().__init__(f"{code} (HTTP {status}): {detail}")
        self.code = code
        self.detail = detail
        self.status = status

    @classmethod
    def from_envelope(cls, envelope: Mapping[str, object]) -> ServeClientError:
        return cls(
            code=str(envelope.get("code", "internal")),
            detail=str(envelope.get("detail", "")),
            status=int(envelope.get("status", 500)),  # type: ignore[arg-type]
        )


@dataclass
class ServeResult:
    """One submission's evaluated outcome.

    ``shards`` holds the per-shard payloads exactly as ``qbss-replay``
    would report them (same keys, same normalization); ``summary`` is
    the closing envelope's stream-level tallies.
    """

    shards: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_jobs(self) -> int:
        return sum(int(s.get("n_jobs", 0)) for s in self.shards)

    @property
    def failed_shards(self) -> list[dict]:
        return [
            s for s in self.shards if s.get("status", "ok") in ("error", "timeout")
        ]

    @property
    def ok(self) -> bool:
        """True when every shard evaluated (``ok`` or ``degraded``)."""
        return not self.failed_shards

    def ratios_for(self, algorithm: str) -> list[float]:
        """Per-shard energy ratios of one algorithm, in shard order."""
        return [
            float(row["energy_ratio"])
            for s in self.shards
            for row in s.get("rows") or []
            if row["algorithm"] == algorithm
        ]


def _job_to_dict(job: object) -> dict:
    if isinstance(job, JobRequest):
        return job.to_dict()
    if isinstance(job, Mapping):
        return dict(job)
    raise TypeError(
        f"jobs must be JobRequest or mapping, got {type(job).__name__}"
    )


class Client:
    """A thin, typed HTTP client for one ``qbss-serve`` daemon.

    One connection per call (the daemon is thread-per-request anyway),
    so a single ``Client`` may be shared across threads.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "anonymous",
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: str | None = None
    ) -> tuple[int, str]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"X-QBSS-Client": self.client_id}
            if body is not None:
                headers["Content-Type"] = "application/jsonl"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()

    def submit(self, jobs: Iterable[object]) -> ServeResult:
        """Submit a release-sorted job stream; block for its evaluation.

        ``jobs`` may be :class:`JobRequest` objects or plain mappings
        with the same fields.  Raises :class:`ServeClientError` on any
        structured rejection (queue full, rate limited, draining,
        invalid request) and :class:`ProtocolError` on undecodable
        responses.
        """
        payload = "".join(
            json.dumps(_job_to_dict(job), sort_keys=True) + "\n" for job in jobs
        )
        status, text = self._request("POST", "/v1/jobs", body=payload)
        result = ServeResult()
        for envelope in parse_response_lines(text):
            kind = envelope["kind"]
            if kind == "error":
                raise ServeClientError.from_envelope(envelope)
            if kind == "shard_result":
                result.shards.append(envelope["shard"])
            elif kind == "summary":
                result.summary = envelope
            else:
                raise ProtocolError(
                    "<response>", 1, f"unknown envelope kind {kind!r}"
                )
        if status != 200:
            raise ServeClientError("internal", f"HTTP {status}: {text!r}", status)
        return result

    def healthz(self) -> dict:
        status, text = self._request("GET", "/healthz")
        if status != 200:
            raise ServeClientError("internal", f"HTTP {status}: {text!r}", status)
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ProtocolError("<response>", 1, "healthz payload is not an object")
        return data

    def metrics_text(self) -> str:
        status, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServeClientError("internal", f"HTTP {status}: {text!r}", status)
        return text

    def metrics(self) -> dict[tuple[str, LabelItems], float]:
        """The scraped ``/metrics`` samples, parsed."""
        return parse_prometheus_text(self.metrics_text())
