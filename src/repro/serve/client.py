"""The typed client for ``qbss-serve``.

:class:`Client` speaks the JSONL protocol over plain
:mod:`http.client` (stdlib only) and returns a :class:`ServeResult` —
the Client/Runner/typed-result split: transport here, evaluation in the
daemon, a structured result object for callers.

Rejections come back as :class:`ServeClientError` carrying the same
structured ``code``/``status``/``detail`` the server put on the wire,
plus ``attempts`` — how many tries the client spent, because transient
failures are retried with bounded, seeded-deterministic exponential
backoff (the engine's :class:`~repro.engine.faults.RetryPolicy`):

* connection-level errors (daemon restarting, listener not up yet), and
* ``queue_full`` 429 rejections (admission backpressure).

Resubmitting after an ambiguous connection failure is at-least-once
delivery, which is safe here: shard evaluation is deterministic and the
server's content-addressed cache makes re-execution idempotent, so a
duplicate submission returns byte-identical payloads.  Deterministic
rejections (``invalid_request``, ``rate_limited``, ``draining``) are
never retried.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping

from ..engine.faults import RetryPolicy
from ..obs.metrics import LabelItems, parse_prometheus_text
from .protocol import (
    RETRYABLE_CODES,
    JobRequest,
    ProtocolError,
    parse_response_lines,
)

#: Default client retry budget: 3 total attempts, short seeded backoff.
DEFAULT_CLIENT_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.05, backoff_cap=1.0)


class ServeClientError(Exception):
    """A structured server rejection, reconstructed client-side.

    ``attempts`` is how many tries the client made before giving up
    (1 when the failure was not retryable).
    """

    def __init__(self, code: str, detail: str, status: int, attempts: int = 1):
        super().__init__(f"{code} (HTTP {status}): {detail}")
        self.code = code
        self.detail = detail
        self.status = status
        self.attempts = attempts

    @classmethod
    def from_envelope(cls, envelope: Mapping[str, object]) -> ServeClientError:
        return cls(
            code=str(envelope.get("code", "internal")),
            detail=str(envelope.get("detail", "")),
            status=int(envelope.get("status", 500)),  # type: ignore[arg-type]
        )


@dataclass
class ServeResult:
    """One submission's evaluated outcome.

    ``shards`` holds the per-shard payloads exactly as ``qbss-replay``
    would report them (same keys, same normalization); ``summary`` is
    the closing envelope's stream-level tallies.
    """

    shards: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_jobs(self) -> int:
        return sum(int(s.get("n_jobs", 0)) for s in self.shards)

    @property
    def failed_shards(self) -> list[dict]:
        return [
            s for s in self.shards if s.get("status", "ok") in ("error", "timeout")
        ]

    @property
    def ok(self) -> bool:
        """True when every shard evaluated (``ok`` or ``degraded``)."""
        return not self.failed_shards

    def ratios_for(self, algorithm: str) -> list[float]:
        """Per-shard energy ratios of one algorithm, in shard order."""
        return [
            float(row["energy_ratio"])
            for s in self.shards
            for row in s.get("rows") or []
            if row["algorithm"] == algorithm
        ]


def _job_to_dict(job: object) -> dict:
    if isinstance(job, JobRequest):
        return job.to_dict()
    if isinstance(job, Mapping):
        return dict(job)
    raise TypeError(
        f"jobs must be JobRequest or mapping, got {type(job).__name__}"
    )


class Client:
    """A thin, typed HTTP client for one ``qbss-serve`` daemon.

    One connection per call (the daemon is thread-per-request anyway),
    so a single ``Client`` may be shared across threads.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "anonymous",
        timeout: float = 300.0,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        #: Injectable backoff sleeper — tests pass a recorder and assert
        #: the exact seeded delay sequence without real waiting.
        self.sleep = sleep

    def _request(
        self, method: str, path: str, body: str | None = None
    ) -> tuple[int, str]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"X-QBSS-Client": self.client_id}
            if body is not None:
                headers["Content-Type"] = "application/jsonl"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()

    def _request_retrying(
        self, method: str, path: str, body: str | None = None, *, attempts: int = 0
    ) -> tuple[int, int, str]:
        """One exchange, retrying connection-level failures with backoff.

        Returns ``(attempts_used, status, text)`` where ``attempts_used``
        includes the ``attempts`` already consumed by the caller (so an
        outer ``queue_full`` loop and this inner loop share one budget).
        Exhaustion raises a client-synthesized ``unavailable`` error.
        """
        task = f"{method} {path}:{self.client_id}"
        while True:
            attempts += 1
            try:
                status, text = self._request(method, path, body=body)
                return attempts, status, text
            except (OSError, http.client.HTTPException) as exc:
                if attempts >= self.retry.max_attempts:
                    raise ServeClientError(
                        "unavailable",
                        f"connection to {self.host}:{self.port} failed "
                        f"after {attempts} attempt(s): {exc}",
                        503,
                        attempts=attempts,
                    ) from exc
                self.sleep(self.retry.delay(task, attempts))

    def submit(self, jobs: Iterable[object]) -> ServeResult:
        """Submit a release-sorted job stream; block for its evaluation.

        ``jobs`` may be :class:`JobRequest` objects or plain mappings
        with the same fields.  Connection failures and ``queue_full``
        rejections are retried up to the policy budget; exhaustion (or
        any non-retryable rejection — rate limited, draining, invalid
        request) raises :class:`ServeClientError` with ``attempts`` set.
        Raises :class:`ProtocolError` on undecodable responses.
        """
        payload = "".join(
            json.dumps(_job_to_dict(job), sort_keys=True) + "\n" for job in jobs
        )
        task = f"submit:{self.client_id}"
        attempts = 0
        while True:
            attempts, status, text = self._request_retrying(
                "POST", "/v1/jobs", body=payload, attempts=attempts
            )
            try:
                return self._parse_submission(status, text)
            except ServeClientError as exc:
                exc.attempts = attempts
                if (
                    exc.code not in RETRYABLE_CODES
                    or attempts >= self.retry.max_attempts
                ):
                    raise
                self.sleep(self.retry.delay(task, attempts))

    def _parse_submission(self, status: int, text: str) -> ServeResult:
        result = ServeResult()
        for envelope in parse_response_lines(text):
            kind = envelope["kind"]
            if kind == "error":
                raise ServeClientError.from_envelope(envelope)
            if kind == "shard_result":
                result.shards.append(envelope["shard"])
            elif kind == "summary":
                result.summary = envelope
            else:
                raise ProtocolError(
                    "<response>", 1, f"unknown envelope kind {kind!r}"
                )
        if status != 200:
            raise ServeClientError("internal", f"HTTP {status}: {text!r}", status)
        return result

    def healthz(self) -> dict:
        attempts, status, text = self._request_retrying("GET", "/healthz")
        if status != 200:
            raise ServeClientError(
                "internal", f"HTTP {status}: {text!r}", status, attempts=attempts
            )
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ProtocolError("<response>", 1, "healthz payload is not an object")
        return data

    def metrics_text(self) -> str:
        attempts, status, text = self._request_retrying("GET", "/metrics")
        if status != 200:
            raise ServeClientError(
                "internal", f"HTTP {status}: {text!r}", status, attempts=attempts
            )
        return text

    def metrics(self) -> dict[tuple[str, LabelItems], float]:
        """The scraped ``/metrics`` samples, parsed."""
        return parse_prometheus_text(self.metrics_text())
