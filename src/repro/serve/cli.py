"""``qbss-serve`` — the console entry point of the scheduling daemon.

Two modes:

* **daemon** (default): bind the HTTP surface (``--bind``, or the
  ``QBSS_SERVE_BIND`` environment variable), serve until SIGTERM/SIGINT,
  then drain gracefully — stop admitting, finish every in-flight shard,
  flush waiting responses, close the warm session — and exit 0.
* **one-shot** (``--stdin``): read one JSONL job stream from stdin,
  write the JSONL response stream to stdout, exit.  Same validation,
  same warm-session evaluation, same envelopes; the pipe is the
  backpressure.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading

from .. import __version__ as PACKAGE_VERSION
from ..engine.faults import RetryPolicy
from ..engine.runner import resolve_jobs
from .server import QbssServer, ServeConfig

#: Environment override for the default bind address.
BIND_ENV = "QBSS_SERVE_BIND"
DEFAULT_BIND = "127.0.0.1:8457"


def parse_bind(value: str) -> tuple[str, int]:
    """``host:port`` -> tuple; port 0 asks the OS for a free port."""
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--bind must be HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid port in --bind {value!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    return host, port


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-serve",
        description=(
            "Long-lived QBSS scheduling service: accepts streams of job "
            "requests over HTTP/JSON (or stdin JSONL), validates them "
            "into trace records, shards them into time windows, and "
            "evaluates competitive ratios on a single persistent warm "
            "execution session.  Endpoints: POST /v1/jobs, GET /healthz, "
            "GET /metrics (Prometheus)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {PACKAGE_VERSION}",
    )
    parser.add_argument(
        "--bind",
        default=os.environ.get(BIND_ENV, DEFAULT_BIND),
        metavar="HOST:PORT",
        help=(
            "listen address; port 0 picks a free port "
            f"(default: ${BIND_ENV} or {DEFAULT_BIND})"
        ),
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="write the actually-bound HOST:PORT to FILE after startup",
    )
    parser.add_argument(
        "--stdin",
        action="store_true",
        help="one-shot mode: JSONL job requests on stdin, JSONL results on stdout",
    )
    parser.add_argument(
        "--algorithms",
        default="avrq,bkpq",
        metavar="A,B,...",
        help="comma-separated online algorithms (default: avrq,bkpq)",
    )
    parser.add_argument(
        "--alpha", type=float, default=3.0, help="power exponent (default 3.0)"
    )
    parser.add_argument(
        "--shard-window",
        type=float,
        default=3600.0,
        metavar="W",
        help="time-window width of one shard (default 3600)",
    )
    parser.add_argument(
        "--noise-model",
        default="multiplicative",
        metavar="NAME",
        help="uncertainty synthesis model (default: multiplicative)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="noise-synthesis seed (default 0)"
    )
    parser.add_argument(
        "--deadline-slack",
        type=float,
        default=2.0,
        metavar="F",
        help="deadline window factor for records without one (default 2.0)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=4096,
        metavar="N",
        help="admission-queue capacity in pending jobs (default 4096)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-client token-bucket rate in jobs/second (default: unlimited)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help="per-client burst capacity in jobs (default: one second of --rate)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="max seconds one submission may wait for evaluation (default 300)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for shard evaluation; 0/'auto' = per CPU (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shard-result cache directory (default: $QBSS_CACHE_DIR or ~/.cache/qbss-repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the shard cache entirely",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-shard evaluation deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for transient shard failures (default: policy default)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "shard execution backend: 'serial', 'pool' (default), or "
            "'remote:HOST:PORT[,HOST:PORT...]' / 'remote:@PORTFILE' "
            "fanning shards out to qbss-worker processes (docs/backends.md)"
        ),
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="S",
        help="max seconds to wait for in-flight shards on shutdown (default: unbounded)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "write-ahead admission journal directory: submissions are "
            "fsync'd before acknowledgement and incomplete entries are "
            "replayed on restart, so a hard crash (kill -9, power loss) "
            "never silently loses admitted work (default: no journal)"
        ),
    )
    return parser


def _config_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> ServeConfig:
    from ..traces.replay import validate_replay_algorithms
    from ..traces.synthesize import get_noise_model

    try:
        host, port = parse_bind(args.bind)
    except ValueError as exc:
        parser.error(str(exc))
    jobs: int | str = args.jobs
    try:
        resolve_jobs(jobs)
    except ValueError as exc:
        parser.error(str(exc))
    algorithms = tuple(
        name.strip() for name in args.algorithms.split(",") if name.strip()
    )
    try:
        validate_replay_algorithms(algorithms)
        get_noise_model(args.noise_model)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))
    if args.shard_window <= 0:
        parser.error("--shard-window must be > 0")
    if args.queue_limit < 1:
        parser.error("--queue-limit must be >= 1")
    if args.rate is not None and args.rate <= 0:
        parser.error("--rate must be > 0")
    retry = None
    if args.max_attempts is not None:
        if args.max_attempts < 1:
            parser.error("--max-attempts must be >= 1")
        retry = RetryPolicy(max_attempts=args.max_attempts)
    if args.backend is not None:
        from ..engine.backends.base import parse_backend_spec

        try:
            parse_backend_spec(args.backend)
        except ValueError as exc:
            parser.error(str(exc))
    return ServeConfig(
        host=host,
        port=port,
        algorithms=algorithms,
        alpha=args.alpha,
        shard_window=args.shard_window,
        noise_model=args.noise_model,
        seed=args.seed,
        deadline_slack=args.deadline_slack,
        queue_limit=args.queue_limit,
        rate=args.rate,
        burst=args.burst,
        request_timeout=args.request_timeout,
        jobs=jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        task_timeout=args.task_timeout,
        retry=retry,
        backend=args.backend,
        journal_dir=args.journal,
    )


def write_port_file(path: str, bound: str) -> None:
    """Publish the bound address atomically (tmp + ``os.replace``).

    Readers poll this file while the daemon boots; a plain ``write``
    could expose a partial port string to a racing reader.  The rename
    makes the content appear all-at-once or not at all.
    """
    tmp = f"{path}.tmp{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(bound + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _run_stdin(server: QbssServer) -> int:
    body = sys.stdin.read()
    try:
        code, text = server.serve_once(body)
        sys.stdout.write(text)
        sys.stdout.flush()
        return code
    finally:
        server.begin_drain()
        server.drain()


def _run_daemon(
    server: QbssServer, port_file: str | None, drain_timeout: float | None
) -> int:
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        print(
            f"qbss-serve: received signal {signum}, draining...",
            file=sys.stderr,
            flush=True,
        )
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server.start()
    bound = f"{server.config.host}:{server.port}"
    if port_file:
        write_port_file(port_file, bound)
    print(
        f"qbss-serve {PACKAGE_VERSION} listening on http://{bound} "
        f"(queue limit {server.queue.max_jobs} jobs, "
        f"pool {server.session.pool_jobs})",
        file=sys.stderr,
        flush=True,
    )
    try:
        # Poll-wait instead of a bare wait(): the OS may deliver the
        # signal to a non-main thread, and a main thread parked in an
        # untimed lock acquire never reaches the bytecode boundary where
        # CPython runs Python-level signal handlers.  The timeout bounds
        # handler latency at half a second.
        while not stop.wait(0.5):
            pass
        server.begin_drain()
        drained = server.drain(drain_timeout)
        server.stop()
        if not drained:
            print(
                f"qbss-serve: drain timed out after {drain_timeout}s",
                file=sys.stderr,
                flush=True,
            )
            return 1
        print("qbss-serve: drained cleanly, bye", file=sys.stderr, flush=True)
        return 0
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def main(argv: list[str] | None = None) -> int:
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(parser, args)
    server = QbssServer(config)
    recovery = server.recover()
    if recovery is not None:
        print(f"qbss-serve: {recovery.summary_line()}", file=sys.stderr, flush=True)
    if args.stdin:
        return _run_stdin(server)
    return _run_daemon(server, args.port_file, args.drain_timeout)


if __name__ == "__main__":
    sys.exit(main())
