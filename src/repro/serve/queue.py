"""The bounded admission queue: reject, don't buffer, when saturated.

The queue is bounded by *total pending jobs* (not batch count): one
thousand-job submission costs what a thousand one-job submissions cost.
When admitting a batch would exceed the limit the queue raises
:class:`QueueFullError` immediately — the server turns that into a
structured ``queue_full`` rejection (HTTP 429) so callers get
backpressure instead of unbounded daemon memory.

``close()`` starts the drain: further submissions raise
:class:`QueueClosedError`, while :meth:`AdmissionQueue.pop` keeps
returning the already-admitted items until the queue is empty, then
returns ``None`` — the scheduler's signal that every admitted batch has
been handed over and the loop may exit.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..lint import lockwatch


class QueueFullError(Exception):
    """Admitting the batch would exceed the queue's job capacity."""

    def __init__(self, requested: int, depth: int, limit: int):
        super().__init__(
            f"admission queue full: {depth}/{limit} jobs pending, "
            f"cannot admit {requested} more"
        )
        self.requested = requested
        self.depth = depth
        self.limit = limit


class QueueClosedError(Exception):
    """The queue is draining; no new work is admitted."""


class AdmissionQueue:
    """A thread-safe bounded queue of (item, size) batches.

    ``max_jobs`` bounds the sum of admitted batch sizes awaiting pop.
    """

    def __init__(self, max_jobs: int):
        if max_jobs <= 0:
            raise ValueError(f"max_jobs must be > 0, got {max_jobs}")
        self.max_jobs = max_jobs
        self._cond = lockwatch.new_condition("AdmissionQueue._cond")
        self._items: deque[tuple[Any, int]] = deque()
        self._depth = 0
        self._closed = False
        #: Tickets of blocked submitters, admission order.  Capacity is
        #: granted strictly head-first so a large blocked batch cannot be
        #: starved by a stream of small ones slipping past it.
        self._waiters: deque[object] = deque()

    @property
    def depth(self) -> int:
        """Total jobs currently admitted and awaiting pop."""
        with self._cond:
            return self._depth

    @property
    def batches(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def submit(self, item: Any, size: int, *, block: bool = False) -> None:
        """Admit ``item`` costing ``size`` jobs of capacity.

        Non-blocking by default: raises :class:`QueueFullError` when over
        capacity.  ``block=True`` waits for capacity instead (stdin-pipe
        backpressure).  Raises :class:`QueueClosedError` once draining.
        A batch larger than the whole queue can never be admitted; that
        raises :class:`QueueFullError` even in blocking mode.

        Blocked submitters are served strictly FIFO: freed capacity goes
        to the longest-waiting batch, and later arrivals — blocking or
        not — cannot claim capacity past a waiter.  Without the ticket
        queue a large blocked batch could starve forever: every pop's
        freed capacity would be snatched by whichever small submission
        raced in first, and ``depth + large_size <= max_jobs`` might
        never hold at the instant the large waiter woke.
        """
        if size <= 0:
            raise ValueError(f"batch size must be > 0, got {size}")
        with self._cond:
            if self._closed:
                raise QueueClosedError("admission queue is draining")
            if size > self.max_jobs:
                raise QueueFullError(size, self._depth, self.max_jobs)
            if self._depth + size > self.max_jobs or self._waiters:
                if not block:
                    # Waiters present counts as full even when the batch
                    # itself would fit: capacity freed while they queue
                    # belongs to them, not to whoever raced in last.
                    raise QueueFullError(size, self._depth, self.max_jobs)
                ticket = object()
                self._waiters.append(ticket)
                try:
                    while (
                        self._waiters[0] is not ticket
                        or self._depth + size > self.max_jobs
                    ):
                        self._cond.wait()
                        if self._closed:
                            raise QueueClosedError(
                                "admission queue is draining"
                            )
                finally:
                    self._waiters.remove(ticket)
                    # Wake the new head (and any non-blocking poller).
                    self._cond.notify_all()
            self._items.append((item, size))
            self._depth += size
            self._cond.notify_all()

    def pop(self) -> Any | None:
        """Next admitted item; blocks.  ``None`` == closed and empty."""
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                return None
            item, size = self._items.popleft()
            self._depth -= size
            self._cond.notify_all()
            return item

    def close(self) -> None:
        """Start draining: reject new submissions, keep serving pops."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
