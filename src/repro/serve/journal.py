"""The fsync'd write-ahead admission journal of ``qbss-serve``.

A hard crash (OOM kill, power loss, ``kill -9``) must not silently lose
admitted-but-unfinished work.  The journal makes admission durable:

* every admitted submission is appended as a versioned ``repro.io``
  record (kind ``serve_journal_record``, type ``admission``) and
  **fsync'd before the client can ever observe an acknowledgement**;
* as the batch evaluates, per-shard completion marks (type
  ``shard_complete``, carrying the SHA-256 digest of the shard payload)
  and a closing ``batch_complete`` mark are appended;
* on restart, :meth:`AdmissionJournal.scan` tolerantly re-reads the log
  — a torn tail line (a record cut mid-write by the crash itself) is
  dropped and counted, never an error — and every admission without a
  ``batch_complete`` mark is replayed through the exact same
  validation/synthesis path a live submission takes.

Recovery is **at-least-once**: a batch that finished evaluating but
crashed before its completion mark re-runs in full.  That is safe and
byte-identical because shard evaluation is deterministic and the
content-addressed result cache makes re-execution idempotent — shards
computed before the crash are served from the cache, the rest are
computed fresh, and the recovered output is bit-for-bit what an
uninterrupted run would have produced (``docs/serving.md``).

Records deliberately carry **no wall-clock timestamps**: the journal is
part of the determinism surface (recovered runs must replay
byte-identically), and sequence numbers already give a total order.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from ..engine.faults import FaultPlan
from ..lint import lockwatch

SERVE_JOURNAL_VERSION = 1
JOURNAL_KIND = "serve_journal_record"
JOURNAL_FILENAME = "journal.jsonl"

#: The record types, in lifecycle order.
RECORD_TYPES = ("admission", "shard_complete", "batch_complete")


def shard_payload_digest(payload: dict[str, Any]) -> str:
    """Content digest of one shard payload (SHA-256 of canonical JSON).

    Written into ``shard_complete`` marks so an operator can diff a
    recovered run against a cold run without holding the payloads.
    """
    material = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One journal line — a versioned ``repro.io`` document.

    ``type`` selects which optional fields are meaningful:

    ``admission``
        ``client`` and ``jobs`` (the validated request dicts, in
        submission order — enough to rebuild the batch byte-identically).
    ``shard_complete``
        ``shard_index`` and ``shard_digest``.
    ``batch_complete``
        ``status`` (``"ok"`` or ``"error"``).

    Every type carries ``batch``, the admission sequence number.
    """

    type: str
    batch: int
    client: str = "anonymous"
    jobs: tuple[dict[str, Any], ...] = ()
    shard_index: int | None = None
    shard_digest: str | None = None
    status: str | None = None

    def __post_init__(self) -> None:
        if self.type not in RECORD_TYPES:
            raise ValueError(
                f"unknown journal record type {self.type!r} "
                f"(one of: {', '.join(RECORD_TYPES)})"
            )
        if self.batch < 1:
            raise ValueError(f"batch sequence must be >= 1, got {self.batch}")

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": JOURNAL_KIND,
            "version": SERVE_JOURNAL_VERSION,
            "type": self.type,
            "batch": self.batch,
        }
        if self.type == "admission":
            data["client"] = self.client
            data["jobs"] = [dict(j) for j in self.jobs]
        elif self.type == "shard_complete":
            data["shard_index"] = self.shard_index
            data["shard_digest"] = self.shard_digest
        elif self.type == "batch_complete":
            data["status"] = self.status
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> JournalRecord:
        if not isinstance(data, dict) or data.get("kind") != JOURNAL_KIND:
            raise ValueError("not a serve-journal record")
        if data.get("version") != SERVE_JOURNAL_VERSION:
            raise ValueError(
                f"unsupported serve-journal version {data.get('version')!r} "
                f"(this library reads version {SERVE_JOURNAL_VERSION})"
            )
        jobs = data.get("jobs") or ()
        if not isinstance(jobs, (list, tuple)):
            raise ValueError("journal 'jobs' must be a list")
        return cls(
            type=str(data["type"]),
            batch=int(data["batch"]),
            client=str(data.get("client", "anonymous")),
            jobs=tuple(dict(j) for j in jobs),
            shard_index=(
                int(data["shard_index"])
                if data.get("shard_index") is not None
                else None
            ),
            shard_digest=(
                str(data["shard_digest"])
                if data.get("shard_digest") is not None
                else None
            ),
            status=(
                str(data["status"]) if data.get("status") is not None else None
            ),
        )

    def encode(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class JournalScan:
    """The tolerant read of one journal file.

    ``torn`` counts trailing lines dropped because they did not parse as
    complete records — exactly what a crash mid-append leaves behind.
    Such a record was by construction never fsync'd, so the submission it
    described was never acknowledged; dropping it is correct.
    """

    records: list[JournalRecord] = field(default_factory=list)
    torn: int = 0

    @property
    def max_batch(self) -> int:
        return max((r.batch for r in self.records), default=0)

    def incomplete(self) -> list[JournalRecord]:
        """Admissions without a ``batch_complete`` mark, in admission order."""
        completed = {
            r.batch for r in self.records if r.type == "batch_complete"
        }
        return [
            r
            for r in self.records
            if r.type == "admission" and r.batch not in completed
        ]


@dataclass
class RecoveryReport:
    """What one journal recovery found and re-enqueued."""

    batches: int = 0
    jobs: int = 0
    torn_records: int = 0
    skipped: int = 0  # unparseable admissions left in place, never dropped

    def to_dict(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "jobs": self.jobs,
            "torn_records": self.torn_records,
            "skipped": self.skipped,
        }

    def summary_line(self) -> str:
        out = (
            f"journal recovery: {self.batches} incomplete batch(es) / "
            f"{self.jobs} job(s) replayed"
        )
        if self.torn_records:
            out += f", {self.torn_records} torn record(s) dropped"
        if self.skipped:
            out += f", {self.skipped} unreadable admission(s) skipped"
        return out


class AdmissionJournal:
    """An append-only admission journal in ``directory``.

    Admission appends are fsync'd (durable before the ack); completion
    marks are flushed but not fsync'd — they only *narrow* recovery, so
    losing one to a crash costs an idempotent, byte-identical replay,
    never correctness.  All appends serialize under one lock (HTTP
    handler threads log admissions; the scheduler thread logs completion
    marks).  A
    :class:`~repro.engine.faults.FaultPlan` with ``torn-write`` specs at
    coordinates ``journal:<type>:<batch>`` (attempt 1) makes ``append``
    deliberately write a truncated, un-fsync'd line — the deterministic
    stand-in for a crash mid-append that the recovery tests pin down.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        metrics: Any | None = None,
        tracer: Any | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILENAME
        self.tracer = tracer
        self.fault_plan = fault_plan
        self._lock = lockwatch.new_lock("AdmissionJournal._lock")
        self._fh: IO[str] | None = None
        self._seq = 1
        self._records_counter = None
        self._torn_counter = None
        if metrics is not None:
            self._records_counter = {
                rtype: metrics.counter(
                    "qbss_serve_journal_records_total",
                    "Journal records appended, by record type.",
                    type=rtype,
                )
                for rtype in RECORD_TYPES
            }
            self._torn_counter = metrics.counter(
                "qbss_serve_journal_torn_records_total",
                "Torn journal tail records dropped during recovery scans.",
            )

    # -- reading ---------------------------------------------------------------------

    def scan(self) -> JournalScan:
        """Tolerantly read every record currently in the journal.

        Parsing stops at the first line that is not a complete, valid
        record; that line and everything after it count as ``torn``.
        Only a crash mid-append can produce such a tail (every completed
        append ends with a newline), and nothing droppable was ever
        acknowledged: a torn admission was never fsync'd (hence never
        acked), and a torn completion mark only widens the idempotent
        replay.
        """
        scan = JournalScan()
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return scan
        lines = raw.split("\n")
        # a journal that ends mid-line has no trailing "\n": its last
        # split element is the torn fragment, not an empty string
        complete, tail = lines[:-1], lines[-1]
        for line in complete:
            if not line.strip():
                continue
            try:
                scan.records.append(JournalRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                scan.torn += 1
        if tail.strip():
            scan.torn += 1
        if scan.torn and self._torn_counter is not None:
            with self._lock:
                self._torn_counter.inc(scan.torn)
        self._seq = scan.max_batch + 1
        return scan

    def compact(self, keep: list[JournalRecord]) -> None:
        """Atomically rewrite the journal to exactly ``keep``.

        Called at recovery time with the incomplete admissions: completed
        history and torn fragments are dropped, the batches about to be
        replayed stay journaled (their fresh completion marks append
        behind them), and batch sequence numbers keep monotonically
        increasing across restarts.
        """
        with self._lock:
            self._close_locked()
            tmp = self.path.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "w") as fh:
                for record in keep:
                    fh.write(record.encode() + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(self.path)
            self._seq = max(
                self._seq, max((r.batch for r in keep), default=0) + 1
            )

    # -- writing ---------------------------------------------------------------------

    def log_admission(
        self, client: str, jobs: list[dict[str, Any]]
    ) -> int:
        """Durably record one admitted submission; returns its batch seq."""
        with self._lock:
            batch = self._seq
            self._seq += 1
            self._append_locked(
                JournalRecord(
                    type="admission", batch=batch, client=client,
                    jobs=tuple(jobs),
                ),
                coord=f"journal:admission:{batch}",
            )
        return batch

    def log_shard_complete(
        self, batch: int, shard_index: int, shard_digest: str
    ) -> None:
        with self._lock:
            self._append_locked(
                JournalRecord(
                    type="shard_complete",
                    batch=batch,
                    shard_index=shard_index,
                    shard_digest=shard_digest,
                ),
                coord=f"journal:shard:{batch}:{shard_index}",
            )

    def log_batch_complete(self, batch: int, status: str) -> None:
        with self._lock:
            self._append_locked(
                JournalRecord(type="batch_complete", batch=batch, status=status),
                coord=f"journal:complete:{batch}",
            )

    def _append_locked(self, record: JournalRecord, *, coord: str) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a")
        line = record.encode() + "\n"
        if self.fault_plan is not None and self.fault_plan.wants_torn_write(
            coord, 1
        ):
            # deterministic stand-in for a crash mid-append: a prefix of
            # the intended bytes reaches the disk, no newline, no fsync
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            return
        self._fh.write(line)
        self._fh.flush()
        if record.type == "admission":
            # Only the admission is commit-critical: it must hit the disk
            # before the ack.  Completion marks are flushed but not
            # fsync'd — losing one to a crash merely replays a batch the
            # idempotent cache re-serves byte-identically, and one fsync
            # per submission (instead of one per shard) keeps the journal
            # tax on warm-serve throughput inside the <5% budget.
            os.fsync(self._fh.fileno())
        if self._records_counter is not None:
            self._records_counter[record.type].inc()
        if self.tracer is not None:
            self.tracer.event(
                "journal_append", None, type=record.type, batch=record.batch
            )

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> AdmissionJournal:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
