"""repro.serve — a long-lived QBSS scheduling service.

Every other entry point in this repository is a batch CLI: it pays
cold-start (interpreter, imports, pool spin-up, cache open, clairvoyant
baseline) on every invocation.  ``repro.serve`` turns the stack into a
daemon: a single warm :class:`~repro.engine.session.ExecutionSession`
outlives thousands of requests, the content-addressed shard cache stays
open, and job streams arrive over HTTP/JSON (or stdin JSONL) instead of
trace files.

The pieces (``docs/serving.md`` has the full protocol):

* :mod:`repro.serve.protocol` — the versioned JSONL request/response
  vocabulary (:class:`JobRequest`, envelopes, :class:`ServeError`);
* :mod:`repro.serve.queue` — the bounded admission queue (reject, don't
  buffer, when the daemon is saturated);
* :mod:`repro.serve.rate` — per-client token-bucket rate accounting;
* :mod:`repro.serve.journal` — the fsync'd write-ahead admission
  journal (:class:`AdmissionJournal`): submissions are durable before
  they are acknowledged, and incomplete entries replay on restart;
* :mod:`repro.serve.server` — :class:`QbssServer`: admission, the
  scheduler thread driving the warm session, the HTTP endpoints
  (``/v1/jobs``, ``/healthz``, ``/metrics``), crash recovery
  (:meth:`QbssServer.recover`), graceful drain;
* :mod:`repro.serve.client` — the typed :class:`Client` /
  :class:`ServeResult` pair;
* :mod:`repro.serve.cli` — the ``qbss-serve`` console script.

Quick start::

    from repro.serve import Client, QbssServer, ServeConfig

    server = QbssServer(ServeConfig(port=0))
    server.start()
    try:
        client = Client("127.0.0.1", server.port)
        result = client.submit(
            [{"id": "a", "release": 0.0, "runtime": 30.0}]
        )
        print(result.ratios_for("avrq"))
    finally:
        server.begin_drain()
        server.drain()
"""

from .client import Client, ServeClientError, ServeResult
from .journal import AdmissionJournal, JournalRecord, RecoveryReport
from .protocol import (
    SERVE_PROTOCOL_VERSION,
    JobRequest,
    ProtocolError,
    ServeError,
    parse_jobs_payload,
    parse_response_lines,
)
from .queue import AdmissionQueue, QueueClosedError, QueueFullError
from .rate import RateLimiter, TokenBucket
from .server import QbssServer, ServeConfig

__all__ = [
    "SERVE_PROTOCOL_VERSION",
    "JobRequest",
    "ProtocolError",
    "ServeError",
    "parse_jobs_payload",
    "parse_response_lines",
    "AdmissionQueue",
    "QueueClosedError",
    "QueueFullError",
    "RateLimiter",
    "TokenBucket",
    "QbssServer",
    "ServeConfig",
    "Client",
    "ServeClientError",
    "ServeResult",
    "AdmissionJournal",
    "JournalRecord",
    "RecoveryReport",
]
