"""Online arrival streams.

The online setting of the paper reveals a job (without its exact load) at its
release time.  An :class:`OnlineStream` is the ordered sequence of such
arrival events; online algorithms consume it through :meth:`OnlineStream.play`
or by iterating arrival times, and must never look at a job before its
arrival.  The QBSS simulator (:mod:`repro.qbss.simulation`) layers query
completions on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator, Sequence
from typing import Generic, TypeVar

from .job import Job
from .timeline import dedupe_times

J = TypeVar("J")


@dataclass(frozen=True)
class Arrival(Generic[J]):
    """A job becoming known to the algorithm at ``time``."""

    time: float
    job: J


class OnlineStream(Generic[J]):
    """An ordered, replayable stream of job arrivals.

    Arrival order is by time, ties broken by insertion order, which makes
    online runs deterministic.
    """

    def __init__(self, arrivals: Sequence[Arrival[J]] = ()) -> None:
        self._arrivals: list[Arrival[J]] = sorted(
            arrivals, key=lambda a: a.time
        )

    @classmethod
    def from_jobs(cls, jobs: Sequence[Job]) -> OnlineStream[Job]:
        """Stream where each classical job arrives at its release time."""
        return OnlineStream([Arrival(j.release, j) for j in jobs])

    def add(self, time: float, job: J) -> None:
        """Insert an arrival, keeping the stream sorted."""
        self._arrivals.append(Arrival(time, job))
        self._arrivals.sort(key=lambda a: a.time)

    def __iter__(self) -> Iterator[Arrival[J]]:
        return iter(self._arrivals)

    def __len__(self) -> int:
        return len(self._arrivals)

    @property
    def arrivals(self) -> tuple[Arrival[J], ...]:
        return tuple(self._arrivals)

    def arrival_times(self) -> list[float]:
        return dedupe_times(a.time for a in self._arrivals)

    def jobs_arrived_by(self, t: float) -> list[J]:
        """All jobs with arrival time <= t (what an online algorithm knows)."""
        return [a.job for a in self._arrivals if a.time <= t]

    def play(self, on_arrival: Callable[[float, J], None]) -> None:
        """Deliver every arrival, in order, to ``on_arrival(time, job)``."""
        for a in self._arrivals:
            on_arrival(a.time, a.job)
