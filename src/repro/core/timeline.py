"""Breakpoint and interval helpers shared by the simulators."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .constants import EPS


def dedupe_times(times: Iterable[float], tol: float = EPS) -> list[float]:
    """Sort and collapse numerically-equal time points."""
    out: list[float] = []
    for t in sorted(times):
        if not out or t - out[-1] > tol:
            out.append(t)
    return out


def elementary_intervals(times: Iterable[float], tol: float = EPS) -> list[tuple[float, float]]:
    """Consecutive pairs of the deduplicated time points."""
    pts = dedupe_times(times, tol)
    return list(zip(pts, pts[1:]))


def interval_index(intervals: Sequence[tuple[float, float]], t: float) -> int:
    """Index of the elementary interval whose midpoint-open range contains t.

    Returns -1 when ``t`` is outside all intervals.  Intervals are treated as
    ``[a, b)`` which matches the segment convention of speed profiles.
    """
    for i, (a, b) in enumerate(intervals):
        if a <= t < b:
            return i
    return -1
