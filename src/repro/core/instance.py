"""Instance containers for classical and QBSS scheduling problems.

An :class:`Instance` is a validated collection of classical jobs; a
:class:`QBSSInstance` holds QBSS jobs plus the machine count, and knows how
to produce the derived classical instances of the paper's analysis
(``I*`` — the clairvoyant instance — lives here; the ``I'`` and ``I'_1/2``
constructions of Figure 1 live in :mod:`repro.qbss.transform`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from .constants import EPS
from .job import Job
from .qjob import QJob, QJobView


@dataclass(frozen=True)
class Instance:
    """A classical speed-scaling instance: jobs plus number of machines."""

    jobs: tuple[Job, ...]
    machines: int = 1

    def __init__(self, jobs: Sequence[Job], machines: int = 1) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        ids = [j.id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within an instance")
        object.__setattr__(self, "jobs", tuple(jobs))
        object.__setattr__(self, "machines", machines)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def span(self) -> tuple[float, float]:
        """``(min release, max deadline)`` over all jobs."""
        if not self.jobs:
            return (0.0, 0.0)
        return (
            min(j.release for j in self.jobs),
            max(j.deadline for j in self.jobs),
        )

    def total_work(self) -> float:
        return sum(j.work for j in self.jobs)

    def breakpoints(self) -> list[float]:
        """All releases and deadlines, sorted and deduplicated."""
        raw = sorted(
            {j.release for j in self.jobs} | {j.deadline for j in self.jobs}
        )
        pts: list[float] = []
        for t in raw:
            if not pts or t - pts[-1] > EPS:
                pts.append(t)
        return pts

    def active_jobs(self, t: float) -> list[Job]:
        """Jobs whose active interval contains time ``t`` (``r < t <= d``)."""
        return [j for j in self.jobs if j.active_at(t)]

    def jobs_within(self, start: float, end: float) -> list[Job]:
        """Jobs whose whole window lies inside ``[start, end]``."""
        return [j for j in self.jobs if start <= j.release and j.deadline <= end]

    def with_machines(self, machines: int) -> Instance:
        return Instance(self.jobs, machines)


@dataclass(frozen=True)
class QBSSInstance:
    """A QBSS instance: uncertain jobs plus number of machines.

    The container owns the ground truth (the ``w*`` values).  Algorithms
    receive :meth:`views`, which hide the exact loads behind the query
    protocol of :class:`repro.core.qjob.QJobView`.
    """

    jobs: tuple[QJob, ...]
    machines: int = 1

    def __init__(self, jobs: Sequence[QJob], machines: int = 1) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        ids = [j.id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within an instance")
        object.__setattr__(self, "jobs", tuple(jobs))
        object.__setattr__(self, "machines", machines)

    def __iter__(self) -> Iterator[QJob]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def span(self) -> tuple[float, float]:
        if not self.jobs:
            return (0.0, 0.0)
        return (
            min(j.release for j in self.jobs),
            max(j.deadline for j in self.jobs),
        )

    # -- structural properties used to dispatch offline algorithms -----------

    @property
    def common_release(self) -> bool:
        """All jobs released at the same time (Sections 4.2-4.4 assume 0)."""
        return len({j.release for j in self.jobs}) <= 1

    @property
    def common_deadline(self) -> bool:
        """All jobs share one deadline (Section 4.2, CRCD)."""
        return len({j.deadline for j in self.jobs}) <= 1

    @property
    def power_of_two_deadlines(self) -> bool:
        """All deadlines are exact powers of two (Section 4.3, CRP2D)."""
        for j in self.jobs:
            if j.deadline <= 0:
                return False
            lg = math.log2(j.deadline)
            if abs(lg - round(lg)) > 1e-9:
                return False
        return True

    # -- derived instances ------------------------------------------------------

    def views(self) -> list[QJobView]:
        """Fresh information-restricted views, one per job."""
        return [j.view() for j in self.jobs]

    def clairvoyant_instance(self) -> Instance:
        """The instance ``I*``: classical jobs ``(r_j, d_j, p*_j)`` (Sec. 3)."""
        return Instance([j.clairvoyant_job() for j in self.jobs], self.machines)

    def upper_bound_instance(self) -> Instance:
        """Classical jobs ``(r_j, d_j, w_j)`` — the never-query reduction."""
        return Instance([j.as_upper_bound_job() for j in self.jobs], self.machines)

    def with_machines(self, machines: int) -> QBSSInstance:
        return QBSSInstance(self.jobs, machines)

    def rounded_down_deadlines(self) -> QBSSInstance:
        """The CRAD preprocessing: round every deadline down to a power of 2.

        Requires every window to still be non-empty afterwards, which holds
        whenever ``d_j > r_j = 0`` and ``d_j >= smallest representable power``;
        the caller (CRAD) validates common release at 0.
        """
        rounded = []
        for j in self.jobs:
            if j.deadline <= 0:
                raise ValueError("rounding requires positive deadlines")
            d = 2.0 ** math.floor(math.log2(j.deadline))
            rounded.append(
                QJob(j.release, d, j.query_cost, j.work_upper, j.work_true, j.id)
            )
        return QBSSInstance(rounded, self.machines)


