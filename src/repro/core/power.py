"""The speed-scaling power model ``P(s) = s**alpha``.

Energy is ``E = integral P(s(t)) dt``.  All algorithms in the library are
parameterised by a :class:`PowerFunction`, which also centralises the
convexity facts the analyses rely on (e.g. running at constant speed over an
interval is optimal for a fixed amount of work).
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import DEFAULT_ALPHA


@dataclass(frozen=True)
class PowerFunction:
    """Power model ``P(s) = s**alpha`` with ``alpha > 1``.

    Parameters
    ----------
    alpha:
        Exponent of the power function.  Must be strictly greater than 1;
        the classical CMOS value is 3.

    Examples
    --------
    >>> p = PowerFunction(3.0)
    >>> p.power(2.0)
    8.0
    >>> p.energy(speed=2.0, duration=0.5)
    4.0
    >>> p.energy_for_work(work=4.0, duration=2.0)  # constant speed 2
    16.0
    """

    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if not self.alpha > 1.0:
            raise ValueError(f"alpha must be > 1, got {self.alpha}")

    def power(self, speed: float) -> float:
        """Instantaneous power drawn while running at ``speed``."""
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        return speed**self.alpha

    def energy(self, speed: float, duration: float) -> float:
        """Energy consumed running at constant ``speed`` for ``duration``."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.power(speed) * duration

    def energy_for_work(self, work: float, duration: float) -> float:
        """Minimum energy to execute ``work`` within ``duration`` time.

        By convexity of ``s**alpha`` the optimum runs at the constant speed
        ``work / duration`` for the whole interval, hence
        ``E = duration * (work / duration)**alpha``.
        """
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work}")
        if work == 0:
            return 0.0
        if duration <= 0:
            raise ValueError("positive work requires positive duration")
        return self.energy(work / duration, duration)

    def speed_for_energy(self, energy_budget: float, duration: float) -> float:
        """Constant speed sustainable for ``duration`` with ``energy_budget``."""
        if energy_budget < 0 or duration <= 0:
            raise ValueError("need non-negative budget and positive duration")
        return (energy_budget / duration) ** (1.0 / self.alpha)
