"""Classical speed-scaling jobs.

A classical job is the triple ``(r_j, d_j, w_j)`` of Yao, Demers and Shenker:
``w_j`` units of work to be executed preemptively inside the active interval
``(r_j, d_j]``.  QBSS algorithms reduce their uncertain jobs to classical
jobs (queries, revealed loads, upper bounds) and feed them to the classical
machinery, so this type is the lingua franca of the whole library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

_AUTO_ID = count()


def _next_id() -> str:
    return f"job-{next(_AUTO_ID)}"


@dataclass(frozen=True)
class Job:
    """An immutable classical speed-scaling job ``(release, deadline, work)``.

    Attributes
    ----------
    release:
        Time the job becomes available (``r_j``).
    deadline:
        Time by which all of its work must be finished (``d_j``); the active
        interval is ``(release, deadline]``.
    work:
        Amount of work ``w_j >= 0``.  Zero-work jobs are allowed (they arise
        naturally in QBSS when a query reveals ``w* = 0``) and are trivially
        complete.
    id:
        Stable identifier.  Auto-generated when not provided.  Derived jobs
        (e.g. the query part of a QBSS job) conventionally suffix the parent
        id, such as ``"j3:query"``.
    """

    release: float
    deadline: float
    work: float
    id: str = field(default_factory=_next_id)

    def __post_init__(self) -> None:
        if not self.deadline > self.release:
            raise ValueError(
                f"deadline ({self.deadline}) must exceed release ({self.release})"
            )
        if self.work < 0:
            raise ValueError(f"work must be non-negative, got {self.work}")

    @property
    def span(self) -> float:
        """Length of the active interval ``d_j - r_j``."""
        return self.deadline - self.release

    @property
    def density(self) -> float:
        """The density ``delta_j = w_j / (d_j - r_j)``.

        The density is the constant speed at which the job alone would be
        executed across its full window; it is the basic quantity of the AVR
        family of algorithms.
        """
        return self.work / self.span

    def active_at(self, t: float) -> bool:
        """Whether ``t`` lies in the half-open active interval ``(r_j, d_j]``.

        The paper uses intervals open on the left; for a job released at
        ``r_j``, work can be processed at any time ``t`` with
        ``r_j < t <= d_j``.  For piecewise-constant profiles we treat a job
        as active on segments ``[a, b)`` with ``r_j <= a`` and ``b <= d_j``.
        """
        return self.release < t <= self.deadline

    def contains_interval(self, start: float, end: float) -> bool:
        """Whether ``[start, end]`` is inside the active window."""
        return self.release <= start and end <= self.deadline

    def with_work(self, work: float, suffix: str = "") -> Job:
        """Copy of this job with different work (and optional id suffix)."""
        return Job(self.release, self.deadline, work, self.id + suffix)
