"""Schedule validation.

A schedule for a classical instance is *feasible* when

1. every slice of a job lies inside the job's active window ``(r_j, d_j]``;
2. each machine executes at most one job at a time (slices on one machine do
   not overlap);
3. no job runs on two machines simultaneously (no self-parallelism — the
   paper's parallel-machine model allows migration but not duplication);
4. every job receives exactly its required work.

The checker reports all violations instead of stopping at the first one so
test failures are informative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from .instance import Instance
from .job import Job
from .schedule import Schedule, Slice


@dataclass
class FeasibilityReport:
    """Outcome of validating a schedule against an instance."""

    ok: bool
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_infeasible(self) -> None:
        if not self.ok:
            msgs = "\n  - ".join(self.violations)
            raise InfeasibleScheduleError(f"infeasible schedule:\n  - {msgs}")


class InfeasibleScheduleError(RuntimeError):
    """Raised by :meth:`FeasibilityReport.raise_if_infeasible`."""


def _overlaps(slices: Sequence[Slice], tol: float) -> list[tuple[Slice, Slice]]:
    """Pairs of overlapping slices in a start-sorted sequence."""
    bad = []
    ordered = sorted(slices, key=lambda s: s.start)
    for a, b in zip(ordered, ordered[1:]):
        if b.start < a.end - tol:
            bad.append((a, b))
    return bad


def check_feasible(
    schedule: Schedule,
    instance: Instance,
    tol: float = 1e-6,
    require_all_work: bool = True,
) -> FeasibilityReport:
    """Validate ``schedule`` against ``instance``; see module docstring.

    ``require_all_work=False`` relaxes condition 4 to "no job receives more
    than its work", useful for validating prefixes of online runs.
    """
    violations: list[str] = []
    jobs: dict[str, Job] = {j.id: j for j in instance.jobs}

    if schedule.machines > instance.machines:
        violations.append(
            f"schedule uses {schedule.machines} machines, instance has "
            f"{instance.machines}"
        )

    # 1. window containment + unknown jobs
    for m, per in enumerate(schedule.machine_slices()):
        for s in per:
            job = jobs.get(s.job_id)
            if job is None:
                violations.append(f"slice of unknown job {s.job_id!r} on machine {m}")
                continue
            if s.start < job.release - tol or s.end > job.deadline + tol:
                violations.append(
                    f"job {s.job_id} slice [{s.start}, {s.end}) outside window "
                    f"({job.release}, {job.deadline}]"
                )

    # 2. machine capacity
    for m, per in enumerate(schedule.machine_slices()):
        for a, b in _overlaps(per, tol):
            violations.append(
                f"machine {m} overlap: {a.job_id} [{a.start},{a.end}) with "
                f"{b.job_id} [{b.start},{b.end})"
            )

    # 3. no self-parallelism across machines
    if schedule.machines > 1:
        per_job: dict[str, list[Slice]] = {}
        for per in schedule.machine_slices():
            for s in per:
                per_job.setdefault(s.job_id, []).append(s)
        for job_id, slices in per_job.items():
            for a, b in _overlaps(slices, tol):
                # Overlap within one machine is already reported by check 2;
                # report here only when the job genuinely runs in parallel
                # with itself, i.e. the overlapping slices are distinct.
                if a is not b:
                    violations.append(
                        f"job {job_id} self-parallel: [{a.start},{a.end}) and "
                        f"[{b.start},{b.end})"
                    )

    # 4. work completion
    executed = schedule.work_by_job()
    for job_id, job in jobs.items():
        done = executed.get(job_id, 0.0)
        scale = max(abs(job.work), 1.0)
        if done > job.work + tol * scale:
            violations.append(
                f"job {job_id} over-executed: {done} > required {job.work}"
            )
        if require_all_work and done < job.work - tol * scale:
            violations.append(
                f"job {job_id} under-executed: {done} < required {job.work}"
            )

    return FeasibilityReport(ok=not violations, violations=violations)
