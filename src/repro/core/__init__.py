"""Core substrate: jobs, instances, speed profiles, schedules, execution.

Everything above this package (classical algorithms, QBSS algorithms,
analysis) is written in terms of these primitives.
"""

from .constants import DEFAULT_ALPHA, EPS, PHI, feq, fge, fle
from .edf import EDFResult, profile_feasible_for, run_edf
from .events import Arrival, OnlineStream
from .feasibility import (
    FeasibilityReport,
    InfeasibleScheduleError,
    check_feasible,
)
from .instance import Instance, QBSSInstance
from .job import Job
from .power import PowerFunction
from .profile import Segment, SpeedProfile, max_profiles, sum_profiles
from .qjob import QJob, QJobView, QueryNotCompleted
from .schedule import Schedule, Slice, merge_schedules

__all__ = [
    "DEFAULT_ALPHA",
    "EPS",
    "PHI",
    "feq",
    "fge",
    "fle",
    "EDFResult",
    "profile_feasible_for",
    "run_edf",
    "Arrival",
    "OnlineStream",
    "FeasibilityReport",
    "InfeasibleScheduleError",
    "check_feasible",
    "Instance",
    "QBSSInstance",
    "Job",
    "PowerFunction",
    "Segment",
    "SpeedProfile",
    "max_profiles",
    "sum_profiles",
    "QJob",
    "QJobView",
    "QueryNotCompleted",
    "Schedule",
    "Slice",
    "merge_schedules",
]
