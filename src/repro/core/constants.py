"""Numeric constants shared across the library.

The golden ratio :data:`PHI` plays a central role in the QBSS model: the
query-decision rule of Lemma 3.1 queries a job exactly when ``c_j <= w_j / PHI``,
which guarantees that the load executed by the algorithm is at most ``PHI``
times the load executed by the clairvoyant optimum.
"""

from __future__ import annotations

import math

#: The golden ratio phi = (1 + sqrt(5)) / 2 ~= 1.6180339887.
#: Satisfies ``PHI**2 == PHI + 1`` which is what makes the threshold rule tight.
PHI: float = (1.0 + math.sqrt(5.0)) / 2.0

#: Euler's number, the speed multiplier of the BKP algorithm.
E_CONST: float = math.e

#: Default exponent of the power function ``P(s) = s**alpha``.  The paper uses
#: the general ``alpha > 1``; CMOS technology is classically modelled with 3.
DEFAULT_ALPHA: float = 3.0

#: Absolute tolerance used throughout for floating-point comparisons of times,
#: work amounts and speeds.
EPS: float = 1e-9

#: Looser relative tolerance for comparisons of aggregated quantities such as
#: energies, which accumulate error over many segments.
REL_TOL: float = 1e-6


def feq(a: float, b: float, tol: float = EPS) -> bool:
    """Return ``True`` when ``a`` and ``b`` are equal up to tolerance.

    Uses a combined absolute/relative criterion so it behaves sensibly both
    for values near zero (times, works) and for large aggregates (energies).
    """
    return abs(a - b) <= tol + REL_TOL * max(abs(a), abs(b))


def fle(a: float, b: float, tol: float = EPS) -> bool:
    """Return ``True`` when ``a <= b`` up to tolerance."""
    return a <= b + tol + REL_TOL * max(abs(a), abs(b))


def fge(a: float, b: float, tol: float = EPS) -> bool:
    """Return ``True`` when ``a >= b`` up to tolerance."""
    return fle(b, a, tol)
