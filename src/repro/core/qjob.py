"""Jobs with explorable uncertainty (the QBSS quintuple).

A QBSS job is ``(r_j, d_j, c_j, w_j, w*_j)``: executing the *query* (an extra
load of ``c_j``) reveals the exact load ``w*_j <= w_j``; skipping the query
forces execution of the full upper bound ``w_j``.

The exact load must not leak to algorithms before the query completes.  We
enforce this *structurally*: :class:`QJob` stores the truth, while algorithms
receive a :class:`QJobView`, which exposes everything except ``w*`` and
provides :meth:`QJobView.reveal` that (a) records the query in an audit trail
and (b) only answers after the declared query-completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from .job import Job

_AUTO_ID = count()


def _next_id() -> str:
    return f"qjob-{next(_AUTO_ID)}"


@dataclass(frozen=True)
class QJob:
    """Immutable QBSS job ``(release, deadline, query_cost, work_upper, work_true)``.

    Attributes
    ----------
    release, deadline:
        The active interval ``(r_j, d_j]``; the query *and* the revealed load
        must both complete inside it.
    query_cost:
        The extra load ``c_j`` of the query, with ``0 < c_j <= w_j``.
    work_upper:
        The known upper bound ``w_j`` on the workload.
    work_true:
        The hidden exact load ``w*_j`` with ``0 <= w*_j <= w_j``.  Only the
        adversary/instance layer and the clairvoyant baseline may read it
        directly; online/offline algorithms must go through :class:`QJobView`.

    Examples
    --------
    >>> job = QJob(release=0.0, deadline=4.0, query_cost=0.5,
    ...            work_upper=3.0, work_true=1.0)
    >>> job.optimal_load           # p* = min(w, c + w*)
    1.5
    >>> job.query_worthwhile
    True
    >>> view = job.view()
    >>> hasattr(view, "work_true")  # algorithms cannot see w*
    False
    >>> view.reveal(2.0)            # ... until the query completes
    1.0
    """

    release: float
    deadline: float
    query_cost: float
    work_upper: float
    work_true: float
    id: str = field(default_factory=_next_id)

    def __post_init__(self) -> None:
        if not self.deadline > self.release:
            raise ValueError(
                f"deadline ({self.deadline}) must exceed release ({self.release})"
            )
        if self.work_upper < 0:
            raise ValueError(f"work_upper must be >= 0, got {self.work_upper}")
        # The paper requires c_j in (0, w_j].
        if not (0 < self.query_cost <= self.work_upper):
            raise ValueError(
                "query_cost must satisfy 0 < c_j <= w_j "
                f"(got c={self.query_cost}, w={self.work_upper})"
            )
        if not 0 <= self.work_true <= self.work_upper:
            raise ValueError(
                "work_true must satisfy 0 <= w* <= w "
                f"(got w*={self.work_true}, w={self.work_upper})"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def span(self) -> float:
        """Window length ``d_j - r_j``."""
        return self.deadline - self.release

    @property
    def midpoint(self) -> float:
        """The equal-window splitting point ``(r_j + d_j) / 2``."""
        return 0.5 * (self.release + self.deadline)

    @property
    def optimal_load(self) -> float:
        """``p*_j = min{w_j, c_j + w*_j}`` — the load the clairvoyant executes."""
        return min(self.work_upper, self.query_cost + self.work_true)

    @property
    def query_worthwhile(self) -> bool:
        """Whether the clairvoyant queries: ``c_j + w*_j < w_j`` (strict)."""
        return self.query_cost + self.work_true < self.work_upper

    def split_point(self, fraction: float) -> float:
        """Splitting point ``tau_j = r_j + x (d_j - r_j)`` for ``x = fraction``."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"split fraction must be in (0, 1), got {fraction}")
        return self.release + fraction * self.span

    # -- conversions to classical jobs ---------------------------------------

    def as_upper_bound_job(self) -> Job:
        """Classical job executing ``w_j`` without a query: ``(r, d, w)``."""
        return Job(self.release, self.deadline, self.work_upper, self.id + ":full")

    def query_job(self, split_fraction: float = 0.5) -> Job:
        """Classical job for the query part: ``(r, tau, c)``."""
        tau = self.split_point(split_fraction)
        return Job(self.release, tau, self.query_cost, self.id + ":query")

    def revealed_job(self, split_fraction: float = 0.5) -> Job:
        """Classical job for the exact load: ``(tau, d, w*)``.

        Only the simulation/analysis layer should call this; algorithm code
        obtains the same job through :meth:`QJobView.reveal`.
        """
        tau = self.split_point(split_fraction)
        return Job(tau, self.deadline, self.work_true, self.id + ":work")

    def clairvoyant_job(self) -> Job:
        """Classical job ``(r, d, p*)`` used by the optimal baseline (Sec. 3)."""
        return Job(self.release, self.deadline, self.optimal_load, self.id + ":opt")

    def view(self) -> QJobView:
        """Information-restricted view handed to algorithms."""
        return QJobView(self)


class QueryNotCompleted(RuntimeError):
    """Raised when an algorithm reads ``w*`` before its query has completed."""


@dataclass
class QJobView:
    """What an algorithm is allowed to see of a :class:`QJob`.

    Exposes ``release``, ``deadline``, ``query_cost`` and ``work_upper``.
    The exact load is obtainable only through :meth:`reveal`, which records
    the query-completion time and refuses inconsistent accesses.  The audit
    trail (``queried``, ``revealed_at``) is used by the simulator to charge
    the query load and by tests to assert no information leaks.
    """

    _job: QJob
    revealed_at: float | None = None

    # -- public (known) attributes -------------------------------------------

    @property
    def id(self) -> str:
        return self._job.id

    @property
    def release(self) -> float:
        return self._job.release

    @property
    def deadline(self) -> float:
        return self._job.deadline

    @property
    def query_cost(self) -> float:
        return self._job.query_cost

    @property
    def work_upper(self) -> float:
        return self._job.work_upper

    @property
    def span(self) -> float:
        return self._job.span

    @property
    def midpoint(self) -> float:
        return self._job.midpoint

    @property
    def queried(self) -> bool:
        """Whether :meth:`reveal` has been called."""
        return self.revealed_at is not None

    # -- the query -----------------------------------------------------------

    def reveal(self, completion_time: float) -> float:
        """Return ``w*`` after the query completed at ``completion_time``.

        The completion time must lie inside the job's active interval (the
        query is itself load executed inside ``(r_j, d_j]``).  Calling twice
        is allowed and idempotent (returns the same value) as long as the
        claimed completion time does not move earlier, which would indicate
        an information leak in the calling algorithm.
        """
        if completion_time <= self._job.release:
            raise QueryNotCompleted(
                f"query for {self.id} cannot complete at {completion_time} "
                f"<= release {self._job.release}"
            )
        if completion_time > self._job.deadline:
            raise QueryNotCompleted(
                f"query for {self.id} completes at {completion_time} after "
                f"deadline {self._job.deadline}; the schedule is infeasible"
            )
        if self.revealed_at is not None and completion_time < self.revealed_at:
            raise QueryNotCompleted(
                f"query completion for {self.id} moved earlier "
                f"({completion_time} < {self.revealed_at})"
            )
        if self.revealed_at is None:
            self.revealed_at = completion_time
        return self._job.work_true

    def split_point(self, fraction: float) -> float:
        return self._job.split_point(fraction)

    def as_upper_bound_job(self) -> Job:
        return self._job.as_upper_bound_job()

    def query_job(self, split_fraction: float = 0.5) -> Job:
        return self._job.query_job(split_fraction)
