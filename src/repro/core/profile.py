"""Piecewise-constant speed profiles.

A :class:`SpeedProfile` is the function ``s(t)`` a speed-scaling algorithm
commits to: a finite sequence of half-open segments ``[start, end)`` with a
constant speed each, and speed zero elsewhere.  Every algorithm in the
library produces one (per machine), and every analysis quantity — energy,
maximum speed, work available to EDF on an interval — is computed from it.

The class supports the algebra the paper's constructions need:

* pointwise addition (CRP2D adds the revealed-load speed on top of the YDS
  speed, Algorithm 2 line 12);
* scaling (the ``phi``- and ``2``-speed-up arguments of Lemmas 4.9/4.10);
* restriction and work-in-interval queries (critical-interval reasoning).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from .constants import EPS
from .power import PowerFunction


@dataclass(frozen=True)
class Segment:
    """A constant-speed segment ``[start, end)`` at ``speed >= 0``."""

    start: float
    end: float
    speed: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(f"segment end {self.end} must exceed start {self.start}")
        if self.speed < 0:
            raise ValueError(f"segment speed must be >= 0, got {self.speed}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        return self.speed * self.duration


class SpeedProfile:
    """An immutable piecewise-constant speed function.

    Construction normalises the segments: sorts them, verifies they do not
    overlap, drops zero-speed segments and merges adjacent segments with
    equal speed.  ``s(t) = 0`` outside all segments.

    Examples
    --------
    >>> prof = SpeedProfile([Segment(0.0, 1.0, 2.0), Segment(1.0, 3.0, 1.0)])
    >>> prof.speed_at(0.5)
    2.0
    >>> prof.total_work()
    4.0
    >>> from repro.core.power import PowerFunction
    >>> prof.energy(PowerFunction(3.0))  # 1*8 + 2*1
    10.0
    >>> (prof + SpeedProfile.constant(0.0, 3.0, 1.0)).speed_at(2.0)
    2.0
    """

    __slots__ = ("_segments", "_starts")

    def __init__(self, segments: Iterable[Segment] = ()) -> None:
        cleaned: list[Segment] = [s for s in segments if s.speed > 0.0]
        cleaned.sort(key=lambda s: s.start)
        for prev, nxt in zip(cleaned, cleaned[1:]):
            if nxt.start < prev.end - EPS:
                raise ValueError(
                    f"overlapping segments: [{prev.start}, {prev.end}) and "
                    f"[{nxt.start}, {nxt.end})"
                )
        merged: list[Segment] = []
        for seg in cleaned:
            if (
                merged
                and abs(merged[-1].end - seg.start) <= EPS
                and abs(merged[-1].speed - seg.speed) <= EPS
            ):
                merged[-1] = Segment(merged[-1].start, seg.end, merged[-1].speed)
            else:
                merged.append(seg)
        self._segments: tuple[Segment, ...] = tuple(merged)
        self._starts: list[float] = [s.start for s in merged]

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(cls, start: float, end: float, speed: float) -> SpeedProfile:
        """Profile running at ``speed`` on ``[start, end)`` and 0 elsewhere."""
        if speed == 0:
            return cls()
        return cls([Segment(start, end, speed)])

    @classmethod
    def from_breakpoints(
        cls, breakpoints: Sequence[float], speeds: Sequence[float]
    ) -> SpeedProfile:
        """Profile with ``speeds[i]`` on ``[breakpoints[i], breakpoints[i+1])``."""
        if len(speeds) != len(breakpoints) - 1:
            raise ValueError("need exactly one speed per consecutive breakpoint pair")
        segs = [
            Segment(a, b, v)
            for a, b, v in zip(breakpoints, breakpoints[1:], speeds)
            if v > 0
        ]
        return cls(segs)

    # -- basic queries ---------------------------------------------------------

    @property
    def segments(self) -> tuple[Segment, ...]:
        return self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpeedProfile):
            return NotImplemented
        if len(self._segments) != len(other._segments):
            return False
        return all(
            abs(a.start - b.start) <= EPS
            and abs(a.end - b.end) <= EPS
            and abs(a.speed - b.speed) <= EPS
            for a, b in zip(self._segments, other._segments)
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{s.start:g},{s.end:g})@{s.speed:g}" for s in self._segments
        )
        return f"SpeedProfile({inner})"

    @property
    def is_empty(self) -> bool:
        return not self._segments

    @property
    def start(self) -> float:
        """Earliest positive-speed time (0.0 for the empty profile)."""
        return self._segments[0].start if self._segments else 0.0

    @property
    def end(self) -> float:
        """Latest positive-speed time (0.0 for the empty profile)."""
        return self._segments[-1].end if self._segments else 0.0

    def speed_at(self, t: float) -> float:
        """Speed at time ``t`` (segments are closed-left, open-right)."""
        i = bisect.bisect_right(self._starts, t) - 1
        if i >= 0:
            seg = self._segments[i]
            if seg.start <= t < seg.end:
                return seg.speed
        return 0.0

    def breakpoints(self) -> list[float]:
        """Sorted, deduplicated list of all segment boundaries."""
        raw = sorted(
            {seg.start for seg in self._segments}
            | {seg.end for seg in self._segments}
        )
        pts: list[float] = []
        for t in raw:
            if not pts or t - pts[-1] > EPS:
                pts.append(t)
        return pts

    # -- aggregates -------------------------------------------------------------

    def total_work(self) -> float:
        """Total work ``integral s(t) dt``."""
        return sum(seg.work for seg in self._segments)

    def work_in(self, start: float, end: float) -> float:
        """Work available in ``[start, end)``: ``integral_start^end s(t) dt``."""
        if end <= start:
            return 0.0
        total = 0.0
        for seg in self._segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi > lo:
                total += seg.speed * (hi - lo)
        return total

    def max_speed(self) -> float:
        """Peak speed (0 for the empty profile)."""
        return max((seg.speed for seg in self._segments), default=0.0)

    def energy(self, power: PowerFunction) -> float:
        """Total energy ``integral s(t)**alpha dt`` under ``power``."""
        return sum(power.energy(seg.speed, seg.duration) for seg in self._segments)

    # -- algebra -------------------------------------------------------------

    def scale(self, factor: float) -> SpeedProfile:
        """Pointwise speed scaling ``t -> factor * s(t)``."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return SpeedProfile(
            Segment(s.start, s.end, factor * s.speed) for s in self._segments
        )

    def restrict(self, start: float, end: float) -> SpeedProfile:
        """Profile equal to this one on ``[start, end)`` and 0 elsewhere."""
        segs = []
        for seg in self._segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi > lo:
                segs.append(Segment(lo, hi, seg.speed))
        return SpeedProfile(segs)

    def shift(self, delta: float) -> SpeedProfile:
        """Profile translated in time by ``delta``."""
        return SpeedProfile(
            Segment(s.start + delta, s.end + delta, s.speed) for s in self._segments
        )

    def __add__(self, other: SpeedProfile) -> SpeedProfile:
        """Pointwise sum of two profiles."""
        if not isinstance(other, SpeedProfile):
            return NotImplemented
        return sum_profiles([self, other])

    def dominates(self, other: SpeedProfile, tol: float = EPS) -> bool:
        """Whether ``self(t) >= other(t)`` for all ``t`` (up to tolerance)."""
        pts = sorted(set(self.breakpoints()) | set(other.breakpoints()))
        for a, b in zip(pts, pts[1:]):
            mid = 0.5 * (a + b)
            if self.speed_at(mid) < other.speed_at(mid) - tol:
                return False
        return True


def sum_profiles(profiles: Sequence[SpeedProfile]) -> SpeedProfile:
    """Pointwise sum of many profiles (used by AVR: sum of densities)."""
    pts: list[float] = []
    for p in profiles:
        for seg in p.segments:
            pts.append(seg.start)
            pts.append(seg.end)
    if not pts:
        return SpeedProfile()
    uniq = sorted(set(pts))
    # collapse numerically-equal points
    collapsed: list[float] = [uniq[0]]
    for t in uniq[1:]:
        if t - collapsed[-1] > EPS:
            collapsed.append(t)
    segs = []
    for a, b in zip(collapsed, collapsed[1:]):
        mid = 0.5 * (a + b)
        speed = sum(p.speed_at(mid) for p in profiles)
        if speed > 0:
            segs.append(Segment(a, b, speed))
    return SpeedProfile(segs)


def max_profiles(profiles: Sequence[SpeedProfile]) -> SpeedProfile:
    """Pointwise maximum of many profiles."""
    pts: list[float] = []
    for p in profiles:
        for seg in p.segments:
            pts.append(seg.start)
            pts.append(seg.end)
    if not pts:
        return SpeedProfile()
    uniq = sorted(set(pts))
    collapsed: list[float] = [uniq[0]]
    for t in uniq[1:]:
        if t - collapsed[-1] > EPS:
            collapsed.append(t)
    segs = []
    for a, b in zip(collapsed, collapsed[1:]):
        mid = 0.5 * (a + b)
        speed = max((p.speed_at(mid) for p in profiles), default=0.0)
        if speed > 0:
            segs.append(Segment(a, b, speed))
    return SpeedProfile(segs)
