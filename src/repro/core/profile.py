"""Piecewise-constant speed profiles.

A :class:`SpeedProfile` is the function ``s(t)`` a speed-scaling algorithm
commits to: a finite sequence of half-open segments ``[start, end)`` with a
constant speed each, and speed zero elsewhere.  Every algorithm in the
library produces one (per machine), and every analysis quantity — energy,
maximum speed, work available to EDF on an interval — is computed from it.

The class supports the algebra the paper's constructions need:

* pointwise addition (CRP2D adds the revealed-load speed on top of the YDS
  speed, Algorithm 2 line 12);
* scaling (the ``phi``- and ``2``-speed-up arguments of Lemmas 4.9/4.10);
* restriction and work-in-interval queries (critical-interval reasoning).

Since the 1.2 kernel redesign a profile is a thin view over parallel
float64 breakpoint arrays: aggregates and algebra dispatch to
:mod:`repro.core.profile_kernel` when :func:`~repro.core.profile_kernel.
kernel_enabled` (the default), and to the original segment loops under
:func:`~repro.core.profile_kernel.pure_python`.  Both paths are bit-for-bit
identical (pinned by ``tests/test_profile_kernel.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from . import profile_kernel as _pk
from .compat import absorb_positional
from .constants import EPS
from .power import PowerFunction


@dataclass(frozen=True)
class Segment:
    """A constant-speed segment ``[start, end)`` at ``speed >= 0``."""

    start: float
    end: float
    speed: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(f"segment end {self.end} must exceed start {self.start}")
        if self.speed < 0:
            raise ValueError(f"segment speed must be >= 0, got {self.speed}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        return self.speed * self.duration


class SpeedProfile:
    """An immutable piecewise-constant speed function.

    Construction normalises the segments: sorts them, verifies they do not
    overlap, drops zero-speed segments and merges adjacent segments with
    equal speed.  ``s(t) = 0`` outside all segments.

    Examples
    --------
    >>> prof = SpeedProfile([Segment(0.0, 1.0, 2.0), Segment(1.0, 3.0, 1.0)])
    >>> prof.speed_at(0.5)
    2.0
    >>> prof.total_work()
    4.0
    >>> from repro.core.power import PowerFunction
    >>> prof.energy(PowerFunction(3.0))  # 1*8 + 2*1
    10.0
    >>> (prof + SpeedProfile.constant(0.0, 3.0, 1.0)).speed_at(2.0)
    2.0
    """

    __slots__ = ("_segments", "_starts", "_arrays")

    def __init__(self, segments: Iterable[Segment] = ()) -> None:
        cleaned: list[Segment] = [s for s in segments if s.speed > 0.0]
        cleaned.sort(key=lambda s: s.start)
        for prev, nxt in zip(cleaned, cleaned[1:]):
            if nxt.start < prev.end - EPS:
                raise ValueError(
                    f"overlapping segments: [{prev.start}, {prev.end}) and "
                    f"[{nxt.start}, {nxt.end})"
                )
        merged: list[Segment] = []
        for seg in cleaned:
            if (
                merged
                and abs(merged[-1].end - seg.start) <= EPS
                and abs(merged[-1].speed - seg.speed) <= EPS
            ):
                merged[-1] = Segment(merged[-1].start, seg.end, merged[-1].speed)
            else:
                merged.append(seg)
        self._segments: tuple[Segment, ...] = tuple(merged)
        self._starts: list[float] = [s.start for s in merged]
        self._arrays: _pk.ProfileArrays | None = None

    @classmethod
    def _from_arrays(cls, arrays: _pk.ProfileArrays) -> SpeedProfile:
        """Trusted constructor from already-normalized kernel arrays."""
        starts, ends, speeds = arrays
        prof = cls.__new__(cls)
        prof._segments = tuple(
            Segment(a, b, v)
            for a, b, v in zip(starts.tolist(), ends.tolist(), speeds.tolist())
        )
        prof._starts = starts.tolist()
        prof._arrays = arrays
        return prof

    def _get_arrays(self) -> _pk.ProfileArrays:
        """The profile as parallel ``(starts, ends, speeds)`` float64 arrays."""
        arrays = self._arrays
        if arrays is None:
            segs = self._segments
            arrays = (
                _pk.as_float_array([s.start for s in segs]),
                _pk.as_float_array([s.end for s in segs]),
                _pk.as_float_array([s.speed for s in segs]),
            )
            self._arrays = arrays
        return arrays

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(cls, start: float, end: float, speed: float) -> SpeedProfile:
        """Profile running at ``speed`` on ``[start, end)`` and 0 elsewhere."""
        if speed == 0:
            return cls()
        return cls([Segment(start, end, speed)])

    @classmethod
    def from_breakpoints(
        cls,
        *args: Sequence[float],
        times: Sequence[float] | None = None,
        speeds: Sequence[float] | None = None,
    ) -> SpeedProfile:
        """Profile with ``speeds[i]`` on ``[times[i], times[i+1])``.

        Keyword-only since 1.2: ``SpeedProfile.from_breakpoints(times=...,
        speeds=...)``.  The legacy positional spelling
        ``from_breakpoints(breakpoints, speeds)`` still works behind a
        :class:`DeprecationWarning`.
        """
        times, speeds = absorb_positional(
            "SpeedProfile.from_breakpoints", args, ("times", "speeds"), (times, speeds)
        )
        if times is None or speeds is None:
            raise TypeError(
                "SpeedProfile.from_breakpoints() requires times=... and speeds=..."
            )
        if len(speeds) != len(times) - 1:
            raise ValueError("need exactly one speed per consecutive breakpoint pair")
        if _pk.kernel_enabled():
            t = _pk.as_float_array(times)
            v = _pk.as_float_array(speeds)
            if t.size < 2 or bool(np.all(np.diff(t) > 0.0)):
                keep = v > 0.0
                return cls._from_arrays(
                    _pk.normalize(t[:-1][keep], t[1:][keep], v[keep])
                )
            # non-monotonic breakpoints: let the constructor sort/validate
        segs = [
            Segment(a, b, v)
            for a, b, v in zip(times, times[1:], speeds)
            if v > 0
        ]
        return cls(segs)

    @classmethod
    def from_segments(
        cls,
        *,
        starts: Sequence[float],
        ends: Sequence[float],
        speeds: Sequence[float],
    ) -> SpeedProfile:
        """Profile from parallel segment arrays (keyword-only, kernel-backed).

        Equivalent to ``SpeedProfile(Segment(a, b, v) for ...)`` — the same
        validation (``end > start``, ``speed >= 0``, no overlap) and
        normalisation apply — but skips per-segment object construction on
        the kernel path.
        """
        if not (len(starts) == len(ends) == len(speeds)):
            raise ValueError("starts, ends and speeds must have equal length")
        if not _pk.kernel_enabled():
            return cls(
                Segment(a, b, v) for a, b, v in zip(starts, ends, speeds)
            )
        a = _pk.as_float_array(starts)
        b = _pk.as_float_array(ends)
        v = _pk.as_float_array(speeds)
        bad = np.flatnonzero(~(b > a))
        if bad.size:
            i = int(bad[0])
            raise ValueError(f"segment end {b[i]} must exceed start {a[i]}")
        bad = np.flatnonzero(v < 0)
        if bad.size:
            raise ValueError(
                f"segment speed must be >= 0, got {v[int(bad[0])]}"
            )
        keep = v > 0.0
        a, b, v = a[keep], b[keep], v[keep]
        order = np.argsort(a, kind="stable")
        a, b, v = a[order], b[order], v[order]
        overlap = np.flatnonzero(a[1:] < b[:-1] - EPS)
        if overlap.size:
            i = int(overlap[0])
            raise ValueError(
                f"overlapping segments: [{a[i]}, {b[i]}) and "
                f"[{a[i + 1]}, {b[i + 1]})"
            )
        return cls._from_arrays(_pk.normalize(a, b, v))

    # -- basic queries ---------------------------------------------------------

    @property
    def segments(self) -> tuple[Segment, ...]:
        return self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpeedProfile):
            return NotImplemented
        if len(self._segments) != len(other._segments):
            return False
        return all(
            abs(a.start - b.start) <= EPS
            and abs(a.end - b.end) <= EPS
            and abs(a.speed - b.speed) <= EPS
            for a, b in zip(self._segments, other._segments)
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{s.start:g},{s.end:g})@{s.speed:g}" for s in self._segments
        )
        return f"SpeedProfile({inner})"

    @property
    def is_empty(self) -> bool:
        return not self._segments

    @property
    def start(self) -> float:
        """Earliest positive-speed time (0.0 for the empty profile)."""
        return self._segments[0].start if self._segments else 0.0

    @property
    def end(self) -> float:
        """Latest positive-speed time (0.0 for the empty profile)."""
        return self._segments[-1].end if self._segments else 0.0

    def speed_at(self, t: float) -> float:
        """Speed at time ``t`` (segments are closed-left, open-right)."""
        i = bisect.bisect_right(self._starts, t) - 1
        if i >= 0:
            seg = self._segments[i]
            if seg.start <= t < seg.end:
                return seg.speed
        return 0.0

    def speeds_at(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """Batched :meth:`speed_at` over an array of query times."""
        if _pk.kernel_enabled():
            return _pk.speeds_at(*self._get_arrays(), _pk.as_float_array(times))
        return _pk.as_float_array([self.speed_at(float(t)) for t in times])

    def breakpoints(self) -> list[float]:
        """Sorted, deduplicated list of all segment boundaries."""
        if _pk.kernel_enabled():
            starts, ends, _ = self._get_arrays()
            return _pk.collapse_times(np.concatenate([starts, ends])).tolist()
        raw = sorted(
            {seg.start for seg in self._segments}
            | {seg.end for seg in self._segments}
        )
        pts: list[float] = []
        for t in raw:
            if not pts or t - pts[-1] > EPS:
                pts.append(t)
        return pts

    # -- aggregates -------------------------------------------------------------

    def total_work(self) -> float:
        """Total work ``integral s(t) dt``."""
        if _pk.kernel_enabled():
            return _pk.total_work(*self._get_arrays())
        return sum(seg.work for seg in self._segments)

    def work_in(self, start: float, end: float) -> float:
        """Work available in ``[start, end)``: ``integral_start^end s(t) dt``."""
        if _pk.kernel_enabled():
            return _pk.work_in(*self._get_arrays(), start, end)
        if end <= start:
            return 0.0
        total = 0.0
        for seg in self._segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi > lo:
                total += seg.speed * (hi - lo)
        return total

    def work_in_many(
        self,
        starts: Sequence[float] | np.ndarray,
        ends: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`work_in` over parallel interval arrays."""
        if _pk.kernel_enabled():
            return _pk.work_in_many(
                *self._get_arrays(),
                _pk.as_float_array(starts),
                _pk.as_float_array(ends),
            )
        return _pk.as_float_array(
            [self.work_in(float(a), float(b)) for a, b in zip(starts, ends)]
        )

    def max_speed(self) -> float:
        """Peak speed (0 for the empty profile)."""
        if _pk.kernel_enabled():
            return _pk.max_speed(self._get_arrays()[2])
        return max((seg.speed for seg in self._segments), default=0.0)

    def energy(self, power: PowerFunction) -> float:
        """Total energy ``integral s(t)**alpha dt`` under ``power``."""
        if _pk.kernel_enabled():
            starts, ends, speeds = self._get_arrays()
            return _pk.energy(starts, ends, speeds, power.alpha)
        return sum(power.energy(seg.speed, seg.duration) for seg in self._segments)

    # -- algebra -------------------------------------------------------------

    def scale(self, factor: float) -> SpeedProfile:
        """Pointwise speed scaling ``t -> factor * s(t)``."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        if _pk.kernel_enabled():
            return SpeedProfile._from_arrays(_pk.scale(self._get_arrays(), factor))
        return SpeedProfile(
            Segment(s.start, s.end, factor * s.speed) for s in self._segments
        )

    def restrict(self, start: float, end: float) -> SpeedProfile:
        """Profile equal to this one on ``[start, end)`` and 0 elsewhere."""
        if _pk.kernel_enabled():
            return SpeedProfile._from_arrays(
                _pk.restrict(self._get_arrays(), start, end)
            )
        segs = []
        for seg in self._segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi > lo:
                segs.append(Segment(lo, hi, seg.speed))
        return SpeedProfile(segs)

    def shift(self, delta: float) -> SpeedProfile:
        """Profile translated in time by ``delta``."""
        if _pk.kernel_enabled():
            return SpeedProfile._from_arrays(_pk.shift(self._get_arrays(), delta))
        return SpeedProfile(
            Segment(s.start + delta, s.end + delta, s.speed) for s in self._segments
        )

    def __add__(self, other: SpeedProfile) -> SpeedProfile:
        """Pointwise sum of two profiles."""
        if not isinstance(other, SpeedProfile):
            return NotImplemented
        return sum_profiles([self, other])

    def dominates(self, other: SpeedProfile, tol: float = EPS) -> bool:
        """Whether ``self(t) >= other(t)`` for all ``t`` (up to tolerance)."""
        pts = sorted(set(self.breakpoints()) | set(other.breakpoints()))
        if _pk.kernel_enabled() and len(pts) >= 2:
            grid = _pk.as_float_array(pts)
            mids = 0.5 * (grid[:-1] + grid[1:])
            mine = self.speeds_at(mids)
            theirs = other.speeds_at(mids)
            return bool(np.all(mine >= theirs - tol))
        for a, b in zip(pts, pts[1:]):
            mid = 0.5 * (a + b)
            if self.speed_at(mid) < other.speed_at(mid) - tol:
                return False
        return True


def sum_profiles(profiles: Sequence[SpeedProfile]) -> SpeedProfile:
    """Pointwise sum of many profiles (used by AVR: sum of densities)."""
    if _pk.kernel_enabled():
        return SpeedProfile._from_arrays(
            _pk.sum_arrays([p._get_arrays() for p in profiles])
        )
    pts: list[float] = []
    for p in profiles:
        for seg in p.segments:
            pts.append(seg.start)
            pts.append(seg.end)
    if not pts:
        return SpeedProfile()
    uniq = sorted(set(pts))
    # collapse numerically-equal points
    collapsed: list[float] = [uniq[0]]
    for t in uniq[1:]:
        if t - collapsed[-1] > EPS:
            collapsed.append(t)
    segs = []
    for a, b in zip(collapsed, collapsed[1:]):
        mid = 0.5 * (a + b)
        speed = sum(p.speed_at(mid) for p in profiles)
        if speed > 0:
            segs.append(Segment(a, b, speed))
    return SpeedProfile(segs)


def max_profiles(profiles: Sequence[SpeedProfile]) -> SpeedProfile:
    """Pointwise maximum of many profiles."""
    if _pk.kernel_enabled():
        return SpeedProfile._from_arrays(
            _pk.max_arrays([p._get_arrays() for p in profiles])
        )
    pts: list[float] = []
    for p in profiles:
        for seg in p.segments:
            pts.append(seg.start)
            pts.append(seg.end)
    if not pts:
        return SpeedProfile()
    uniq = sorted(set(pts))
    collapsed: list[float] = [uniq[0]]
    for t in uniq[1:]:
        if t - collapsed[-1] > EPS:
            collapsed.append(t)
    segs = []
    for a, b in zip(collapsed, collapsed[1:]):
        mid = 0.5 * (a + b)
        speed = max((p.speed_at(mid) for p in profiles), default=0.0)
        if speed > 0:
            segs.append(Segment(a, b, speed))
    return SpeedProfile(segs)


def profiles_energy(
    profiles: Sequence[SpeedProfile], power: PowerFunction
) -> float:
    """Total energy over per-machine profiles (the shared multi-machine sum).

    Single point of truth for the ``sum of per-profile energies`` that the
    single- and multi-machine result types all report; each term runs
    through the kernel's energy integral.
    """
    return sum(p.energy(power) for p in profiles)


def profiles_max_speed(profiles: Sequence[SpeedProfile]) -> float:
    """Peak speed over per-machine profiles (0.0 when all are empty)."""
    return max((p.max_speed() for p in profiles), default=0.0)
