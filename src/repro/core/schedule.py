"""Executed schedules: which job runs on which machine, when, at what speed.

A :class:`Schedule` is the concrete output of an algorithm run: per machine,
a list of :class:`Slice` entries ``(start, end, speed, job_id)``.  Preemption
appears as multiple slices of one job; migration as slices of one job on
different machines.  :mod:`repro.core.feasibility` validates schedules
against instances; this module only stores and aggregates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable

from . import profile_kernel as _pk
from .power import PowerFunction
from .profile import Segment, SpeedProfile


@dataclass(frozen=True)
class Slice:
    """``job_id`` runs on one machine during ``[start, end)`` at ``speed``."""

    start: float
    end: float
    speed: float
    job_id: str

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(f"slice end {self.end} must exceed start {self.start}")
        if self.speed < 0:
            raise ValueError(f"slice speed must be >= 0, got {self.speed}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        return self.speed * self.duration


class Schedule:
    """A complete executed schedule over ``machines`` identical machines."""

    def __init__(self, machines: int = 1) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        self.machines = machines
        self._slices: list[list[Slice]] = [[] for _ in range(machines)]

    # -- construction -----------------------------------------------------------

    def add(
        self,
        start: float,
        end: float,
        speed: float,
        job_id: str,
        machine: int = 0,
    ) -> None:
        """Append a slice on ``machine`` (slices may be added in any order)."""
        if not 0 <= machine < self.machines:
            raise ValueError(f"machine {machine} out of range 0..{self.machines - 1}")
        if speed <= 0:
            return  # zero-speed slices carry no work and no energy
        self._slices[machine].append(Slice(start, end, speed, job_id))

    def extend(self, slices: Iterable[Slice], machine: int = 0) -> None:
        for s in slices:
            self.add(s.start, s.end, s.speed, s.job_id, machine)

    # -- access -----------------------------------------------------------------

    def slices(self, machine: int | None = None) -> list[Slice]:
        """Slices of one machine, or all machines, sorted by start time."""
        if machine is None:
            out = [s for per in self._slices for s in per]
        else:
            out = list(self._slices[machine])
        return sorted(out, key=lambda s: (s.start, s.end, s.job_id))

    def machine_slices(self) -> list[list[Slice]]:
        return [sorted(per, key=lambda s: s.start) for per in self._slices]

    def job_ids(self) -> list[str]:
        return sorted({s.job_id for per in self._slices for s in per})

    # -- aggregates --------------------------------------------------------------

    def work_of(self, job_id: str) -> float:
        """Total work executed for ``job_id`` across all machines."""
        return sum(
            s.work for per in self._slices for s in per if s.job_id == job_id
        )

    def work_by_job(self) -> dict[str, float]:
        acc: dict[str, float] = defaultdict(float)
        for per in self._slices:
            for s in per:
                acc[s.job_id] += s.work
        return dict(acc)

    def completion_time(self, job_id: str) -> float:
        """Latest end time of any slice of ``job_id`` (-inf when absent)."""
        ends = [
            s.end for per in self._slices for s in per if s.job_id == job_id
        ]
        return max(ends) if ends else float("-inf")

    def machine_profile(self, machine: int) -> SpeedProfile:
        """The speed profile of one machine."""
        return SpeedProfile(
            Segment(s.start, s.end, s.speed) for s in self._slices[machine]
        )

    def energy(self, power: PowerFunction) -> float:
        """Total energy over all machines."""
        if _pk.kernel_enabled():
            speeds = _pk.as_float_array(
                [s.speed for per in self._slices for s in per]
            )
            durations = _pk.as_float_array(
                [s.duration for per in self._slices for s in per]
            )
            return _pk.sequential_sum(_pk.powers(speeds, power.alpha) * durations)
        return sum(
            power.energy(s.speed, s.duration)
            for per in self._slices
            for s in per
        )

    def max_speed(self) -> float:
        """Peak speed over all machines and times."""
        if _pk.kernel_enabled():
            return _pk.max_speed(
                _pk.as_float_array(
                    [s.speed for per in self._slices for s in per]
                )
            )
        return max(
            (s.speed for per in self._slices for s in per), default=0.0
        )

    def span(self) -> tuple[float, float]:
        allslices = [s for per in self._slices for s in per]
        if not allslices:
            return (0.0, 0.0)
        return (min(s.start for s in allslices), max(s.end for s in allslices))

    def busy_time(self, machine: int) -> float:
        """Total time ``machine`` spends executing (sum of slice durations)."""
        if not 0 <= machine < self.machines:
            raise ValueError(f"machine {machine} out of range 0..{self.machines - 1}")
        return sum(s.duration for s in self._slices[machine])

    def utilization(self, machine: int, horizon: tuple[float, float] | None = None) -> float:
        """Fraction of the horizon ``machine`` is busy (horizon = span default)."""
        lo, hi = horizon if horizon is not None else self.span()
        if hi <= lo:
            return 0.0
        return self.busy_time(machine) / (hi - lo)

    def __repr__(self) -> str:
        n = sum(len(per) for per in self._slices)
        return f"Schedule(machines={self.machines}, slices={n})"


def merge_schedules(schedules: Iterable[Schedule]) -> Schedule:
    """Concatenate schedules over the same machine set into one.

    The caller is responsible for the inputs occupying disjoint time ranges
    per machine (e.g. CRCD's first and second half-intervals); the combined
    schedule is re-validated downstream by the feasibility checker.
    """
    schedules = list(schedules)
    if not schedules:
        return Schedule(1)
    machines = max(s.machines for s in schedules)
    merged = Schedule(machines)
    for sched in schedules:
        for m in range(sched.machines):
            merged.extend(sched.slices(m), m)
    return merged
