"""Earliest-Deadline-First realisation of a speed profile.

All single-machine algorithms in the paper follow the same two-level shape:
first commit to a speed function ``s(t)`` (YDS, AVR, BKP, and the QBSS
adaptations), then at every moment execute "the unfinished job with the
smallest deadline which is released before t".  This module implements that
second level: given a :class:`~repro.core.profile.SpeedProfile` and a set of
classical jobs, produce the concrete preemptive :class:`Schedule`.

EDF is optimal for a fixed profile on one machine: if *any* preemptive
scheduler can finish all jobs under ``s(t)``, EDF can (an exchange argument).
The executor therefore also doubles as a feasibility oracle for profiles,
used by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from .constants import EPS
from .job import Job
from .profile import SpeedProfile
from .schedule import Schedule
from .timeline import dedupe_times


@dataclass
class EDFResult:
    """Outcome of an EDF run: the schedule plus any unfinished work."""

    schedule: Schedule
    unfinished: dict[str, float] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """Whether every job was fully executed by its deadline."""
        return not self.unfinished


def run_edf(
    jobs: Sequence[Job],
    profile: SpeedProfile,
    machine: int = 0,
    machines: int = 1,
    tol: float = EPS,
) -> EDFResult:
    """Execute ``jobs`` preemptively under ``profile`` with EDF priorities.

    Ties between equal deadlines are broken by job id for determinism.  The
    returned schedule places all slices on ``machine`` (a convenience for
    multi-machine callers assembling per-machine schedules).

    Jobs that cannot finish by their deadline are reported in
    :attr:`EDFResult.unfinished` with their residual work; the schedule still
    contains whatever could be executed before each deadline (work is never
    scheduled outside a job's window).
    """
    schedule = Schedule(machines)
    remaining: dict[str, float] = {
        j.id: j.work for j in jobs if j.work > tol
    }
    by_id: dict[str, Job] = {j.id: j for j in jobs}

    if not remaining:
        return EDFResult(schedule)

    events = dedupe_times(
        [j.release for j in jobs]
        + [j.deadline for j in jobs]
        + profile.breakpoints(),
        tol,
    )
    horizon = max(
        max(j.deadline for j in jobs),
        profile.end if not profile.is_empty else 0.0,
    )

    t = events[0]
    while t < horizon - tol and remaining:
        # next structural breakpoint strictly after t (a breakpoint within
        # tolerance of t is handled by the sliver-crediting branch below,
        # which keeps the profile lookup inside the correct segment)
        nxt = horizon
        for e in events:
            if e > t:
                nxt = e
                break
        speed = profile.speed_at(0.5 * (t + nxt))
        # candidates: released, unfinished, deadline not passed
        cands = [
            by_id[jid]
            for jid, rem in remaining.items()
            if by_id[jid].release <= t + tol and by_id[jid].deadline > t + tol
        ]
        # only exact zero speed means idle: sub-tolerance speeds must still
        # execute sub-tolerance jobs (thresholds would otherwise disagree
        # about which micro-jobs exist)
        if not cands or speed <= 0.0:
            t = nxt
            continue
        job = min(cands, key=lambda j: (j.deadline, j.id))
        rem = remaining[job.id]
        finish_in = rem / speed
        run_until = min(nxt, t + finish_in, job.deadline)
        if run_until <= t + tol:
            # The schedulable span is below tolerance.  Either the job
            # completes inside it (finish_in <= tol: forgive the residual and
            # re-plan from the same instant), or the next event is within
            # tolerance: credit the sliver's capacity to the job instead of
            # silently dropping it.  Both under-report at most speed * tol of
            # executed work, absorbed by the checker tolerances.
            if rem <= speed * tol * (1 + 1e-6):
                del remaining[job.id]
                continue
            credited = speed * max(nxt - t, 0.0)
            rem -= credited
            if rem <= tol:
                del remaining[job.id]
            else:
                remaining[job.id] = rem
            t = nxt
            continue
        executed = speed * (run_until - t)
        schedule.add(t, run_until, speed, job.id, machine)
        if executed >= rem - tol * max(1.0, rem):
            del remaining[job.id]
        else:
            remaining[job.id] = rem - executed
        t = run_until

    # Anything left over is unfinished work (deadline misses).  Each event
    # boundary can strand at most tol * speed of work in a sub-tolerance
    # sliver, so residuals below that aggregate are float dust, not misses.
    dust = tol * (1.0 + len(events) * profile.max_speed())
    unfinished = {jid: rem for jid, rem in remaining.items() if rem > dust}
    return EDFResult(schedule, unfinished)


def profile_feasible_for(
    jobs: Sequence[Job], profile: SpeedProfile, tol: float = EPS
) -> bool:
    """Whether ``profile`` carries enough capacity for ``jobs`` under EDF.

    Equivalent to the classical condition that for every interval ``[a, b]``
    the profile's work in ``[a, b]`` is at least the total work of jobs whose
    windows lie inside ``[a, b]`` — but checked constructively by running EDF.
    """
    return run_edf(jobs, profile, tol=tol).feasible
