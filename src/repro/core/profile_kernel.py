"""Vectorized numpy kernel for piecewise-constant profile algebra.

This module is the hot path under every benchmark in ``benchmarks/``: the
:class:`~repro.core.profile.SpeedProfile` algebra (pointwise sum, scale,
restriction), the energy integral ``E = integral s(t)**alpha dt``, batched
``work_in`` interval queries, and the per-shard clairvoyant baselines of
trace replay all bottom out here.  Profiles are represented as parallel
breakpoint arrays ``(starts, ends, speeds)`` — one float64 entry per
positive-speed segment, sorted and non-overlapping — and every operation
is a handful of numpy array passes instead of a Python loop over
:class:`~repro.core.profile.Segment` objects.

**Determinism contract.**  Every kernel operation reproduces the
pure-Python reference arithmetic *bit for bit*, so kernel-backed replay
reports and cached engine entries are byte-identical to the pre-kernel
ones (pinned by ``tests/test_profile_kernel.py``).  Three rules make that
possible:

* sums use :func:`sequential_sum` (``np.cumsum`` is a left-to-right
  scan, unlike ``np.sum``'s pairwise reduction, so it matches Python's
  ``sum()`` exactly);
* power terms ``s**alpha`` are evaluated with Python's ``float.__pow__``
  per element (numpy's SIMD ``np.power`` differs from libm by ULPs);
* elementwise ``+ - * max min`` and ``searchsorted``/``bisect`` are
  exact, so broadcasting them is free.

The kernel can be switched off at runtime with :func:`pure_python` —
:class:`~repro.core.profile.SpeedProfile` then falls back to the original
segment-loop implementations.  The equality suite and the replay
byte-identity test both diff the two modes.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator, Sequence

import numpy as np

from .constants import EPS

#: A normalized profile as parallel arrays: ``starts``, ``ends``,
#: ``speeds`` (float64, equal length, sorted by start, non-overlapping,
#: all speeds strictly positive).
ProfileArrays = tuple[np.ndarray, np.ndarray, np.ndarray]

_KERNEL_ENABLED: bool = True


def kernel_enabled() -> bool:
    """Whether profile operations dispatch to the numpy kernel."""
    return _KERNEL_ENABLED


@contextlib.contextmanager
def pure_python() -> Iterator[None]:
    """Context manager: force the pure-Python reference implementations.

    Used by the equality/byte-identity tests and the perf-trajectory
    recorder to measure the pre-kernel code paths.  Not thread safe (it
    flips a module global) — test/bench use only.
    """
    global _KERNEL_ENABLED
    previous = _KERNEL_ENABLED
    _KERNEL_ENABLED = False
    try:
        yield
    finally:
        _KERNEL_ENABLED = previous


def empty_arrays() -> ProfileArrays:
    """The empty profile's array triple."""
    z = np.empty(0, dtype=np.float64)
    return (z, z.copy(), z.copy())


def as_float_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Coerce to a 1-D float64 array (no copy when already one)."""
    return np.asarray(values, dtype=np.float64)


def sequential_sum(terms: np.ndarray) -> float:
    """Left-to-right sum matching Python's ``sum()`` bit for bit.

    Returns the int ``0`` on empty input, exactly like ``sum(())`` — the
    distinction survives into JSON (``0`` vs ``0.0``), so byte-identical
    reports require preserving it.
    """
    if terms.size == 0:
        return 0
    return float(np.cumsum(terms)[-1])


def powers(speeds: np.ndarray, alpha: float) -> np.ndarray:
    """``speeds**alpha`` elementwise via Python pow (libm-exact).

    ``np.power`` uses SIMD kernels that differ from ``float.__pow__`` by
    ULPs; the per-element loop keeps energies bit-identical to the
    reference while everything around it stays vectorized.
    """
    return np.array([s**alpha for s in speeds.tolist()], dtype=np.float64)


# -- normalization ------------------------------------------------------------------


def normalize(
    starts: np.ndarray, ends: np.ndarray, speeds: np.ndarray
) -> ProfileArrays:
    """Drop zero-speed segments and merge EPS-adjacent equal-speed runs.

    Expects the segments already sorted by start and non-overlapping
    (every kernel op preserves that invariant).  Reproduces the
    ``SpeedProfile`` constructor's chain-merge semantics exactly: a
    segment joins the current run when it touches the run's *current*
    end and its speed is within ``EPS`` of the run's *first* speed.
    """
    keep = speeds > 0.0
    if not keep.all():
        starts, ends, speeds = starts[keep], ends[keep], speeds[keep]
    k = starts.size
    if k <= 1:
        return (starts, ends, speeds)
    # Screen: chain merging can only begin at a pair that touches with
    # near-equal speeds; when no pair qualifies, nothing merges at all.
    touch = np.abs(starts[1:] - ends[:-1]) <= EPS
    close = np.abs(speeds[1:] - speeds[:-1]) <= EPS
    if not bool(np.any(touch & close)):
        return (starts, ends, speeds)
    s_list, e_list, v_list = starts.tolist(), ends.tolist(), speeds.tolist()
    ms: list[float] = [s_list[0]]
    me: list[float] = [e_list[0]]
    mv: list[float] = [v_list[0]]
    for i in range(1, k):
        if abs(me[-1] - s_list[i]) <= EPS and abs(mv[-1] - v_list[i]) <= EPS:
            me[-1] = e_list[i]
        else:
            ms.append(s_list[i])
            me.append(e_list[i])
            mv.append(v_list[i])
    return (as_float_array(ms), as_float_array(me), as_float_array(mv))


def collapse_times(values: np.ndarray) -> np.ndarray:
    """Sorted unique times with sub-EPS neighbours collapsed to the first.

    Matches the reference ``sorted(set(...))`` + tolerance-collapse loop.
    """
    uniq = np.unique(values)
    if uniq.size <= 1 or bool(np.all(np.diff(uniq) > EPS)):
        return uniq
    vals = uniq.tolist()
    kept = [vals[0]]
    for t in vals[1:]:
        if t - kept[-1] > EPS:
            kept.append(t)
    return as_float_array(kept)


# -- aggregates ---------------------------------------------------------------------


def total_work(starts: np.ndarray, ends: np.ndarray, speeds: np.ndarray) -> float:
    """``integral s(t) dt`` (left-to-right sum over segments)."""
    return sequential_sum(speeds * (ends - starts))


def energy(
    starts: np.ndarray, ends: np.ndarray, speeds: np.ndarray, alpha: float
) -> float:
    """``integral s(t)**alpha dt`` — bit-identical to the segment loop."""
    if speeds.size == 0:
        return 0
    return float(np.cumsum(powers(speeds, alpha) * (ends - starts))[-1])


def max_speed(speeds: np.ndarray) -> float:
    """Peak speed (0.0 for the empty profile)."""
    if speeds.size == 0:
        return 0.0
    return float(speeds.max())


def work_in(
    starts: np.ndarray,
    ends: np.ndarray,
    speeds: np.ndarray,
    lo: float,
    hi: float,
) -> float:
    """Work available in ``[lo, hi)`` — one scalar query."""
    if hi <= lo or speeds.size == 0:
        return 0.0
    a = np.maximum(starts, lo)
    b = np.minimum(ends, hi)
    terms = np.where(b > a, speeds * (b - a), 0.0)
    return float(np.cumsum(terms)[-1])


def work_in_many(
    starts: np.ndarray,
    ends: np.ndarray,
    speeds: np.ndarray,
    q_starts: np.ndarray,
    q_ends: np.ndarray,
) -> np.ndarray:
    """Batched ``work_in`` over interval arrays (one broadcast pass).

    Each row reproduces the scalar query's accumulation order exactly, so
    ``work_in_many(...)[i] == work_in(..., q_starts[i], q_ends[i])``.
    """
    q_starts = as_float_array(q_starts)
    q_ends = as_float_array(q_ends)
    if speeds.size == 0 or q_starts.size == 0:
        return np.zeros(q_starts.size, dtype=np.float64)
    a = np.maximum(starts[None, :], q_starts[:, None])
    b = np.minimum(ends[None, :], q_ends[:, None])
    terms = np.where(b > a, speeds[None, :] * (b - a), 0.0)
    out = np.cumsum(terms, axis=1)[:, -1]
    out[q_ends <= q_starts] = 0.0
    return out


def speeds_at(
    starts: np.ndarray,
    ends: np.ndarray,
    speeds: np.ndarray,
    times: np.ndarray,
) -> np.ndarray:
    """Batched point queries ``s(t)`` (segments closed-left, open-right)."""
    times = as_float_array(times)
    if speeds.size == 0:
        return np.zeros(times.size, dtype=np.float64)
    idx = np.searchsorted(starts, times, side="right") - 1
    clipped = np.clip(idx, 0, speeds.size - 1)
    inside = (idx >= 0) & (times >= starts[clipped]) & (times < ends[clipped])
    return np.where(inside, speeds[clipped], 0.0)


# -- algebra ------------------------------------------------------------------------


def scale(arrays: ProfileArrays, factor: float) -> ProfileArrays:
    """Pointwise speed scaling (re-normalized, like the constructor)."""
    starts, ends, speeds = arrays
    return normalize(starts, ends, speeds * factor)


def restrict(arrays: ProfileArrays, lo: float, hi: float) -> ProfileArrays:
    """Clip to ``[lo, hi)``."""
    starts, ends, speeds = arrays
    if speeds.size == 0:
        return arrays
    a = np.maximum(starts, lo)
    b = np.minimum(ends, hi)
    keep = b > a
    return normalize(a[keep], b[keep], speeds[keep])


def shift(arrays: ProfileArrays, delta: float) -> ProfileArrays:
    """Translate in time by ``delta``."""
    starts, ends, speeds = arrays
    return normalize(starts + delta, ends + delta, speeds.copy())


def _combine(
    arrays_list: Sequence[ProfileArrays], pointwise_max: bool
) -> ProfileArrays:
    """Shared sum/max combinator over the union breakpoint grid.

    Accumulates profiles one at a time (vectorized over the grid) so the
    per-interval addition order equals the reference's left-to-right
    ``sum(p.speed_at(mid) for p in profiles)``.
    """
    boundary_arrays = [a for arrs in arrays_list for a in (arrs[0], arrs[1])]
    boundaries = (
        np.concatenate(boundary_arrays)
        if boundary_arrays
        else np.empty(0, dtype=np.float64)
    )
    if boundaries.size == 0:
        return empty_arrays()
    grid = collapse_times(boundaries)
    if grid.size < 2:
        return empty_arrays()
    mids = 0.5 * (grid[:-1] + grid[1:])
    acc = np.zeros(mids.size, dtype=np.float64)
    for starts, ends, speeds in arrays_list:
        vals = speeds_at(starts, ends, speeds, mids)
        acc = np.maximum(acc, vals) if pointwise_max else acc + vals
    keep = acc > 0.0
    return normalize(grid[:-1][keep], grid[1:][keep], acc[keep])


def sum_arrays(arrays_list: Sequence[ProfileArrays]) -> ProfileArrays:
    """Pointwise sum of many profiles (AVR's density stack)."""
    return _combine(arrays_list, pointwise_max=False)


def max_arrays(arrays_list: Sequence[ProfileArrays]) -> ProfileArrays:
    """Pointwise maximum of many profiles."""
    return _combine(arrays_list, pointwise_max=True)


# -- batched clairvoyant baselines ---------------------------------------------------


def shard_clairvoyant_values(
    releases: Sequence[float] | np.ndarray,
    deadlines: Sequence[float] | np.ndarray,
    loads: Sequence[float] | np.ndarray,
    alpha: float,
) -> tuple[float, float]:
    """Single-machine clairvoyant optimum of one shard, values only.

    Takes the shard's derived classical loads ``p* = min(w, c + w*)`` as
    flat arrays and returns ``(optimal_energy, optimal_max_speed)`` via
    the discovery-only YDS loop — no EDF realization, no
    :class:`~repro.core.schedule.Schedule` objects, and the compressed
    timeline arithmetic runs through :meth:`TimelineCompressor.compress_many
    <repro.speed_scaling.yds.TimelineCompressor.compress_many>` in one
    vectorized pass per iteration.  Bit-identical to
    ``yds(jobs).profile`` energy/max-speed.
    """
    from .job import Job
    from .power import PowerFunction
    from ..speed_scaling.yds import yds_profile

    rel = as_float_array(releases)
    dls = as_float_array(deadlines)
    wks = as_float_array(loads)
    jobs = [
        Job(r, d, w, str(i))
        for i, (r, d, w) in enumerate(zip(rel.tolist(), dls.tolist(), wks.tolist()))
    ]
    profile = yds_profile(jobs)
    return (
        profile.energy(PowerFunction(alpha)),
        profile.max_speed(),
    )
