"""Deprecation shims for the pre-1.1 positional call forms.

The 1.1 API redesign made every QBSS entry point keyword-only past the
instance argument (``algo(qi, *, alpha=..., query_policy=...,
split_policy=...)``).  The old positional spellings keep working through
:func:`absorb_positional`, which maps stray positional arguments onto their
keyword slots and emits a :class:`DeprecationWarning` naming the new form.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence


def warn_positional(fname: str, names: Sequence[str], count: int) -> None:
    """Warn that ``fname`` received ``count`` legacy positional arguments."""
    keywords = ", ".join(f"{p}=..." for p in names[:count])
    warnings.warn(
        f"passing {', '.join(names[:count])} to {fname}() positionally is "
        f"deprecated; call {fname}(..., {keywords}) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def absorb_positional(
    fname: str,
    args: tuple,
    names: Sequence[str],
    current: tuple,
) -> tuple:
    """Fold legacy positional ``args`` into the keyword slots ``names``.

    ``current`` holds the keyword-supplied (or default) values in the same
    order as ``names``; positional values win, with a deprecation warning.
    Returns the merged tuple.  Raises :class:`TypeError` when more
    positionals arrive than there are slots, mirroring a normal signature.
    """
    if not args:
        return current
    if len(args) > len(names):
        raise TypeError(
            f"{fname}() takes at most {len(names)} deprecated positional "
            f"argument{'s' if len(names) != 1 else ''} ({', '.join(names)}), "
            f"got {len(args)}"
        )
    warn_positional(fname, names, len(args))
    merged = list(current)
    merged[: len(args)] = args
    return tuple(merged)
